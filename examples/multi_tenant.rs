//! Hypervisor-style slice partitioning across tenants (paper §7,
//! future work: "slice isolation can also be employed in hypervisors").
//!
//! Three tenants get disjoint LLC slice grants; each runs the §3
//! random-access loop over its own memory while the others keep working.
//! Because the tenants' working sets can only occupy their own slices,
//! a cache-hungry tenant cannot evict its neighbours.
//!
//! Run with: `cargo run --release --example multi_tenant`

use llc_sim::hash::SliceHash;
use llc_sim::machine::{Machine, MachineConfig};
use llc_sim::AccessKind;
use slice_aware::alloc::SliceAllocator;
use slice_aware::partition::SlicePartitioner;
use slice_aware::workload::{random_access, warm_buffer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3());
    let page = m.mem_mut().alloc(512 << 20, 1 << 20)?;
    let hash = llc_sim::hash::XorSliceHash::haswell_8slice();
    let alloc = SliceAllocator::new(page, move |pa| hash.slice_of(pa));
    let mut hv = SlicePartitioner::new(alloc, 8);

    // The "hypervisor" grants slices: a small latency-sensitive tenant
    // near core 0, a bigger one, and a batch tenant with the rest.
    hv.grant(1, &[0])?;
    hv.grant(2, &[2, 4])?;
    hv.grant(3, &[1, 3, 5, 6, 7])?;
    println!(
        "grants: tenant1={:?} tenant2={:?} tenant3={:?}",
        hv.slices_of(1),
        hv.slices_of(2),
        hv.slices_of(3)
    );

    // Tenant working sets sized to their grants (~0.75 slice each).
    let bufs = [
        (1u32, 0usize, hv.alloc_for(1, 30_000)?),
        (2, 2, hv.alloc_for(2, 60_000)?),
        (3, 4, hv.alloc_for(3, 150_000)?),
    ];
    for (t, core, buf) in &bufs {
        warm_buffer(&mut m, *core, buf);
        println!("tenant {t}: {} lines over its slices", buf.len());
    }

    // Interleave all three tenants and report per-tenant throughput.
    println!("\nrunning 20k interleaved random reads per tenant...");
    for (t, core, buf) in &bufs {
        let cycles = random_access(&mut m, *core, buf, 20_000, AccessKind::Read, 7);
        let per_op = cycles as f64 / 20_000.0;
        println!(
            "tenant {t} (core {core}): {per_op:.1} cycles/op — isolated in slices {:?}",
            hv.slices_of(*t).ok_or("tenant has a grant")?
        );
    }

    // Tear one tenant down and re-grant its slice.
    let freed = hv.revoke(1)?;
    println!(
        "\ntenant 1 torn down, slices {freed:?} free again: {:?}",
        hv.free_slices()
    );
    hv.grant(4, &freed)?;
    println!(
        "tenant 4 granted {:?}",
        hv.slices_of(4).ok_or("tenant 4 has a grant")?
    );
    Ok(())
}
