//! Cache explorer: walk the machine's NUCA structure interactively-ish.
//!
//! Prints, for both CPU generations the paper studies: the core→slice
//! latency matrix, each core's preferred slices, the slice-occupancy of a
//! hugepage, and a demonstration of DDIO placement plus CAT way masking.
//!
//! Run with: `cargo run --release --example cache_explorer`

use llc_sim::machine::{Machine, MachineConfig};
use slice_aware::mapping::SliceMap;
use slice_aware::placement::PlacementPolicy;

fn explore(cfg: MachineConfig) -> Result<(), Box<dyn std::error::Error>> {
    let mut m = Machine::new(cfg);
    println!("=== {} ===", m.config().name);
    let cores = m.config().cores;
    let slices = m.config().slices;

    // Latency matrix.
    print!("core\\slice");
    for s in 0..slices {
        print!("{s:>4}");
    }
    println!();
    for c in 0..cores {
        print!("  core {c:>2} ");
        for s in 0..slices {
            print!("{:>4}", m.llc_latency(c, s));
        }
        println!();
    }

    // Preferred slices.
    let policy = PlacementPolicy::from_topology(&m);
    for c in 0..cores {
        println!(
            "core {c}: primary S{}, secondary {:?}",
            policy.primary(c),
            policy.secondary(c)
        );
    }

    // Slice occupancy of 1 MB of physical memory.
    let region = m.mem_mut().alloc(1 << 20, 1 << 20)?;
    let map = SliceMap::from_hash(&m, region);
    println!(
        "1 MB region line counts per slice: {:?}",
        map.histogram(slices)
    );

    // DDIO: DMA a frame, see where it landed.
    let pa = region.pa(0);
    m.dma_write(pa, &[0u8; 64]);
    let s = m.slice_of(pa);
    println!(
        "DMA'd frame at {pa}: slice {s}, resident in LLC: {} (DDIO uses {} of {} ways)",
        m.llc_probe(s, pa),
        m.config().ddio_ways,
        m.config().llc_slice.ways
    );

    // CAT: restrict core 0 to 2 ways and show the effect on evictions.
    m.set_cat_mask(0, 0b11);
    println!("core 0 now CAT-restricted to 2 LLC ways (like `pqos -e llc:1=0x3`)\n");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    explore(MachineConfig::haswell_e5_2667_v3())?;
    explore(MachineConfig::skylake_gold_6134())?;
    Ok(())
}
