//! Quickstart: discover the slice mapping, allocate slice-local memory,
//! and measure the speedup — the paper's §2-§3 in fifty lines.
//!
//! Run with: `cargo run --release --example quickstart`

use llc_sim::machine::{Machine, MachineConfig};
use llc_sim::AccessKind;
use slice_aware::alloc::SliceAllocator;
use slice_aware::mapping::poll_slice_of;
use slice_aware::reverse::reconstruct_hash;
use slice_aware::workload::{random_access, warm_buffer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated Xeon E5-2667 v3 (the paper's testbed).
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3());
    println!("machine: {}", m.config().name);

    // Reserve a 1 GB hugepage, like the paper does with mmap.
    let page = m.mem_mut().alloc_hugepage_1g()?;

    // Step 1 — which LLC slice does an address map to? Ask the uncore
    // counters (works even when the hash function is unknown).
    let pa = page.pa(4096);
    let slice = poll_slice_of(&mut m, 0, pa, 32);
    println!("PA {pa} maps to LLC slice {slice} (polled via CBo counters)");

    // Step 2 — reconstruct the whole hash function by bit flipping, so
    // future lookups are free.
    let rec = reconstruct_hash(&mut m, 0, page, 8);
    println!(
        "reconstructed Complex Addressing over bits 6..={} ({} output bits)",
        rec.max_bit,
        rec.masks.len()
    );
    let hash = rec.as_hash();

    // Step 3 — allocate a buffer that lives entirely in core 0's closest
    // slice, and a contiguous buffer as the baseline.
    let target = m.closest_slice(0);
    let mut alloc = SliceAllocator::new(page, move |pa| {
        use llc_sim::hash::SliceHash;
        hash.slice_of(pa)
    });
    let lines = 1_441_792 / 64; // The paper's 1.375 MB working set.
    let aware = alloc.alloc_lines(target, lines)?;
    let normal = alloc.alloc_contiguous_lines(lines)?;

    // Step 4 — measure: 10 000 uniform random reads over each.
    warm_buffer(&mut m, 0, &aware);
    let c_aware = random_access(&mut m, 0, &aware, 10_000, AccessKind::Read, 1);
    warm_buffer(&mut m, 0, &normal);
    let c_normal = random_access(&mut m, 0, &normal, 10_000, AccessKind::Read, 1);
    println!(
        "10k random reads: slice-aware {c_aware} cycles, normal {c_normal} cycles \
         => {:.1}% speedup",
        (c_normal as f64 - c_aware as f64) / c_normal as f64 * 100.0
    );
    Ok(())
}
