//! A slice-aware key-value store server (the paper's §3.1 study).
//!
//! Builds an emulated KVS over the simulated machine, serves Zipf(0.99)
//! GET/SET traffic arriving as 128 B TCP packets through the NIC, and
//! compares value placements: normal, everything-in-one-slice, and
//! hot-set-in-one-slice.
//!
//! Run with: `cargo run --release --example kvs_server [requests]`

use kvs::proto::RequestGen;
use kvs::server::{run_server, ServerConfig};
use kvs::store::{KvStore, Placement};
use llc_sim::hash::{SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, Port};
use rte::steering::{Rss, Steering};
use slice_aware::alloc::SliceAllocator;
use trafficgen::ZipfGen;

const N_VALUES: usize = 1 << 20; // 64 MB of 64 B values.

fn serve(placement: Placement, requests: usize) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(2 << 30));
    let region = m.mem_mut().alloc(N_VALUES * 64 * 9, 1 << 20)?;
    let hash = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| hash.slice_of(pa));
    let store = KvStore::build(&mut m, &mut alloc, N_VALUES, placement)?;
    let mut pool = MbufPool::create(&mut m, 1024, 128, 2048)?;
    let mut port = Port::new(0, Steering::Rss(Rss::new(1)), 256);
    let mut gens = [RequestGen::new(
        ZipfGen::new(N_VALUES as u64, 0.99, 1),
        950,
        2,
    )];
    let mut policy = FixedHeadroom(128);
    // Warm, then measure.
    let warm = ServerConfig::fig8(requests / 4, 950, 0);
    run_server(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut gens,
        &warm,
    );
    let cfg = ServerConfig::fig8(requests, 950, 0);
    let rep = run_server(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut gens,
        &cfg,
    );
    Ok((rep.tps / 1e6, rep.cycles_per_request))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let requests: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    println!(
        "emulated KVS: {} x 64 B values, 95% GET, Zipf(0.99) keys, {requests} requests\n",
        N_VALUES
    );
    for (name, placement) in [
        ("normal (contiguous)", Placement::Normal),
        ("all values in slice 0", Placement::SliceAware { slice: 0 }),
        (
            "hot set in slice 0",
            Placement::HotSliceAware {
                slice: 0,
                hot_count: 20_000,
            },
        ),
    ] {
        let (tps, cpr) = serve(placement, requests)?;
        println!("{name:<24} {tps:6.3} MTPS  ({cpr:5.1} cycles/request)");
    }
    println!(
        "\nThe hot-set placement keeps popular values in the serving core's closest \
         slice without giving up the rest of the LLC for the long tail (paper §3.1, §8)."
    );
    Ok(())
}
