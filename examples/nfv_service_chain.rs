//! An NFV service chain with and without CacheDirector.
//!
//! Builds the paper's Router → NAPT → LB chain on 8 simulated cores,
//! replays a campus-mix trace at 100 Gbps through the NIC (FlowDirector
//! steering with hardware-offloaded routing), and prints the latency
//! percentiles for stock DPDK vs. DPDK + CacheDirector.
//!
//! Run with: `cargo run --release --example nfv_service_chain [packets]`

use nfv::runtime::{run_experiment, ChainSpec, HeadroomMode, RunConfig, SteeringKind};
use trafficgen::{ArrivalSchedule, CampusTrace, SizeMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let packets: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80_000);
    println!("replaying {packets} campus-mix packets at 100 Gbps through Router->NAPT->LB\n");
    let chain = ChainSpec::RouterNaptLb {
        routes: 3120,
        offload: true,
    };
    for (name, headroom) in [
        ("stock DPDK", HeadroomMode::Stock),
        (
            "DPDK + CacheDirector",
            HeadroomMode::CacheDirector {
                preferred_slices: 1,
            },
        ),
    ] {
        let cfg = RunConfig::paper_defaults(chain, SteeringKind::FlowDirector, headroom);
        let mut trace = CampusTrace::new(SizeMix::campus(), 10_000, 7);
        let mut sched = ArrivalSchedule::constant_gbps(100.0, 670.0);
        let res = run_experiment(cfg, &mut trace, &mut sched, packets)?;
        let s = res.summary().ok_or("no latencies recorded")?;
        let [p75, p90, p95, p99, mean] = s.paper_row();
        println!(
            "{name:<22} tput={:6.2} Gbps  p75={:8.1}us p90={:8.1}us p95={:8.1}us \
             p99={:8.1}us mean={:7.1}us  drops={:.1}%",
            res.achieved_gbps,
            p75 / 1e3,
            p90 / 1e3,
            p95 / 1e3,
            p99 / 1e3,
            mean / 1e3,
            res.dropped as f64 / res.offered as f64 * 100.0
        );
    }
    println!(
        "\nCacheDirector places each packet's header in the slice closest to its \
         processing core; the saved cycles compound in the queues and cut the tail."
    );
    Ok(())
}
