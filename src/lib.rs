//! Meta crate re-exporting the workspace (see README).
