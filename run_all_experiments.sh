#!/bin/sh
# Regenerates every table and figure of the paper. Arguments scale the
# statistics: most binaries take [runs] [packets-or-ops]. Pass
# --parallel to run the engine-backed experiments with workers on OS
# threads (bit-identical output, lower wall-clock on multi-queue runs).
set -e
EXTRA=""
for a in "$@"; do
    if [ "$a" = "--parallel" ]; then EXTRA="--parallel"; fi
done
BIN="cargo run --release -q -p bench --bin"
echo "================ Table 1 ================";  $BIN table01_cachespec $EXTRA
echo "================ Fig. 4 ================";   $BIN fig04_hash 1 512 $EXTRA
echo "================ Fig. 5 ================";   $BIN fig05_latency 50 $EXTRA
echo "================ Fig. 6 ================";   $BIN fig06_speedup 20 10000 $EXTRA
echo "================ Fig. 7 ================";   $BIN fig07_ops 1 15000 $EXTRA
echo "================ Fig. 8 ================";   $BIN fig08_kvs 1 100000 21 $EXTRA
echo "================ §8 migration (hot-set churn) ================"; $BIN fig08_kvs 1 100000 21 --zipf=0.99 --churn=4096 --cores=4 $EXTRA
echo "================ §4.2 headroom ================"; $BIN headroom_dist 1 16384 $EXTRA
echo "================ Fig. 12 ================";  $BIN fig12_lowrate 10 5000 $EXTRA
echo "================ Fig. 13 / Table 3a ================"; $BIN fig13_forward 10 120000 $EXTRA
echo "================ Figs. 1+14 / Table 3b ================"; $BIN fig14_chain 10 120000 $EXTRA
echo "================ Fig. 15 ================";  $BIN fig15_knee 1 50000 $EXTRA
echo "================ Overload knee (open-loop KVS) ================"; $BIN fig_knee_kvs 1 30000 $EXTRA
echo "================ Overload chaos ================"; $BIN fig_knee_kvs 1 30000 --chaos $EXTRA
echo "================ Fig. 16 / Table 4 ================"; $BIN fig16_table4_skylake 10 $EXTRA
echo "================ Fig. 17 ================";  $BIN fig17_isolation 1 40000 $EXTRA
echo "================ Multi-tenant SLO defense ================"; $BIN fig_tenants 1 20000 $EXTRA
echo "================ Scale study (million-key KVS) ================"; $BIN fig_scale_kvs 1 1000000 21 $EXTRA
echo "================ §6 Skylake NFV ================"; $BIN skylake_nfv 5 120000 $EXTRA
echo "================ §8 pipelined compromise ================"; $BIN ext_pipeline 1 60000 $EXTRA
