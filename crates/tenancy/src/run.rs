//! The multi-tenant chaos harness: three tenants on one socket, a
//! noisy-neighbour storm schedule, and the isolation controller in the
//! engine's control loop.
//!
//! # Scenario
//!
//! One simulated Haswell socket serves three tenants:
//!
//! | tenant | service | cores/queues | cache hunger |
//! |---|---|---|---|
//! | 0 `kvs` | KVS instance | 0,1 | pressure set 8 lines/slice-set |
//! | 1 `nfv` | NFV chain | 2,3 | pressure set 7 lines/slice-set |
//! | 2 `antagonist` | noisy neighbour | 4 | streaming thrash + DMA storms |
//!
//! CAT segments stack bottom-to-top as `[antagonist, kvs, nfv]`, so the
//! **nfv** tenant owns the top ways — including the DDIO window. That is
//! deliberate: DDIO ignores CAT ([`Machine::dma_place`] allocates into
//! the top ways regardless of who they were granted to), so the tenant
//! holding the top of the mask is the one a DMA flood robs. The
//! antagonist's storm phases ([`crate::apps::PhasedGaps`]) multiply the
//! accepted-frame rate by ~40×, and every accepted frame is two DDIO
//! fills.
//!
//! The two victims are sized to hurt in distinct ways under the static
//! even split (7/7/6):
//!
//! * `kvs` wants 8 ways (its pressure set is 8 deep) but even gives 7 —
//!   a *capacity* victim, pressured around the clock.
//! * `nfv` fits its 7 ways exactly — until a storm parks DMA lines in
//!   its top two ways, shrinking it to ~5 effective ways. A *DDIO*
//!   victim, pressured only inside storm windows.
//!
//! The mbuf pool geometry is chosen so DMA frame starts recur on one
//! LLC set index class (object size = exactly 2 KB = 32 lines, so frame
//! lines land on sets `≡ r, r+1 (mod 32)`). The nfv pressure set is
//! placed *on* that class — it shares sets with the DMA traffic, which
//! is what makes the leak bite — while the kvs pressure set is placed
//! 16 classes away, DMA-free, so its story stays a pure capacity one.
//!
//! # Regimes
//!
//! [`Regime::StaticEven`] and [`Regime::StaticOracle`] run the
//! controller in monitor-only mode (identical sampling grid, no
//! actions); [`Regime::Online`] lets it act. The oracle is the
//! hand-tuned end state (2/9/9 ways, DDIO 1) an operator with perfect
//! knowledge would install up front.
//!
//! # Determinism
//!
//! Control epochs fire at fixed virtual times in both schedulers;
//! observations are derived from merged machine state and canonical-
//! order outcome logs; the controller is a pure function of its
//! observations. Reports are therefore bit-identical across
//! {event-driven, reference-tick} × {serial, parallel} — asserted by
//! the repo's determinism battery and the `fig_tenants` golden.

use crate::apps::{PhasedGaps, TenantApp, TenantKind};
use crate::controller::{ControllerConfig, IsolationController};
use engine::{
    time_key, time_of_key, AdmissionPolicy, DelayedQueue, Engine, EngineConfig, Execution, Hw,
    MergeCtx, Scheduler, WorkerSpec,
};
use kvs::proto::{RequestGen, REQUEST_SIZE};
use kvs::server::flow_for_queue;
use kvs::store::{KvStore, Placement};
use llc_sim::machine::{Machine, MachineConfig};
use llc_sim::uncore::{UncoreEvent, UncoreSnapshot};
use llc_sim::PhysAddr;
use rte::fault::FaultPlan;
use rte::mbuf::MBUF_META_SIZE;
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, Port};
use rte::steering::{Rss, Steering};
use slice_aware::alloc::SliceAllocator;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use trafficgen::{FlowTuple, Phase, PhaseSchedule, ZipfGen};
use xstats::{slo_violation_ns, Summary};

/// Tenant count (kvs, nfv, antagonist).
pub const TENANTS: usize = 3;
/// Tenant display names, tenant order.
pub const NAMES: [&str; TENANTS] = ["kvs", "nfv", "antagonist"];
/// Serving cores (== RX queues) per tenant.
const TENANT_QUEUES: [&[usize]; TENANTS] = [&[0, 1], &[2, 3], &[4]];
/// Queue → owning tenant (also the engine's ledger groups).
const QUEUE_TENANT: [usize; 5] = [0, 0, 1, 1, 2];
/// CAT segment stacking, bottom way up: antagonist, kvs, nfv — the nfv
/// segment always contains the DDIO (top) ways.
const SEGMENT_ORDER: [usize; TENANTS] = [2, 0, 1];

/// The static even split (tenant order).
pub const EVEN_WAYS: [usize; TENANTS] = [7, 7, 6];
/// The hand-tuned oracle split (tenant order); the oracle also pins
/// DDIO to [`DDIO_MIN`].
pub const ORACLE_WAYS: [usize; TENANTS] = [8, 10, 2];

/// Pressure-set depth per slice set: kvs wants one way more than even
/// gives it; nfv wants two more — and because DMA churn steals its top
/// (DDIO) ways during storms, even a grant that fits the depth exactly
/// leaves it storm-pressured until the controller also shrinks DDIO.
const KVS_DEPTH: usize = 8;
const NFV_DEPTH: usize = 9;
/// Pressure reads per victim packet.
const PRESSURE_READS: usize = 8;
/// Streaming thrash reads per antagonist packet.
const THRASH_READS: usize = 2;
/// Antagonist streaming buffer (4 MB: every read a fresh line).
const THRASH_BYTES: usize = 4 << 20;
/// Keys in the kvs tenant's store.
const STORE_KEYS: usize = 4096;

/// Victim inter-arrival gap (2 Mpps per victim tenant).
const VICTIM_GAP_NS: f64 = 500.0;
/// Antagonist gaps: quiet trickle vs. near-line-rate storm.
const ANT_QUIET_GAP_NS: f64 = 5_000.0;
const ANT_STORM_GAP_NS: f64 = 125.0;
/// Storm schedule in antagonist arrivals: 200 quiet (1 ms), then 4000
/// storm (0.5 ms), cycling.
const QUIET_ARRIVALS: u64 = 200;
const STORM_ARRIVALS: u64 = 4_000;

/// Control epoch.
pub const CONTROL_PERIOD_NS: f64 = 20_000.0;
/// Per-tenant p99 SLOs (antagonist is best-effort). Placed between the
/// healthy-path p99 and the pressured-path p99 measured at this
/// scenario's scales; see EXPERIMENTS.md for the calibration numbers.
pub const KVS_SLO_NS: f64 = 230.0;
pub const NFV_SLO_NS: f64 = 220.0;
/// Allocation floor: no tenant ever drops below 2 ways.
pub const FLOOR_WAYS: usize = 2;
const HYSTERESIS: u32 = 2;
const COOLDOWN: u32 = 3;
/// LlcFill events per epoch flagging a DMA storm. Measured at this
/// scenario's rates: storm epochs carry ~260–320 fills (DMA plus the
/// antagonist's streaming misses), quiet epochs ~10–70.
const DDIO_SPIKE_FILLS: u64 = 150;
const DDIO_CALM_EPOCHS: u32 = 25;
const DDIO_FULL: usize = 2;
const DDIO_MIN: usize = 1;

/// Which partitioning policy governs the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Fixed even split, controller monitor-only.
    StaticEven,
    /// Fixed hand-tuned split + DDIO 1, controller monitor-only.
    StaticOracle,
    /// The controller acts.
    Online,
}

impl Regime {
    /// Display name (stable across reports and goldens).
    pub fn name(self) -> &'static str {
        match self {
            Regime::StaticEven => "static-even",
            Regime::StaticOracle => "static-oracle",
            Regime::Online => "online",
        }
    }

    fn initial_ways(self) -> [usize; TENANTS] {
        match self {
            Regime::StaticOracle => ORACLE_WAYS,
            _ => EVEN_WAYS,
        }
    }

    fn initial_ddio(self) -> usize {
        match self {
            Regime::StaticOracle => DDIO_MIN,
            _ => DDIO_FULL,
        }
    }
}

/// Run configuration. The scenario (tenants, rates, storm schedule) is
/// fixed; this selects the regime, the scale and the engine modes.
#[derive(Debug, Clone)]
pub struct TenancyConfig {
    /// Partitioning regime.
    pub regime: Regime,
    /// Arrivals per *victim* tenant (the antagonist derives its own
    /// count from the shared horizon).
    pub packets: usize,
    /// Serial or parallel worker execution (bit-identical reports).
    pub execution: Execution,
    /// Event-driven or reference-tick scheduling (bit-identical
    /// reports).
    pub scheduler: Scheduler,
    /// Fault plan (composes with the storm chaos). Must not contain
    /// TX-stall windows — FIFO completion matching, as in
    /// `kvs::openloop`.
    pub faults: FaultPlan,
    /// RNG seed (request streams and pressure walks).
    pub seed: u64,
}

impl TenancyConfig {
    /// Baseline config for `packets` arrivals per victim under
    /// `regime`.
    pub fn new(regime: Regime, packets: usize) -> Self {
        Self {
            regime,
            packets,
            execution: Execution::Serial,
            scheduler: Scheduler::default(),
            faults: FaultPlan::none(),
            seed: 0x007e_4a47,
        }
    }
}

/// One tenant's slice of the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant display name.
    pub name: &'static str,
    /// Frames the harness offered for this tenant.
    pub offered: u64,
    /// Frames the NIC accepted.
    pub accepted: u64,
    /// Frames rejected at offer (NIC drops + faults).
    pub rejected: u64,
    /// Frames served with a response (== the engine group's delivered).
    pub served: u64,
    /// Served frames per second of simulated time, in Mpps.
    pub goodput_mpps: f64,
    /// p99 of the per-request sojourn latency over the whole run, ns.
    pub p99_ns: f64,
    /// The tenant's SLO (∞ for best-effort).
    pub slo_ns: f64,
    /// Simulated time the tenant's windowed p99 spent above SLO, ns
    /// (first-order hold over the control-epoch series).
    pub violation_ns: f64,
    /// CAT ways held at the end of the run.
    pub final_ways: usize,
    /// Smallest way count the tenant ever held (floor check).
    pub min_ways: usize,
}

/// The full run report.
#[derive(Debug, Clone, PartialEq)]
pub struct TenancyReport {
    /// Per-tenant results, tenant order.
    pub tenants: Vec<TenantReport>,
    /// Simulated run duration.
    pub duration_ns: f64,
    /// Control epochs observed.
    pub epochs: u64,
    /// Way moves the controller applied.
    pub moves: u64,
    /// DDIO shrink / restore actions.
    pub ddio_shrinks: u64,
    /// DDIO restores after calm.
    pub ddio_restores: u64,
    /// Epochs that recorded a typed `NoFeasiblePartition`.
    pub infeasible: u64,
    /// DDIO width at the end of the run.
    pub final_ddio: usize,
    /// Per tenant: the `(epoch ns, held window-p99 ns)` series the
    /// violation accounting ran over (input for
    /// [`xstats::violation_minutes`]).
    pub series: Vec<Vec<(f64, f64)>>,
    /// `(epoch ns, LlcFill delta)` per epoch — the storm-detection
    /// input.
    pub fills: Vec<(f64, u64)>,
    /// The engine's per-tenant ledgers (queue groups == tenants); each
    /// satisfies the conservation identity, and they sum to the
    /// aggregate (both asserted in [`engine::Engine::finish`]).
    pub per_group: Vec<engine::QueueLedger>,
}

/// Everything the control hook and the harness share: the per-queue
/// FIFO of accepted arrival times (the latency match), the latency
/// windows, and the controller itself.
struct RunShared {
    fifos: Vec<VecDeque<f64>>,
    windows: Vec<Vec<f64>>,
    all_latencies: Vec<Vec<f64>>,
    ctrl: IsolationController,
    fill_base: UncoreSnapshot,
    act: bool,
}

/// Matches drained outcome logs against the arrival FIFOs, in canonical
/// worker order — the same FIFO-matching contract as `kvs::openloop`.
fn drain_apps(apps: &mut [TenantApp<'_>], sh: &mut RunShared) {
    for (w, app) in apps.iter_mut().enumerate() {
        let log = std::mem::take(&mut app.outcomes);
        let tenant = app.tenant;
        for (t, ok) in log {
            let arr = sh.fifos[w]
                .pop_front()
                .expect("an outcome implies an accepted attempt at this queue's FIFO head");
            if ok {
                let lat = t - arr;
                sh.windows[tenant].push(lat);
                sh.all_latencies[tenant].push(lat);
            }
        }
    }
}

/// Tenant-order CAT masks for a width vector, stacked in
/// [`SEGMENT_ORDER`].
fn masks_from_ways(ways: &[usize], llc_ways: usize) -> [u64; TENANTS] {
    let mut masks = [0u64; TENANTS];
    let mut base = 0usize;
    for &t in &SEGMENT_ORDER {
        masks[t] = ((1u64 << ways[t]) - 1) << base;
        base += ways[t];
    }
    assert!(base <= llc_ways, "partition exceeds the LLC");
    masks
}

/// Installs a width vector + DDIO width on the machine.
fn apply_partition(m: &mut Machine, ways: &[usize], ddio: usize) {
    let masks = masks_from_ways(ways, m.config().llc_slice.ways);
    for (t, queues) in TENANT_QUEUES.iter().enumerate() {
        for &core in queues.iter() {
            m.set_cat_mask(core, masks[t]);
        }
    }
    m.set_ddio_ways(ddio);
}

/// Collects `depth` lines per slice, all mapping to LLC set index
/// `set`, from `region` (candidates recur every 2048 lines).
fn build_pressure_set(
    m: &Machine,
    region: &llc_sim::mem::Region,
    set: u64,
    depth: usize,
) -> Vec<PhysAddr> {
    let slices = m.config().slices;
    let sets = m.config().llc_slice.sets as u64;
    let mut per_slice: Vec<Vec<PhysAddr>> = vec![Vec::new(); slices];
    let base_line = region.base().line();
    let end_line = base_line + (region.len() as u64 >> 6);
    // First line in the region with the target set index.
    let mut line = base_line + ((set + sets - base_line % sets) % sets);
    while line < end_line {
        let pa = PhysAddr(line << 6);
        let s = m.slice_of(pa);
        if per_slice[s].len() < depth {
            per_slice[s].push(pa);
        }
        line += sets;
    }
    for (s, v) in per_slice.iter().enumerate() {
        assert_eq!(
            v.len(),
            depth,
            "slice {s}: region too small for a {depth}-deep pressure set"
        );
    }
    per_slice.into_iter().flatten().collect()
}

/// Runs the three-tenant chaos scenario under `cfg` and reports
/// per-tenant goodput, p99, SLO-violation time and the controller's
/// action ledger.
///
/// # Panics
///
/// Panics when the fault plan contains TX-stall windows, when a
/// conservation identity fails, or when the controller violates the
/// allocation floor.
pub fn run_tenancy(cfg: &TenancyConfig) -> TenancyReport {
    assert!(cfg.packets > 0, "empty run");
    assert!(
        cfg.faults.tx_stall.is_empty(),
        "tenancy completion matching requires a plan without TX-stall \
         windows (a TX-stalled frame is served but produces no response)"
    );

    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
    let sets = m.config().llc_slice.sets as u64;

    // Pool first: its geometry decides which set classes DMA recurs on.
    // Object size must be exactly 2 KB (32 lines) so frame starts land
    // on one set class per 32 — see the module docs.
    let mut pool = MbufPool::create(&mut m, 2048, 128, 1792).unwrap();
    assert_eq!(pool.obj_size(), 2048, "DMA set-class math needs 2 KB mbufs");
    let dma_line0 = pool.obj_base(0).add((MBUF_META_SIZE + 128) as u64).line();
    let dma_class = dma_line0 % 32;

    // Pressure sets: nfv *on* the DMA class (the leak victim), kvs 16
    // classes away (DMA-free capacity victim). Both clear of the first
    // 64 sets to stay away from other allocations' hot lines.
    let nfv_set = 64 + dma_class;
    let kvs_set = 64 + (dma_class + 16) % 32;
    let pressure_region = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
    let kvs_pressure = build_pressure_set(&m, &pressure_region, kvs_set % sets, KVS_DEPTH);
    let nfv_pressure = build_pressure_set(&m, &pressure_region, nfv_set % sets, NFV_DEPTH);

    let store_region = m.mem_mut().alloc(8 << 20, 1 << 20).unwrap();
    let h = llc_sim::hash::XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(store_region, move |pa| {
        llc_sim::hash::SliceHash::slice_of(&h, pa)
    });
    let store = KvStore::build(&mut m, &mut alloc, STORE_KEYS, Placement::Normal).unwrap();

    let thrash_region = m.mem_mut().alloc(THRASH_BYTES, 1 << 20).unwrap();
    let thrash_lines = (THRASH_BYTES >> 6) as u64;

    // Install the regime's starting partition, then warm each victim's
    // pressure set and the store under those masks so the run starts
    // from steady-state residency rather than cold misses.
    let initial_ways = cfg.regime.initial_ways();
    apply_partition(&mut m, &initial_ways, cfg.regime.initial_ddio());
    for &pa in &kvs_pressure {
        m.touch_read(0, pa);
    }
    for &pa in &nfv_pressure {
        m.touch_read(2, pa);
    }
    let mut scratch = [0u8; 64];
    for key in 0..STORE_KEYS as u32 {
        store.get(&mut m, 0, key, &mut scratch);
    }
    m.reset_clocks();
    m.reset_stats();
    m.uncore_mut().select(UncoreEvent::LlcFill);

    let queues = QUEUE_TENANT.len();
    let mut port = Port::new(0, Steering::Rss(Rss::new(queues)), 64);
    let mut policy = FixedHeadroom(128);
    let base_flow = FlowTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 11211);
    let flows: Vec<FlowTuple> = (0..queues)
        .map(|q| flow_for_queue(&mut port, base_flow, q))
        .collect();

    // KVS request streams: one per kvs queue, uniform keys, disjoint
    // key classes.
    let mut reqgens: Vec<RequestGen> = (0..2)
        .map(|qi| {
            let keygen = ZipfGen::new(
                (STORE_KEYS / 2) as u64,
                0.0,
                cfg.seed ^ (0x5eed + qi as u64),
            );
            RequestGen::new(keygen, 900, cfg.seed ^ (0xc11e + qi as u64))
                .with_flow(flows[qi])
                .with_key_partition(2, qi as u32)
        })
        .collect();

    let apps: Vec<TenantApp<'_>> = (0..queues)
        .map(|w| {
            let tenant = QUEUE_TENANT[w];
            let kind = match tenant {
                0 => TenantKind::Kvs,
                1 => TenantKind::Nfv,
                _ => TenantKind::Antagonist,
            };
            TenantApp {
                tenant,
                kind,
                store: (kind == TenantKind::Kvs).then_some(&store),
                pressure: match kind {
                    TenantKind::Kvs => kvs_pressure.clone(),
                    TenantKind::Nfv => nfv_pressure.clone(),
                    TenantKind::Antagonist => Vec::new(),
                },
                reads_per_packet: PRESSURE_READS,
                thrash: (kind == TenantKind::Antagonist).then_some((
                    thrash_region.base(),
                    thrash_lines,
                    0,
                )),
                thrash_per_packet: THRASH_READS,
                rng: (cfg.seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1,
                outcomes: Vec::new(),
                served_ok: 0,
                app_dropped: 0,
            }
        })
        .collect();

    let ecfg = EngineConfig {
        workers: WorkerSpec::run_to_completion(queues),
        queue_depth: 64,
        burst: 32,
        faults: cfg.faults.clone(),
        execution: cfg.execution,
        admission: AdmissionPolicy::AcceptAll,
        scheduler: cfg.scheduler,
    };
    let mut hw = Hw {
        m: &mut m,
        port: &mut port,
        pool: &mut pool,
        policy: &mut policy,
    };
    let mut eng = Engine::new(apps, ecfg, &mut hw);
    eng.set_queue_groups(QUEUE_TENANT.to_vec());

    let ctrl = IsolationController::new(
        ControllerConfig {
            slo_p99_ns: vec![KVS_SLO_NS, NFV_SLO_NS, f64::INFINITY],
            floor_ways: FLOOR_WAYS,
            hysteresis: HYSTERESIS,
            cooldown: COOLDOWN,
            ddio_spike_fills: DDIO_SPIKE_FILLS,
            ddio_calm_epochs: DDIO_CALM_EPOCHS,
            ddio_full: DDIO_FULL,
            ddio_min: DDIO_MIN,
        },
        initial_ways.to_vec(),
    );
    let shared = Rc::new(RefCell::new(RunShared {
        fifos: vec![VecDeque::new(); queues],
        windows: vec![Vec::new(); TENANTS],
        all_latencies: vec![Vec::new(); TENANTS],
        fill_base: hw.m.uncore().snapshot(),
        act: matches!(cfg.regime, Regime::Online),
        ctrl,
    }));

    // The control loop: drain the latency windows, poll the CBo fill
    // window, let the controller decide, apply. Runs at every control
    // boundary in both schedulers, at identical virtual times.
    let hook_shared = Rc::clone(&shared);
    eng.set_control_hook(
        CONTROL_PERIOD_NS,
        Box::new(
            move |apps: &mut [TenantApp<'_>], mc: &mut MergeCtx<'_>, t: f64| {
                let sh = &mut *hook_shared.borrow_mut();
                drain_apps(apps, sh);
                let p99: Vec<Option<f64>> = sh
                    .windows
                    .iter_mut()
                    .map(|w| Summary::from_samples(w.drain(..)).map(|s| s.percentile(99.0)))
                    .collect();
                let fill_delta: u64 = mc.m.uncore().read_window_all(&sh.fill_base).iter().sum();
                sh.fill_base = mc.m.uncore().snapshot();
                let actions = sh.ctrl.observe(t, &p99, fill_delta, sh.act);
                if !actions.is_empty() {
                    apply_partition(mc.m, sh.ctrl.ways(), sh.ctrl.ddio());
                }
            },
        ),
    );

    // Arrival event loop: one virtual-time queue interleaves the three
    // tenants' schedules (ties break by tenant id via sub-priority).
    let horizon_ns = cfg.packets as f64 * VICTIM_GAP_NS;
    let mut ant_gaps = PhasedGaps::new(
        PhaseSchedule::cycling(vec![
            Phase::new(QUIET_ARRIVALS, 0),
            Phase::new(STORM_ARRIVALS, 0),
        ]),
        vec![ANT_QUIET_GAP_NS, ANT_STORM_GAP_NS],
    );
    let mut events: DelayedQueue<usize> = DelayedQueue::new();
    events.push_sub(time_key(VICTIM_GAP_NS), 0, 0);
    events.push_sub(time_key(VICTIM_GAP_NS), 1, 1);
    let ant_first = ant_gaps.next_arrival_ns();
    if ant_first <= horizon_ns {
        events.push_sub(time_key(ant_first), 2, 2);
    }

    let mut offered = [0u64; TENANTS];
    let mut accepted = [0u64; TENANTS];
    let mut rejected = [0u64; TENANTS];
    let mut issued = [0u64; TENANTS];
    let mut frame = vec![0u8; REQUEST_SIZE];
    let mut seq = 0u64;
    while let Some((key, tenant)) = events.pop() {
        let t = time_of_key(key);
        let lanes = TENANT_QUEUES[tenant];
        let q = lanes[(issued[tenant] as usize) % lanes.len()];
        nfv::packet::encode_frame(&mut frame, &flows[q], REQUEST_SIZE, t, seq);
        seq += 1;
        if tenant == 0 {
            let req = reqgens[q].next_request();
            kvs::proto::write_request(&mut frame, &req);
        }
        offered[tenant] += 1;
        issued[tenant] += 1;
        let res = eng.offer(&mut hw, &flows[q], &frame, t);
        match res {
            Ok(_) => {
                accepted[tenant] += 1;
                shared.borrow_mut().fifos[q].push_back(t);
            }
            Err(_) => rejected[tenant] += 1,
        }
        // Schedule this tenant's next arrival.
        if tenant < 2 {
            if issued[tenant] < cfg.packets as u64 {
                let tn = (issued[tenant] + 1) as f64 * VICTIM_GAP_NS;
                events.push_sub(time_key(tn), tenant as u64, tenant);
            }
        } else {
            let tn = ant_gaps.next_arrival_ns();
            if tn <= horizon_ns {
                events.push_sub(time_key(tn), 2, 2);
            }
        }
    }

    // Fire the remaining control boundaries (so the last windows reach
    // the series), then drain in-flight work.
    let t_final = (horizon_ns / CONTROL_PERIOD_NS).ceil() * CONTROL_PERIOD_NS + CONTROL_PERIOD_NS;
    eng.run_until(&mut hw, t_final);
    eng.drain(&mut hw);

    let (rep, mut apps) = eng.finish(&mut hw);
    assert_eq!(rep.in_flight, 0, "drained run leaves nothing in flight");
    assert_eq!(rep.carried, 0, "fresh port carries nothing in");
    {
        let sh = &mut *shared.borrow_mut();
        drain_apps(&mut apps, sh);
        for (q, fifo) in sh.fifos.iter().enumerate() {
            assert!(
                fifo.is_empty(),
                "queue {q}: {} accepted frames never produced an outcome",
                fifo.len()
            );
        }
        sh.ctrl.finalize(rep.duration_ns.max(t_final));
    }

    // Cross-check the harness's per-tenant ledger against the engine's
    // per-group one (the groups are the tenants).
    assert_eq!(rep.per_group.len(), TENANTS, "one ledger group per tenant");
    let mut served = [0u64; TENANTS];
    for a in &apps {
        served[a.tenant] += a.served_ok;
    }
    for t in 0..TENANTS {
        assert_eq!(
            rep.per_group[t].offered, offered[t],
            "tenant {t}: engine group ledger disagrees with the harness"
        );
        assert_eq!(rep.per_group[t].delivered, served[t]);
    }

    let shared = Rc::try_unwrap(shared)
        .unwrap_or_else(|_| panic!("the hook's shared handle is gone after finish"))
        .into_inner();
    let final_ways = shared.ctrl.ways().to_vec();
    let final_ddio = shared.ctrl.ddio();
    let all_latencies = shared.all_latencies;
    let log = shared.ctrl.log;
    let slos = [KVS_SLO_NS, NFV_SLO_NS, f64::INFINITY];
    let tenants: Vec<TenantReport> = (0..TENANTS)
        .map(|t| {
            let p99 = Summary::from_samples(all_latencies[t].iter().copied())
                .map_or(0.0, |s| s.percentile(99.0));
            TenantReport {
                name: NAMES[t],
                offered: offered[t],
                accepted: accepted[t],
                rejected: rejected[t],
                served: served[t],
                goodput_mpps: if rep.duration_ns > 0.0 {
                    served[t] as f64 / (rep.duration_ns / 1e9) / 1e6
                } else {
                    0.0
                },
                p99_ns: p99,
                slo_ns: slos[t],
                violation_ns: slo_violation_ns(&log.series[t], slos[t]),
                final_ways: final_ways[t],
                min_ways: log.min_ways_seen[t],
            }
        })
        .collect();

    TenancyReport {
        tenants,
        duration_ns: rep.duration_ns,
        epochs: log.epochs,
        moves: log.moves,
        ddio_shrinks: log.ddio_shrinks,
        ddio_restores: log.ddio_restores,
        infeasible: log.infeasible,
        final_ddio,
        series: log.series,
        fills: log.fills,
        per_group: rep.per_group,
    }
}
