//! The per-worker tenant applications and the phased noisy-neighbour
//! arrival process.
//!
//! Three tenant kinds share the engine:
//!
//! * [`TenantKind::Kvs`] — a memcached-style instance: each request is
//!   parsed and served through [`kvs::server::serve_packet`] against
//!   the tenant's own store, preceded by an index hash-chain walk over
//!   the tenant's *pressure set* (below).
//! * [`TenantKind::Nfv`] — a forwarding chain:
//!   [`nfv::packet::parse_header`], a flow-state walk over its pressure
//!   set, then TTL decrement and MAC swap.
//! * [`TenantKind::Antagonist`] — the noisy neighbour: minimal
//!   per-packet work plus a streaming read over a large private buffer
//!   (every read a fresh line → a DRAM fetch and an LLC fill). Its
//!   *damage* does not come from these reads — CAT confines them — but
//!   from its arrival rate: every accepted frame is DMA-placed through
//!   DDIO into the shared I/O ways, washing whatever victim lines live
//!   there. The storm windows come from [`PhasedGaps`].
//!
//! # Pressure sets
//!
//! A tenant's cache hunger is modelled the way the paper builds its
//! eviction sets (§3): a fixed population of lines that all map to
//! *one LLC set index* (one set per slice, `depth` lines deep in each
//! of the 8 slices), accessed in uniform-random order. Random order —
//! not a cyclic sweep — matters: LRU plus a cyclic sweep is a cliff
//! (one foreign insertion makes every later access miss forever),
//! while random access degrades smoothly with the ways actually
//! available, which is the signal a latency controller can steer on.
//! Because all lines share a set index, "fits" is decided by the
//! tenant's CAT way count alone, so a one-way grant moves the needle
//! within a couple of control epochs instead of after megabytes of
//! refills.

use engine::{Ctx, QueueApp, Verdict};
use kvs::server::{serve_packet, Served};
use kvs::store::KvStore;
use llc_sim::{PhysAddr, CACHE_LINE};
use rte::nic::{RxCompletion, TxDesc};
use trafficgen::PhaseSchedule;

/// Which service a worker runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantKind {
    /// KVS instance (uses the shared per-tenant store).
    Kvs,
    /// NFV forwarding chain.
    Nfv,
    /// Cache-thrashing noisy neighbour.
    Antagonist,
}

/// One worker's application state. Workers of the same tenant share
/// the tenant's pressure-set *addresses* (cloned, read-only) but own
/// their RNG, so the combined reference stream is deterministic.
pub struct TenantApp<'s> {
    /// Owning tenant id.
    pub tenant: usize,
    /// Service kind.
    pub kind: TenantKind,
    /// The tenant's store (KVS workers only).
    pub store: Option<&'s KvStore>,
    /// The tenant's pressure-set lines (empty for the antagonist).
    pub pressure: Vec<PhysAddr>,
    /// Pressure reads per packet.
    pub reads_per_packet: usize,
    /// Streaming-thrash region `(base, lines, cursor)` (antagonist).
    pub thrash: Option<(PhysAddr, u64, u64)>,
    /// Thrash reads per packet.
    pub thrash_per_packet: usize,
    /// xorshift64 state for the random pressure walk.
    pub rng: u64,
    /// One `(serve-completion ns, responded)` entry per delivered
    /// frame, in processing order — drained by the control hook and
    /// matched against the harness's per-queue arrival FIFO.
    pub outcomes: Vec<(f64, bool)>,
    /// Frames that produced a response.
    pub served_ok: u64,
    /// Frames dropped in the app (parse/serve failures).
    pub app_dropped: u64,
}

impl TenantApp<'_> {
    fn next_rand(&mut self) -> u64 {
        // xorshift64: cheap, full-period, deterministic.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// The random pressure-set walk (the tenant's index/flow-state
    /// lookups): `reads_per_packet` dependent loads over the set.
    fn pressure_walk(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..self.reads_per_packet {
            let i = (self.next_rand() % self.pressure.len() as u64) as usize;
            let pa = self.pressure[i];
            ctx.m.touch_read(ctx.core, pa);
        }
    }
}

impl QueueApp for TenantApp<'_> {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, comp: &RxCompletion) -> Verdict {
        let (hdr, _) = nfv::packet::parse_header(ctx.m, ctx.core, comp.data_pa, comp.len.into());
        if hdr.is_none() {
            self.app_dropped += 1;
            self.outcomes.push((ctx.wall_ns(), false));
            return Verdict::Drop;
        }
        if !self.pressure.is_empty() {
            self.pressure_walk(ctx);
        }
        let verdict = match self.kind {
            TenantKind::Kvs => {
                let store = self.store.expect("a KVS tenant carries its store");
                let (outcome, _) = serve_packet(store, None, ctx, comp);
                match outcome {
                    Served::Ok { .. } => Verdict::Tx(TxDesc {
                        mbuf: comp.mbuf,
                        data_pa: comp.data_pa,
                        len: comp.len,
                    }),
                    _ => Verdict::Drop,
                }
            }
            TenantKind::Nfv => {
                nfv::packet::decrement_ttl(ctx.m, ctx.core, comp.data_pa);
                nfv::packet::mac_swap(ctx.m, ctx.core, comp.data_pa);
                Verdict::Tx(TxDesc {
                    mbuf: comp.mbuf,
                    data_pa: comp.data_pa,
                    len: comp.len,
                })
            }
            TenantKind::Antagonist => {
                if let Some((base, lines, cursor)) = self.thrash.as_mut() {
                    // Streaming reads: every line fresh, every one a
                    // fill — confined to the antagonist's CAT ways.
                    for _ in 0..self.thrash_per_packet {
                        let pa = base.add(*cursor * CACHE_LINE as u64);
                        ctx.m.touch_read(ctx.core, pa);
                        *cursor = (*cursor + 1) % *lines;
                    }
                }
                nfv::packet::mac_swap(ctx.m, ctx.core, comp.data_pa);
                Verdict::Tx(TxDesc {
                    mbuf: comp.mbuf,
                    data_pa: comp.data_pa,
                    len: comp.len,
                })
            }
        };
        let ok = matches!(verdict, Verdict::Tx(_));
        if ok {
            self.served_ok += 1;
        } else {
            self.app_dropped += 1;
        }
        self.outcomes.push((ctx.wall_ns(), ok));
        verdict
    }
}

/// The noisy neighbour's arrival process: a constant-gap stream whose
/// gap switches with the phase of a [`trafficgen::PhaseSchedule`]
/// (indexed by arrival count, so the storm windows are a deterministic
/// function of the schedule alone). Quiet phases trickle; storm phases
/// arrive at near line rate, and every *accepted* storm frame is a
/// DDIO fill — that is the chaos injection.
#[derive(Debug, Clone)]
pub struct PhasedGaps {
    sched: PhaseSchedule,
    /// Inter-arrival gap (ns) per schedule phase index.
    gaps: Vec<f64>,
    idx: u64,
    t_ns: f64,
}

impl PhasedGaps {
    /// Gaps `gaps_ns[p]` for arrivals falling in schedule phase `p`.
    ///
    /// # Panics
    ///
    /// Panics when the gap list does not match the schedule's phase
    /// count or a gap is not positive.
    pub fn new(sched: PhaseSchedule, gaps_ns: Vec<f64>) -> Self {
        assert_eq!(sched.phases().len(), gaps_ns.len(), "one gap per phase");
        assert!(gaps_ns.iter().all(|&g| g > 0.0 && g.is_finite()));
        Self {
            sched,
            gaps: gaps_ns,
            idx: 0,
            t_ns: 0.0,
        }
    }

    /// The time of the next arrival without consuming it.
    pub fn peek_next_ns(&self) -> f64 {
        self.t_ns + self.gaps[self.sched.phase_at(self.idx)]
    }

    /// Consumes and returns the next arrival time.
    pub fn next_arrival_ns(&mut self) -> f64 {
        self.t_ns = self.peek_next_ns();
        self.idx += 1;
        self.t_ns
    }

    /// How many arrivals have been consumed so far.
    pub fn arrivals_emitted(&self) -> u64 {
        self.idx
    }
}
