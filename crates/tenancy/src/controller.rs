//! The online isolation controller: a closed loop over simulated CBo
//! counters and per-tenant SLO trackers that re-partitions CAT ways and
//! DDIO ways while the engine runs.
//!
//! The controller is deliberately split from the harness: this module
//! holds the pure *decision* logic — a function of the observations fed
//! to [`IsolationController::observe`] and nothing else — while
//! [`crate::run`] feeds it from the engine's control hook and applies
//! the returned [`ControlAction`]s to the machine. Purity is what makes
//! the loop deterministic across schedulers and execution modes: the
//! observations (windowed latency percentiles, uncore fill deltas) are
//! bit-identical in every mode, so the decision sequence is too.
//!
//! The policy mirrors what §8 of the paper suggests an operator should
//! do by hand, closed over the monitoring loop of §5:
//!
//! * **Pressure detection.** A tenant is *pressured* when its windowed
//!   p99 exceeds its SLO. One noisy window does nothing: a steal needs
//!   `hysteresis` consecutive pressured windows, and after every steal
//!   the loop holds off for `cooldown` epochs so the grant has time to
//!   show up in the next windows before the controller reacts again.
//! * **Way stealing.** One way moves per action, from the widest
//!   non-pressured donor above the floor (ties to the lowest tenant id)
//!   to the most pressured victim (largest p99/SLO ratio, ties to the
//!   lowest id). No tenant is ever pushed below `floor_ways`:
//!   degradation is graceful, never starvation.
//! * **DDIO defense.** A fill-rate spike over the control epoch (the
//!   CBo `LlcFill` window) while some tenant is pressured is the
//!   signature of a DMA storm washing the I/O ways; the controller
//!   shrinks DDIO to `ddio_min` ways and restores `ddio_full` only
//!   after `ddio_calm_epochs` consecutive calm windows.
//! * **Infeasibility.** When a victim has earned a grant but no donor
//!   exists (everyone else is pressured or at the floor), the epoch
//!   records a typed [`ControlError::NoFeasiblePartition`] and the
//!   partition stays untouched — the controller never makes one tenant
//!   worse to paper over another.

use std::fmt;

/// Why a control epoch could not improve the partition.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// A victim earned a re-partition but every potential donor is
    /// itself pressured or already at the allocation floor.
    NoFeasiblePartition {
        /// Virtual time of the control epoch.
        t_ns: f64,
        /// The pressured tenant that could not be helped.
        victim: usize,
    },
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::NoFeasiblePartition { t_ns, victim } => write!(
                f,
                "no feasible partition at t={t_ns} ns: tenant {victim} is \
                 pressured but every donor is pressured or at the floor"
            ),
        }
    }
}

impl std::error::Error for ControlError {}

/// One partition change the harness must apply to the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlAction {
    /// Move one CAT way from `from`'s segment to `to`'s segment.
    MoveWay {
        /// Donor tenant.
        from: usize,
        /// Receiving tenant.
        to: usize,
    },
    /// Reprogram the DDIO window to `ways` ways.
    SetDdio {
        /// New DDIO width.
        ways: usize,
    },
}

/// Tuning knobs for the control loop. All thresholds are in the units
/// the observations arrive in (ns for latency, fill events per epoch
/// for the uncore window).
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Per-tenant p99 SLO in ns; `f64::INFINITY` marks a best-effort
    /// tenant that is never considered pressured (and therefore makes
    /// an ideal donor).
    pub slo_p99_ns: Vec<f64>,
    /// No tenant's way count ever drops below this.
    pub floor_ways: usize,
    /// Consecutive pressured windows before a tenant earns a steal.
    pub hysteresis: u32,
    /// Epochs the way-steal arm stays quiet after a move.
    pub cooldown: u32,
    /// LlcFill events per epoch above which the epoch counts as a DMA
    /// storm (for the DDIO arm).
    pub ddio_spike_fills: u64,
    /// Consecutive calm epochs before DDIO is restored.
    pub ddio_calm_epochs: u32,
    /// DDIO width when unthreatened (the hardware default).
    pub ddio_full: usize,
    /// DDIO width under storm defense.
    pub ddio_min: usize,
}

/// Everything the controller did, for reports and assertions.
#[derive(Debug, Clone, Default)]
pub struct ControlLog {
    /// Control epochs observed.
    pub epochs: u64,
    /// Way moves applied.
    pub moves: u64,
    /// DDIO shrink actions.
    pub ddio_shrinks: u64,
    /// DDIO restore actions.
    pub ddio_restores: u64,
    /// Epochs that recorded [`ControlError::NoFeasiblePartition`].
    pub infeasible: u64,
    /// Smallest way count each tenant was ever left with.
    pub min_ways_seen: Vec<usize>,
    /// Per tenant: `(epoch time ns, held window p99 ns)` — the series
    /// [`xstats::slo_violation_ns`] runs over. First-order hold: an
    /// empty window holds the previous value.
    pub series: Vec<Vec<(f64, f64)>>,
    /// `(epoch time ns, LlcFill delta)` per epoch — the storm-detection
    /// input, kept for calibration and reports.
    pub fills: Vec<(f64, u64)>,
    /// Every typed error, in epoch order.
    pub errors: Vec<ControlError>,
}

/// The closed-loop controller state. See the module docs for the
/// policy; [`IsolationController::observe`] is the whole interface.
#[derive(Debug)]
pub struct IsolationController {
    cfg: ControllerConfig,
    ways: Vec<usize>,
    ddio: usize,
    /// Held (last non-empty-window) p99 per tenant; starts at 0 so an
    /// idle tenant reads as unpressured.
    held_p99: Vec<f64>,
    streak: Vec<u32>,
    cooldown_left: u32,
    calm_epochs: u32,
    /// The actions applied, counters, series — the run's evidence.
    pub log: ControlLog,
}

impl IsolationController {
    /// A controller starting from `initial_ways` (tenant order) and
    /// `cfg.ddio_full` DDIO ways.
    ///
    /// # Panics
    ///
    /// Panics when the tenant counts of `initial_ways` and the SLO list
    /// disagree, or an initial allocation is already below the floor.
    pub fn new(cfg: ControllerConfig, initial_ways: Vec<usize>) -> Self {
        assert_eq!(
            cfg.slo_p99_ns.len(),
            initial_ways.len(),
            "one SLO per tenant"
        );
        assert!(
            initial_ways.iter().all(|&w| w >= cfg.floor_ways),
            "initial partition must respect the floor"
        );
        assert!(cfg.ddio_min >= 1 && cfg.ddio_min <= cfg.ddio_full);
        let n = initial_ways.len();
        let ddio = cfg.ddio_full;
        Self {
            log: ControlLog {
                min_ways_seen: initial_ways.clone(),
                series: vec![Vec::new(); n],
                ..ControlLog::default()
            },
            held_p99: vec![0.0; n],
            streak: vec![0; n],
            cooldown_left: 0,
            calm_epochs: 0,
            ways: initial_ways,
            ddio,
            cfg,
        }
    }

    /// Current way partition, tenant order.
    pub fn ways(&self) -> &[usize] {
        &self.ways
    }

    /// Current DDIO width.
    pub fn ddio(&self) -> usize {
        self.ddio
    }

    /// One control epoch at virtual time `t_ns`: feeds the window p99
    /// per tenant (`None` = empty window, holds the previous value) and
    /// the epoch's total LlcFill delta, and returns the actions to
    /// apply. With `act == false` the controller only *monitors* —
    /// identical series bookkeeping, no decisions — which is how the
    /// static regimes get violation accounting on the exact same
    /// sampling grid as the online one.
    pub fn observe(
        &mut self,
        t_ns: f64,
        window_p99: &[Option<f64>],
        fill_delta: u64,
        act: bool,
    ) -> Vec<ControlAction> {
        assert_eq!(window_p99.len(), self.ways.len(), "one window per tenant");
        self.log.epochs += 1;
        for (i, w) in window_p99.iter().enumerate() {
            if let Some(p) = *w {
                assert!(p.is_finite() && p >= 0.0, "latency windows are clean");
                self.held_p99[i] = p;
            }
            self.log.series[i].push((t_ns, self.held_p99[i]));
        }
        self.log.fills.push((t_ns, fill_delta));
        if !act {
            return Vec::new();
        }

        let pressured: Vec<bool> = self
            .held_p99
            .iter()
            .zip(&self.cfg.slo_p99_ns)
            .map(|(&p, &slo)| p > slo)
            .collect();
        for (s, &p) in self.streak.iter_mut().zip(&pressured) {
            *s = if p { *s + 1 } else { 0 };
        }

        let mut actions = Vec::new();

        // DDIO arm: shrink on a storm that coincides with SLO pressure,
        // restore only after a sustained calm.
        let storm = fill_delta > self.cfg.ddio_spike_fills;
        self.calm_epochs = if storm { 0 } else { self.calm_epochs + 1 };
        if storm && pressured.iter().any(|&p| p) && self.ddio > self.cfg.ddio_min {
            self.ddio = self.cfg.ddio_min;
            self.log.ddio_shrinks += 1;
            actions.push(ControlAction::SetDdio { ways: self.ddio });
        } else if !storm
            && self.ddio < self.cfg.ddio_full
            && self.calm_epochs >= self.cfg.ddio_calm_epochs
        {
            self.ddio = self.cfg.ddio_full;
            self.log.ddio_restores += 1;
            actions.push(ControlAction::SetDdio { ways: self.ddio });
        }

        // Way-steal arm.
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
        } else if let Some(victim) = self.most_pressured() {
            if let Some(donor) = self.best_donor(victim, &pressured) {
                self.ways[donor] -= 1;
                self.ways[victim] += 1;
                self.streak[victim] = 0;
                self.cooldown_left = self.cfg.cooldown;
                self.log.moves += 1;
                actions.push(ControlAction::MoveWay {
                    from: donor,
                    to: victim,
                });
            } else {
                self.log.infeasible += 1;
                self.log
                    .errors
                    .push(ControlError::NoFeasiblePartition { t_ns, victim });
            }
        }

        for (seen, &w) in self.log.min_ways_seen.iter_mut().zip(&self.ways) {
            *seen = (*seen).min(w);
            assert!(w >= self.cfg.floor_ways, "the floor is inviolable");
        }
        actions
    }

    /// Closes the series at `t_ns` (the run's end) by appending one
    /// final point per tenant with the held value, so the first-order-
    /// hold violation integral covers the tail between the last control
    /// epoch and the end of the run.
    ///
    /// # Panics
    ///
    /// Panics when `t_ns` precedes an already-recorded epoch.
    pub fn finalize(&mut self, t_ns: f64) {
        for (i, series) in self.log.series.iter_mut().enumerate() {
            if let Some(&(last_t, _)) = series.last() {
                assert!(t_ns >= last_t, "finalize must not rewind the series");
            }
            series.push((t_ns, self.held_p99[i]));
        }
    }

    /// The tenant that has earned a grant: `hysteresis` consecutive
    /// pressured windows, largest p99/SLO overshoot, ties to the lowest
    /// id (strictly-greater comparison keeps the scan deterministic).
    fn most_pressured(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for i in 0..self.ways.len() {
            if self.streak[i] < self.cfg.hysteresis {
                continue;
            }
            let ratio = self.held_p99[i] / self.cfg.slo_p99_ns[i];
            match best {
                Some(b) if self.held_p99[b] / self.cfg.slo_p99_ns[b] >= ratio => {}
                _ => best = Some(i),
            }
        }
        best
    }

    /// The donor for a grant: never the victim, never a pressured
    /// tenant, never anyone at the floor. Among the eligible,
    /// best-effort tenants (infinite SLO) are preferred over SLO-bound
    /// ones — an SLO tenant's headroom is borrowed only when no
    /// best-effort capacity is left — then the widest, ties to the
    /// lowest id.
    fn best_donor(&self, victim: usize, pressured: &[bool]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, &p) in pressured.iter().enumerate() {
            if i == victim || p || self.ways[i] <= self.cfg.floor_ways {
                continue;
            }
            let cand = (self.cfg.slo_p99_ns[i].is_infinite(), self.ways[i]);
            match best {
                Some(b) if (self.cfg.slo_p99_ns[b].is_infinite(), self.ways[b]) >= cand => {}
                _ => best = Some(i),
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg3() -> ControllerConfig {
        ControllerConfig {
            slo_p99_ns: vec![200.0, 250.0, f64::INFINITY],
            floor_ways: 2,
            hysteresis: 2,
            cooldown: 3,
            ddio_spike_fills: 1_000,
            ddio_calm_epochs: 4,
            ddio_full: 2,
            ddio_min: 1,
        }
    }

    fn ctrl() -> IsolationController {
        IsolationController::new(cfg3(), vec![7, 7, 6])
    }

    #[test]
    fn hysteresis_delays_the_steal_and_a_calm_window_resets_it() {
        let mut c = ctrl();
        // One pressured window: nothing (streak 1 < hysteresis 2).
        assert!(c
            .observe(1.0, &[Some(300.0), Some(100.0), None], 0, true)
            .is_empty());
        // A calm window resets the streak.
        assert!(c
            .observe(2.0, &[Some(150.0), Some(100.0), None], 0, true)
            .is_empty());
        assert!(c
            .observe(3.0, &[Some(300.0), Some(100.0), None], 0, true)
            .is_empty());
        // Second consecutive pressured window: the steal fires. Tenants
        // 1 (7 ways, SLO-bound) and 2 (6 ways, best-effort) are both
        // eligible; the best-effort tenant donates even though it is
        // narrower.
        let acts = c.observe(4.0, &[Some(300.0), Some(100.0), None], 0, true);
        assert_eq!(acts, vec![ControlAction::MoveWay { from: 2, to: 0 }]);
        assert_eq!(c.ways(), &[8, 7, 5]);
        // Cooldown: the next `cooldown` epochs stay quiet even under
        // sustained pressure.
        for k in 0..3 {
            assert!(
                c.observe(5.0 + k as f64, &[Some(300.0), Some(100.0), None], 0, true)
                    .is_empty(),
                "epoch {k} inside the cooldown must not act"
            );
        }
        // Cooldown over (and the streak re-earned): acts again.
        let acts = c.observe(9.0, &[Some(300.0), Some(100.0), None], 0, true);
        assert_eq!(acts, vec![ControlAction::MoveWay { from: 2, to: 0 }]);
    }

    #[test]
    fn donor_ties_break_to_the_lowest_id_and_the_floor_is_never_crossed() {
        let mut c = IsolationController::new(cfg3(), vec![2, 9, 9]);
        // Tenant 0 pressured; donors 1 (SLO-bound) and 2 (best-effort)
        // tie at 9 ways → the best-effort tenant donates.
        c.observe(1.0, &[Some(300.0), Some(100.0), None], 0, true);
        let acts = c.observe(2.0, &[Some(300.0), Some(100.0), None], 0, true);
        assert_eq!(acts, vec![ControlAction::MoveWay { from: 2, to: 0 }]);
        // With the best-effort pool exhausted (floor), the SLO-bound
        // donor is next: drop tenant 2 to the floor and press again.
        let mut c = IsolationController::new(cfg3(), vec![2, 9, 2]);
        c.observe(1.0, &[Some(300.0), Some(100.0), None], 0, true);
        let acts = c.observe(2.0, &[Some(300.0), Some(100.0), None], 0, true);
        assert_eq!(acts, vec![ControlAction::MoveWay { from: 1, to: 0 }]);
        // Drain tenant 2 down to the floor: it must never cross it.
        let mut c = IsolationController::new(cfg3(), vec![2, 17, 3]);
        for t in 0..40 {
            c.observe(t as f64, &[Some(300.0), Some(300.0), None], 0, true);
        }
        assert!(c.ways()[2] >= 2, "donor drained below the floor");
        assert!(c.log.min_ways_seen.iter().all(|&w| w >= 2));
    }

    #[test]
    fn no_feasible_partition_is_typed_not_applied() {
        // Both victims pressured, best-effort tenant at the floor:
        // nothing can move.
        let mut c = IsolationController::new(cfg3(), vec![9, 9, 2]);
        c.observe(1.0, &[Some(300.0), Some(400.0), None], 0, true);
        let acts = c.observe(2.0, &[Some(300.0), Some(400.0), None], 0, true);
        assert!(acts.is_empty());
        assert_eq!(c.log.infeasible, 1);
        assert_eq!(c.ways(), &[9, 9, 2], "partition untouched on error");
        match &c.log.errors[0] {
            ControlError::NoFeasiblePartition { victim, .. } => {
                // Tenant 1 overshoots harder (400/250 > 300/200).
                assert_eq!(*victim, 1);
            }
        }
    }

    #[test]
    fn ddio_shrinks_on_a_pressured_storm_and_restores_after_calm() {
        let mut c = ctrl();
        // Storm without pressure: no shrink (nothing to defend).
        assert!(c
            .observe(1.0, &[Some(100.0), Some(100.0), None], 50_000, true)
            .is_empty());
        // Storm + pressure: shrink.
        let acts = c.observe(2.0, &[Some(300.0), Some(100.0), None], 50_000, true);
        assert_eq!(acts, vec![ControlAction::SetDdio { ways: 1 }]);
        assert_eq!(c.ddio(), 1);
        // Calm epochs: restore only after `ddio_calm_epochs` in a row.
        // (Latencies kept clean so the way arm stays quiet.)
        for t in 3..6 {
            let acts = c.observe(t as f64, &[Some(100.0), Some(100.0), None], 0, true);
            assert!(acts.is_empty(), "restored after only {} calm epochs", t - 2);
        }
        let acts = c.observe(6.0, &[Some(100.0), Some(100.0), None], 0, true);
        assert_eq!(acts, vec![ControlAction::SetDdio { ways: 2 }]);
        assert_eq!(c.log.ddio_shrinks, 1);
        assert_eq!(c.log.ddio_restores, 1);
    }

    #[test]
    fn monitor_only_records_the_series_but_never_acts() {
        let mut c = ctrl();
        for t in 0..10 {
            let acts = c.observe(t as f64, &[Some(900.0), Some(900.0), None], 50_000, false);
            assert!(acts.is_empty());
        }
        assert_eq!(c.log.epochs, 10);
        assert_eq!(c.log.moves + c.log.ddio_shrinks + c.log.infeasible, 0);
        assert_eq!(c.ways(), &[7, 7, 6]);
        // The series recorded every epoch with the held value.
        assert_eq!(c.log.series[0].len(), 10);
        assert!(c.log.series[0].iter().all(|&(_, p)| p == 900.0));
        // An empty window holds: tenant 2 saw no samples, held 0.
        assert!(c.log.series[2].iter().all(|&(_, p)| p == 0.0));
    }
}
