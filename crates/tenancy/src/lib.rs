//! Multi-tenant SLO defense: an online LLC isolation controller under
//! noisy-neighbour chaos.
//!
//! The paper's isolation story (§5–§8) is static: measure, choose a
//! slice/CAT/DDIO partition, pin it. This crate closes the loop. N
//! tenants — a KVS instance, an NFV chain, and a cache-thrashing
//! antagonist — share one simulated socket, each with its own queues,
//! key/flow space and p99 SLO. A controller polls the simulated CBo
//! occupancy/fill counters and per-tenant latency windows on a fixed
//! control epoch and re-partitions CAT ways and DDIO ways *online*,
//! with hysteresis, a per-tenant allocation floor (graceful
//! degradation, never starvation) and a typed error when no feasible
//! partition exists.
//!
//! * [`controller`] — the pure decision logic ([`IsolationController`])
//!   and its typed error ([`ControlError`]).
//! * [`apps`] — the per-worker tenant services and the phased
//!   noisy-neighbour arrival process ([`PhasedGaps`]).
//! * [`run`] — the chaos harness: scenario, control hook, reports.
//!
//! Everything is deterministic: [`run::run_tenancy`] reports are
//! bit-identical across schedulers and execution modes.

pub mod apps;
pub mod controller;
pub mod run;

pub use apps::{PhasedGaps, TenantApp, TenantKind};
pub use controller::{
    ControlAction, ControlError, ControlLog, ControllerConfig, IsolationController,
};
pub use run::{run_tenancy, Regime, TenancyConfig, TenancyReport, TenantReport};
