//! The multi-tenant SLO-defense battery: the online controller must
//! strictly beat the static even split for every victim tenant, never
//! starve anyone, stay bit-identical across schedulers and execution
//! modes, and compose with injected NIC faults.

use engine::{Execution, Scheduler};
use rte::fault::{FaultPlan, Window};
use tenancy::run::{run_tenancy, Regime, TenancyConfig, FLOOR_WAYS};

/// Arrivals per victim tenant. ~10 ms of simulated time: six full
/// quiet/storm cycles, enough for the controller to converge and then
/// ride out several storms at steady state.
const BATTERY: usize = 20_000;
/// The CI-speed scale (~3 ms, two storms).
const SMOKE: usize = 6_000;

#[test]
fn online_controller_strictly_beats_static_even_for_every_victim() {
    let even = run_tenancy(&TenancyConfig::new(Regime::StaticEven, BATTERY));
    let online = run_tenancy(&TenancyConfig::new(Regime::Online, BATTERY));
    let oracle = run_tenancy(&TenancyConfig::new(Regime::StaticOracle, BATTERY));

    // The static even split loses both victims: the KVS tenant is
    // under-provisioned around the clock and the NFV tenant is washed
    // by DDIO churn — the scenario is a real threat, not a strawman.
    for t in &even.tenants[..2] {
        assert!(
            t.violation_ns > even.duration_ns * 0.5,
            "{}: static-even should violate most of the run, got {} of {} ns",
            t.name,
            t.violation_ns,
            even.duration_ns
        );
    }

    // The acceptance bar: online SLO-violation time strictly below
    // static-even for EVERY victim tenant.
    for (on, ev) in online.tenants[..2].iter().zip(&even.tenants[..2]) {
        assert!(
            on.violation_ns < ev.violation_ns,
            "{}: online {} ns must be strictly below static-even {} ns",
            on.name,
            on.violation_ns,
            ev.violation_ns
        );
        // And not marginally: convergence takes a bounded prefix of the
        // run, so the defended victim spends < 10% of the even split's
        // violation time above SLO.
        assert!(
            on.violation_ns < ev.violation_ns / 10.0,
            "{}: online {} ns should be an order of magnitude below \
             static-even {} ns",
            on.name,
            on.violation_ns,
            ev.violation_ns
        );
    }

    // The controller actually acted, on both arms.
    assert!(online.moves > 0, "no way moves");
    assert!(online.ddio_shrinks > 0, "the DDIO defense never fired");
    assert!(online.ddio_restores > 0, "DDIO never restored after calm");

    // Graceful degradation, never starvation: no tenant — including the
    // antagonist being drained — ever drops below the floor.
    for t in online.tenants.iter() {
        assert!(
            t.min_ways >= FLOOR_WAYS,
            "{}: fell to {} ways, below the {} floor",
            t.name,
            t.min_ways,
            FLOOR_WAYS
        );
    }

    // The hand-tuned oracle bounds what static provisioning can do;
    // online lands in its neighbourhood without the foreknowledge.
    for (or, ev) in oracle.tenants[..2].iter().zip(&even.tenants[..2]) {
        assert!(or.violation_ns < ev.violation_ns / 10.0);
    }

    // Goodput is undamaged by the defense: every victim request is
    // still served (the SLO war is fought in latency, not drops).
    for (on, ev) in online.tenants[..2].iter().zip(&even.tenants[..2]) {
        assert_eq!(on.served, ev.served, "{}: goodput lost", on.name);
    }
}

#[test]
fn reports_are_bit_identical_across_schedulers_and_execution_modes() {
    let base = TenancyConfig::new(Regime::Online, SMOKE);
    let mut golden: Option<String> = None;
    for scheduler in [Scheduler::EventDriven, Scheduler::ReferenceTick] {
        for execution in [
            Execution::Serial,
            Execution::Parallel { threads: 2 },
            Execution::Parallel { threads: 4 },
        ] {
            let cfg = TenancyConfig {
                scheduler,
                execution,
                ..base.clone()
            };
            let rep = format!("{:?}", run_tenancy(&cfg));
            match &golden {
                None => golden = Some(rep),
                Some(g) => assert_eq!(g, &rep, "report diverged under {scheduler:?}/{execution:?}"),
            }
        }
    }
}

#[test]
fn per_tenant_ledgers_partition_the_aggregate_in_both_execution_modes() {
    for execution in [Execution::Serial, Execution::Parallel { threads: 2 }] {
        let cfg = TenancyConfig {
            execution,
            ..TenancyConfig::new(Regime::Online, SMOKE)
        };
        let rep = run_tenancy(&cfg);
        assert_eq!(rep.per_group.len(), rep.tenants.len());
        for (group, tenant) in rep.per_group.iter().zip(&rep.tenants) {
            // The group ledger is the tenant's ledger: the engine's
            // counts match the harness's own bookkeeping...
            assert_eq!(group.offered, tenant.offered, "{}", tenant.name);
            assert_eq!(group.delivered, tenant.served, "{}", tenant.name);
            assert_eq!(
                group.nic.total() + group.admit.total(),
                tenant.rejected,
                "{}",
                tenant.name
            );
            // ...and each satisfies conservation on its own: every
            // offered frame is accounted for within the tenant.
            assert_eq!(
                group.offered + group.carried,
                group.delivered
                    + group.nic.total()
                    + group.admit.total()
                    + group.app_drops
                    + group.in_flight,
                "{}: tenant ledger leaks frames",
                tenant.name
            );
        }
        // The partition is exact: per-tenant ledgers sum to the run's
        // totals, so no frame is double-counted across tenants.
        let total_offered: u64 = rep.per_group.iter().map(|g| g.offered).sum();
        let total_delivered: u64 = rep.per_group.iter().map(|g| g.delivered).sum();
        assert_eq!(
            total_offered,
            rep.tenants.iter().map(|t| t.offered).sum::<u64>()
        );
        assert_eq!(
            total_delivered,
            rep.tenants.iter().map(|t| t.served).sum::<u64>()
        );
    }
}

#[test]
fn chaos_composes_with_injected_nic_faults() {
    // A link flap plus random frame corruption on top of the storm
    // schedule: the run must stay conservative (internal ledger asserts)
    // and deterministic, and the faults must actually bite.
    let faults = FaultPlan::none()
        .with_seed(0xfa17)
        .with_corrupt_prob(0.02)
        .with_link_flap(Window::new(600_000, 800_000));
    let cfg = TenancyConfig {
        faults,
        ..TenancyConfig::new(Regime::Online, SMOKE)
    };
    let faulted = run_tenancy(&cfg);
    let clean = run_tenancy(&TenancyConfig::new(Regime::Online, SMOKE));
    let rej =
        |r: &tenancy::run::TenancyReport| -> u64 { r.tenants.iter().map(|t| t.rejected).sum() };
    assert!(
        rej(&faulted) > rej(&clean),
        "the fault plan rejected nothing beyond the baseline"
    );
    // Determinism holds under faults too.
    let again = run_tenancy(&cfg);
    assert_eq!(format!("{faulted:?}"), format!("{again:?}"));
}
