//! Property-style tests for workload generation.
//! Seeded loops over the in-tree [`Rng64`] (fully offline).

use trafficgen::{
    gbps_to_pps, ArrivalSchedule, CampusTrace, OpenLoopGen, Phase, PhaseGen, PhaseSchedule,
    RateProfile, Rng64, SizeMix, ZipfGen,
};

/// Zipf ranks are always in range for any valid (n, theta, seed).
#[test]
fn zipf_ranks_in_range() {
    let mut rng = Rng64::seed_from_u64(0x7a01);
    for _ in 0..48 {
        let n = rng.gen_range(1u64..100_000);
        let theta = rng.gen_f64() * 0.999;
        let seed = rng.next_u64();
        let mut g = ZipfGen::new(n, theta, seed);
        for _ in 0..200 {
            assert!(g.next_rank() < n);
        }
    }
}

/// Rank probabilities are a proper distribution (sum to 1, monotone).
#[test]
fn zipf_probs_valid() {
    let mut rng = Rng64::seed_from_u64(0x7a02);
    for _ in 0..48 {
        let n = rng.gen_range(2u64..2_000);
        let theta = rng.gen_f64() * 0.999;
        let g = ZipfGen::new(n, theta, 0);
        let total: f64 = (0..n).map(|k| g.prob(k)).sum();
        assert!((total - 1.0).abs() < 1e-6);
        for k in 1..n.min(100) {
            assert!(g.prob(k) <= g.prob(k - 1) + 1e-15);
        }
    }
}

/// Campus traces always emit valid Ethernet sizes and known flows.
#[test]
fn trace_emits_valid_packets() {
    let mut rng = Rng64::seed_from_u64(0x7a03);
    for _ in 0..24 {
        let flows = rng.gen_range(1usize..500);
        let seed = rng.next_u64();
        let mut t = CampusTrace::new(SizeMix::campus(), flows, seed);
        for _ in 0..200 {
            let p = t.next_packet();
            assert!((64..=1500).contains(&p.size));
            assert_eq!(p.flow.proto, 6);
        }
    }
}

/// Fixed-size traces emit exactly the requested size.
#[test]
fn fixed_trace_is_fixed() {
    let mut rng = Rng64::seed_from_u64(0x7a04);
    for _ in 0..48 {
        let size = rng.gen_range(64u16..=1500);
        let flows = rng.gen_range(1usize..100);
        let seed = rng.next_u64();
        let mut t = CampusTrace::fixed_size(size, flows, seed);
        for _ in 0..50 {
            assert_eq!(t.next_packet().size, size);
        }
    }
}

/// Arrival schedules are strictly increasing with the exact period.
#[test]
fn schedule_monotone() {
    let mut rng = Rng64::seed_from_u64(0x7a05);
    for _ in 0..64 {
        let pps = 1.0 + rng.gen_f64() * 1e8;
        let mut s = ArrivalSchedule::constant_pps(pps);
        let period = s.period_ns();
        // Rounding rule: the period is rounded once to the nearest
        // integer picosecond, so it sits within 0.5 ps of exact.
        assert!((period - 1e9 / pps).abs() <= 0.5e-3);
        let mut last = -1.0;
        for _ in 0..100 {
            let t = s.next_arrival_ns();
            assert!(t > last);
            last = t;
        }
    }
}

/// Builds a random phase schedule (1-6 phases, random rotations, the
/// odd flash crowd, cycling half the time) from the iteration RNG.
fn random_schedule(rng: &mut Rng64, n: u64) -> PhaseSchedule {
    let phases = rng.gen_range(1u32..7) as usize;
    let spans: Vec<Phase> = (0..phases)
        .map(|_| {
            let len = rng.gen_range(1u64..5_000);
            let mut p = Phase::new(len, rng.next_u64() % (2 * n));
            if rng.gen_range(0u32..3) == 0 {
                p = p.with_flash(rng.next_u64() % (2 * n), rng.gen_range(0u32..1001));
            }
            p
        })
        .collect();
    if rng.gen_range(0u32..2) == 0 {
        PhaseSchedule::cycling(spans)
    } else {
        PhaseSchedule::new(spans)
    }
}

/// Conservation across phase boundaries: tallying each draw under its
/// reported phase index, the per-phase counts sum to the total drawn,
/// and each phase's count equals the draw-index overlap computed from
/// the schedule alone (no draw is double-counted or lost at a
/// boundary).
#[test]
fn phase_draw_counts_conserve_against_the_schedule() {
    let mut rng = Rng64::seed_from_u64(0x7a07);
    for _ in 0..32 {
        let n = rng.gen_range(16u64..10_000);
        let schedule = random_schedule(&mut rng, n);
        let theta = rng.gen_f64() * 0.999;
        let mut g = PhaseGen::new(
            ZipfGen::new(n, theta, rng.next_u64()),
            schedule.clone(),
            rng.next_u64(),
        );
        let draws = rng.gen_range(1u64..12_000);
        let mut per_phase = vec![0u64; schedule.phases().len()];
        for _ in 0..draws {
            per_phase[g.phase_index()] += 1;
            assert!(g.next_rank() < n);
        }
        assert_eq!(per_phase.iter().sum::<u64>(), draws, "draws conserve");
        assert_eq!(g.drawn(), draws);
        // Reconstruct the expected per-phase overlap from the schedule
        // alone: phase_at is the ground truth the generator must match.
        let mut expect = vec![0u64; schedule.phases().len()];
        for i in 0..draws {
            expect[schedule.phase_at(i)] += 1;
        }
        assert_eq!(per_phase, expect, "per-phase counts match the schedule");
    }
}

/// Phase shifts are bit-identical across repeated seeded runs: two
/// generators built from the same parameters emit the same rank
/// sequence, and a third with a different flash seed diverges only
/// where a flash phase is active.
#[test]
fn phase_generators_replay_bit_identically() {
    let mut rng = Rng64::seed_from_u64(0x7a08);
    for _ in 0..32 {
        let n = 1u64 << rng.gen_range(4u32..14);
        let schedule = random_schedule(&mut rng, n);
        let (zseed, fseed) = (rng.next_u64(), rng.next_u64());
        let theta = rng.gen_f64() * 0.999;
        let mut a = PhaseGen::new(ZipfGen::new(n, theta, zseed), schedule.clone(), fseed);
        let mut b = PhaseGen::new(ZipfGen::new(n, theta, zseed), schedule, fseed);
        for i in 0..4_000 {
            assert_eq!(a.next_rank(), b.next_rank(), "draw {i} diverged");
        }
    }
}

/// Phase-shifting keys compose with a rate-profiled open-loop arrival
/// process: keys are drawn per arrival, phases advance by draw count,
/// and neither stream perturbs the other (the key sequence is the same
/// under a flat profile and under a flash-crowd profile).
#[test]
fn phase_keys_compose_with_rate_profiles() {
    let n = 1u64 << 10;
    let schedule = PhaseSchedule::hot_set_churn(4, 500, 100);
    let mk_keys = || PhaseGen::new(ZipfGen::new(n, 0.99, 21), schedule.clone(), 22);
    let mut arrivals_flat = OpenLoopGen::poisson(1e6, 33);
    let mut arrivals_flash =
        OpenLoopGen::poisson(1e6, 33).with_profile(RateProfile::flat().with_flash(0.0, 1e6, 4.0));
    let (mut ka, mut kb) = (mk_keys(), mk_keys());
    let mut last_a = f64::NEG_INFINITY;
    for _ in 0..2_000 {
        let (ta, tb) = (
            arrivals_flat.next_arrival_ns(),
            arrivals_flash.next_arrival_ns(),
        );
        assert!(ta > last_a, "arrivals stay monotone");
        last_a = ta;
        assert!(tb <= ta + 1e-9, "flash profile never slows arrivals");
        assert_eq!(ka.next_rank(), kb.next_rank(), "keys independent of rate");
    }
}

/// Gbps→pps conversion round-trips through wire occupancy.
#[test]
fn gbps_pps_roundtrip() {
    let mut rng = Rng64::seed_from_u64(0x7a06);
    for _ in 0..256 {
        let gbps = 0.1 + rng.gen_f64() * 399.9;
        let size = 64.0 + rng.gen_f64() * (1500.0 - 64.0);
        let pps = gbps_to_pps(gbps, size);
        let back = pps * (size + 20.0) * 8.0 / 1e9;
        assert!((back - gbps).abs() < 1e-9 * gbps.max(1.0));
    }
}
