//! Property-based tests for workload generation.

use proptest::prelude::*;
use trafficgen::{gbps_to_pps, ArrivalSchedule, CampusTrace, SizeMix, ZipfGen};

proptest! {
    /// Zipf ranks are always in range for any valid (n, theta, seed).
    #[test]
    fn zipf_ranks_in_range(n in 1u64..100_000, theta in 0.0f64..0.999, seed in any::<u64>()) {
        let mut g = ZipfGen::new(n, theta, seed);
        for _ in 0..200 {
            prop_assert!(g.next_rank() < n);
        }
    }

    /// Rank probabilities are a proper distribution (sum to 1, monotone).
    #[test]
    fn zipf_probs_valid(n in 2u64..2_000, theta in 0.0f64..0.999) {
        let g = ZipfGen::new(n, theta, 0);
        let total: f64 = (0..n).map(|k| g.prob(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for k in 1..n.min(100) {
            prop_assert!(g.prob(k) <= g.prob(k - 1) + 1e-15);
        }
    }

    /// Campus traces always emit valid Ethernet sizes and known flows.
    #[test]
    fn trace_emits_valid_packets(flows in 1usize..500, seed in any::<u64>()) {
        let mut t = CampusTrace::new(SizeMix::campus(), flows, seed);
        for _ in 0..200 {
            let p = t.next_packet();
            prop_assert!((64..=1500).contains(&p.size));
            prop_assert_eq!(p.flow.proto, 6);
        }
    }

    /// Fixed-size traces emit exactly the requested size.
    #[test]
    fn fixed_trace_is_fixed(size in 64u16..=1500, flows in 1usize..100, seed in any::<u64>()) {
        let mut t = CampusTrace::fixed_size(size, flows, seed);
        for _ in 0..50 {
            prop_assert_eq!(t.next_packet().size, size);
        }
    }

    /// Arrival schedules are strictly increasing with the exact period.
    #[test]
    fn schedule_monotone(pps in 1.0f64..1e8) {
        let mut s = ArrivalSchedule::constant_pps(pps);
        let period = s.period_ns();
        prop_assert!((period - 1e9 / pps).abs() < 1e-6 * period);
        let mut last = -1.0;
        for _ in 0..100 {
            let t = s.next_arrival_ns();
            prop_assert!(t > last);
            last = t;
        }
    }

    /// Gbps→pps conversion round-trips through wire occupancy.
    #[test]
    fn gbps_pps_roundtrip(gbps in 0.1f64..400.0, size in 64.0f64..1500.0) {
        let pps = gbps_to_pps(gbps, size);
        let back = pps * (size + 20.0) * 8.0 / 1e9;
        prop_assert!((back - gbps).abs() < 1e-9 * gbps.max(1.0));
    }
}
