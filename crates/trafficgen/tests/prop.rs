//! Property-style tests for workload generation.
//! Seeded loops over the in-tree [`Rng64`] (fully offline).

use trafficgen::{gbps_to_pps, ArrivalSchedule, CampusTrace, Rng64, SizeMix, ZipfGen};

/// Zipf ranks are always in range for any valid (n, theta, seed).
#[test]
fn zipf_ranks_in_range() {
    let mut rng = Rng64::seed_from_u64(0x7a01);
    for _ in 0..48 {
        let n = rng.gen_range(1u64..100_000);
        let theta = rng.gen_f64() * 0.999;
        let seed = rng.next_u64();
        let mut g = ZipfGen::new(n, theta, seed);
        for _ in 0..200 {
            assert!(g.next_rank() < n);
        }
    }
}

/// Rank probabilities are a proper distribution (sum to 1, monotone).
#[test]
fn zipf_probs_valid() {
    let mut rng = Rng64::seed_from_u64(0x7a02);
    for _ in 0..48 {
        let n = rng.gen_range(2u64..2_000);
        let theta = rng.gen_f64() * 0.999;
        let g = ZipfGen::new(n, theta, 0);
        let total: f64 = (0..n).map(|k| g.prob(k)).sum();
        assert!((total - 1.0).abs() < 1e-6);
        for k in 1..n.min(100) {
            assert!(g.prob(k) <= g.prob(k - 1) + 1e-15);
        }
    }
}

/// Campus traces always emit valid Ethernet sizes and known flows.
#[test]
fn trace_emits_valid_packets() {
    let mut rng = Rng64::seed_from_u64(0x7a03);
    for _ in 0..24 {
        let flows = rng.gen_range(1usize..500);
        let seed = rng.next_u64();
        let mut t = CampusTrace::new(SizeMix::campus(), flows, seed);
        for _ in 0..200 {
            let p = t.next_packet();
            assert!((64..=1500).contains(&p.size));
            assert_eq!(p.flow.proto, 6);
        }
    }
}

/// Fixed-size traces emit exactly the requested size.
#[test]
fn fixed_trace_is_fixed() {
    let mut rng = Rng64::seed_from_u64(0x7a04);
    for _ in 0..48 {
        let size = rng.gen_range(64u16..=1500);
        let flows = rng.gen_range(1usize..100);
        let seed = rng.next_u64();
        let mut t = CampusTrace::fixed_size(size, flows, seed);
        for _ in 0..50 {
            assert_eq!(t.next_packet().size, size);
        }
    }
}

/// Arrival schedules are strictly increasing with the exact period.
#[test]
fn schedule_monotone() {
    let mut rng = Rng64::seed_from_u64(0x7a05);
    for _ in 0..64 {
        let pps = 1.0 + rng.gen_f64() * 1e8;
        let mut s = ArrivalSchedule::constant_pps(pps);
        let period = s.period_ns();
        // Rounding rule: the period is rounded once to the nearest
        // integer picosecond, so it sits within 0.5 ps of exact.
        assert!((period - 1e9 / pps).abs() <= 0.5e-3);
        let mut last = -1.0;
        for _ in 0..100 {
            let t = s.next_arrival_ns();
            assert!(t > last);
            last = t;
        }
    }
}

/// Gbps→pps conversion round-trips through wire occupancy.
#[test]
fn gbps_pps_roundtrip() {
    let mut rng = Rng64::seed_from_u64(0x7a06);
    for _ in 0..256 {
        let gbps = 0.1 + rng.gen_f64() * 399.9;
        let size = 64.0 + rng.gen_f64() * (1500.0 - 64.0);
        let pps = gbps_to_pps(gbps, size);
        let back = pps * (size + 20.0) * 8.0 / 1e9;
        assert!((back - gbps).abs() < 1e-9 * gbps.max(1.0));
    }
}
