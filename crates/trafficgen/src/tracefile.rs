//! A compact on-disk format for packet traces.
//!
//! The paper replays one fixed campus trace across every NFV experiment;
//! capture/replay makes that workflow explicit here: generate a trace
//! once (or convert a real one), save it, and replay the identical
//! packet stream across configurations and machines. The format is a
//! simple little-endian record stream:
//!
//! ```text
//! magic "SATR" | version u16 | count u64 |
//! count x { src_ip u32, dst_ip u32, src_port u16, dst_port u16,
//!           proto u8, size u16, seq u64 }
//! ```

use crate::flow::FlowTuple;
use crate::trace::PacketSpec;
use std::io::{self, Read, Write};

/// File magic.
pub const MAGIC: [u8; 4] = *b"SATR";
/// Current format version.
pub const VERSION: u16 = 1;
/// Bytes per packet record.
pub const RECORD_LEN: usize = 23;

/// Writes a trace to `w`.
pub fn write_trace<W: Write>(mut w: W, packets: &[PacketSpec]) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(packets.len() as u64).to_le_bytes())?;
    let mut rec = [0u8; RECORD_LEN];
    for p in packets {
        rec[0..4].copy_from_slice(&p.flow.src_ip.to_le_bytes());
        rec[4..8].copy_from_slice(&p.flow.dst_ip.to_le_bytes());
        rec[8..10].copy_from_slice(&p.flow.src_port.to_le_bytes());
        rec[10..12].copy_from_slice(&p.flow.dst_port.to_le_bytes());
        rec[12] = p.flow.proto;
        rec[13..15].copy_from_slice(&p.size.to_le_bytes());
        rec[15..23].copy_from_slice(&p.seq.to_le_bytes());
        w.write_all(&rec)?;
    }
    Ok(())
}

/// Reads a trace from `r`.
///
/// # Errors
///
/// `InvalidData` on a bad magic, unsupported version, or truncation.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<PacketSpec>> {
    let mut header = [0u8; 14];
    r.read_exact(&mut header)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "truncated header"))?;
    if header[0..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let count = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes")) as usize;
    let mut out = Vec::with_capacity(count.min(1 << 24));
    let mut rec = [0u8; RECORD_LEN];
    for i in 0..count {
        r.read_exact(&mut rec).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("truncated at record {i} of {count}"),
            )
        })?;
        out.push(PacketSpec {
            flow: FlowTuple {
                src_ip: u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes")),
                dst_ip: u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes")),
                src_port: u16::from_le_bytes([rec[8], rec[9]]),
                dst_port: u16::from_le_bytes([rec[10], rec[11]]),
                proto: rec[12],
            },
            size: u16::from_le_bytes([rec[13], rec[14]]),
            seq: u64::from_le_bytes(rec[15..23].try_into().expect("8 bytes")),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CampusTrace, SizeMix};

    #[test]
    fn roundtrip_preserves_every_field() {
        let mut t = CampusTrace::new(SizeMix::campus(), 500, 42);
        let packets = t.take(2_000);
        let mut buf = Vec::new();
        write_trace(&mut buf, &packets).unwrap();
        assert_eq!(buf.len(), 14 + 2_000 * RECORD_LEN);
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, packets);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00".to_vec();
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        buf[4] = 99;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unsupported version"));
    }

    #[test]
    fn truncation_reported_with_position() {
        let mut t = CampusTrace::fixed_size(64, 4, 1);
        let packets = t.take(10);
        let mut buf = Vec::new();
        write_trace(&mut buf, &packets).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated at record 9"));
    }
}
