//! A compact on-disk format for packet traces.
//!
//! The paper replays one fixed campus trace across every NFV experiment;
//! capture/replay makes that workflow explicit here: generate a trace
//! once (or convert a real one), save it, and replay the identical
//! packet stream across configurations and machines. The format is a
//! simple little-endian record stream:
//!
//! ```text
//! v1: magic "SATR" | version=1 u16 | count u64 |
//!     count x { src_ip u32, dst_ip u32, src_port u16, dst_port u16,
//!               proto u8, size u16, seq u64 }                   (23 B)
//! v2: magic "SATR" | version=2 u16 | count u64 |
//!     count x { v1 record fields | arrival_ns u64 }             (31 B)
//! ```
//!
//! Version 2 adds a per-record arrival timestamp in simulated
//! nanoseconds so recorded or synthesized traces reproduce their
//! inter-arrival structure on replay (see [`crate::replay::TraceReplay`]).
//! Both readers accept both versions: a v1 file read through the timed
//! API defaults every `arrival_ns` to 0 (v1 carries no timing — replay
//! layers must supply their own pacing), and a v2 file read through the
//! untimed API simply discards the timestamps.
//!
//! # Corrupt-input hardening
//!
//! The header `count` is untrusted. The slice readers
//! ([`read_trace_bytes`], [`read_trace_timed_bytes`]) know the input
//! length and fail fast when `count × record_len` exceeds the bytes
//! actually present — before allocating or looping. The streaming
//! readers can't know the length ahead of time; they cap their
//! preallocation and report truncation with the record position.

use crate::flow::FlowTuple;
use crate::trace::PacketSpec;
use std::io::{self, Read, Write};

/// File magic.
pub const MAGIC: [u8; 4] = *b"SATR";
/// Version written by [`write_trace`] (untimed records).
pub const VERSION: u16 = 1;
/// Version written by [`write_trace_v2`] (records carry `arrival_ns`).
pub const VERSION_V2: u16 = 2;
/// Bytes per v1 packet record.
pub const RECORD_LEN: usize = 23;
/// Bytes per v2 packet record (v1 fields + `arrival_ns u64`).
pub const RECORD_LEN_V2: usize = 31;
/// Bytes in the common header (`magic | version | count`).
pub const HEADER_LEN: usize = 14;

/// A packet plus the simulated-ns timestamp at which it arrived.
///
/// This is the v2 record: the v1 [`PacketSpec`] plus the arrival
/// structure that open-loop replay needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedPacket {
    pub spec: PacketSpec,
    pub arrival_ns: u64,
}

fn encode_spec(rec: &mut [u8], p: &PacketSpec) {
    rec[0..4].copy_from_slice(&p.flow.src_ip.to_le_bytes());
    rec[4..8].copy_from_slice(&p.flow.dst_ip.to_le_bytes());
    rec[8..10].copy_from_slice(&p.flow.src_port.to_le_bytes());
    rec[10..12].copy_from_slice(&p.flow.dst_port.to_le_bytes());
    rec[12] = p.flow.proto;
    rec[13..15].copy_from_slice(&p.size.to_le_bytes());
    rec[15..23].copy_from_slice(&p.seq.to_le_bytes());
}

fn decode_spec(rec: &[u8]) -> PacketSpec {
    PacketSpec {
        flow: FlowTuple {
            src_ip: u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes")),
            dst_ip: u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes")),
            src_port: u16::from_le_bytes([rec[8], rec[9]]),
            dst_port: u16::from_le_bytes([rec[10], rec[11]]),
            proto: rec[12],
        },
        size: u16::from_le_bytes([rec[13], rec[14]]),
        seq: u64::from_le_bytes(rec[15..23].try_into().expect("8 bytes")),
    }
}

/// Writes a v1 (untimed) trace to `w`.
pub fn write_trace<W: Write>(mut w: W, packets: &[PacketSpec]) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(packets.len() as u64).to_le_bytes())?;
    let mut rec = [0u8; RECORD_LEN];
    for p in packets {
        encode_spec(&mut rec, p);
        w.write_all(&rec)?;
    }
    Ok(())
}

/// Writes a v2 (timed) trace to `w`.
pub fn write_trace_v2<W: Write>(mut w: W, packets: &[TimedPacket]) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION_V2.to_le_bytes())?;
    w.write_all(&(packets.len() as u64).to_le_bytes())?;
    let mut rec = [0u8; RECORD_LEN_V2];
    for p in packets {
        encode_spec(&mut rec[..RECORD_LEN], &p.spec);
        rec[23..31].copy_from_slice(&p.arrival_ns.to_le_bytes());
        w.write_all(&rec)?;
    }
    Ok(())
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Shared reader core. `len_hint` is the total input length in bytes
/// when the caller knows it (slice readers); with a hint, a header
/// `count` that doesn't fit the remaining bytes fails fast, before any
/// allocation or record loop.
fn read_records<R: Read>(mut r: R, len_hint: Option<usize>) -> io::Result<Vec<TimedPacket>> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)
        .map_err(|_| invalid("truncated header".into()))?;
    if header[0..4] != MAGIC {
        return Err(invalid("bad magic".into()));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    let record_len = match version {
        VERSION => RECORD_LEN,
        VERSION_V2 => RECORD_LEN_V2,
        v => return Err(invalid(format!("unsupported version {v}"))),
    };
    let count = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes")) as usize;
    if let Some(len) = len_hint {
        let body = len.saturating_sub(HEADER_LEN);
        let need = count.checked_mul(record_len);
        if need.is_none() || need.unwrap() > body {
            return Err(invalid(format!(
                "header claims {count} records ({record_len} B each) but only {body} payload bytes remain"
            )));
        }
    }
    let mut out = Vec::with_capacity(count.min(1 << 24));
    let mut rec = [0u8; RECORD_LEN_V2];
    let rec = &mut rec[..record_len];
    for i in 0..count {
        r.read_exact(rec)
            .map_err(|_| invalid(format!("truncated at record {i} of {count}")))?;
        let arrival_ns = if version == VERSION_V2 {
            u64::from_le_bytes(rec[23..31].try_into().expect("8 bytes"))
        } else {
            0
        };
        out.push(TimedPacket {
            spec: decode_spec(rec),
            arrival_ns,
        });
    }
    Ok(out)
}

/// Reads a trace from `r`, discarding v2 arrival timestamps.
///
/// Accepts both format versions.
///
/// # Errors
///
/// `InvalidData` on a bad magic, unsupported version, or truncation
/// (reported with the record position).
pub fn read_trace<R: Read>(r: R) -> io::Result<Vec<PacketSpec>> {
    Ok(read_records(r, None)?.into_iter().map(|t| t.spec).collect())
}

/// Reads a trace with arrival timestamps from `r`.
///
/// Accepts both format versions; v1 records carry no timing, so their
/// `arrival_ns` defaults to 0 (replay layers supply their own pacing
/// for untimed traces).
///
/// # Errors
///
/// `InvalidData` on a bad magic, unsupported version, or truncation
/// (reported with the record position).
pub fn read_trace_timed<R: Read>(r: R) -> io::Result<Vec<TimedPacket>> {
    read_records(r, None)
}

/// [`read_trace`] over an in-memory buffer: the length is known, so a
/// header `count` that can't fit in the buffer fails fast — before any
/// allocation or per-record loop.
pub fn read_trace_bytes(buf: &[u8]) -> io::Result<Vec<PacketSpec>> {
    Ok(read_records(buf, Some(buf.len()))?
        .into_iter()
        .map(|t| t.spec)
        .collect())
}

/// [`read_trace_timed`] over an in-memory buffer, with the same
/// fail-fast `count` validation as [`read_trace_bytes`].
pub fn read_trace_timed_bytes(buf: &[u8]) -> io::Result<Vec<TimedPacket>> {
    read_records(buf, Some(buf.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;
    use crate::trace::{CampusTrace, SizeMix};

    #[test]
    fn roundtrip_preserves_every_field() {
        let mut t = CampusTrace::new(SizeMix::campus(), 500, 42);
        let packets = t.take(2_000);
        let mut buf = Vec::new();
        write_trace(&mut buf, &packets).unwrap();
        assert_eq!(buf.len(), HEADER_LEN + 2_000 * RECORD_LEN);
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, packets);
        // The slice reader agrees with the streaming reader.
        assert_eq!(read_trace_bytes(&buf).unwrap(), packets);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00".to_vec();
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        buf[4] = 99;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unsupported version"));
    }

    #[test]
    fn truncation_reported_with_position() {
        let mut t = CampusTrace::fixed_size(64, 4, 1);
        let packets = t.take(10);
        let mut buf = Vec::new();
        write_trace(&mut buf, &packets).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated at record 9"));
    }

    fn timed_packets(n: usize) -> Vec<TimedPacket> {
        let mut t = CampusTrace::new(SizeMix::campus(), 64, 7);
        let mut arrival = 0u64;
        t.take(n)
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                arrival += 100 + (i as u64 % 13) * 37;
                TimedPacket {
                    spec,
                    arrival_ns: arrival,
                }
            })
            .collect()
    }

    /// v2 round-trip preserves every field including `arrival_ns`, and
    /// the record length is the documented 31 B.
    #[test]
    fn v2_roundtrip_preserves_arrival_ns() {
        let packets = timed_packets(300);
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &packets).unwrap();
        assert_eq!(buf.len(), HEADER_LEN + 300 * RECORD_LEN_V2);
        assert_eq!(u16::from_le_bytes([buf[4], buf[5]]), VERSION_V2);
        assert_eq!(read_trace_timed(buf.as_slice()).unwrap(), packets);
        assert_eq!(read_trace_timed_bytes(&buf).unwrap(), packets);
    }

    /// A v1 file read through the v2 (timed) reader: specs intact,
    /// arrivals defaulted to 0 — the documented "v1 carries no timing"
    /// contract.
    #[test]
    fn v1_under_timed_reader_defaults_arrivals_to_zero() {
        let mut t = CampusTrace::fixed_size(128, 8, 3);
        let packets = t.take(50);
        let mut buf = Vec::new();
        write_trace(&mut buf, &packets).unwrap();
        let timed = read_trace_timed_bytes(&buf).unwrap();
        assert_eq!(timed.len(), packets.len());
        for (t, p) in timed.iter().zip(&packets) {
            assert_eq!(&t.spec, p);
            assert_eq!(t.arrival_ns, 0, "v1 records default arrival_ns to 0");
        }
    }

    /// A v2 file read through the untimed reader discards timestamps
    /// but keeps the packet stream.
    #[test]
    fn v2_under_untimed_reader_discards_arrivals() {
        let packets = timed_packets(80);
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &packets).unwrap();
        let specs: Vec<_> = packets.iter().map(|t| t.spec).collect();
        assert_eq!(read_trace_bytes(&buf).unwrap(), specs);
    }

    /// v2 truncation is still reported with the record position.
    #[test]
    fn v2_truncation_reported_with_position() {
        let packets = timed_packets(10);
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &packets).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_trace_timed(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated at record 9 of 10"));
        let err = read_trace_timed_bytes(&buf).unwrap_err();
        // With a known length the lie is caught at the header.
        assert!(err.to_string().contains("but only"), "{err}");
    }

    /// A corrupt huge header `count` must fail fast on the slice
    /// readers — at the header, before any allocation or record loop.
    #[test]
    fn corrupt_count_fails_fast_on_slice_reader() {
        let packets = timed_packets(4);
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &packets).unwrap();
        buf[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_trace_timed_bytes(&buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("payload bytes remain"), "{err}");
        // Untimed slice reader takes the same fast path.
        let err = read_trace_bytes(&buf).unwrap_err();
        assert!(err.to_string().contains("payload bytes remain"), "{err}");
    }

    /// Fuzz-style: random single-byte corruptions of the header (and a
    /// few random tail truncations) must produce a clean `InvalidData`
    /// error or a successful parse — never a panic and never a
    /// countably-absurd allocation on the slice path.
    #[test]
    fn fuzzed_headers_never_panic() {
        let packets = timed_packets(16);
        let mut pristine = Vec::new();
        write_trace_v2(&mut pristine, &packets).unwrap();
        let mut rng = Rng64::seed_from_u64(0xC0FFEE);
        for _ in 0..500 {
            let mut buf = pristine.clone();
            // Corrupt 1-3 header bytes.
            for _ in 0..=rng.gen_range(0..3u64) {
                let pos = rng.gen_range(0..HEADER_LEN as u64) as usize;
                buf[pos] ^= rng.gen_range(1..256u64) as u8;
            }
            // Sometimes also truncate the tail.
            if rng.gen_range(0..4u64) == 0 {
                let keep = rng.gen_range(0..buf.len() as u64) as usize;
                buf.truncate(keep);
            }
            // A surviving parse can never claim more records than the
            // bytes present could encode.
            let most = buf.len() / RECORD_LEN;
            match read_trace_timed_bytes(&buf) {
                Ok(t) => assert!(t.len() <= most),
                Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
            }
            match read_trace(buf.as_slice()) {
                Ok(t) => assert!(t.len() <= most),
                Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
            }
        }
    }
}
