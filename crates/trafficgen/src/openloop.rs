//! Open-loop arrival generators: Poisson processes, burst trains, and
//! phase-shifting rate profiles (ramps, square-wave flash crowds).
//!
//! The closed-loop [`crate::ArrivalSchedule`] paces packets at exactly
//! the configured rate; an *open-loop* generator keeps emitting at its
//! own schedule regardless of what the server absorbs, which is what
//! creates genuine overload (the fig15 knee, flash crowds). Every
//! generator here is a pure function of its seed and configuration —
//! no wall clock, no global state — so runs replay bit-identically in
//! serial and parallel execution.
//!
//! A [`RateProfile`] reshapes the *instantaneous* rate over simulated
//! time: `multiplier_at(t)` scales the base rate, so a square-wave
//! flash crowd is a segment with multiplier > 1 and a ramp interpolates
//! linearly across its window. Profiles compose with the engine's
//! time-indexed fault windows trivially — both are keyed on the same
//! simulated clock.

use crate::arrival::Arrivals;
use crate::rng::Rng64;

/// Piecewise rate multiplier over simulated time.
///
/// Segments are evaluated in insertion order and the *last* segment
/// covering `t` wins; time outside every segment has multiplier 1.0.
/// Multipliers must be strictly positive (an admission policy sheds
/// load; the generator itself never stops).
#[derive(Debug, Clone, Default)]
pub struct RateProfile {
    segments: Vec<Segment>,
}

#[derive(Debug, Clone)]
struct Segment {
    start_ns: f64,
    end_ns: f64,
    shape: Shape,
}

#[derive(Debug, Clone)]
enum Shape {
    /// Square wave: constant multiplier inside the window.
    Flat(f64),
    /// Linear interpolation from `from` at `start_ns` to `to` at `end_ns`.
    Ramp { from: f64, to: f64 },
}

impl RateProfile {
    /// The identity profile: multiplier 1.0 everywhere.
    pub fn flat() -> Self {
        Self::default()
    }

    /// Square-wave flash crowd: rate × `mult` over `[start_ns, end_ns)`.
    pub fn with_flash(mut self, start_ns: f64, end_ns: f64, mult: f64) -> Self {
        assert!(end_ns > start_ns, "empty flash window");
        assert!(mult > 0.0, "rate multiplier must be positive");
        self.segments.push(Segment {
            start_ns,
            end_ns,
            shape: Shape::Flat(mult),
        });
        self
    }

    /// Linear ramp of the multiplier from `from` to `to` over
    /// `[start_ns, end_ns)`.
    pub fn with_ramp(mut self, start_ns: f64, end_ns: f64, from: f64, to: f64) -> Self {
        assert!(end_ns > start_ns, "empty ramp window");
        assert!(from > 0.0 && to > 0.0, "rate multiplier must be positive");
        self.segments.push(Segment {
            start_ns,
            end_ns,
            shape: Shape::Ramp { from, to },
        });
        self
    }

    /// Instantaneous rate multiplier at simulated time `t_ns`.
    pub fn multiplier_at(&self, t_ns: f64) -> f64 {
        let mut m = 1.0;
        for s in &self.segments {
            if t_ns >= s.start_ns && t_ns < s.end_ns {
                m = match s.shape {
                    Shape::Flat(mult) => mult,
                    Shape::Ramp { from, to } => {
                        let frac = (t_ns - s.start_ns) / (s.end_ns - s.start_ns);
                        from + (to - from) * frac
                    }
                };
            }
        }
        m
    }
}

#[derive(Debug, Clone)]
enum Kind {
    /// Deterministic pacing at the (profiled) instantaneous rate.
    Constant,
    /// Poisson process: exponential inter-arrival gaps drawn from the
    /// in-tree PRNG, thinned/stretched by the rate profile.
    Poisson { rng: Rng64 },
    /// Burst trains: `len` back-to-back packets `intra_gap_ns` apart,
    /// then a silent gap sized so the *average* rate matches the
    /// (profiled) instantaneous rate at the burst's start.
    Bursts {
        len: u32,
        intra_gap_ns: f64,
        pos: u32,
    },
}

/// An open-loop arrival generator: constant, Poisson, or burst-train
/// arrivals at a base rate, optionally reshaped by a [`RateProfile`].
///
/// Deterministic: Poisson gaps come from a seeded [`Rng64`], so the
/// arrival stream is a pure function of `(seed, base rate, profile)`.
#[derive(Debug, Clone)]
pub struct OpenLoopGen {
    base_pps: f64,
    kind: Kind,
    profile: RateProfile,
    next_ns: f64,
}

impl OpenLoopGen {
    /// Deterministically paced arrivals at `pps` (profile-scalable).
    pub fn constant(pps: f64) -> Self {
        assert!(pps > 0.0, "rate must be positive");
        Self {
            base_pps: pps,
            kind: Kind::Constant,
            profile: RateProfile::flat(),
            next_ns: 0.0,
        }
    }

    /// Poisson arrivals with mean rate `pps`, gaps drawn from the
    /// in-tree PRNG seeded with `seed`.
    pub fn poisson(pps: f64, seed: u64) -> Self {
        assert!(pps > 0.0, "rate must be positive");
        Self {
            base_pps: pps,
            kind: Kind::Poisson {
                rng: Rng64::seed_from_u64(seed),
            },
            profile: RateProfile::flat(),
            next_ns: 0.0,
        }
    }

    /// Burst trains of `len` packets spaced `intra_gap_ns` apart, with
    /// the inter-burst gap sized to hold the average rate at `pps`.
    ///
    /// # Panics
    ///
    /// Panics when the burst itself already exceeds the rate budget
    /// (`(len−1) × intra_gap_ns` longer than `len` periods).
    pub fn bursts(pps: f64, len: u32, intra_gap_ns: f64) -> Self {
        assert!(pps > 0.0, "rate must be positive");
        assert!(len >= 1, "burst length must be at least 1");
        assert!(intra_gap_ns >= 0.0, "negative intra-burst gap");
        let budget_ns = len as f64 * 1e9 / pps;
        assert!(
            (len - 1) as f64 * intra_gap_ns < budget_ns,
            "burst longer than its rate budget"
        );
        Self {
            base_pps: pps,
            kind: Kind::Bursts {
                len,
                intra_gap_ns,
                pos: 0,
            },
            profile: RateProfile::flat(),
            next_ns: 0.0,
        }
    }

    /// Attach a phase-shifting rate profile.
    pub fn with_profile(mut self, profile: RateProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Mean packets per second before profile scaling.
    pub fn base_pps(&self) -> f64 {
        self.base_pps
    }

    /// Next arrival timestamp in simulated nanoseconds.
    pub fn next_arrival_ns(&mut self) -> f64 {
        let t = self.next_ns;
        // Instantaneous rate at the moment of this arrival; the gap to
        // the next arrival is computed against it, so rate changes take
        // effect from the next packet on (first-order hold).
        let rate = self.base_pps * self.profile.multiplier_at(t);
        let mean_gap_ns = 1e9 / rate;
        let gap = match &mut self.kind {
            Kind::Constant => mean_gap_ns,
            Kind::Poisson { rng } => {
                // Uniform in (0, 1): 53 mantissa bits, offset by half an
                // ulp so ln() never sees zero.
                let u = ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
                -u.ln() * mean_gap_ns
            }
            Kind::Bursts {
                len,
                intra_gap_ns,
                pos,
            } => {
                *pos += 1;
                if *pos < *len {
                    *intra_gap_ns
                } else {
                    *pos = 0;
                    // Remainder of the burst's rate budget, so the train
                    // averages to `rate` over each burst period.
                    (*len as f64).mul_add(mean_gap_ns, -((*len - 1) as f64 * *intra_gap_ns))
                }
            }
        };
        self.next_ns = t + gap;
        t
    }

    /// The next arrival timestamp without consuming it (exactly the
    /// value the next [`OpenLoopGen::next_arrival_ns`] returns — the
    /// gap draw happens when the arrival is consumed, so peeking burns
    /// no RNG state).
    pub fn peek_next_ns(&self) -> f64 {
        self.next_ns
    }
}

impl Arrivals for OpenLoopGen {
    fn next_arrival_ns(&mut self) -> f64 {
        OpenLoopGen::next_arrival_ns(self)
    }

    fn peek_next_ns(&self) -> f64 {
        OpenLoopGen::peek_next_ns(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(gen: &mut OpenLoopGen, n: usize) -> Vec<f64> {
        (0..n).map(|_| gen.next_arrival_ns()).collect()
    }

    /// Peeking is free: any number of peeks returns exactly the value
    /// the consuming call then yields, with no RNG state burned — the
    /// contract event-driven run loops rely on to promise the next
    /// arrival.
    #[test]
    fn peek_is_exact_and_burns_no_state() {
        let profile = || RateProfile::flat().with_flash(5_000.0, 50_000.0, 4.0);
        let mut peeked = OpenLoopGen::poisson(2e6, 99).with_profile(profile());
        let mut plain = OpenLoopGen::poisson(2e6, 99).with_profile(profile());
        for _ in 0..1000 {
            let p = peeked.peek_next_ns();
            assert_eq!(p, peeked.peek_next_ns(), "peek must be idempotent");
            let t = peeked.next_arrival_ns();
            assert_eq!(p, t, "peek must equal the consuming call");
            assert_eq!(
                t,
                plain.next_arrival_ns(),
                "peeks must not perturb the stream"
            );
        }
    }

    #[test]
    fn constant_matches_schedule_pacing() {
        let mut g = OpenLoopGen::constant(1e6);
        let ts = collect(&mut g, 4);
        assert_eq!(ts[0], 0.0);
        assert!((ts[1] - 1000.0).abs() < 1e-9);
        assert!((ts[3] - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_is_seeded_and_deterministic() {
        let a = collect(&mut OpenLoopGen::poisson(1e6, 42), 100);
        let b = collect(&mut OpenLoopGen::poisson(1e6, 42), 100);
        let c = collect(&mut OpenLoopGen::poisson(1e6, 43), 100);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn poisson_mean_gap_converges() {
        let n = 200_000;
        let mut g = OpenLoopGen::poisson(1e6, 7);
        let ts = collect(&mut g, n);
        let mean_gap = ts[n - 1] / (n - 1) as f64;
        // Mean of Exp(1/1000 ns) is 1000 ns; CLT gives ±~2.2 ns at 3σ.
        assert!(
            (mean_gap - 1000.0).abs() < 10.0,
            "mean gap {mean_gap} ns far from 1000 ns"
        );
    }

    #[test]
    fn poisson_arrivals_are_monotone() {
        let mut g = OpenLoopGen::poisson(5e6, 9);
        let ts = collect(&mut g, 10_000);
        assert!(ts.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn bursts_preserve_average_rate() {
        // 1 Mpps in bursts of 8 spaced 10 ns: each burst period must
        // still be 8 µs.
        let mut g = OpenLoopGen::bursts(1e6, 8, 10.0);
        let ts = collect(&mut g, 17);
        for i in 0..7 {
            assert!((ts[i + 1] - ts[i] - 10.0).abs() < 1e-9, "intra gap");
        }
        assert!((ts[8] - 8000.0).abs() < 1e-9, "burst period holds rate");
        assert!((ts[16] - 16000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "burst longer than its rate budget")]
    fn bursts_reject_overlong_burst() {
        OpenLoopGen::bursts(1e9, 64, 10.0);
    }

    #[test]
    fn flash_profile_doubles_rate_inside_window() {
        let profile = RateProfile::flat().with_flash(1e6, 2e6, 2.0);
        assert_eq!(profile.multiplier_at(999_999.0), 1.0);
        assert_eq!(profile.multiplier_at(1e6), 2.0);
        assert_eq!(profile.multiplier_at(1_999_999.0), 2.0);
        assert_eq!(profile.multiplier_at(2e6), 1.0);

        let mut g = OpenLoopGen::constant(1e6).with_profile(profile);
        let ts = collect(&mut g, 4000);
        // Count arrivals inside the window: 1 ms at 2 Mpps ≈ 2000
        // packets versus 1000 outside-window packets per ms.
        let inside = ts.iter().filter(|&&t| (1e6..2e6).contains(&t)).count();
        assert!(
            (1990..=2010).contains(&inside),
            "flash window held {inside} arrivals, expected ~2000"
        );
    }

    #[test]
    fn ramp_interpolates_multiplier() {
        let p = RateProfile::flat().with_ramp(0.0, 1000.0, 1.0, 3.0);
        assert_eq!(p.multiplier_at(0.0), 1.0);
        assert!((p.multiplier_at(500.0) - 2.0).abs() < 1e-12);
        assert!((p.multiplier_at(999.999) - 3.0).abs() < 1e-2);
        assert_eq!(p.multiplier_at(1000.0), 1.0, "outside the ramp");
    }

    #[test]
    fn last_overlapping_segment_wins() {
        let p = RateProfile::flat()
            .with_flash(0.0, 100.0, 2.0)
            .with_flash(50.0, 150.0, 5.0);
        assert_eq!(p.multiplier_at(25.0), 2.0);
        assert_eq!(p.multiplier_at(75.0), 5.0);
        assert_eq!(p.multiplier_at(125.0), 5.0);
    }

    #[test]
    fn poisson_tracks_flash_crowd() {
        let profile = RateProfile::flat().with_flash(1e6, 2e6, 4.0);
        let mut g = OpenLoopGen::poisson(1e6, 1234).with_profile(profile);
        let ts = collect(&mut g, 8000);
        let inside = ts.iter().filter(|&&t| (1e6..2e6).contains(&t)).count();
        let before = ts.iter().filter(|&&t| (0.0..1e6).contains(&t)).count();
        // ~1000 arrivals/ms at base rate, ~4000 inside the flash.
        assert!(
            inside as f64 > 2.5 * before as f64,
            "flash crowd did not materialise: {before} before vs {inside} inside"
        );
    }
}
