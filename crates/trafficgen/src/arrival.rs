//! Packet arrival schedules for the load generator.
//!
//! The paper's LoadGen sends either at a fixed packet rate (Table 2:
//! 1000 pps "L", ~4 Mpps "H") or at a target wire rate in Gbps (the
//! 5–100 Gbps sweep of Fig. 15). Wire occupancy of an Ethernet frame is
//! the frame (FCS included) plus 20 B of preamble + inter-frame gap,
//! which is what makes "100 Gbps of 64 B packets" come out at 148.8 Mpps.

/// Preamble + start-of-frame delimiter + inter-frame gap on the wire.
/// Frame sizes are quoted FCS-inclusive (the usual convention behind the
/// "148.8 Mpps of 64 B frames at 100 Gbps" figure).
pub const WIRE_OVERHEAD_BYTES: u32 = 20;

/// Bits one frame of `size` bytes occupies on the wire.
pub fn wire_bits(size: u16) -> u64 {
    u64::from(u32::from(size) + WIRE_OVERHEAD_BYTES) * 8
}

/// Packets per second needed to fill `gbps` with frames of `mean_size` B.
pub fn gbps_to_pps(gbps: f64, mean_size: f64) -> f64 {
    assert!(gbps >= 0.0 && mean_size >= 64.0, "invalid rate/size");
    gbps * 1e9 / ((mean_size + f64::from(WIRE_OVERHEAD_BYTES)) * 8.0)
}

/// A constant-rate arrival schedule in simulated nanoseconds.
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    period_ns: f64,
    next: f64,
}

impl ArrivalSchedule {
    /// Arrivals at `pps` packets per second, first packet at t = 0.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive rate.
    pub fn constant_pps(pps: f64) -> Self {
        assert!(pps > 0.0, "rate must be positive");
        Self {
            period_ns: 1e9 / pps,
            next: 0.0,
        }
    }

    /// Arrivals filling `gbps` of wire with `mean_size`-byte frames.
    pub fn constant_gbps(gbps: f64, mean_size: f64) -> Self {
        Self::constant_pps(gbps_to_pps(gbps, mean_size))
    }

    /// Inter-arrival period in nanoseconds.
    pub fn period_ns(&self) -> f64 {
        self.period_ns
    }

    /// Next arrival timestamp in nanoseconds.
    pub fn next_arrival_ns(&mut self) -> f64 {
        let t = self.next;
        self.next += self.period_ns;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bits_of_min_frame() {
        // 64 + 20 = 84 B = 672 bits.
        assert_eq!(wire_bits(64), 672);
    }

    #[test]
    fn hundred_gig_of_64b_is_148_8_mpps() {
        let pps = gbps_to_pps(100.0, 64.0);
        assert!((pps / 1e6 - 148.8).abs() < 0.1, "got {} Mpps", pps / 1e6);
    }

    #[test]
    fn paper_budget_5_12ns_per_64b_at_100g() {
        // §1: "a server receiving 64 B packets at a link rate of 100 Gbps
        // has only 5.12 ns to process the packet". The paper quotes the
        // frame-only serialisation time (64 B × 8 / 100 Gbps).
        let ns: f64 = 64.0 * 8.0 / 100.0;
        assert!((ns - 5.12).abs() < 1e-9);
    }

    #[test]
    fn schedule_spacing() {
        let mut s = ArrivalSchedule::constant_pps(1000.0);
        assert_eq!(s.next_arrival_ns(), 0.0);
        assert!((s.next_arrival_ns() - 1e6).abs() < 1e-6, "1000 pps = 1 ms");
    }

    #[test]
    fn gbps_schedule_matches_pps() {
        let mut a = ArrivalSchedule::constant_gbps(10.0, 64.0);
        let period = a.period_ns();
        a.next_arrival_ns();
        assert!((a.next_arrival_ns() - period).abs() < 1e-9);
        // 10 Gbps of 64 B frames = 14.88 Mpps => ~67.2 ns period.
        assert!((period - 67.2).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        ArrivalSchedule::constant_pps(0.0);
    }
}
