//! Packet arrival schedules for the load generator.
//!
//! The paper's LoadGen sends either at a fixed packet rate (Table 2:
//! 1000 pps "L", ~4 Mpps "H") or at a target wire rate in Gbps (the
//! 5–100 Gbps sweep of Fig. 15). Wire occupancy of an Ethernet frame is
//! the frame (FCS included) plus 20 B of preamble + inter-frame gap,
//! which is what makes "100 Gbps of 64 B packets" come out at 148.8 Mpps.
//!
//! Open-loop generators (Poisson, burst trains, phase-shifting rate
//! profiles) live in [`crate::openloop`]; everything that emits arrival
//! timestamps implements the [`Arrivals`] trait so run loops can take
//! either family.

/// Preamble + start-of-frame delimiter + inter-frame gap on the wire.
/// Frame sizes are quoted FCS-inclusive (the usual convention behind the
/// "148.8 Mpps of 64 B frames at 100 Gbps" figure).
pub const WIRE_OVERHEAD_BYTES: u32 = 20;

/// Bits one frame of `size` bytes occupies on the wire.
pub fn wire_bits(size: u16) -> u64 {
    u64::from(u32::from(size) + WIRE_OVERHEAD_BYTES) * 8
}

/// Packets per second needed to fill `gbps` with frames of `mean_size` B.
pub fn gbps_to_pps(gbps: f64, mean_size: f64) -> f64 {
    assert!(gbps >= 0.0 && mean_size >= 64.0, "invalid rate/size");
    gbps * 1e9 / ((mean_size + f64::from(WIRE_OVERHEAD_BYTES)) * 8.0)
}

/// Anything that produces a monotone stream of arrival timestamps.
///
/// Implemented by the constant-rate [`ArrivalSchedule`] and by the
/// open-loop [`crate::openloop::OpenLoopGen`] family, so run loops can
/// be written once against `&mut dyn Arrivals`.
pub trait Arrivals {
    /// Next arrival timestamp in simulated nanoseconds. Successive calls
    /// are non-decreasing.
    fn next_arrival_ns(&mut self) -> f64;

    /// The timestamp the next [`Arrivals::next_arrival_ns`] call will
    /// return, without consuming it. Event-driven run loops use this to
    /// schedule the next-arrival event instead of polling per tick; both
    /// in-tree generators already hold the value as state, so peeking is
    /// free and exact (bit-equal to the consuming call).
    fn peek_next_ns(&self) -> f64;
}

/// A constant-rate arrival schedule in simulated nanoseconds.
///
/// # Rounding rule
///
/// The inter-arrival period is rounded **once**, to the nearest integer
/// picosecond (`period_ps = round(1e12 / pps)`); arrival times then
/// accumulate exactly in integer picoseconds. Total drift after `n`
/// arrivals is therefore exactly `n × |period_ps − 1e12/pps|`, bounded
/// by `0.5 ps` per arrival — ≤ 5 µs after 10⁷ arrivals, and exactly
/// zero for any rate whose period is an integer number of picoseconds
/// (e.g. 1000 pps). The previous `f64 +=` accumulation compounded
/// rounding error with the magnitude of the running sum instead.
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    period_ps: u64,
    next_ps: u64,
}

impl ArrivalSchedule {
    /// Arrivals at `pps` packets per second, first packet at t = 0.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive rate.
    pub fn constant_pps(pps: f64) -> Self {
        assert!(pps > 0.0, "rate must be positive");
        let period_ps = (1e12 / pps).round() as u64;
        assert!(period_ps > 0, "rate too high: period rounds to 0 ps");
        Self {
            period_ps,
            next_ps: 0,
        }
    }

    /// Arrivals filling `gbps` of wire with `mean_size`-byte frames.
    pub fn constant_gbps(gbps: f64, mean_size: f64) -> Self {
        Self::constant_pps(gbps_to_pps(gbps, mean_size))
    }

    /// Inter-arrival period in nanoseconds (the rounded-to-ps value that
    /// actually accumulates).
    pub fn period_ns(&self) -> f64 {
        self.period_ps as f64 / 1e3
    }

    /// Next arrival timestamp in nanoseconds.
    pub fn next_arrival_ns(&mut self) -> f64 {
        let t = self.peek_next_ns();
        self.next_ps += self.period_ps;
        t
    }

    /// The next arrival timestamp without consuming it (exactly the
    /// value the next [`ArrivalSchedule::next_arrival_ns`] returns).
    pub fn peek_next_ns(&self) -> f64 {
        self.next_ps as f64 / 1e3
    }
}

impl Arrivals for ArrivalSchedule {
    fn next_arrival_ns(&mut self) -> f64 {
        ArrivalSchedule::next_arrival_ns(self)
    }

    fn peek_next_ns(&self) -> f64 {
        ArrivalSchedule::peek_next_ns(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bits_of_min_frame() {
        // 64 + 20 = 84 B = 672 bits.
        assert_eq!(wire_bits(64), 672);
    }

    #[test]
    fn hundred_gig_of_64b_is_148_8_mpps() {
        let pps = gbps_to_pps(100.0, 64.0);
        assert!((pps / 1e6 - 148.8).abs() < 0.1, "got {} Mpps", pps / 1e6);
    }

    #[test]
    fn paper_budget_5_12ns_per_64b_at_100g() {
        // §1: "a server receiving 64 B packets at a link rate of 100 Gbps
        // has only 5.12 ns to process the packet". The paper quotes the
        // frame-only serialisation time (64 B × 8 / 100 Gbps).
        let ns: f64 = 64.0 * 8.0 / 100.0;
        assert!((ns - 5.12).abs() < 1e-9);
    }

    #[test]
    fn schedule_spacing() {
        let mut s = ArrivalSchedule::constant_pps(1000.0);
        assert_eq!(s.next_arrival_ns(), 0.0);
        assert!((s.next_arrival_ns() - 1e6).abs() < 1e-6, "1000 pps = 1 ms");
    }

    #[test]
    fn gbps_schedule_matches_pps() {
        let mut a = ArrivalSchedule::constant_gbps(10.0, 64.0);
        let period = a.period_ns();
        a.next_arrival_ns();
        assert!((a.next_arrival_ns() - period).abs() < 1e-9);
        // 10 Gbps of 64 B frames = 14.88 Mpps => ~67.2 ns period.
        assert!((period - 67.2).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        ArrivalSchedule::constant_pps(0.0);
    }

    /// Peeking returns exactly what the next consuming call yields and
    /// never advances the schedule.
    #[test]
    fn peek_is_exact_and_non_consuming() {
        let mut s = ArrivalSchedule::constant_gbps(7.0, 123.0);
        for _ in 0..100 {
            let p = s.peek_next_ns();
            assert_eq!(p, s.peek_next_ns());
            assert_eq!(p, s.next_arrival_ns());
        }
    }

    /// Pins the rounding rule: integer-ps accumulation keeps total drift
    /// at 10⁷ arrivals to exactly `n × (rounding error of one period)`.
    #[test]
    fn drift_at_ten_million_arrivals_is_bounded_by_rounding_rule() {
        const N: u64 = 10_000_000;

        // Integer-ps period (1000 pps => 1e9 ps): drift must be *zero*.
        let mut exact = ArrivalSchedule::constant_pps(1000.0);
        for _ in 0..N {
            exact.next_arrival_ns();
        }
        let t = exact.next_arrival_ns();
        assert_eq!(t, N as f64 * 1e6, "integer-ps period must not drift");

        // Fractional period: 3 Gbps of 671 B frames has a period of
        // 691 × 8000/3 ps, not an integer. The exact period is 1e12/pps
        // ps; the schedule rounds it once to the nearest ps, so drift
        // after N arrivals is exactly N × |rounded − exact|, which the
        // rule bounds by 0.5 ps/arrival = 5 µs at 10⁷.
        let pps = gbps_to_pps(3.0, 671.0);
        let exact_period_ps = 1e12 / pps;
        let rounded_ps = exact_period_ps.round();
        let mut s = ArrivalSchedule::constant_pps(pps);
        for _ in 0..N {
            s.next_arrival_ns();
        }
        let got_ns = s.next_arrival_ns();
        let ideal_ns = N as f64 * exact_period_ps / 1e3;
        let predicted_drift_ns = N as f64 * (rounded_ps - exact_period_ps).abs() / 1e3;
        let drift_ns = (got_ns - ideal_ns).abs();
        assert!(
            (drift_ns - predicted_drift_ns).abs() < 1e-3,
            "drift {drift_ns} ns != predicted {predicted_drift_ns} ns"
        );
        assert!(
            drift_ns <= N as f64 * 0.5e-3,
            "drift {drift_ns} ns exceeds the 0.5 ps/arrival bound"
        );
    }
}
