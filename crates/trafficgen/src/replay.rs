//! Replaying recorded arrival structure as an open-loop source.
//!
//! A v2 tracefile carries per-record `arrival_ns` (see
//! [`crate::tracefile`]); [`TraceReplay`] turns that timestamp column
//! into an [`Arrivals`] implementation, so the same open-loop run loops
//! that take an [`crate::OpenLoopGen`] can be driven by a recorded or
//! synthesized trace instead — reproducing the trace's inter-arrival
//! structure exactly (to the 1 ns quantization of the file format).
//!
//! Like every in-tree generator, the adapter holds its next timestamp
//! as plain state: [`Arrivals::peek_next_ns`] is free, exact (bit-equal
//! to the consuming call) and burns no RNG state — there is no RNG.

use crate::arrival::Arrivals;
use crate::tracefile::TimedPacket;

/// Replays a non-decreasing arrival-timestamp sequence, looping with a
/// fixed period when the trace is shorter than the run.
///
/// # Looping rule
///
/// Runs often consume more arrivals than one trace pass holds. On
/// wrap-around the whole trace shifts forward by a fixed
/// `period_ns = last_arrival + mean_gap`, where `mean_gap` is the
/// trace's own mean inter-arrival spacing (rounded to ≥ 1 ns) — so the
/// replayed stream stays non-decreasing and keeps the trace's average
/// rate across passes. The period is computed once, in integer
/// nanoseconds; replay is exact and deterministic.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    arrivals_ns: Vec<u64>,
    period_ns: u64,
    idx: usize,
    base_ns: u64,
}

impl TraceReplay {
    /// An adapter over the arrival column of a timed trace.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace or a decreasing timestamp (a v2 file
    /// records arrivals in stream order, so a well-formed trace is
    /// non-decreasing).
    pub fn new(trace: &[TimedPacket]) -> Self {
        Self::from_arrivals(trace.iter().map(|t| t.arrival_ns).collect())
    }

    /// An adapter over a raw arrival-timestamp sequence in ns.
    ///
    /// # Panics
    ///
    /// Panics on an empty or decreasing sequence.
    pub fn from_arrivals(arrivals_ns: Vec<u64>) -> Self {
        assert!(!arrivals_ns.is_empty(), "cannot replay an empty trace");
        assert!(
            arrivals_ns.windows(2).all(|w| w[0] <= w[1]),
            "trace arrivals must be non-decreasing"
        );
        let first = arrivals_ns[0];
        let last = *arrivals_ns.last().expect("non-empty");
        let n = arrivals_ns.len() as u64;
        let mean_gap = if n > 1 { (last - first) / (n - 1) } else { 0 };
        let period_ns = last + mean_gap.max(1);
        Self {
            arrivals_ns,
            period_ns,
            idx: 0,
            base_ns: 0,
        }
    }

    /// Arrivals in one pass of the trace.
    pub fn len(&self) -> usize {
        self.arrivals_ns.len()
    }

    /// True when the trace holds no arrivals (never: construction
    /// rejects empty traces — provided for the `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.arrivals_ns.is_empty()
    }

    /// The wrap-around period in ns (see the looping rule above).
    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }
}

impl Arrivals for TraceReplay {
    fn next_arrival_ns(&mut self) -> f64 {
        let t = self.peek_next_ns();
        self.idx += 1;
        if self.idx == self.arrivals_ns.len() {
            self.idx = 0;
            self.base_ns += self.period_ns;
        }
        t
    }

    fn peek_next_ns(&self) -> f64 {
        (self.base_ns + self.arrivals_ns[self.idx]) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openloop::OpenLoopGen;
    use crate::trace::{CampusTrace, SizeMix};
    use crate::tracefile::{read_trace_timed_bytes, write_trace_v2};

    #[test]
    fn replays_exact_timestamps_in_order() {
        let mut r = TraceReplay::from_arrivals(vec![5, 10, 10, 42]);
        assert_eq!(r.next_arrival_ns(), 5.0);
        assert_eq!(r.next_arrival_ns(), 10.0);
        assert_eq!(r.next_arrival_ns(), 10.0);
        assert_eq!(r.next_arrival_ns(), 42.0);
    }

    #[test]
    fn wraps_with_mean_gap_period() {
        // arrivals 0, 30, 60: mean gap 30, period 60 + 30 = 90.
        let mut r = TraceReplay::from_arrivals(vec![0, 30, 60]);
        assert_eq!(r.period_ns(), 90);
        let first_pass: Vec<f64> = (0..3).map(|_| r.next_arrival_ns()).collect();
        let second_pass: Vec<f64> = (0..3).map(|_| r.next_arrival_ns()).collect();
        assert_eq!(first_pass, vec![0.0, 30.0, 60.0]);
        assert_eq!(second_pass, vec![90.0, 120.0, 150.0]);
    }

    #[test]
    fn stream_is_non_decreasing_across_many_wraps() {
        let mut r = TraceReplay::from_arrivals(vec![7, 7, 9]);
        let mut last = f64::MIN;
        for _ in 0..1000 {
            let t = r.next_arrival_ns();
            assert!(t >= last);
            last = t;
        }
    }

    /// The [`Arrivals`] peek contract: exact and non-consuming.
    #[test]
    fn peek_is_exact_and_non_consuming() {
        let mut r = TraceReplay::from_arrivals(vec![3, 11, 12, 100]);
        for _ in 0..50 {
            let p = r.peek_next_ns();
            assert_eq!(p, r.peek_next_ns());
            assert_eq!(p, r.next_arrival_ns());
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing_arrivals() {
        TraceReplay::from_arrivals(vec![10, 5]);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn rejects_empty_trace() {
        TraceReplay::from_arrivals(vec![]);
    }

    #[test]
    fn single_arrival_trace_advances_by_at_least_one_ns() {
        let mut r = TraceReplay::from_arrivals(vec![1000]);
        assert_eq!(r.period_ns(), 1001);
        assert_eq!(r.next_arrival_ns(), 1000.0);
        assert_eq!(r.next_arrival_ns(), 2001.0);
    }

    /// Record a Poisson arrival process into a v2 tracefile, replay it,
    /// and check the replayed stream equals the recorded one to the
    /// format's 1 ns quantization.
    #[test]
    fn roundtrip_through_v2_file_reproduces_interarrivals() {
        let mut gen = OpenLoopGen::poisson(2_000_000.0, 9);
        let mut campus = CampusTrace::new(SizeMix::campus(), 32, 9);
        let timed: Vec<TimedPacket> = campus
            .take(500)
            .into_iter()
            .map(|spec| TimedPacket {
                spec,
                arrival_ns: gen.next_arrival_ns() as u64,
            })
            .collect();
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &timed).unwrap();
        let mut replay = TraceReplay::new(&read_trace_timed_bytes(&buf).unwrap());
        for t in &timed {
            assert_eq!(replay.next_arrival_ns(), t.arrival_ns as f64);
        }
    }
}
