//! Workload generation: skewed key distributions, a synthetic campus
//! trace, and packet arrival schedules.
//!
//! The paper's evaluation drives its systems with three workload sources,
//! all reproduced here:
//!
//! * **Zipf-distributed keys** ([`zipf`]): the KVS experiment (Fig. 8)
//!   "used MICA's library to generate skewed (0.99) keys" — MICA in turn
//!   uses the Gray et al. SIGMOD '94 method, implemented in
//!   [`zipf::ZipfGen`].
//! * **A campus packet trace** ([`trace`]): the NFV experiments replay a
//!   real campus trace whose published shape is "26.9 % of frames smaller
//!   than 100 B; 11.8 % between 100 & 500 B; the remaining more than
//!   500 B" (§5). [`trace::CampusTrace`] synthesises a deterministic
//!   trace with that size mix over a realistic flow population, since the
//!   original capture is not redistributable (see DESIGN.md §2).
//! * **Arrival schedules** ([`arrival`]): constant-rate packet pacing at a
//!   given pps or Gbps on the wire, used by the load generator (§5,
//!   Table 2).
//! * **Open-loop generators** ([`openloop`]): Poisson arrivals, burst
//!   trains and phase-shifting rate profiles (ramps, flash crowds) that
//!   keep sending regardless of what the server absorbs — the load
//!   source for the overload/knee studies.
//! * **Phase-shifting key generators** ([`phase`]): non-stationary key
//!   distributions — Zipf hot-set churn, diurnal rotation, flash-crowd
//!   hot keys — indexed by draw count so they compose with any arrival
//!   process or fault plan. The workload source for the §8 hot-set
//!   migration churn studies.
//! * **Trace replay** ([`replay`]): a v2 tracefile records per-packet
//!   `arrival_ns` ([`tracefile`]); [`replay::TraceReplay`] feeds that
//!   timestamp column back through the [`arrival::Arrivals`] trait, so
//!   recorded or synthesized traces drive the open-loop run loops with
//!   their original inter-arrival structure.

pub mod arrival;
pub mod flow;
pub mod openloop;
pub mod phase;
pub mod replay;
pub mod rng;
pub mod trace;
pub mod tracefile;
pub mod zipf;

pub use arrival::{gbps_to_pps, ArrivalSchedule, Arrivals};
pub use flow::FlowTuple;
pub use openloop::{OpenLoopGen, RateProfile};
pub use phase::{FlashCrowd, Phase, PhaseGen, PhaseSchedule};
pub use replay::TraceReplay;
pub use rng::Rng64;
pub use trace::{CampusTrace, PacketSpec, SizeMix};
pub use tracefile::TimedPacket;
pub use zipf::{ZipfConstants, ZipfGen};
