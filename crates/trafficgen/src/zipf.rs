//! Zipf-distributed key generation (Gray et al., SIGMOD '94).
//!
//! The paper's KVS workload uses "MICA's library to generate skewed (0.99)
//! keys in the range of [0, 2^24)" (Fig. 8 caption). MICA's generator is
//! the classic Gray et al. *"Quickly Generating Billion-Record Synthetic
//! Databases"* construction: draw `u ∈ [0,1)`, then map through the
//! incomplete zeta function with two precomputed constants (`eta`,
//! `alpha`), giving amortised O(1) draws for any `n` and skew `theta`.
//!
//! `theta = 0` degenerates to uniform; `theta → 1` concentrates the
//! probability mass on the lowest ranks. Rank 0 is the hottest key; real
//! stores hash ranks to keys, which the KVS crate does separately so the
//! hot set is spread over the key space.

use crate::rng::Rng64;

/// A seeded Zipf(θ) generator over `[0, n)`.
#[derive(Debug, Clone)]
pub struct ZipfGen {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    rng: Rng64,
}

impl ZipfGen {
    /// A generator over `[0, n)` with skew `theta` (0 ⇒ uniform), seeded
    /// deterministically.
    ///
    /// `zeta(n, theta)` is computed once in O(n); for the paper's
    /// `n = 2^24` this is a few milliseconds.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`, `theta < 0` or `theta >= 1` (the Gray et al.
    /// closed form needs θ < 1; the paper uses 0.99).
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "need a non-empty key space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            rng: Rng64::seed_from_u64(seed),
        }
    }

    /// The paper's KVS workload: `2^24` keys, skew 0.99.
    pub fn paper_kvs(seed: u64) -> Self {
        Self::new(1 << 24, 0.99, seed)
    }

    /// Key-space size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Configured skew.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws the next rank in `[0, n)`; rank 0 is the most popular.
    pub fn next_rank(&mut self) -> u64 {
        if self.theta == 0.0 {
            return self.rng.gen_range(0..self.n);
        }
        let u: f64 = self.rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Theoretical probability of rank `k` (for tests/analysis).
    pub fn prob(&self, k: u64) -> f64 {
        assert!(k < self.n);
        if self.theta == 0.0 {
            1.0 / self.n as f64
        } else {
            1.0 / ((k + 1) as f64).powf(self.theta) / self.zetan
        }
    }
}

/// Incomplete zeta: `sum_{i=1..=n} 1 / i^theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mode_covers_space() {
        let mut g = ZipfGen::new(100, 0.0, 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let r = g.next_rank();
            assert!(r < 100);
            seen.insert(r);
        }
        assert!(seen.len() > 95, "uniform draws should cover the space");
    }

    #[test]
    fn skewed_mass_concentrates_on_low_ranks() {
        let mut g = ZipfGen::new(1 << 16, 0.99, 7);
        let draws = 100_000;
        let low = (0..draws).filter(|_| g.next_rank() < 100).count();
        // With theta = 0.99 over 2^16 keys, the top-100 ranks carry roughly
        // 40-50 % of the mass.
        let frac = low as f64 / draws as f64;
        assert!(frac > 0.30, "top-100 mass too small: {frac}");
    }

    #[test]
    fn empirical_top1_matches_theory() {
        let mut g = ZipfGen::new(1 << 16, 0.99, 11);
        let draws = 200_000;
        let hits = (0..draws).filter(|_| g.next_rank() == 0).count();
        let expect = g.prob(0);
        let got = hits as f64 / draws as f64;
        assert!(
            (got - expect).abs() / expect < 0.15,
            "rank-0 frequency {got} vs theoretical {expect}"
        );
    }

    #[test]
    fn ranks_always_in_range() {
        let mut g = ZipfGen::new(10, 0.9, 3);
        for _ in 0..10_000 {
            assert!(g.next_rank() < 10);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut g = ZipfGen::new(1000, 0.99, 42);
            (0..100).map(|_| g.next_rank()).collect()
        };
        let b: Vec<u64> = {
            let mut g = ZipfGen::new(1000, 0.99, 42);
            (0..100).map(|_| g.next_rank()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut g = ZipfGen::new(1000, 0.99, 43);
            (0..100).map(|_| g.next_rank()).collect()
        };
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn probs_sum_to_one() {
        let g = ZipfGen::new(1000, 0.99, 1);
        let total: f64 = (0..1000).map(|k| g.prob(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prob_is_monotone_decreasing() {
        let g = ZipfGen::new(100, 0.5, 1);
        for k in 1..100 {
            assert!(g.prob(k) < g.prob(k - 1));
        }
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn rejects_theta_one() {
        ZipfGen::new(10, 1.0, 0);
    }

    #[test]
    fn single_key_space() {
        let mut g = ZipfGen::new(1, 0.5, 0);
        assert_eq!(g.next_rank(), 0);
    }
}
