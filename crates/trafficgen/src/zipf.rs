//! Zipf-distributed key generation (Gray et al., SIGMOD '94).
//!
//! The paper's KVS workload uses "MICA's library to generate skewed (0.99)
//! keys in the range of [0, 2^24)" (Fig. 8 caption). MICA's generator is
//! the classic Gray et al. *"Quickly Generating Billion-Record Synthetic
//! Databases"* construction: draw `u ∈ [0,1)`, then map through the
//! incomplete zeta function with two precomputed constants (`eta`,
//! `alpha`), giving amortised O(1) draws for any `n` and skew `theta`.
//!
//! `theta = 0` degenerates to uniform; `theta → 1` concentrates the
//! probability mass on the lowest ranks. Rank 0 is the hottest key; real
//! stores hash ranks to keys, which the KVS crate does separately so the
//! hot set is spread over the key space.

use crate::rng::Rng64;
use std::sync::{Mutex, OnceLock};

/// The precomputed Gray et al. constants for one `(n, theta)` pair.
///
/// Computing `zeta(n, theta)` is O(n) — a few milliseconds at the
/// paper's `n = 2^24`, which turns into seconds of redundant setup when
/// every queue/tenant/client builds its own generator over the same key
/// space. The constants depend only on `(n, theta)`, so they are
/// computed once ([`ZipfConstants::compute`]) and shared: either
/// explicitly via [`ZipfGen::from_constants`], or transparently through
/// the process-wide cache consulted by [`ZipfGen::new`]
/// ([`ZipfConstants::shared`]).
///
/// Sharing is bit-transparent: a generator built from cached constants
/// produces draw sequences byte-identical to one that recomputed them,
/// because the cache stores exactly the value `compute` returns (the
/// regression test `shared_constants_draws_are_byte_identical` pins
/// this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfConstants {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfConstants {
    /// Computes the constants from scratch in O(n).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`, `theta < 0` or `theta >= 1` (the Gray et
    /// al. closed form needs θ < 1; the paper uses 0.99).
    pub fn compute(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need a non-empty key space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// The constants for `(n, theta)`, from the process-wide cache —
    /// O(n) the first time a pair is seen, O(distinct pairs) after.
    ///
    /// The cache is a small linear-scan table (a handful of `(n, θ)`
    /// pairs exist per process); `theta` is keyed by its exact bit
    /// pattern, so no two distinct floats ever alias.
    pub fn shared(n: u64, theta: f64) -> Self {
        static CACHE: OnceLock<Mutex<Vec<ZipfConstants>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
        let table = cache.lock().expect("zipf constant cache poisoned");
        if let Some(c) = table
            .iter()
            .find(|c| c.n == n && c.theta.to_bits() == theta.to_bits())
        {
            return *c;
        }
        drop(table); // don't hold the lock across the O(n) compute
        let c = Self::compute(n, theta);
        let mut table = cache.lock().expect("zipf constant cache poisoned");
        if !table
            .iter()
            .any(|e| e.n == n && e.theta.to_bits() == theta.to_bits())
        {
            table.push(c);
        }
        c
    }

    /// Key-space size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Configured skew.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

/// A seeded Zipf(θ) generator over `[0, n)`.
#[derive(Debug, Clone)]
pub struct ZipfGen {
    constants: ZipfConstants,
    rng: Rng64,
}

impl ZipfGen {
    /// A generator over `[0, n)` with skew `theta` (0 ⇒ uniform), seeded
    /// deterministically.
    ///
    /// `zeta(n, theta)` is computed once per distinct `(n, theta)` pair
    /// per process (see [`ZipfConstants::shared`]); building many
    /// generators over the same key space — one per queue, tenant or
    /// client — is O(1) after the first.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`, `theta < 0` or `theta >= 1` (the Gray et al.
    /// closed form needs θ < 1; the paper uses 0.99).
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        Self::from_constants(&ZipfConstants::shared(n, theta), seed)
    }

    /// A generator reusing already-computed [`ZipfConstants`] — the
    /// explicit zero-setup-cost constructor for callers that build one
    /// generator per queue over a shared key space.
    pub fn from_constants(constants: &ZipfConstants, seed: u64) -> Self {
        Self {
            constants: *constants,
            rng: Rng64::seed_from_u64(seed),
        }
    }

    /// The paper's KVS workload: `2^24` keys, skew 0.99.
    pub fn paper_kvs(seed: u64) -> Self {
        Self::new(1 << 24, 0.99, seed)
    }

    /// Key-space size.
    pub fn n(&self) -> u64 {
        self.constants.n
    }

    /// Configured skew.
    pub fn theta(&self) -> f64 {
        self.constants.theta
    }

    /// Draws the next rank in `[0, n)`; rank 0 is the most popular.
    pub fn next_rank(&mut self) -> u64 {
        let c = &self.constants;
        if c.theta == 0.0 {
            return self.rng.gen_range(0..c.n);
        }
        let u: f64 = self.rng.gen_f64();
        let uz = u * c.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(c.theta) {
            return 1;
        }
        let rank = (c.n as f64 * (c.eta * u - c.eta + 1.0).powf(c.alpha)) as u64;
        rank.min(c.n - 1)
    }

    /// Theoretical probability of rank `k` (for tests/analysis).
    pub fn prob(&self, k: u64) -> f64 {
        let c = &self.constants;
        assert!(k < c.n);
        if c.theta == 0.0 {
            1.0 / c.n as f64
        } else {
            1.0 / ((k + 1) as f64).powf(c.theta) / c.zetan
        }
    }
}

/// Incomplete zeta: `sum_{i=1..=n} 1 / i^theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mode_covers_space() {
        let mut g = ZipfGen::new(100, 0.0, 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let r = g.next_rank();
            assert!(r < 100);
            seen.insert(r);
        }
        assert!(seen.len() > 95, "uniform draws should cover the space");
    }

    #[test]
    fn skewed_mass_concentrates_on_low_ranks() {
        let mut g = ZipfGen::new(1 << 16, 0.99, 7);
        let draws = 100_000;
        let low = (0..draws).filter(|_| g.next_rank() < 100).count();
        // With theta = 0.99 over 2^16 keys, the top-100 ranks carry roughly
        // 40-50 % of the mass.
        let frac = low as f64 / draws as f64;
        assert!(frac > 0.30, "top-100 mass too small: {frac}");
    }

    #[test]
    fn empirical_top1_matches_theory() {
        let mut g = ZipfGen::new(1 << 16, 0.99, 11);
        let draws = 200_000;
        let hits = (0..draws).filter(|_| g.next_rank() == 0).count();
        let expect = g.prob(0);
        let got = hits as f64 / draws as f64;
        assert!(
            (got - expect).abs() / expect < 0.15,
            "rank-0 frequency {got} vs theoretical {expect}"
        );
    }

    #[test]
    fn ranks_always_in_range() {
        let mut g = ZipfGen::new(10, 0.9, 3);
        for _ in 0..10_000 {
            assert!(g.next_rank() < 10);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut g = ZipfGen::new(1000, 0.99, 42);
            (0..100).map(|_| g.next_rank()).collect()
        };
        let b: Vec<u64> = {
            let mut g = ZipfGen::new(1000, 0.99, 42);
            (0..100).map(|_| g.next_rank()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut g = ZipfGen::new(1000, 0.99, 43);
            (0..100).map(|_| g.next_rank()).collect()
        };
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn probs_sum_to_one() {
        let g = ZipfGen::new(1000, 0.99, 1);
        let total: f64 = (0..1000).map(|k| g.prob(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prob_is_monotone_decreasing() {
        let g = ZipfGen::new(100, 0.5, 1);
        for k in 1..100 {
            assert!(g.prob(k) < g.prob(k - 1));
        }
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn rejects_theta_one() {
        ZipfGen::new(10, 1.0, 0);
    }

    /// The O(n)-per-generator fix must be bit-transparent: a generator
    /// built from shared/cached constants draws byte-identical rank
    /// sequences to one whose constants were recomputed from scratch.
    #[test]
    fn shared_constants_draws_are_byte_identical() {
        for &(n, theta) in &[(1u64 << 16, 0.99), (1 << 12, 0.5), (977, 0.0)] {
            let fresh = ZipfConstants::compute(n, theta);
            let cached = ZipfConstants::shared(n, theta);
            assert_eq!(
                fresh, cached,
                "cache must store exactly what compute returns"
            );
            assert_eq!(fresh.zetan.to_bits(), cached.zetan.to_bits());
            assert_eq!(fresh.eta.to_bits(), cached.eta.to_bits());
            assert_eq!(fresh.alpha.to_bits(), cached.alpha.to_bits());

            // `new` (cache path) vs `from_constants` over a fresh compute:
            // identical draw sequences, bit for bit.
            let a: Vec<u64> = {
                let mut g = ZipfGen::new(n, theta, 42);
                (0..1000).map(|_| g.next_rank()).collect()
            };
            let b: Vec<u64> = {
                let mut g = ZipfGen::from_constants(&fresh, 42);
                (0..1000).map(|_| g.next_rank()).collect()
            };
            assert_eq!(a, b, "(n={n}, theta={theta})");
        }
    }

    /// Repeated cache hits return the same constants (the cache never
    /// recomputes into a different value) and the second construction
    /// over a cached pair is O(1) — pinned behaviourally, not by timing.
    #[test]
    fn cache_is_stable_across_lookups() {
        let a = ZipfConstants::shared(4321, 0.73);
        let b = ZipfConstants::shared(4321, 0.73);
        assert_eq!(a, b);
        // A different theta bit pattern must not alias.
        let c = ZipfConstants::shared(4321, 0.7300000000000001);
        assert!(c.theta.to_bits() != a.theta.to_bits());
    }

    #[test]
    fn single_key_space() {
        let mut g = ZipfGen::new(1, 0.5, 0);
        assert_eq!(g.next_rank(), 0);
    }
}
