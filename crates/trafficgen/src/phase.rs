//! Phase-shifting key generators: non-stationary workloads whose *key
//! distribution* changes over the run (paper §8's "variability of hot
//! data").
//!
//! [`openloop::RateProfile`](crate::openloop::RateProfile) shifts the
//! arrival *rate* over time; this module shifts *which keys are
//! popular* over the request stream. A [`PhaseSchedule`] partitions the
//! draw sequence into [`Phase`]s — each a span of draws with its own
//! rank-space rotation (Zipf hot-set churn) and optional flash-crowd
//! override (a burst key absorbing a fraction of draws) — and
//! [`PhaseGen`] applies the active phase to every rank a wrapped
//! [`ZipfGen`] emits. A cycling schedule models diurnal rotation: the
//! same phases repeat forever in order.
//!
//! Phases are indexed by *draw count*, not wall time, so a `PhaseGen`
//! composes freely with any arrival process (closed-loop top-ups,
//! [`OpenLoopGen`](crate::openloop::OpenLoopGen) with a `RateProfile`
//! flash, a `FaultPlan` window): the n-th request carries the n-th
//! draw's phase no matter when it is sent. Everything is a pure
//! function of the construction parameters and seeds — repeated runs
//! are bit-identical, and each phase's draw count conserves exactly
//! against the schedule (asserted in `tests/prop.rs`).

use crate::rng::Rng64;
use crate::zipf::ZipfGen;

/// A flash-crowd override active during one phase: `permille`/1000 of
/// the phase's draws are redirected to `rank` (post-rotation rank
/// space), modelling a single suddenly-viral key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashCrowd {
    /// The rank every redirected draw lands on.
    pub rank: u64,
    /// Fraction of draws redirected, in permille.
    pub permille: u32,
}

/// One span of the request stream with a fixed key regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Draws this phase covers.
    pub len: u64,
    /// Rank-space rotation: rank `r` becomes `(r + rotate) mod n`.
    /// Because Zipf popularity attaches to the *rank*, rotating moves
    /// the whole hot set to a different stretch of the key space —
    /// hot-set churn.
    pub rotate: u64,
    /// Optional flash-crowd override for this phase.
    pub flash: Option<FlashCrowd>,
}

impl Phase {
    /// A plain phase of `len` draws with rotation `rotate` and no flash
    /// crowd.
    ///
    /// # Panics
    ///
    /// Panics when `len == 0` (a zero-length phase would be
    /// unreachable, silently breaking per-phase conservation).
    pub fn new(len: u64, rotate: u64) -> Self {
        assert!(len > 0, "phase length must be positive");
        Self {
            len,
            rotate,
            flash: None,
        }
    }

    /// The same phase with a flash crowd redirecting `permille`/1000 of
    /// draws to `rank`.
    ///
    /// # Panics
    ///
    /// Panics when `permille > 1000`.
    #[must_use]
    pub fn with_flash(mut self, rank: u64, permille: u32) -> Self {
        assert!(permille <= 1000, "flash fraction out of range");
        self.flash = Some(FlashCrowd { rank, permille });
        self
    }
}

/// A piecewise schedule over the draw sequence: phase *i* covers draws
/// `[Σ len_0..i, Σ len_0..=i)`. One-shot schedules extend their last
/// phase forever; cycling schedules repeat from the top (diurnal
/// rotation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSchedule {
    phases: Vec<Phase>,
    cycle: bool,
}

impl PhaseSchedule {
    /// A one-shot schedule: after the last phase's span the last phase
    /// stays active forever.
    ///
    /// # Panics
    ///
    /// Panics on an empty phase list.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        Self {
            phases,
            cycle: false,
        }
    }

    /// A cycling schedule: the phases repeat in order forever.
    ///
    /// # Panics
    ///
    /// Panics on an empty phase list.
    pub fn cycling(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        Self {
            phases,
            cycle: true,
        }
    }

    /// Hot-set churn: `phases` spans of `len` draws, each rotating the
    /// rank space by a further `step` — the canonical non-stationary
    /// Zipf workload (the hot set moves to a fresh stretch of the key
    /// space every `len` draws). Cycles, so the rotation pattern
    /// repeats like a schedule of shifts.
    ///
    /// # Panics
    ///
    /// Panics when `phases == 0` (or `len == 0`, via [`Phase::new`]).
    pub fn hot_set_churn(phases: usize, len: u64, step: u64) -> Self {
        assert!(phases > 0, "churn needs at least one phase");
        Self::cycling(
            (0..phases)
                .map(|i| Phase::new(len, step * i as u64))
                .collect(),
        )
    }

    /// The phases, in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total draws covered by one pass over the schedule.
    pub fn total_len(&self) -> u64 {
        self.phases.iter().map(|p| p.len).sum()
    }

    /// Whether the schedule repeats from the top after its last phase.
    pub fn cycles(&self) -> bool {
        self.cycle
    }

    /// The phase index active at draw `idx` (0-based).
    pub fn phase_at(&self, idx: u64) -> usize {
        let total = self.total_len();
        let mut pos = if self.cycle { idx % total } else { idx };
        for (i, p) in self.phases.iter().enumerate() {
            if pos < p.len {
                return i;
            }
            pos -= p.len;
        }
        // One-shot schedule past its end: the last phase extends.
        self.phases.len() - 1
    }
}

/// A [`ZipfGen`] passed through a [`PhaseSchedule`]: the non-stationary
/// key source for churn studies. Deterministic: the rank sequence is a
/// pure function of the wrapped generator's seed, the schedule, and the
/// flash seed.
#[derive(Debug)]
pub struct PhaseGen {
    base: ZipfGen,
    schedule: PhaseSchedule,
    /// Decides per-draw flash redirection; separate from the Zipf
    /// stream so adding a flash crowd to one phase cannot perturb the
    /// ranks drawn in any other phase.
    flash_rng: Rng64,
    drawn: u64,
}

impl PhaseGen {
    /// Wraps `base` in `schedule`. `seed` drives only the flash-crowd
    /// redirection decisions.
    pub fn new(base: ZipfGen, schedule: PhaseSchedule, seed: u64) -> Self {
        Self {
            base,
            schedule,
            flash_rng: Rng64::seed_from_u64(seed),
            drawn: 0,
        }
    }

    /// The wrapped generator's key-space size.
    pub fn n(&self) -> u64 {
        self.base.n()
    }

    /// Draws made so far.
    pub fn drawn(&self) -> u64 {
        self.drawn
    }

    /// The schedule.
    pub fn schedule(&self) -> &PhaseSchedule {
        &self.schedule
    }

    /// The phase index the *next* draw will use.
    pub fn phase_index(&self) -> usize {
        self.schedule.phase_at(self.drawn)
    }

    /// Draws the next rank under the active phase: Zipf draw → rotation
    /// → flash-crowd override.
    pub fn next_rank(&mut self) -> u64 {
        let phase = self.schedule.phases[self.schedule.phase_at(self.drawn)];
        self.drawn += 1;
        let n = self.base.n();
        let mut rank = self.base.next_rank();
        if phase.rotate > 0 {
            rank = (rank + phase.rotate % n) % n;
        }
        if let Some(flash) = phase.flash {
            if self.flash_rng.gen_range(0u32..1000) < flash.permille {
                rank = flash.rank % n;
            }
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_schedule_extends_its_last_phase() {
        let s = PhaseSchedule::new(vec![Phase::new(10, 0), Phase::new(5, 3)]);
        assert_eq!(s.phase_at(0), 0);
        assert_eq!(s.phase_at(9), 0);
        assert_eq!(s.phase_at(10), 1);
        assert_eq!(s.phase_at(14), 1);
        assert_eq!(s.phase_at(15), 1, "last phase extends forever");
        assert_eq!(s.phase_at(1_000_000), 1);
    }

    #[test]
    fn cycling_schedule_wraps() {
        let s = PhaseSchedule::cycling(vec![Phase::new(4, 0), Phase::new(2, 7)]);
        assert_eq!(s.total_len(), 6);
        for i in 0..24u64 {
            let expect = if i % 6 < 4 { 0 } else { 1 };
            assert_eq!(s.phase_at(i), expect, "draw {i}");
        }
    }

    #[test]
    fn rotation_moves_the_zipf_head() {
        // Same Zipf stream, rotated by 100 in phase 1: the head rank
        // must move from 0 to 100 exactly at the phase boundary.
        let n = 1 << 12;
        let schedule = PhaseSchedule::new(vec![Phase::new(4000, 0), Phase::new(4000, 100)]);
        let mut g = PhaseGen::new(ZipfGen::new(n, 0.99, 42), schedule, 7);
        let head = |g: &mut PhaseGen, draws: usize| {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..draws {
                *counts.entry(g.next_rank()).or_insert(0u32) += 1;
            }
            counts.into_iter().max_by_key(|&(k, c)| (c, k)).unwrap().0
        };
        assert_eq!(head(&mut g, 4000), 0);
        assert_eq!(head(&mut g, 4000), 100);
    }

    #[test]
    fn flash_crowd_absorbs_its_share() {
        let schedule = PhaseSchedule::new(vec![Phase::new(10_000, 0).with_flash(99, 300)]);
        let mut g = PhaseGen::new(ZipfGen::new(1 << 10, 0.0, 5), schedule, 11);
        let hits = (0..10_000).filter(|_| g.next_rank() == 99).count();
        // 30 % redirected plus the uniform base rate (~0.1 %).
        assert!((2800..3500).contains(&hits), "flash hits {hits}");
    }

    #[test]
    fn ranks_stay_in_range_under_any_phase() {
        let n = 1000;
        let schedule = PhaseSchedule::cycling(vec![
            Phase::new(50, 0),
            Phase::new(50, 999),
            Phase::new(50, 1234).with_flash(5000, 500),
        ]);
        let mut g = PhaseGen::new(ZipfGen::new(n, 0.9, 3), schedule, 4);
        for _ in 0..2000 {
            assert!(g.next_rank() < n);
        }
    }

    #[test]
    fn flash_in_one_phase_does_not_perturb_other_phases() {
        // The flash RNG is separate from the Zipf stream: phase 0's
        // draws must be identical whether or not phase 1 has a flash.
        let mk = |flash: bool| {
            let p1 = if flash {
                Phase::new(100, 0).with_flash(3, 900)
            } else {
                Phase::new(100, 0)
            };
            let schedule = PhaseSchedule::new(vec![Phase::new(100, 0), p1]);
            PhaseGen::new(ZipfGen::new(1 << 8, 0.99, 9), schedule, 13)
        };
        let (mut a, mut b) = (mk(false), mk(true));
        for i in 0..100 {
            assert_eq!(a.next_rank(), b.next_rank(), "draw {i} in phase 0");
        }
    }

    #[test]
    #[should_panic(expected = "phase length must be positive")]
    fn zero_length_phase_is_rejected() {
        let _ = Phase::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_is_rejected() {
        let _ = PhaseSchedule::new(Vec::new());
    }
}
