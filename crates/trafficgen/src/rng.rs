//! In-tree deterministic PRNG (no external dependencies).
//!
//! Every stochastic component in the workspace — workload generation,
//! replacement policies, fault injection, seeded tests — draws from this
//! one module so the whole simulation is reproducible from a single `u64`
//! seed and builds fully offline.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded through a
//! SplitMix64 expansion of the user seed, which is the standard pairing:
//! SplitMix64 guarantees a well-mixed non-zero state even for adversarial
//! seeds (e.g. 0), and xoshiro256** passes BigCrush while needing only
//! four words of state and a handful of ALU ops per draw.
//!
//! The API mirrors the subset of `rand` the workspace used: seeding from
//! a `u64`, raw draws, floats in `[0, 1)`, and range sampling over the
//! integer types via [`Rng64::gen_range`] (both `a..b` and `a..=b`).

use std::ops::{Range, RangeInclusive};

/// One step of SplitMix64: the seed-expansion generator.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small, fast, deterministic generator (xoshiro256**).
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// A generator whose whole stream is a function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// The next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit draw (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform draw in `[0, n)` without modulo bias (Lemire's
    /// multiply-shift with rejection).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    #[inline]
    pub fn next_bounded(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sample range");
        loop {
            let x = self.next_u64();
            let (hi, lo) = mul_wide(x, n);
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }

    /// Uniform sampling over an integer range, half-open or inclusive.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    #[inline]
    pub fn gen_range<R: RangeSample>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }
}

#[inline]
fn mul_wide(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// Integer ranges [`Rng64::gen_range`] can sample from.
pub trait RangeSample {
    /// The sampled value's type.
    type Out;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng64) -> Self::Out;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for Range<$t> {
            type Out = $t;
            #[inline]
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.next_bounded(span) as $t
            }
        }
        impl RangeSample for RangeInclusive<$t> {
            type Out = $t;
            #[inline]
            fn sample(self, rng: &mut Rng64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty sample range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.next_bounded(span + 1) as $t
            }
        }
    )*};
}

impl_range_sample!(u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = Rng64::seed_from_u64(0);
        // SplitMix64 expansion means state is not all-zero.
        assert_ne!(r.next_u64(), 0, "first draw from seed 0 is non-trivial");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_half_open_hits_all_and_only_members() {
        let mut r = Rng64::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let x = r.gen_range(10usize..15);
            assert!((10..15).contains(&x));
            seen[x - 10] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_reaches_endpoints() {
        let mut r = Rng64::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            let x = r.gen_range(0u32..=7);
            assert!(x <= 7);
            lo_seen |= x == 0;
            hi_seen |= x == 7;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn single_value_ranges() {
        let mut r = Rng64::seed_from_u64(3);
        assert_eq!(r.gen_range(5u64..6), 5);
        assert_eq!(r.gen_range(5u16..=5), 5);
    }

    #[test]
    #[should_panic(expected = "empty sample range")]
    fn empty_range_panics() {
        let mut r = Rng64::seed_from_u64(3);
        let _ = r.gen_range(5usize..5);
    }

    #[test]
    fn bounded_is_unbiased_enough() {
        // Chi-square-ish sanity: 8 buckets over 80k draws stay within 5%.
        let mut r = Rng64::seed_from_u64(13);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.next_bounded(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng64::seed_from_u64(21);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_300..2_700).contains(&hits), "{hits} hits at p=0.25");
    }
}
