//! Flow identity: the classic 5-tuple.

/// An IPv4 5-tuple identifying one transport flow.
///
/// Both steering functions in the `rte` crate (RSS and FlowDirector) and
/// the stateful network functions (NAPT, load balancer) key their state on
/// this type (paper §4, §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
}

impl FlowTuple {
    /// TCP flow tuple.
    pub fn tcp(src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16) -> Self {
        Self {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: 6,
        }
    }

    /// UDP flow tuple.
    pub fn udp(src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16) -> Self {
        Self {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: 17,
        }
    }

    /// The reverse direction of the same conversation.
    pub fn reversed(self) -> Self {
        Self {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_proto() {
        assert_eq!(FlowTuple::tcp(1, 2, 3, 4).proto, 6);
        assert_eq!(FlowTuple::udp(1, 2, 3, 4).proto, 17);
    }

    #[test]
    fn reverse_is_involutive() {
        let f = FlowTuple::tcp(0x0a000001, 1234, 0x0a000002, 80);
        let r = f.reversed();
        assert_eq!(r.src_ip, f.dst_ip);
        assert_eq!(r.dst_port, f.src_port);
        assert_eq!(r.reversed(), f);
    }
}
