//! A synthetic campus trace with the paper's published size mix.
//!
//! §5 describes the real trace used by the evaluation only through its
//! frame-size distribution: *"26.9 % of frames are smaller than 100 B;
//! 11.8 % are between 100 & 500 B; and the remaining frames are more than
//! 500 B"*. [`CampusTrace`] synthesises a deterministic packet stream with
//! exactly that mix, over a Zipf-popular flow population (campus traffic
//! is heavy-hitter dominated), so the RSS/FlowDirector balance and DDIO
//! footprint behave like the original.

use crate::flow::FlowTuple;
use crate::rng::Rng64;
use crate::zipf::ZipfGen;

/// Default Zipf skew of the flow-popularity distribution (calibrated so
/// the NFV experiments sit at the paper's operating point; see
/// EXPERIMENTS.md).
pub const DEFAULT_FLOW_SKEW: f64 = 0.8;

/// One generated packet: its flow, wire size, and payload tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSpec {
    /// Transport 5-tuple.
    pub flow: FlowTuple,
    /// Ethernet frame size in bytes (without FCS), 64..=1500.
    pub size: u16,
    /// Sequence number, also used as a payload tag.
    pub seq: u64,
}

/// Frame-size mix in three classes matching the paper's description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeMix {
    /// Fraction of frames in `[64, 100)` B.
    pub small: f64,
    /// Fraction in `[100, 500)` B.
    pub medium: f64,
    // Remainder is `[500, 1500]` B.
}

impl SizeMix {
    /// The paper's campus trace: 26.9 % small, 11.8 % medium.
    pub fn campus() -> Self {
        Self {
            small: 0.269,
            medium: 0.118,
        }
    }

    /// All frames of one fixed size (Table 2's 64/512/1024/1500 B runs are
    /// generated with [`CampusTrace::fixed_size`] instead, but a degenerate
    /// mix is handy in tests).
    pub fn validate(&self) {
        assert!(
            self.small >= 0.0 && self.medium >= 0.0 && self.small + self.medium <= 1.0,
            "size fractions must form a sub-distribution"
        );
    }
}

/// Deterministic synthetic campus trace generator.
#[derive(Debug)]
pub struct CampusTrace {
    mix: Option<SizeMix>,
    fixed: u16,
    flows: Vec<FlowTuple>,
    flow_pop: ZipfGen,
    rng: Rng64,
    seq: u64,
}

impl CampusTrace {
    /// A mixed-size trace over `flow_count` flows (paper §5 uses the
    /// campus mix at 100 Gbps; the NAPT/LB state tables are exercised by
    /// the flow population).
    ///
    /// # Panics
    ///
    /// Panics when `flow_count == 0` or the mix is not a sub-distribution.
    pub fn new(mix: SizeMix, flow_count: usize, seed: u64) -> Self {
        mix.validate();
        assert!(flow_count > 0, "need at least one flow");
        Self {
            mix: Some(mix),
            fixed: 0,
            flows: build_flows(flow_count, seed),
            // Flow popularity is skewed: a few heavy hitters dominate.
            flow_pop: ZipfGen::new(flow_count as u64, DEFAULT_FLOW_SKEW, seed ^ 0x1111),
            rng: Rng64::seed_from_u64(seed ^ 0x2222),
            seq: 0,
        }
    }

    /// Adjusts the flow-popularity skew (`theta` of the Zipf over flows;
    /// 0 = all flows equally likely). Preserves determinism.
    pub fn with_flow_skew(mut self, theta: f64, seed: u64) -> Self {
        self.flow_pop = ZipfGen::new(self.flows.len() as u64, theta, seed ^ 0x1111);
        self
    }

    /// A fixed-size trace (Table 2's 64/512/1024/1500 B runs).
    ///
    /// # Panics
    ///
    /// Panics when `size` is outside `[64, 1500]` or `flow_count == 0`.
    pub fn fixed_size(size: u16, flow_count: usize, seed: u64) -> Self {
        assert!((64..=1500).contains(&size), "frame size out of range");
        assert!(flow_count > 0, "need at least one flow");
        Self {
            mix: None,
            fixed: size,
            flows: build_flows(flow_count, seed),
            flow_pop: ZipfGen::new(flow_count as u64, DEFAULT_FLOW_SKEW, seed ^ 0x1111),
            rng: Rng64::seed_from_u64(seed ^ 0x2222),
            seq: 0,
        }
    }

    /// Number of distinct flows in the population.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Generates the next packet.
    pub fn next_packet(&mut self) -> PacketSpec {
        let flow = self.flows[self.flow_pop.next_rank() as usize];
        let size = match self.mix {
            None => self.fixed,
            Some(mix) => {
                let u: f64 = self.rng.gen_f64();
                if u < mix.small {
                    self.rng.gen_range(64u16..100)
                } else if u < mix.small + mix.medium {
                    self.rng.gen_range(100u16..500)
                } else {
                    self.rng.gen_range(500u16..=1500)
                }
            }
        };
        let seq = self.seq;
        self.seq += 1;
        PacketSpec { flow, size, seq }
    }

    /// Generates `n` packets.
    pub fn take(&mut self, n: usize) -> Vec<PacketSpec> {
        (0..n).map(|_| self.next_packet()).collect()
    }
}

/// Builds a deterministic flow population: clients in 10.0.0.0/8 talking
/// to servers in 192.168.0.0/16 on common ports.
fn build_flows(count: usize, seed: u64) -> Vec<FlowTuple> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::with_capacity(count);
    while out.len() < count {
        let f = FlowTuple::tcp(
            0x0a00_0000 | rng.gen_range(1u32..=0x00ff_fffe),
            rng.gen_range(1024u16..=65535),
            0xc0a8_0000 | rng.gen_range(1u32..=0xfffe),
            *[80u16, 443, 8080, 53, 5060]
                .get(rng.gen_range(0usize..5))
                .expect("index in range"),
        );
        if seen.insert(f) {
            out.push(f);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_mix_matches_paper_fractions() {
        let mut t = CampusTrace::new(SizeMix::campus(), 1000, 1);
        let n = 100_000;
        let pkts = t.take(n);
        let small = pkts.iter().filter(|p| p.size < 100).count() as f64 / n as f64;
        let medium = pkts.iter().filter(|p| (100..500).contains(&p.size)).count() as f64 / n as f64;
        let large = pkts.iter().filter(|p| p.size >= 500).count() as f64 / n as f64;
        assert!((small - 0.269).abs() < 0.01, "small fraction {small}");
        assert!((medium - 0.118).abs() < 0.01, "medium fraction {medium}");
        assert!((large - 0.613).abs() < 0.01, "large fraction {large}");
    }

    #[test]
    fn sizes_in_valid_ethernet_range() {
        let mut t = CampusTrace::new(SizeMix::campus(), 10, 2);
        for p in t.take(10_000) {
            assert!((64..=1500).contains(&p.size));
        }
    }

    #[test]
    fn fixed_size_trace() {
        let mut t = CampusTrace::fixed_size(64, 16, 3);
        assert!(t.take(1000).iter().all(|p| p.size == 64));
    }

    #[test]
    fn sequence_numbers_are_consecutive() {
        let mut t = CampusTrace::fixed_size(128, 4, 4);
        let pkts = t.take(100);
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.seq, i as u64);
        }
    }

    #[test]
    fn flows_are_heavy_hitter_dominated() {
        let mut t = CampusTrace::new(SizeMix::campus(), 10_000, 5);
        let pkts = t.take(50_000);
        let mut counts = std::collections::HashMap::new();
        for p in &pkts {
            *counts.entry(p.flow).or_insert(0usize) += 1;
        }
        let mut by_count: Vec<usize> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = by_count.iter().take(10).sum();
        assert!(
            top10 as f64 / pkts.len() as f64 > 0.10,
            "top-10 flows should dominate a campus-like trace"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CampusTrace::new(SizeMix::campus(), 100, 9).take(50);
        let b = CampusTrace::new(SizeMix::campus(), 100, 9).take(50);
        assert_eq!(a, b);
    }

    #[test]
    fn flow_population_is_unique() {
        let flows = build_flows(5000, 1);
        let set: std::collections::HashSet<_> = flows.iter().collect();
        assert_eq!(set.len(), flows.len());
    }

    #[test]
    #[should_panic(expected = "frame size out of range")]
    fn rejects_tiny_frames() {
        CampusTrace::fixed_size(32, 1, 0);
    }
}
