//! Shared NIC-side drop accounting.
//!
//! Every application on the engine used to grow its own copy of these
//! counters (`nfv::runtime::DropStats`, `kvs::server::ServerDrops`);
//! this is the common core they now embed. The engine fills one
//! [`NicDrops`] per RX queue and owns the conservation invariant
//! `offered == delivered + Σ dropped[cause]`; applications only add
//! their software-level causes on top.

/// Per-cause NIC/driver drop counters for one queue (or the aggregate
/// over all queues).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicDrops {
    /// No posted descriptor (queue backlogged).
    pub nodesc: u64,
    /// No posted descriptor *because the mbuf pool was starved*
    /// (refills were failing when the frame arrived).
    pub pool_starved: u64,
    /// Packet-rate ceiling exceeded.
    pub overrun: u64,
    /// Hardware CRC failure (corrupt frame or runt).
    pub crc: u64,
    /// Link down at arrival.
    pub link_down: u64,
    /// RX engine stalled.
    pub rx_stall: u64,
    /// Completion ring backed up while descriptors were still posted
    /// (ready-ring overrun under backpressure).
    pub ready_overrun: u64,
    /// Fully processed frames lost because the TX descriptor path was
    /// wedged when the PMD tried to transmit them.
    pub tx_stall: u64,
}

impl NicDrops {
    /// Sum over every cause.
    pub fn total(&self) -> u64 {
        self.nodesc
            + self.pool_starved
            + self.overrun
            + self.crc
            + self.link_down
            + self.rx_stall
            + self.ready_overrun
            + self.tx_stall
    }

    /// Adds `other` into `self`, counter by counter.
    pub fn merge(&mut self, other: &NicDrops) {
        self.nodesc += other.nodesc;
        self.pool_starved += other.pool_starved;
        self.overrun += other.overrun;
        self.crc += other.crc;
        self.link_down += other.link_down;
        self.rx_stall += other.rx_stall;
        self.ready_overrun += other.ready_overrun;
        self.tx_stall += other.tx_stall;
    }

    /// The element-wise sum of a set of per-queue ledgers.
    pub fn sum<'a, I: IntoIterator<Item = &'a NicDrops>>(iter: I) -> NicDrops {
        let mut out = NicDrops::default();
        for d in iter {
            out.merge(d);
        }
        out
    }
}

/// Per-cause admission-control rejections for one queue (or the
/// aggregate): frames the ingress filter shed *before* they consumed a
/// descriptor, split by the [`crate::AdmissionPolicy`] rule that fired.
/// Sits beside [`NicDrops`] in the conservation invariant:
/// `offered + carried == delivered + nic.total() + admit.total() +
/// app_drops + in_flight`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmitDrops {
    /// Shed because the queue's ready backlog was at or above the
    /// policy's threshold.
    pub depth_shed: u64,
    /// Shed because the frame's deadline was already infeasible given
    /// the backlog ahead of it.
    pub deadline_shed: u64,
}

impl AdmitDrops {
    /// Sum over every cause.
    pub fn total(&self) -> u64 {
        self.depth_shed + self.deadline_shed
    }

    /// Adds `other` into `self`, counter by counter.
    pub fn merge(&mut self, other: &AdmitDrops) {
        self.depth_shed += other.depth_shed;
        self.deadline_shed += other.deadline_shed;
    }

    /// The element-wise sum of a set of per-queue ledgers.
    pub fn sum<'a, I: IntoIterator<Item = &'a AdmitDrops>>(iter: I) -> AdmitDrops {
        let mut out = AdmitDrops::default();
        for d in iter {
            out.merge(d);
        }
        out
    }
}

impl std::fmt::Display for AdmitDrops {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "depth_shed={} deadline_shed={}",
            self.depth_shed, self.deadline_shed
        )
    }
}

impl std::fmt::Display for NicDrops {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodesc={} pool_starved={} overrun={} crc={} link_down={} rx_stall={} \
             ready_overrun={} tx_stall={}",
            self.nodesc,
            self.pool_starved,
            self.overrun,
            self.crc,
            self.link_down,
            self.rx_stall,
            self.ready_overrun,
            self.tx_stall
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_every_field() {
        let d = NicDrops {
            nodesc: 1,
            pool_starved: 2,
            overrun: 3,
            crc: 4,
            link_down: 5,
            rx_stall: 6,
            ready_overrun: 7,
            tx_stall: 8,
        };
        assert_eq!(d.total(), 36);
    }

    #[test]
    fn sum_is_elementwise() {
        let a = NicDrops {
            crc: 2,
            tx_stall: 1,
            ..NicDrops::default()
        };
        let b = NicDrops {
            crc: 3,
            nodesc: 4,
            ..NicDrops::default()
        };
        let s = NicDrops::sum([&a, &b]);
        assert_eq!(s.crc, 5);
        assert_eq!(s.nodesc, 4);
        assert_eq!(s.tx_stall, 1);
        assert_eq!(s.total(), a.total() + b.total());
    }

    #[test]
    fn admit_total_and_sum() {
        let a = AdmitDrops {
            depth_shed: 3,
            deadline_shed: 2,
        };
        let b = AdmitDrops {
            depth_shed: 1,
            deadline_shed: 0,
        };
        assert_eq!(a.total(), 5);
        let s = AdmitDrops::sum([&a, &b]);
        assert_eq!(s.depth_shed, 4);
        assert_eq!(s.deadline_shed, 2);
        let disp = s.to_string();
        assert!(disp.contains("depth_shed") && disp.contains("deadline_shed"));
    }

    #[test]
    fn display_names_every_cause() {
        let s = NicDrops::default().to_string();
        for name in [
            "nodesc",
            "pool_starved",
            "overrun",
            "crc",
            "link_down",
            "rx_stall",
            "ready_overrun",
            "tx_stall",
        ] {
            assert!(s.contains(name), "{name} missing from {s}");
        }
    }
}
