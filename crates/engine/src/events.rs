//! The delayed event queue behind the engine's virtual-time scheduler.
//!
//! Simulated time in this workspace flows through `f64` nanoseconds
//! (`Ctx::wall_ns`, `Engine::now_ns`), but ordering events by comparing
//! floats invites precision questions the determinism suites cannot
//! afford. The queue therefore keys every event on an *integer*: the
//! IEEE-754 bit pattern of the (non-negative, finite) time. For
//! non-negative floats the bit order equals the numeric order, so
//! [`time_key`] is an order-preserving, lossless bijection — two times
//! compare under integer `<` exactly as the original `f64`s would, with
//! no rounding anywhere. `kvs::openloop`'s retry-timer heap used this
//! trick locally; this module centralizes it, and both the engine's
//! merge events and the client's arrival/retry/deadline events now ride
//! the same queue type.
//!
//! # Ordering contract
//!
//! Events pop in ascending `(key, sub, seq)` order:
//!
//! 1. **`key`** — the virtual time (integer key, see above).
//! 2. **`sub`** — a caller-chosen sub-priority for same-time events.
//!    The open-loop client uses `0` for arrivals and `1 + op_id` for
//!    retry timers, which reproduces its documented "arrivals win ties,
//!    then timers in op order" rule exactly.
//! 3. **`seq`** — insertion order (FIFO), so same-`(key, sub)` events
//!    are stable and the pop order is a pure function of the push
//!    sequence. Thread scheduling can never reorder it.
//!
//! The unit tests below pin this contract.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// 2^53: the largest f64 exponent range in which every integer
/// nanosecond is exactly representable. Above it, `u64 as f64`
/// conversions (and back) start losing individual nanoseconds.
pub const MAX_EXACT_NS: f64 = 9_007_199_254_740_992.0;

/// Order-preserving integer key for a non-negative finite `f64` time in
/// ns. Lossless: [`time_of_key`] inverts it exactly.
///
/// Debug builds assert the time is non-negative, finite, and below
/// 2^53 ns (~104 days of simulated time) — the range in which f64↔
/// integer-ns conversions elsewhere in the workspace stay exact.
#[inline]
pub fn time_key(t_ns: f64) -> u64 {
    debug_assert!(
        t_ns >= 0.0 && t_ns.is_finite(),
        "virtual time must be non-negative and finite, got {t_ns}"
    );
    debug_assert!(
        t_ns < MAX_EXACT_NS,
        "virtual time {t_ns} ns exceeds 2^53; f64 conversions would lose ns precision"
    );
    // Normalize -0.0 (which passes the >= 0.0 assert) to +0.0 so the
    // key of "time zero" is unique.
    if t_ns == 0.0 {
        0
    } else {
        t_ns.to_bits()
    }
}

/// Inverse of [`time_key`].
#[inline]
pub fn time_of_key(key: u64) -> f64 {
    f64::from_bits(key)
}

/// Asserts (in debug builds) that an integer nanosecond count converts
/// to `f64` without precision loss. Call sites that fold `u64` ns into
/// the f64 clock (fault-window edges, wire deadlines) guard with this.
#[inline]
pub fn debug_assert_exact_ns(ns: u64) {
    debug_assert!(
        (ns as f64) < MAX_EXACT_NS,
        "{ns} ns exceeds 2^53; u64→f64 conversion would lose ns precision"
    );
}

struct Entry<T> {
    key: u64,
    sub: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        // `seq` is unique per queue, so equality of the full triple only
        // ever holds for the same entry — consistent with `Ord`.
        (self.key, self.sub, self.seq) == (other.key, other.sub, other.seq)
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.key, self.sub, self.seq).cmp(&(other.key, other.sub, other.seq))
    }
}

/// A min-queue of delayed events keyed on integer virtual time, with
/// the deterministic tie order documented in the module docs.
pub struct DelayedQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

impl<T> Default for DelayedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DelayedQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at `key` (sub-priority 0).
    pub fn push(&mut self, key: u64, payload: T) {
        self.push_sub(key, 0, payload);
    }

    /// Schedules `payload` at `key` with an explicit same-time
    /// sub-priority.
    pub fn push_sub(&mut self, key: u64, sub: u64, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            key,
            sub,
            seq,
            payload,
        }));
    }

    /// The earliest pending key, if any.
    pub fn peek_key(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.key)
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|Reverse(e)| (e.key, e.payload))
    }

    /// Pops the earliest event only if its key is *strictly* below
    /// `limit`. The strictness matters to the engine: a worker free
    /// exactly *at* a horizon does not participate in that horizon's
    /// epoch (`free_ns < horizon`), so its merge event must not fire
    /// there either.
    pub fn pop_before(&mut self, limit: u64) -> Option<(u64, T)> {
        if self.peek_key()? < limit {
            self.pop()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order() {
        let mut q = DelayedQueue::new();
        q.push(time_key(30.0), "c");
        q.push(time_key(10.0), "a");
        q.push(time_key(20.0), "b");
        assert_eq!(q.pop(), Some((time_key(10.0), "a")));
        assert_eq!(q.pop(), Some((time_key(20.0), "b")));
        assert_eq!(q.pop(), Some((time_key(30.0), "c")));
        assert_eq!(q.pop(), None);
    }

    /// Same-timestamp events with equal sub-priority pop in insertion
    /// (FIFO) order — the documented deterministic tie rule.
    #[test]
    fn same_key_ties_pop_fifo() {
        let mut q = DelayedQueue::new();
        let k = time_key(42.5);
        for i in 0..16 {
            q.push(k, i);
        }
        for i in 0..16 {
            assert_eq!(q.pop(), Some((k, i)), "tie order must be FIFO");
        }
    }

    /// The sub-priority breaks same-timestamp ties before insertion
    /// order does — the client's "arrivals (sub 0) before timers
    /// (sub 1+id), timers in op order" rule.
    #[test]
    fn sub_priority_breaks_ties_before_fifo() {
        let mut q = DelayedQueue::new();
        let k = time_key(100.0);
        q.push_sub(k, 6, "timer-5");
        q.push_sub(k, 4, "timer-3");
        q.push_sub(k, 0, "arrival");
        assert_eq!(q.pop().unwrap().1, "arrival");
        assert_eq!(q.pop().unwrap().1, "timer-3");
        assert_eq!(q.pop().unwrap().1, "timer-5");
    }

    #[test]
    fn pop_before_is_strict() {
        let mut q = DelayedQueue::new();
        q.push(time_key(50.0), ());
        assert_eq!(q.pop_before(time_key(50.0)), None, "key == limit stays");
        assert_eq!(
            q.pop_before(time_key(50.0000001)),
            Some((time_key(50.0), ()))
        );
        assert!(q.is_empty());
    }

    /// The integer key preserves f64 order exactly, including
    /// fractional-ns times that differ by one ULP, and zero is unique.
    #[test]
    fn time_key_is_order_preserving_and_lossless() {
        let times = [
            0.0,
            0.25,
            1.0,
            1.0000000000000002, // 1.0's upward neighbour
            333.3333333333333,
            1e9,
            MAX_EXACT_NS - 1.0,
        ];
        for w in times.windows(2) {
            assert!(
                time_key(w[0]) < time_key(w[1]),
                "{} vs {} keys must preserve order",
                w[0],
                w[1]
            );
        }
        for &t in &times {
            assert_eq!(time_of_key(time_key(t)), t, "lossless round-trip");
        }
        assert_eq!(time_key(-0.0), time_key(0.0), "zero key is unique");
    }

    #[test]
    #[should_panic(expected = "2^53")]
    #[cfg(debug_assertions)]
    fn keys_past_exact_range_are_rejected_in_debug() {
        let _ = time_key(MAX_EXACT_NS * 2.0);
    }
}
