//! A persistent scoped worker pool for parallel epoch execution.
//!
//! `std::thread::scope` spawns fresh OS threads on every call. The
//! engine runs one epoch per offered frame plus one per `step`, so a
//! figure run dispatches hundreds of thousands of epochs — at that
//! rate per-epoch thread spawn/join costs more than the parallelism
//! wins back. This pool spawns its threads once (lazily, at the first
//! multi-worker epoch) and parks them on channels; each epoch sends
//! boxed jobs down the lanes and blocks until every job has signalled
//! completion.
//!
//! Blocking-until-done is what makes the lifetime erasure in
//! [`WorkerPool::run`] sound: no job can outlive the epoch-local
//! borrows it captured, which is exactly the guarantee
//! `std::thread::scope` provides — amortised over the pool's lifetime
//! instead of paid per epoch.
//!
//! Determinism is unaffected by construction: the pool only changes
//! *where* `run_task` executes, never its inputs, and the coordinator
//! reassembles outcomes by task index before the canonical-order merge.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A dispatched job with its borrows erased to `'static`; only ever
/// constructed inside [`WorkerPool::run`], which upholds the erasure's
/// soundness contract.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed set of parked worker threads, one job lane each.
pub(crate) struct WorkerPool {
    lanes: Vec<Sender<Job>>,
    done: Receiver<bool>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `n.max(1)` parked worker threads.
    pub(crate) fn new(n: usize) -> Self {
        let n = n.max(1);
        let (done_tx, done) = channel::<bool>();
        let mut lanes = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::<Job>();
            let done_tx = done_tx.clone();
            handles.push(std::thread::spawn(move || {
                for job in rx {
                    // A panicking job must still signal completion, or
                    // the coordinator would wait forever; the panic is
                    // re-raised on the coordinator side.
                    let ok = catch_unwind(AssertUnwindSafe(job)).is_ok();
                    if done_tx.send(ok).is_err() {
                        break; // coordinator gone: shut down
                    }
                }
            }));
            lanes.push(tx);
        }
        Self {
            lanes,
            done,
            handles,
        }
    }

    /// Number of worker threads.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Runs `jobs` on the pool (job `i` on lane `i % len`) and blocks
    /// until every one of them has finished. Panics if any job
    /// panicked.
    ///
    /// The `'scope` borrows inside each job are erased to `'static` to
    /// cross the channel. This is sound because the function does not
    /// return until every dispatched job has signalled completion
    /// (success or panic), so no job — and no thread executing one —
    /// can observe the captured borrows after `'scope` ends.
    pub(crate) fn run<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        let k = jobs.len();
        for (i, job) in jobs.into_iter().enumerate() {
            // SAFETY: lifetime-only erasure (`'scope` → `'static` on
            // the trait object); the completion loop below keeps this
            // call frame — and therefore every `'scope` borrow — alive
            // until the job has finished running.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
            self.lanes[i % self.lanes.len()]
                .send(job)
                .expect("pool worker thread alive");
        }
        let mut panicked = false;
        for _ in 0..k {
            match self.done.recv() {
                Ok(ok) => panicked |= !ok,
                // All workers gone mid-epoch: treat as a panic.
                Err(_) => panicked = true,
            }
        }
        assert!(!panicked, "engine worker thread panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels makes every worker's `for job in rx`
        // loop end; then reap the threads.
        self.lanes.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_scoped_jobs_to_completion() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.len(), 3);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..10)
            .map(|i| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(i, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 45);
    }

    #[test]
    fn pool_is_reusable_across_epochs() {
        let pool = WorkerPool::new(2);
        let mut data = [0u64; 8];
        for epoch in 0..100 {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = data
                .iter_mut()
                .map(|slot| {
                    Box::new(move || {
                        *slot += epoch;
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(jobs);
        }
        assert!(data.iter().all(|&v| v == (0..100).sum::<u64>()));
    }

    #[test]
    fn job_panic_propagates_to_coordinator() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(|| {}),
            Box::new(|| panic!("boom")),
            Box::new(|| {}),
        ];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(jobs)));
        assert!(err.is_err(), "panic inside a job must re-raise");
        // The pool survives a panicked job and keeps serving.
        let ran = AtomicUsize::new(0);
        pool.run(vec![Box::new(|| {
            ran.fetch_add(1, Ordering::SeqCst);
        })]);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.len(), 1);
    }
}
