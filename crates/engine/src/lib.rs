//! The unified multi-core event engine: one polling loop for every
//! queue application in the workspace.
//!
//! The paper's evaluation (§4–§5) runs every workload — stateless
//! forwarding, stateful service chains, and the KVS — on the same
//! substrate: per-core run-to-completion PMD loops over DDIO-fed RX
//! queues. This crate is that substrate. An application implements
//! [`QueueApp`] (what to do with one received packet, plus an optional
//! `pump` hook for work that does not come from an RX queue, like a
//! pipeline's handoff ring) and the engine supplies everything else:
//!
//! * **Simulated clock.** Each [`WorkerSpec`] (a core, optionally bound
//!   to one RX queue) has a *free-at* timestamp. Workers never run ahead
//!   of the load generator's clock, so queueing emerges naturally: a
//!   busy worker leaves arrivals in the descriptor ring, and when the
//!   ring's posted descriptors run out the NIC drops (`rx_nodesc`) — the
//!   throughput ceiling of Table 3.
//! * **The polling loop.** `rx_burst → on_packet → tx → refill`, with
//!   the idle re-arm that keeps RX rings stocked across transient pool
//!   outages. This is the only PMD loop in the workspace; the NFV
//!   testbed, the pipelined chain, and the multi-queue KVS are all thin
//!   [`QueueApp`]s over it.
//! * **Virtual-time scheduling.** [`Engine::run_until`] does not tick
//!   once per offered frame: a delayed event queue ([`events`]) keyed
//!   on integer virtual time holds each busy worker's next epoch-merge
//!   event, so catch-up calls where no event is due forward the idle
//!   clocks in O(1) instead of dispatching an empty epoch (the
//!   "empty-epoch tax" — see `EngineReport::sched`). The tick-stepper
//!   this replaced is retained as [`Scheduler::ReferenceTick`] and the
//!   differential suites assert both produce bit-identical reports.
//! * **Epoch execution, serial or parallel.** Workers advance in
//!   *epochs*: each active worker runs its polling loop against a
//!   disjoint machine shard ([`llc_sim::epoch`]) and its own RX-queue
//!   view, then the coordinator merges cross-worker effects (LLC event
//!   logs, TX completions, buffer recycling, refills) in canonical
//!   worker order. [`Execution::Serial`] runs the workers inline;
//!   [`Execution::Parallel`] runs the *same* epoch algorithm on a
//!   persistent pool of OS threads (spawned once, dispatched per
//!   epoch — see `pool.rs`) — results are bit-identical by
//!   construction because every cross-worker decision is made at the
//!   worker-ordered merge, never at a thread-scheduling-dependent
//!   moment. The differential test suite (`tests/differential.rs`)
//!   keeps that claim honest.
//! * **Drop accounting.** Per-queue [`NicDrops`] and [`AdmitDrops`]
//!   ledgers plus a per-queue count of application drops. The engine
//!   owns the conservation invariant `offered + carried == delivered +
//!   Σ nic[cause] + Σ admit[cause] + app + in_flight` and asserts it
//!   (globally and per queue) in [`Engine::finish`], cross-checking its
//!   classification against the port's own counters.
//! * **Admission control & backpressure.** A pluggable
//!   [`AdmissionPolicy`] sheds frames at the driver's ingress — before
//!   they consume a descriptor — by queue-depth threshold or deadline
//!   infeasibility ([`Engine::offer_with_deadline`]), and
//!   [`Engine::backpressured`] exposes the explicit per-queue
//!   backpressure signal clients use to stretch retry backoff.
//! * **Fault injection.** [`rte::fault::FaultPlan`] windows — including
//!   the TX-side kinds (`tx_stall`, `ready_overrun`) and per-queue RX
//!   stalls — are drawn per offered frame with the target queue known,
//!   so queue-scoped faults degrade only their queue.
//!
//! Hardware (machine, port, mempool, headroom policy) is *not* owned by
//! the engine; callers pass a [`Hw`] view per call. That keeps warm
//! state (e.g. a KVS store and its LLC contents) reusable across runs,
//! which Fig. 8's warm-then-measure methodology depends on.

pub mod drops;
pub mod events;
mod pool;

pub use drops::{AdmitDrops, NicDrops};
pub use events::{time_key, time_of_key, DelayedQueue};

use llc_sim::epoch::{CoreMem, EpochShard, LlcOp};
use llc_sim::machine::Machine;
use rte::fault::{FaultPlan, FaultState};
use rte::mempool::MbufPool;
use rte::nic::{DropReason, HeadroomPolicy, Port, RxCompletion, RxView, TxDesc};
use trafficgen::FlowTuple;

/// A borrowed view of the hardware the engine drives. The engine owns
/// clocks and ledgers only; machine, port, pool, and headroom policy
/// stay with the caller so they can outlive a run (warm stores, reused
/// ports).
pub struct Hw<'a> {
    /// The simulated machine.
    pub m: &'a mut Machine,
    /// The NIC port whose queues the workers poll.
    pub port: &'a mut Port,
    /// The mbuf pool backing the port's descriptors.
    pub pool: &'a mut MbufPool,
    /// The headroom policy applied on refill (stock or CacheDirector).
    pub policy: &'a mut dyn HeadroomPolicy,
}

/// One worker: a core running the polling loop, optionally bound to one
/// RX queue. Queue-less workers only run their app's [`QueueApp::pump`]
/// hook (e.g. the second stage of a pipelined chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSpec {
    /// The core this worker's cycles are charged to.
    pub core: usize,
    /// The RX queue it polls, if any.
    pub queue: Option<usize>,
}

impl WorkerSpec {
    /// The usual run-to-completion shape: core `c` polls queue `c`.
    pub fn run_to_completion(cores: usize) -> Vec<WorkerSpec> {
        (0..cores)
            .map(|c| WorkerSpec {
                core: c,
                queue: Some(c),
            })
            .collect()
    }
}

/// How worker epochs execute: inline on the calling thread, or fanned
/// out over OS threads. Both modes run the *same* shard/merge algorithm
/// and produce bit-identical results (see the module docs); `Serial` is
/// the reference implementation and the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// Workers run inline, in worker order, on the calling thread.
    #[default]
    Serial,
    /// Workers are distributed round-robin over a persistent pool of
    /// `threads` OS threads (`threads` is clamped to at least 1; the
    /// pool is spawned lazily at the first multi-worker epoch). The
    /// merge is still performed by the calling thread in worker order.
    Parallel {
        /// Number of pool worker threads.
        threads: usize,
    },
}

impl Execution {
    /// `Parallel` with one thread per worker when `parallel` is set,
    /// else `Serial` — the shape the figure binaries' `--parallel` flag
    /// wants.
    pub fn from_flag(parallel: bool, workers: usize) -> Self {
        if parallel {
            Execution::Parallel {
                threads: workers.max(1),
            }
        } else {
            Execution::Serial
        }
    }
}

/// Which scheduler drives [`Engine::run_until`].
///
/// Both schedulers run the *same* epoch algorithm (partition → shard
/// polling → worker-ordered merge → epoch hook) whenever an epoch is
/// dispatched; they differ only in *when* epochs are dispatched. The
/// differential suite (`tests/reference.rs`) asserts their reports are
/// bit-identical, field for field, modulo the [`SchedStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// The virtual-time event scheduler (default): `run_until`
    /// dispatches an epoch only when a busy worker's merge event is due
    /// before the horizon, forwards idle clocks lazily in O(1)
    /// otherwise, and replays the tick-stepper's idle re-arm only when
    /// a starved ring could actually re-post (pool live, outage over).
    #[default]
    EventDriven,
    /// The tick-stepper this engine shipped with: every `run_until`
    /// call dispatches a full epoch — partition, merge walk, epoch
    /// hook — even when no worker is behind the horizon or has work.
    /// Retained as the reference baseline for the differential tests;
    /// `epochs_dispatched` under this scheduler measures the
    /// empty-epoch tax the event scheduler removes.
    ReferenceTick,
}

/// Scheduler observability counters, carried in [`EngineReport`] and
/// accumulated process-wide (see [`sched_totals`]). Identical across
/// [`Execution`] modes — dispatch decisions depend only on simulated
/// state — but *not* across [`Scheduler`] modes, which is their point:
/// the reference tick-stepper dispatches strictly more epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Epochs actually dispatched (partition + merge walk + hook).
    pub epochs_dispatched: u64,
    /// Dispatched epochs in which at least one worker polled (had a
    /// ready completion or backlog behind the horizon). The gap to
    /// `epochs_dispatched` is the empty-epoch tax.
    pub epochs_with_work: u64,
    /// Virtual-time events the scheduler consumed: one per offered
    /// frame (the arrival event, delivered synchronously by `offer`)
    /// plus every epoch-merge event popped from the delayed queue.
    pub events_processed: u64,
}

impl SchedStats {
    fn add_to_totals(self) {
        use std::sync::atomic::Ordering::Relaxed;
        TOTAL_EPOCHS_DISPATCHED.fetch_add(self.epochs_dispatched, Relaxed);
        TOTAL_EPOCHS_WITH_WORK.fetch_add(self.epochs_with_work, Relaxed);
        TOTAL_EVENTS_PROCESSED.fetch_add(self.events_processed, Relaxed);
    }
}

static TOTAL_EPOCHS_DISPATCHED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static TOTAL_EPOCHS_WITH_WORK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static TOTAL_EVENTS_PROCESSED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Process-wide [`SchedStats`] totals, summed over every finished
/// engine in this process. The figure binaries print these to *stderr*
/// at exit so the empty-epoch tax is visible in every run without
/// touching the golden stdout snapshots. Purely observational: totals
/// are atomic sums, so concurrent engines fold in commutatively and
/// per-engine reports stay exact.
pub fn sched_totals() -> SchedStats {
    use std::sync::atomic::Ordering::Relaxed;
    SchedStats {
        epochs_dispatched: TOTAL_EPOCHS_DISPATCHED.load(Relaxed),
        epochs_with_work: TOTAL_EPOCHS_WITH_WORK.load(Relaxed),
        events_processed: TOTAL_EVENTS_PROCESSED.load(Relaxed),
    }
}

/// Resets the process-wide totals (bench harnesses that time several
/// workloads in one process).
pub fn reset_sched_totals() {
    use std::sync::atomic::Ordering::Relaxed;
    TOTAL_EPOCHS_DISPATCHED.store(0, Relaxed);
    TOTAL_EPOCHS_WITH_WORK.store(0, Relaxed);
    TOTAL_EVENTS_PROCESSED.store(0, Relaxed);
}

/// Why the ingress admission filter shed a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The target queue's ready backlog was at or above the policy
    /// threshold.
    QueueDepth,
    /// The frame's deadline could not be met even if it were accepted
    /// (arrival time plus the backlog's estimated service time already
    /// exceeds the deadline).
    Deadline,
}

/// Why [`Engine::offer`] rejected a frame: the NIC/driver dropped it
/// ([`DropReason`]) or the admission filter shed it ([`ShedCause`]).
/// Both land in per-queue ledgers, so either way the conservation
/// invariant keeps balancing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// Dropped inside the NIC/driver model (ring, MAC, link, stalls).
    Nic(DropReason),
    /// Shed by the [`AdmissionPolicy`] before consuming a descriptor.
    Shed(ShedCause),
}

/// The pluggable ingress admission filter: evaluated per offered frame,
/// after wire/MAC-level faults (a frame the link never carried cannot
/// be shed) but *before* descriptor allocation, like a hardware flow
/// rule or an XDP early drop. Rejections land in the per-queue
/// [`AdmitDrops`] ledger.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AdmissionPolicy {
    /// No shedding; every frame proceeds to the ring (the default, and
    /// exactly the pre-admission engine behaviour).
    #[default]
    AcceptAll,
    /// Shed when the target queue's ready backlog has reached
    /// `max_backlog` completions — bounds queue delay at roughly
    /// `max_backlog × service time` under overload.
    QueueDepth {
        /// Backlog threshold (completions waiting in the ready ring).
        max_backlog: usize,
    },
    /// Shed frames whose deadline is already infeasible: the arrival
    /// time plus `(backlog + 1) × est_service_ns` exceeds the frame's
    /// deadline. Frames offered without a deadline are never shed.
    DeadlineInfeasible {
        /// Estimated per-request service time used for the feasibility
        /// projection.
        est_service_ns: f64,
    },
}

impl AdmissionPolicy {
    /// Policy decision for one frame: `Some(cause)` to shed, given the
    /// target queue's ready backlog, the arrival time, and the frame's
    /// absolute deadline (`f64::INFINITY` when it has none).
    fn reject(&self, backlog: usize, t_ns: f64, deadline_ns: f64) -> Option<ShedCause> {
        match *self {
            AdmissionPolicy::AcceptAll => None,
            AdmissionPolicy::QueueDepth { max_backlog } => {
                (backlog >= max_backlog).then_some(ShedCause::QueueDepth)
            }
            AdmissionPolicy::DeadlineInfeasible { est_service_ns } => {
                let projected = t_ns + (backlog + 1) as f64 * est_service_ns;
                (projected > deadline_ns).then_some(ShedCause::Deadline)
            }
        }
    }

    /// The backlog level at which this policy starts shedding (used by
    /// the backpressure signal); `None` when the policy never sheds on
    /// depth alone.
    fn depth_threshold(&self) -> Option<usize> {
        match *self {
            AdmissionPolicy::QueueDepth { max_backlog } => Some(max_backlog),
            _ => None,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The workers (cores × queues).
    pub workers: Vec<WorkerSpec>,
    /// RX descriptors per queue; also the refill target.
    pub queue_depth: usize,
    /// PMD burst size.
    pub burst: usize,
    /// Injected faults.
    pub faults: FaultPlan,
    /// Serial (reference) or parallel epoch execution.
    pub execution: Execution,
    /// Ingress admission filter (default: accept all).
    pub admission: AdmissionPolicy,
    /// Event-driven virtual-time scheduling (default) or the reference
    /// tick-stepper (see [`Scheduler`]).
    pub scheduler: Scheduler,
}

/// What an application decides about one received packet.
#[derive(Debug, Clone, Copy)]
pub enum Verdict {
    /// Transmit this descriptor (the engine counts it as delivered and
    /// recycles the buffer at the epoch merge).
    Tx(TxDesc),
    /// Drop: the engine recycles the buffer and counts one application
    /// drop on the worker's queue. Cause-level accounting is the app's
    /// job (it has richer vocabulary than the engine needs).
    Drop,
    /// The app took ownership of the buffer (e.g. queued it on a
    /// handoff ring). It must eventually resurface as a [`Verdict::Tx`]
    /// from `pump`, a [`Ctx::drop_packet`], or stay counted in flight.
    Consumed,
}

/// Per-poll context handed to the application: the worker's machine
/// shard plus its identity and the wall-clock anchor of the current
/// poll iteration.
pub struct Ctx<'a> {
    /// The worker's timed-memory view (a per-core machine shard during
    /// engine epochs; a whole [`Machine`] in direct/unit-test use).
    pub m: &'a mut (dyn CoreMem + 'a),
    /// The worker's core.
    pub core: usize,
    /// The worker's index in [`EngineConfig::workers`].
    pub worker: usize,
    /// The worker's RX queue, if any.
    pub queue: Option<usize>,
    start_cycles: u64,
    start_ns: f64,
    ns_per_cycle: f64,
    dropped: u64,
    freed: &'a mut Vec<u32>,
}

impl Ctx<'_> {
    /// The current simulated wall clock on this worker's core: the poll
    /// iteration's start plus the cycles burned so far.
    pub fn wall_ns(&self) -> f64 {
        self.start_ns + (self.m.now(self.core) - self.start_cycles) as f64 * self.ns_per_cycle
    }

    /// Recycles `mbuf` (at the epoch merge, in canonical order) and
    /// counts one application drop on this worker's queue — the
    /// explicit form of [`Verdict::Drop`] for packets the app
    /// previously [`Verdict::Consumed`] (e.g. a full handoff ring).
    pub fn drop_packet(&mut self, mbuf: u32) {
        self.freed.push(mbuf);
        self.dropped += 1;
    }
}

/// A queue application: the per-packet half of the polling loop.
///
/// One instance exists *per worker* (the engine takes a `Vec<A>`), so
/// instances own their worker's state outright and can run on worker
/// threads — hence the `Send` bound. Cross-worker state (a shared KVS
/// index, routing tables) must be `Sync`-shared and read-only during
/// epochs; cross-worker *transfers* (pipeline handoff) go through the
/// epoch hook ([`Engine::set_epoch_hook`]).
pub trait QueueApp: Send {
    /// Processes one received packet on `ctx.worker` and decides its
    /// fate. Runs timed work against `ctx.m` on `ctx.core`.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, comp: &RxCompletion) -> Verdict;

    /// Non-RX work for this worker (e.g. draining a handoff ring).
    /// Push transmissions into `tx`; recycle drops with
    /// [`Ctx::drop_packet`]. Returns how many packets moved — it MUST
    /// make progress whenever [`QueueApp::has_backlog`] is true, or the
    /// engine's drain loop cannot terminate.
    fn pump(&mut self, _ctx: &mut Ctx<'_>, _tx: &mut Vec<TxDesc>) -> usize {
        0
    }

    /// Whether this worker has non-RX work pending (see
    /// [`QueueApp::pump`]).
    fn has_backlog(&self) -> bool {
        false
    }
}

/// Coordinator-side context handed to the epoch hook (between epochs,
/// with the machine merged and the pool live).
pub struct MergeCtx<'a> {
    /// The mbuf pool (for recycling buffers the hook drops).
    pub pool: &'a mut MbufPool,
    /// The fully merged machine. Hooks may run *timed* work against it
    /// (e.g. the KVS's §8 hot-set migration swaps): cycles land on the
    /// core they are charged to, exactly as worker-epoch work does, and
    /// because the hook runs on the coordinator in both execution modes
    /// the result stays bit-identical serial vs. parallel.
    pub m: &'a mut Machine,
    app_drops: &'a mut [u64],
}

impl MergeCtx<'_> {
    /// Recycles `mbuf` and counts one application drop on `queue`.
    pub fn drop_packet(&mut self, queue: usize, mbuf: u32) {
        self.pool.put(mbuf);
        self.app_drops[queue] += 1;
    }
}

/// The cross-worker transfer hook, run by the coordinator after every
/// epoch merge: move items between the per-worker apps (e.g. a pipeline
/// stage-1 outbox into stage-2's inbox). Returns how many items moved,
/// which keeps [`Engine::drain`] honest.
pub type EpochHook<A> = Box<dyn FnMut(&mut [A], &mut MergeCtx<'_>) -> usize>;

/// A periodic control-plane hook ([`Engine::set_control_hook`]): the
/// coordinator fires it at every multiple of the control period that a
/// [`Engine::run_until`] horizon crosses, after catching simulated time
/// up to exactly that boundary. The third argument is the boundary time
/// (ns). Unlike the epoch hook — which runs whenever the *scheduler*
/// decides an epoch is due, a cadence that legitimately differs between
/// [`Scheduler::EventDriven`] and [`Scheduler::ReferenceTick`] — the
/// control hook's firing times are a pure function of the horizon
/// sequence, so a controller's decisions stay bit-identical across both
/// schedulers and both execution modes. Hooks may run timed work
/// against `MergeCtx::m`; the cycles are folded into the owning
/// workers' free-at times exactly like epoch-hook time.
pub type ControlHook<A> = Box<dyn FnMut(&mut [A], &mut MergeCtx<'_>, f64)>;

/// Per-queue slice of the final [`EngineReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueLedger {
    /// Frames the load generator offered that steered to this queue.
    pub offered: u64,
    /// Completions a previous run left in this queue's ready ring.
    pub carried: u64,
    /// Frames transmitted by this queue's worker.
    pub delivered: u64,
    /// NIC/driver drops.
    pub nic: NicDrops,
    /// Admission-control sheds.
    pub admit: AdmitDrops,
    /// Application drops.
    pub app_drops: u64,
    /// Completions still in the ready ring at finish.
    pub in_flight: u64,
}

/// What a finished engine run reports. Aggregates satisfy
/// `offered + carried == delivered + nic.total() + admit.total() +
/// app_drops + in_flight`, and each [`QueueLedger`] satisfies the same
/// per queue (both asserted in [`Engine::finish`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Frames offered.
    pub offered: u64,
    /// Completions carried in from a previous run.
    pub carried: u64,
    /// Frames transmitted.
    pub delivered: u64,
    /// Aggregate NIC/driver drops.
    pub nic: NicDrops,
    /// Aggregate admission-control sheds.
    pub admit: AdmitDrops,
    /// Aggregate application drops.
    pub app_drops: u64,
    /// Completions left in ready rings (closed-loop runs end with some).
    pub in_flight: u64,
    /// The per-queue breakdown; sums to the aggregate fields above.
    pub per_queue: Vec<QueueLedger>,
    /// Per-group ledgers when [`Engine::set_queue_groups`] partitioned
    /// the queues (e.g. one group per tenant): entry `g` sums the
    /// ledgers of every queue mapped to group `g`, each satisfying the
    /// same conservation identity (asserted in [`Engine::finish`]), and
    /// the groups together partition the aggregate. Empty when no
    /// grouping was installed.
    pub per_group: Vec<QueueLedger>,
    /// Simulated run duration: the latest worker free-at time, ≥ 1 ns.
    pub duration_ns: f64,
    /// The last offered frame's arrival time.
    pub last_arrival_ns: f64,
    /// Wire bits offered (for Gbps math).
    pub offered_wire_bits: u64,
    /// Wire bits transmitted.
    pub tx_wire_bits: u64,
    /// Scheduler counters for this run. Bit-identical across execution
    /// modes; the only report field that legitimately differs between
    /// [`Scheduler::EventDriven`] and [`Scheduler::ReferenceTick`].
    pub sched: SchedStats,
}

// ---------------------------------------------------------------------
// Epoch worker tasks.
// ---------------------------------------------------------------------

/// Everything one worker needs for one epoch. Crosses the thread
/// boundary in parallel mode, hence the `Send` assertion below.
struct WorkerTask<'a, A: QueueApp> {
    worker: usize,
    core: usize,
    queue: Option<usize>,
    shard: EpochShard<'a>,
    view: Option<RxView<'a>>,
    app: &'a mut A,
    faults: &'a FaultState,
    pool: &'a MbufPool,
    burst: usize,
    ns_per_cycle: f64,
    free_ns: f64,
    /// Poll horizon; `f64::INFINITY` in single-poll (`step`) mode.
    horizon: f64,
    single_poll: bool,
}

/// One poll iteration's deferred cross-worker effects.
struct PollOutcome {
    tx: Vec<TxDesc>,
    /// The TX path was stalled at transmit time: frames are shed
    /// (recycled + counted) instead of committed.
    tx_stalled: bool,
    dropped: u64,
    freed: Vec<u32>,
}

/// What a worker task hands back to the coordinator.
struct TaskOutcome {
    worker: usize,
    polls: Vec<PollOutcome>,
    free_ns: f64,
    ended_idle: bool,
    moved: usize,
    log: Vec<LlcOp>,
}

// Compile-time guarantees that everything crossing the thread boundary
// is `Send` (the parallel dispatcher relies on it; keep these in sync
// with the differential suite's assertions).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    struct ProbeApp;
    impl QueueApp for ProbeApp {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: &RxCompletion) -> Verdict {
            Verdict::Drop
        }
    }
    assert_send::<WorkerTask<'_, ProbeApp>>();
    assert_send::<TaskOutcome>();
    assert_send::<EpochShard<'_>>();
    assert_send::<RxView<'_>>();
};

/// Runs one worker's polling loop for one epoch, entirely against its
/// shard. Identical code in serial and parallel mode — the *only*
/// difference between the modes is which thread this runs on.
fn run_task<A: QueueApp>(mut t: WorkerTask<'_, A>) -> TaskOutcome {
    let mut polls = Vec::new();
    let mut moved_total = 0usize;
    let mut free = t.free_ns;
    let mut ended_idle = false;
    loop {
        if !t.single_poll && free >= t.horizon {
            break;
        }
        let has_rx = t.view.as_ref().is_some_and(|v| v.ready_len() > 0);
        if !has_rx && !t.app.has_backlog() {
            ended_idle = true;
            if !t.single_poll {
                // Idle-poll forward to the horizon; the idle re-arm
                // refill happens at the merge.
                free = t.horizon;
            }
            break;
        }
        let start_cycles = t.shard.now(t.core);
        let start_ns = free;
        let batch = match t.view.as_mut() {
            Some(v) => v.rx_burst(&mut t.shard, t.pool, t.core, t.burst).0,
            None => Vec::new(),
        };
        let mut moved = batch.len();
        let mut tx: Vec<TxDesc> = Vec::with_capacity(batch.len());
        let mut freed: Vec<u32> = Vec::new();
        let dropped;
        {
            let mut ctx = Ctx {
                m: &mut t.shard,
                core: t.core,
                worker: t.worker,
                queue: t.queue,
                start_cycles,
                start_ns,
                ns_per_cycle: t.ns_per_cycle,
                dropped: 0,
                freed: &mut freed,
            };
            for comp in &batch {
                match t.app.on_packet(&mut ctx, comp) {
                    Verdict::Tx(desc) => tx.push(desc),
                    Verdict::Drop => ctx.drop_packet(comp.mbuf),
                    Verdict::Consumed => {}
                }
            }
            moved += t.app.pump(&mut ctx, &mut tx);
            dropped = ctx.dropped;
        }
        let mut tx_stalled = false;
        if !tx.is_empty() {
            let t_tx = start_ns + (t.shard.now(t.core) - start_cycles) as f64 * t.ns_per_cycle;
            if t.faults.tx_stalled(t_tx) {
                // The TX descriptor path is wedged: fully processed
                // frames cannot leave the box; the merge recycles them.
                tx_stalled = true;
            } else {
                rte::nic::tx_wire(&mut t.shard, t.core, &tx);
            }
        }
        let busy = (t.shard.now(t.core) - start_cycles) as f64 * t.ns_per_cycle;
        free = start_ns + busy;
        moved_total += moved;
        polls.push(PollOutcome {
            tx,
            tx_stalled,
            dropped,
            freed,
        });
        if t.single_poll {
            break;
        }
    }
    TaskOutcome {
        worker: t.worker,
        polls,
        free_ns: free,
        ended_idle,
        moved: moved_total,
        log: t.shard.into_log(),
    }
}

/// An engine-internal delayed event (see [`events`]).
enum EngineEvent {
    /// The carried worker index has pending work; an epoch merge is
    /// owed once a catch-up horizon passes its free-at time.
    Merge(usize),
}

/// The engine: clocks, fault state, and drop ledgers around one
/// [`QueueApp`] instance per worker.
pub struct Engine<A: QueueApp> {
    apps: Vec<A>,
    epoch_hook: Option<EpochHook<A>>,
    /// Periodic control-plane hook plus its period and next boundary
    /// (ns). `next_control_ns` only ever advances by whole periods, so
    /// the firing schedule is scheduler-independent.
    control_hook: Option<ControlHook<A>>,
    control_period_ns: f64,
    next_control_ns: f64,
    /// Queue → report-group map ([`Engine::set_queue_groups`]); empty
    /// when ungrouped.
    queue_groups: Vec<usize>,
    cfg: EngineConfig,
    /// Persistent threads for [`Execution::Parallel`], spawned lazily
    /// at the first multi-worker epoch (never in serial mode).
    thread_pool: Option<pool::WorkerPool>,
    /// The virtual-time event queue: at most one pending [`EngineEvent::Merge`]
    /// per worker (deduplicated by `merge_pending`), keyed on the
    /// worker's free-at time via [`events::time_key`]. Unused by
    /// [`Scheduler::ReferenceTick`].
    events: DelayedQueue<EngineEvent>,
    /// Whether worker `w` has a merge event in `events`.
    merge_pending: Vec<bool>,
    /// Queue → polling-worker map (every port queue has exactly one).
    queue_worker: Vec<usize>,
    /// Lazily applied idle-clock forward: every worker's effective
    /// free-at time is `free_ns[w].max(idle_floor)`. Raised in O(1) by
    /// catch-up calls where nothing behind the horizon can change
    /// state; materialized into `free_ns` before any epoch runs.
    idle_floor: f64,
    sched: SchedStats,
    free_ns: Vec<f64>,
    ns_per_cycle: f64,
    faults: FaultState,
    nic: Vec<NicDrops>,
    admit: Vec<AdmitDrops>,
    app_drops: Vec<u64>,
    offered_q: Vec<u64>,
    delivered_q: Vec<u64>,
    carried: Vec<u64>,
    offered: u64,
    delivered: u64,
    offered_wire_bits: u64,
    tx_wire_bits: u64,
    last_arrival_ns: f64,
    base_stats: rte::nic::PortStats,
}

impl<A: QueueApp> Engine<A> {
    /// Assembles the engine around one app instance per worker
    /// (`apps[w]` belongs to `cfg.workers[w]`) and performs the initial
    /// descriptor posting (each queue topped up to `queue_depth` minus
    /// any completions carried over from a previous run — the ring's
    /// slots are shared by posted descriptors and unharvested
    /// completions).
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry: no workers, an app count that
    /// differs from the worker count, zero burst/depth, a worker queue
    /// outside the port, a queue polled by two workers, two workers on
    /// one core (they could not run as disjoint shards), or a port
    /// queue no worker polls.
    pub fn new(apps: Vec<A>, cfg: EngineConfig, hw: &mut Hw<'_>) -> Self {
        assert!(!cfg.workers.is_empty(), "no workers");
        assert_eq!(
            apps.len(),
            cfg.workers.len(),
            "one QueueApp instance per worker"
        );
        assert!(cfg.burst > 0 && cfg.queue_depth > 0, "bad queue geometry");
        let queues = hw.port.num_queues();
        let mut polled = vec![false; queues];
        for (i, w) in cfg.workers.iter().enumerate() {
            assert!(w.core < hw.m.config().cores, "worker core off-machine");
            assert!(
                !cfg.workers[..i].iter().any(|o| o.core == w.core),
                "core {} driven by two workers",
                w.core
            );
            if let Some(q) = w.queue {
                assert!(q < queues, "worker polls a queue the port lacks");
                assert!(!polled[q], "queue {q} polled by two workers");
                polled[q] = true;
            }
        }
        assert!(
            polled.iter().all(|&p| p),
            "every port queue needs a polling worker"
        );
        let carried: Vec<u64> = (0..queues).map(|q| hw.port.ready_count(q) as u64).collect();
        let ns_per_cycle = 1.0 / hw.m.config().freq_ghz;
        let base_stats = hw.port.stats();
        let mut queue_worker = vec![0usize; queues];
        for (w, spec) in cfg.workers.iter().enumerate() {
            if let Some(q) = spec.queue {
                queue_worker[q] = w;
            }
        }
        let workers = cfg.workers.len();
        let mut eng = Self {
            events: DelayedQueue::new(),
            merge_pending: vec![false; workers],
            queue_worker,
            idle_floor: 0.0,
            sched: SchedStats::default(),
            free_ns: vec![0.0; cfg.workers.len()],
            ns_per_cycle,
            faults: FaultState::new(cfg.faults.clone()),
            nic: vec![NicDrops::default(); queues],
            admit: vec![AdmitDrops::default(); queues],
            app_drops: vec![0; queues],
            offered_q: vec![0; queues],
            delivered_q: vec![0; queues],
            carried,
            offered: 0,
            delivered: 0,
            offered_wire_bits: 0,
            tx_wire_bits: 0,
            last_arrival_ns: 0.0,
            base_stats,
            apps,
            epoch_hook: None,
            control_hook: None,
            control_period_ns: 0.0,
            next_control_ns: f64::INFINITY,
            queue_groups: Vec::new(),
            cfg,
            thread_pool: None,
        };
        for w in 0..eng.cfg.workers.len() {
            if let Some(q) = eng.cfg.workers[w].queue {
                let core = eng.cfg.workers[w].core;
                let target = eng.cfg.queue_depth - hw.port.ready_count(q);
                hw.port.refill(hw.m, hw.pool, q, core, hw.policy, target);
            }
        }
        // Completions carried in from a previous run make their workers
        // busy from time zero — they owe a merge before any horizon.
        for w in 0..eng.cfg.workers.len() {
            if eng.worker_busy(hw, w) {
                eng.note_merge_due(w);
            }
        }
        eng
    }

    /// Installs the cross-worker transfer hook, run after every epoch
    /// merge (see [`EpochHook`]).
    pub fn set_epoch_hook(&mut self, hook: EpochHook<A>) {
        self.epoch_hook = Some(hook);
    }

    /// Installs a periodic control-plane hook (see [`ControlHook`]),
    /// fired at every multiple of `period_ns` a [`Engine::run_until`]
    /// horizon crosses — the first boundary is `period_ns` itself.
    /// [`Engine::step`]/[`Engine::drain`] do not advance the boundary
    /// clock; a harness that wants control decisions over the drain
    /// tail must `run_until` past it first.
    ///
    /// # Panics
    ///
    /// Panics when `period_ns` is not positive and finite.
    pub fn set_control_hook(&mut self, period_ns: f64, hook: ControlHook<A>) {
        assert!(
            period_ns.is_finite() && period_ns > 0.0,
            "control period must be positive and finite"
        );
        self.control_hook = Some(hook);
        self.control_period_ns = period_ns;
        self.next_control_ns = period_ns;
    }

    /// Partitions the port's queues into report groups: `groups[q]` is
    /// the group of queue `q` (group ids must be dense, `0..max+1`).
    /// [`Engine::finish`] then emits one summed [`QueueLedger`] per
    /// group in [`EngineReport::per_group`] and asserts the
    /// conservation identity for each — the per-tenant double-entry
    /// ledgers of the multi-tenant studies.
    ///
    /// # Panics
    ///
    /// Panics when `groups` does not cover every queue exactly once or
    /// the group ids are not dense.
    pub fn set_queue_groups(&mut self, groups: Vec<usize>) {
        assert_eq!(groups.len(), self.nic.len(), "one group id per port queue");
        let n = groups.iter().max().map_or(0, |&g| g + 1);
        for g in 0..n {
            assert!(
                groups.contains(&g),
                "group ids must be dense: {g} of {n} unused"
            );
        }
        self.queue_groups = groups;
    }

    /// Worker `w`'s application (inspection).
    pub fn app(&self, w: usize) -> &A {
        &self.apps[w]
    }

    /// All per-worker applications (inspection).
    pub fn apps(&self) -> &[A] {
        &self.apps
    }

    /// Worker `w`'s application (mutation between polls).
    pub fn app_mut(&mut self, w: usize) -> &mut A {
        &mut self.apps[w]
    }

    /// The global simulated clock: the latest worker free-at time
    /// (including any lazily forwarded idle time).
    pub fn now_ns(&self) -> f64 {
        self.free_ns.iter().copied().fold(self.idle_floor, f64::max)
    }

    /// Worker `w`'s effective free-at time (lazy idle forward applied).
    fn eff_free(&self, w: usize) -> f64 {
        self.free_ns[w].max(self.idle_floor)
    }

    /// Whether worker `w` has pending work: a completion waiting in its
    /// RX queue, or application backlog. The same predicate
    /// `run_epoch`'s partition uses.
    fn worker_busy(&self, hw: &Hw<'_>, w: usize) -> bool {
        self.cfg.workers[w]
            .queue
            .is_some_and(|q| hw.port.ready_count(q) > 0)
            || self.apps[w].has_backlog()
    }

    /// Records that worker `w` owes an epoch merge: schedules its merge
    /// event at its effective free-at time (at most one pending event
    /// per worker).
    fn note_merge_due(&mut self, w: usize) {
        if self.cfg.scheduler == Scheduler::ReferenceTick || self.merge_pending[w] {
            return;
        }
        self.merge_pending[w] = true;
        self.events
            .push(events::time_key(self.eff_free(w)), EngineEvent::Merge(w));
    }

    /// Re-schedules merge events for every still-busy worker. Runs
    /// after each dispatched epoch (and after `step`'s clock sync, so
    /// keys reflect the synced clocks).
    fn resched_merges(&mut self, hw: &Hw<'_>) {
        if self.cfg.scheduler == Scheduler::ReferenceTick {
            return;
        }
        for w in 0..self.cfg.workers.len() {
            if !self.merge_pending[w] && self.worker_busy(hw, w) {
                self.note_merge_due(w);
            }
        }
    }

    /// Applies the lazy idle forward to the per-worker clocks (before
    /// any code that reads `free_ns` directly: epoch partitions, poll
    /// start times).
    fn materialize_floor(&mut self) {
        if self.idle_floor > 0.0 {
            for f in &mut self.free_ns {
                if *f < self.idle_floor {
                    *f = self.idle_floor;
                }
            }
        }
    }

    /// Whether advancing idle workers to `h` would do more than forward
    /// their clocks: true when some worker behind the horizon polls an
    /// under-posted ring *and* the pool could actually supply a refill
    /// (a starved refill during a pool outage is a pure no-op —
    /// `MbufPool::get` under outage has no side effects). When false,
    /// the tick-stepper's whole idle branch reduces to "set every
    /// behind clock to `h`", which [`Engine::idle_advance`] defers in
    /// O(1) via `idle_floor`.
    fn idle_rearm_needed(&self, hw: &Hw<'_>, h: f64) -> bool {
        if hw.pool.in_outage() || hw.pool.available() == 0 {
            return false;
        }
        self.cfg.workers.iter().enumerate().any(|(w, spec)| {
            self.eff_free(w) < h
                && spec
                    .queue
                    .is_some_and(|q| hw.port.posted_count(q) < self.cfg.queue_depth)
        })
    }

    /// Frames offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Frames transmitted so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Offers one frame at `t_ns`: routes it, draws its faults (with
    /// the target queue known, so queue-scoped windows apply), lets the
    /// workers catch up to the present, then delivers through the NIC.
    /// Every failure is classified into the per-queue ledgers; the
    /// `Err` is returned so closed-loop callers can back off. Frames
    /// offered this way carry no deadline — see
    /// [`Engine::offer_with_deadline`].
    pub fn offer(
        &mut self,
        hw: &mut Hw<'_>,
        flow: &FlowTuple,
        frame: &[u8],
        t_ns: f64,
    ) -> Result<usize, Rejection> {
        self.offer_with_deadline(hw, flow, frame, t_ns, f64::INFINITY)
    }

    /// [`Engine::offer`] for a frame that must complete by the absolute
    /// simulated time `deadline_ns`. The deadline feeds the
    /// [`AdmissionPolicy::DeadlineInfeasible`] filter; it is *not*
    /// carried into the frame (applications encode deadlines in their
    /// own wire formats, e.g. `kvs::proto`).
    pub fn offer_with_deadline(
        &mut self,
        hw: &mut Hw<'_>,
        flow: &FlowTuple,
        frame: &[u8],
        t_ns: f64,
        deadline_ns: f64,
    ) -> Result<usize, Rejection> {
        let (q, mark) = hw.port.route(flow);
        // Draw this frame's faults before the catch-up: a pool-exhaustion
        // window must already be in force while the workers run to the
        // arrival (their refills are what the outage starves). Shed
        // frames draw too, so the admission policy never shifts the
        // fault sequence of later frames.
        let fault = self.faults.draw_for_queue(t_ns, q);
        hw.pool.set_outage(fault.pool_blocked);
        self.run_until(hw, t_ns);
        // An arrival is processed synchronously at its own virtual time
        // — it counts as an event without ever sitting in the queue.
        self.sched.events_processed += 1;
        self.offered += 1;
        self.offered_q[q] += 1;
        self.offered_wire_bits += trafficgen::arrival::wire_bits(frame.len() as u16);
        self.last_arrival_ns = self.last_arrival_ns.max(t_ns);
        // The admission filter sits in the driver's ingress path: after
        // the wire and MAC stages (a frame the link dropped, the RX
        // engine stalled on, or that failed CRC never reaches it) but
        // before descriptor allocation, so sheds are cheap — no mbuf,
        // no ring slot.
        let wire_lost = fault.link_down || fault.stall || fault.corrupt;
        if !wire_lost {
            let backlog = hw.port.ready_count(q);
            if let Some(cause) = self.cfg.admission.reject(backlog, t_ns, deadline_ns) {
                match cause {
                    ShedCause::QueueDepth => self.admit[q].depth_shed += 1,
                    ShedCause::Deadline => self.admit[q].deadline_shed += 1,
                }
                return Err(Rejection::Shed(cause));
            }
        }
        match hw.port.deliver_routed(hw.m, frame, q, mark, t_ns, fault) {
            Ok(()) => {
                // The completion just made `q`'s polling worker busy; it
                // owes a merge once a horizon passes its free-at time.
                self.note_merge_due(self.queue_worker[q]);
                Ok(q)
            }
            Err(reason) => {
                let n = &mut self.nic[q];
                match reason {
                    DropReason::NoDescriptor => {
                        // The NIC only sees the ring; the engine knows
                        // whether descriptors were missing because the
                        // *pool* was dry.
                        if hw.pool.in_outage() || hw.pool.available() == 0 {
                            n.pool_starved += 1;
                        } else {
                            n.nodesc += 1;
                        }
                    }
                    DropReason::Overrun => n.overrun += 1,
                    DropReason::CrcError => n.crc += 1,
                    DropReason::LinkDown => n.link_down += 1,
                    DropReason::RxStall => n.rx_stall += 1,
                    DropReason::ReadyOverrun => n.ready_overrun += 1,
                }
                Err(Rejection::Nic(reason))
            }
        }
    }

    /// The explicit backpressure signal for queue `q`: true when the
    /// next no-deadline offer would be shed by the admission policy, or
    /// when the ready ring is full (so the NIC would drop it anyway).
    /// Clients use this to stretch their retry backoff instead of
    /// hammering a saturated queue.
    pub fn backpressured(&self, hw: &Hw<'_>, q: usize) -> bool {
        let backlog = hw.port.ready_count(q);
        let threshold = self
            .cfg
            .admission
            .depth_threshold()
            .unwrap_or(self.cfg.queue_depth)
            .min(self.cfg.queue_depth);
        backlog >= threshold
    }

    /// Runs every worker's polling loop until simulated time `until_ns`
    /// — one epoch: workers run on disjoint shards to the horizon, then
    /// the coordinator merges in worker order. Cross-worker handoff
    /// (the epoch hook) is applied once, after the merge, so pipeline
    /// stages see each other's output with epoch granularity.
    ///
    /// Under [`Scheduler::EventDriven`] (the default) the epoch is
    /// dispatched only when the event queue says a worker actually owes
    /// work before the horizon; otherwise simulated time jumps to
    /// `until_ns` without one. The resulting [`EngineReport`] is
    /// bit-identical either way (only [`EngineReport::sched`] differs)
    /// — `crates/engine/tests/reference.rs` pins this.
    /// With a control hook installed ([`Engine::set_control_hook`]) the
    /// horizon is segmented at control boundaries: catch up to each
    /// crossed multiple of the period, fire the hook there, and only
    /// then continue — so the controller observes the machine at exact,
    /// scheduler-independent virtual times.
    pub fn run_until(&mut self, hw: &mut Hw<'_>, until_ns: f64) {
        if self.control_hook.is_some() {
            while self.next_control_ns <= until_ns {
                let boundary = self.next_control_ns;
                self.catch_up(hw, boundary);
                self.fire_control(hw, boundary);
                self.next_control_ns += self.control_period_ns;
            }
        }
        self.catch_up(hw, until_ns);
    }

    /// Scheduler-dispatched catch-up to one horizon (the whole of
    /// `run_until` when no control hook is installed).
    fn catch_up(&mut self, hw: &mut Hw<'_>, until_ns: f64) {
        match self.cfg.scheduler {
            Scheduler::ReferenceTick => {
                self.run_epoch(hw, until_ns, false);
            }
            Scheduler::EventDriven => self.advance_to(hw, until_ns),
        }
    }

    /// Fires the control hook at boundary time `t`, folding any timed
    /// work it ran into the owning workers' free-at times (the same
    /// accounting as epoch-hook time, see `run_epoch`).
    fn fire_control(&mut self, hw: &mut Hw<'_>, t: f64) {
        let Some(mut hook) = self.control_hook.take() else {
            return;
        };
        self.materialize_floor();
        let before: Vec<u64> = (0..self.cfg.workers.len())
            .map(|w| hw.m.now(self.cfg.workers[w].core))
            .collect();
        let mut mc = MergeCtx {
            pool: hw.pool,
            m: hw.m,
            app_drops: &mut self.app_drops,
        };
        hook(&mut self.apps, &mut mc, t);
        for (w, &start) in before.iter().enumerate() {
            let delta = hw.m.now(self.cfg.workers[w].core) - start;
            if delta > 0 {
                self.free_ns[w] += delta as f64 * self.ns_per_cycle;
            }
        }
        self.control_hook = Some(hook);
        // The hook may have created backlog (or consumed it); re-key
        // merge events against the workers' current state.
        self.resched_merges(hw);
    }

    /// Event-driven catch-up to horizon `h`, equivalent to
    /// `run_epoch(h, false)` in everything but wall-clock:
    ///
    /// 1. **Fast path** — every worker already free at (or past) `h`:
    ///    the tick-stepper's partition would be empty on both sides
    ///    (`free_ns < horizon` is strict), so the whole epoch was the
    ///    post-merge hook — and the epoch-hook contract (DESIGN.md §3f)
    ///    makes hooks at workless epochs no-ops. O(1) return.
    /// 2. **Merge due** — a pending merge event fires strictly before
    ///    `h`: some worker is busy behind the horizon, so dispatch a
    ///    real epoch. Event keys can be stale (a worker's clock moves
    ///    after its event is pushed, e.g. by `step`'s sync); popped
    ///    events are therefore validated against the worker's *current*
    ///    state — dropped if it is no longer busy, re-keyed if its
    ///    free-at time moved past `h`. Staleness only ever delays a
    ///    key, never advances it past the work (clocks are monotone and
    ///    keys are pushed when the work appears), so a busy worker
    ///    behind `h` always has an event before `h`: the dispatch
    ///    decision exactly matches the tick-stepper's partition.
    /// 3. **Idle advance** — nobody owes work before `h`: the
    ///    tick-stepper would only forward clocks and re-arm under-posted
    ///    rings of idle workers. Run that re-arm pass for real when it
    ///    would do something ([`Engine::idle_rearm_needed`]), else
    ///    defer the clock forward in O(1) via `idle_floor`.
    fn advance_to(&mut self, hw: &mut Hw<'_>, h: f64) {
        let raw_min = self.free_ns.iter().copied().fold(f64::INFINITY, f64::min);
        if h <= raw_min.max(self.idle_floor) {
            return;
        }
        let limit = events::time_key(h);
        let mut due = false;
        while let Some((_, EngineEvent::Merge(w))) = self.events.pop_before(limit) {
            self.sched.events_processed += 1;
            self.merge_pending[w] = false;
            if !self.worker_busy(hw, w) {
                // Stale: the pending work this event announced was
                // already consumed by an earlier epoch or `step`.
                continue;
            }
            if self.eff_free(w) < h {
                due = true;
            } else {
                // Still busy, but its clock was synced past the horizon
                // (`step`); re-key at the current free-at time.
                self.note_merge_due(w);
            }
        }
        if due {
            self.materialize_floor();
            self.run_epoch(hw, h, false);
            self.resched_merges(hw);
        } else {
            self.idle_advance(hw, h);
        }
    }

    /// Advances simulated time to `h` with no worker busy behind it.
    /// When an idle re-arm could take effect, replicates the
    /// tick-stepper's idle branch verbatim (forward every behind clock
    /// to `h`, topping up each such worker's under-posted ring first);
    /// otherwise just raises `idle_floor`.
    fn idle_advance(&mut self, hw: &mut Hw<'_>, h: f64) {
        if !self.idle_rearm_needed(hw, h) {
            self.idle_floor = h;
            return;
        }
        self.materialize_floor();
        for w in 0..self.cfg.workers.len() {
            if self.free_ns[w] >= h {
                continue;
            }
            let spec = self.cfg.workers[w];
            if let Some(q) = spec.queue {
                if hw.port.posted_count(q) < self.cfg.queue_depth {
                    hw.port
                        .refill(hw.m, hw.pool, q, spec.core, hw.policy, self.cfg.queue_depth);
                }
            }
            self.free_ns[w] = h;
        }
    }

    /// One poll round over every worker with pending work, then a clock
    /// sync: all workers advance to the latest free-at time. Closed-loop
    /// callers alternate `offer(.., now_ns())` top-ups with `step`, and
    /// the sync guarantees those offers never trigger catch-up
    /// processing mid-top-up. Returns how many packets moved; zero means
    /// the engine is drained (or wedged by faults) and the caller should
    /// stop.
    pub fn step(&mut self, hw: &mut Hw<'_>) -> usize {
        let moved = self.run_epoch(hw, f64::INFINITY, true);
        let now = self.now_ns();
        for f in &mut self.free_ns {
            *f = now;
        }
        // The sync moved every clock; any worker still holding work owes
        // a merge keyed at the synced time.
        self.resched_merges(hw);
        moved
    }

    /// Polls until no worker moves a packet (open-loop tail drain).
    pub fn drain(&mut self, hw: &mut Hw<'_>) {
        while self.step(hw) > 0 {}
    }

    /// One epoch: partition, run (inline or on threads), merge.
    ///
    /// In horizon mode (`single_poll == false`) every worker behind
    /// `horizon_ns` participates and polls until it runs dry or reaches
    /// the horizon. In single-poll mode (`step`) every worker with
    /// pending work polls exactly once. Returns packets moved.
    fn run_epoch(&mut self, hw: &mut Hw<'_>, horizon_ns: f64, single_poll: bool) -> usize {
        // The partition (and the poll start times handed to tasks) read
        // the raw clocks; fold any deferred idle forward in first.
        self.materialize_floor();
        self.sched.epochs_dispatched += 1;
        // Partition the workers: `active` get shards and run the loop;
        // `idle` (behind the horizon with nothing to do) only get the
        // idle re-arm refill at the merge.
        let mut active: Vec<usize> = Vec::new();
        let mut idle: Vec<usize> = Vec::new();
        for w in 0..self.cfg.workers.len() {
            let spec = self.cfg.workers[w];
            let busy = spec.queue.is_some_and(|q| hw.port.ready_count(q) > 0)
                || self.apps[w].has_backlog();
            if busy && (single_poll || self.free_ns[w] < horizon_ns) {
                active.push(w);
            } else if !single_poll && self.free_ns[w] < horizon_ns {
                idle.push(w);
            }
        }
        if !active.is_empty() {
            self.sched.epochs_with_work += 1;
        }
        let outcomes: Vec<TaskOutcome> = if active.is_empty() {
            Vec::new()
        } else {
            let cores: Vec<usize> = active.iter().map(|&w| self.cfg.workers[w].core).collect();
            let shards = hw.m.epoch_shards(&cores);
            let mut views: Vec<Option<RxView<'_>>> =
                hw.port.rx_views().into_iter().map(Some).collect();
            let mut apps: Vec<Option<&mut A>> = self.apps.iter_mut().map(Some).collect();
            let faults = &self.faults;
            let pool: &MbufPool = hw.pool;
            let tasks: Vec<WorkerTask<'_, A>> = active
                .iter()
                .zip(shards)
                .map(|(&w, shard)| {
                    let spec = self.cfg.workers[w];
                    WorkerTask {
                        worker: w,
                        core: spec.core,
                        queue: spec.queue,
                        shard,
                        view: spec.queue.and_then(|q| views[q].take()),
                        app: apps[w].take().expect("worker split"),
                        faults,
                        pool,
                        burst: self.cfg.burst,
                        ns_per_cycle: self.ns_per_cycle,
                        free_ns: self.free_ns[w],
                        horizon: horizon_ns,
                        single_poll,
                    }
                })
                .collect();
            match self.cfg.execution {
                Execution::Serial => tasks.into_iter().map(run_task).collect(),
                Execution::Parallel { threads } => {
                    let n = threads.max(1).min(tasks.len());
                    if n == 1 {
                        // A single active worker (or a one-thread
                        // request) gains nothing from dispatch; run it
                        // inline. Where a task runs never changes its
                        // outcome, so this is invisible in the results.
                        tasks.into_iter().map(run_task).collect()
                    } else {
                        // Round-robin by *position in the active list*
                        // — a pure function of worker indices, never of
                        // thread scheduling — and reassemble outcomes
                        // by position, so any thread count yields the
                        // same merge order.
                        let mut buckets: Vec<Vec<(usize, WorkerTask<'_, A>)>> =
                            (0..n).map(|_| Vec::new()).collect();
                        for (i, t) in tasks.into_iter().enumerate() {
                            buckets[i % n].push((i, t));
                        }
                        let pool = self
                            .thread_pool
                            .get_or_insert_with(|| pool::WorkerPool::new(threads));
                        let (res_tx, res_rx) = std::sync::mpsc::channel();
                        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = buckets
                            .into_iter()
                            .map(|bucket| {
                                let res_tx = res_tx.clone();
                                Box::new(move || {
                                    for (i, t) in bucket {
                                        let _ = res_tx.send((i, run_task(t)));
                                    }
                                }) as Box<dyn FnOnce() + Send + '_>
                            })
                            .collect();
                        pool.run(jobs);
                        drop(res_tx);
                        let mut slots: Vec<Option<TaskOutcome>> =
                            active.iter().map(|_| None).collect();
                        for (i, o) in res_rx {
                            slots[i] = Some(o);
                        }
                        slots
                            .into_iter()
                            .map(|o| o.expect("every task produces an outcome"))
                            .collect()
                    }
                }
            }
        };
        // Merge, in canonical worker order (ascending worker index;
        // `active` and `idle` are each ascending and disjoint, so one
        // merged walk preserves it).
        let mut moved = 0usize;
        let mut oi = 0usize;
        let mut ii = 0usize;
        for w in 0..self.cfg.workers.len() {
            if oi < outcomes.len() && outcomes[oi].worker == w {
                let o = &outcomes[oi];
                oi += 1;
                let spec = self.cfg.workers[w];
                let aq = spec.queue.unwrap_or(0);
                // 1. The worker's deferred LLC effects.
                hw.m.replay_llc(spec.core, &o.log);
                // 2. Per poll, in order: app drops, then the TX fate.
                for p in &o.polls {
                    for &mb in &p.freed {
                        hw.pool.put(mb);
                    }
                    self.app_drops[aq] += p.dropped;
                    if p.tx_stalled {
                        for d in &p.tx {
                            hw.pool.put(d.mbuf);
                        }
                        self.nic[aq].tx_stall += p.tx.len() as u64;
                    } else if !p.tx.is_empty() {
                        hw.port.tx_commit(hw.pool, &p.tx);
                        self.delivered += p.tx.len() as u64;
                        self.delivered_q[aq] += p.tx.len() as u64;
                        for d in &p.tx {
                            self.tx_wire_bits += trafficgen::arrival::wire_bits(d.len);
                        }
                    }
                }
                moved += o.moved;
                self.free_ns[w] = o.free_ns;
                // 3. Refill the worker's queue. A real RX ring has
                // `depth` slots shared by posted descriptors and
                // not-yet-harvested completions; top up only the slots
                // this epoch freed.
                if let Some(q) = spec.queue {
                    let target = self.cfg.queue_depth.saturating_sub(hw.port.ready_count(q));
                    let (_, cycles) = hw
                        .port
                        .refill(hw.m, hw.pool, q, spec.core, hw.policy, target);
                    if !o.ended_idle {
                        // Busy workers pay the refill on their schedule
                        // clock; idle workers already idled to the
                        // horizon (the refill hides in the idle time).
                        self.free_ns[w] += cycles as f64 * self.ns_per_cycle;
                    }
                }
            } else if ii < idle.len() && idle[ii] == w {
                ii += 1;
                let spec = self.cfg.workers[w];
                // An idle PMD still re-arms its RX ring. Without this, a
                // transient pool outage that drains the posted ring would
                // leave the queue dry forever once the pool recovers.
                if let Some(q) = spec.queue {
                    if hw.port.posted_count(q) < self.cfg.queue_depth {
                        hw.port.refill(
                            hw.m,
                            hw.pool,
                            q,
                            spec.core,
                            hw.policy,
                            self.cfg.queue_depth,
                        );
                    }
                }
                self.free_ns[w] = horizon_ns;
            }
        }
        // 4. Cross-worker handoff, with the machine fully merged.
        if let Some(hook) = self.epoch_hook.as_mut() {
            // Timed machine work a hook performs on a worker's core
            // (e.g. a batched migration at the merge) occupies that
            // core: fold the hook's clock delta into the worker's
            // availability so its next poll starts after the batch.
            // Hooks at workless epochs are no-ops (DESIGN §3f), so this
            // fold never moves a clock when nothing happened — the
            // schedulers' epochs-with-work coincide and stay
            // bit-identical.
            let before: Vec<u64> = (0..self.cfg.workers.len())
                .map(|w| hw.m.now(self.cfg.workers[w].core))
                .collect();
            let mut mc = MergeCtx {
                pool: hw.pool,
                m: hw.m,
                app_drops: &mut self.app_drops,
            };
            moved += hook(&mut self.apps, &mut mc);
            for (w, &start) in before.iter().enumerate() {
                let delta = hw.m.now(self.cfg.workers[w].core) - start;
                if delta > 0 {
                    self.free_ns[w] += delta as f64 * self.ns_per_cycle;
                }
            }
        }
        moved
    }

    /// Ends the run: clears any pool outage, asserts conservation
    /// (globally, per queue, and against the port's own counters), and
    /// returns the report plus the per-worker applications. Does *not*
    /// drain — open-loop callers should [`Engine::drain`] first;
    /// closed-loop callers end with requests legitimately in flight.
    pub fn finish(self, hw: &mut Hw<'_>) -> (EngineReport, Vec<A>) {
        hw.pool.set_outage(false);
        let queues = self.nic.len();
        let per_queue: Vec<QueueLedger> = (0..queues)
            .map(|q| QueueLedger {
                offered: self.offered_q[q],
                carried: self.carried[q],
                delivered: self.delivered_q[q],
                nic: self.nic[q],
                admit: self.admit[q],
                app_drops: self.app_drops[q],
                in_flight: hw.port.ready_count(q) as u64,
            })
            .collect();
        for (q, l) in per_queue.iter().enumerate() {
            assert_eq!(
                l.offered + l.carried,
                l.delivered + l.nic.total() + l.admit.total() + l.app_drops + l.in_flight,
                "queue {q} conservation: offered {} + carried {} != delivered {} \
                 + nic [{}] + admit [{}] + app {} + in_flight {}",
                l.offered,
                l.carried,
                l.delivered,
                l.nic,
                l.admit,
                l.app_drops,
                l.in_flight
            );
        }
        // Group ledgers: sum the per-queue ledgers of each report group
        // and assert the same double-entry identity per group. With the
        // per-queue identities already proven, the group sums inherit
        // conservation by construction — the assert documents (and pins)
        // that the groups *partition* the aggregate rather than sample it.
        let per_group: Vec<QueueLedger> = if self.queue_groups.is_empty() {
            Vec::new()
        } else {
            let n = self.queue_groups.iter().max().unwrap() + 1;
            (0..n)
                .map(|g| {
                    let qs = || (0..queues).filter(|&q| self.queue_groups[q] == g);
                    QueueLedger {
                        offered: qs().map(|q| per_queue[q].offered).sum(),
                        carried: qs().map(|q| per_queue[q].carried).sum(),
                        delivered: qs().map(|q| per_queue[q].delivered).sum(),
                        nic: NicDrops::sum(qs().map(|q| &per_queue[q].nic)),
                        admit: AdmitDrops::sum(qs().map(|q| &per_queue[q].admit)),
                        app_drops: qs().map(|q| per_queue[q].app_drops).sum(),
                        in_flight: qs().map(|q| per_queue[q].in_flight).sum(),
                    }
                })
                .collect()
        };
        for (g, l) in per_group.iter().enumerate() {
            assert_eq!(
                l.offered + l.carried,
                l.delivered + l.nic.total() + l.admit.total() + l.app_drops + l.in_flight,
                "group {g} conservation"
            );
        }
        let nic = NicDrops::sum(per_queue.iter().map(|l| &l.nic));
        let admit = AdmitDrops::sum(per_queue.iter().map(|l| &l.admit));
        let app_drops: u64 = per_queue.iter().map(|l| l.app_drops).sum();
        let in_flight: u64 = per_queue.iter().map(|l| l.in_flight).sum();
        let carried: u64 = self.carried.iter().sum();
        assert_eq!(
            self.offered + carried,
            self.delivered + nic.total() + admit.total() + app_drops + in_flight,
            "conservation violated: offered {} + carried {carried} != delivered {} \
             + nic [{nic}] + admit [{admit}] + app {app_drops} + in_flight {in_flight}",
            self.offered,
            self.delivered,
        );
        // Cross-check the engine's classification against the NIC's own
        // counters (deltas over this run).
        let s = hw.port.stats();
        let b = self.base_stats;
        assert_eq!(self.delivered, s.tx_pkts - b.tx_pkts, "tx accounting");
        assert_eq!(
            nic.nodesc + nic.pool_starved,
            s.rx_nodesc - b.rx_nodesc,
            "descriptor-drop classification must partition rx_nodesc"
        );
        assert_eq!(nic.crc, s.rx_crc - b.rx_crc, "crc accounting");
        assert_eq!(nic.overrun, s.rx_overrun - b.rx_overrun, "overrun");
        assert_eq!(nic.link_down, s.rx_linkdown - b.rx_linkdown, "link");
        assert_eq!(nic.rx_stall, s.rx_stall - b.rx_stall, "stall");
        assert_eq!(
            nic.ready_overrun,
            s.rx_ready_overrun - b.rx_ready_overrun,
            "ready-overrun accounting"
        );
        let report = EngineReport {
            offered: self.offered,
            carried,
            delivered: self.delivered,
            nic,
            admit,
            app_drops,
            in_flight,
            per_queue,
            per_group,
            duration_ns: self.now_ns().max(1.0),
            last_arrival_ns: self.last_arrival_ns,
            offered_wire_bits: self.offered_wire_bits,
            tx_wire_bits: self.tx_wire_bits,
            sched: self.sched,
        };
        self.sched.add_to_totals();
        (report, self.apps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::machine::MachineConfig;
    use rte::steering::{Rss, Steering};

    /// Echo every packet back (a MacSwap-free forwarder).
    #[derive(Clone)]
    struct Echo {
        work: u64,
    }

    impl QueueApp for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, comp: &RxCompletion) -> Verdict {
            ctx.m.advance(ctx.core, self.work);
            Verdict::Tx(TxDesc {
                mbuf: comp.mbuf,
                data_pa: comp.data_pa,
                len: comp.len,
            })
        }
    }

    fn setup(queues: usize, depth: usize) -> (Machine, MbufPool, Port) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
        let pool = MbufPool::create(&mut m, (4 * queues * depth) as u32, 128, 2048).unwrap();
        let port = Port::new(0, Steering::Rss(Rss::new(queues)), depth);
        (m, pool, port)
    }

    fn flow(i: u32) -> FlowTuple {
        FlowTuple::tcp(0x0a00_0000 + i, 1000 + (i as u16), 0xc0a8_0001, 80)
    }

    fn echo_apps(work: u64, workers: usize) -> Vec<Echo> {
        vec![Echo { work }; workers]
    }

    fn run_echo(execution: Execution) -> EngineReport {
        let (mut m, mut pool, mut port) = setup(2, 64);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let mut eng = Engine::new(
            echo_apps(300, 2),
            EngineConfig {
                workers: WorkerSpec::run_to_completion(2),
                queue_depth: 64,
                burst: 16,
                faults: FaultPlan::none(),
                execution,
                admission: AdmissionPolicy::AcceptAll,
                scheduler: Scheduler::default(),
            },
            &mut hw,
        );
        for i in 0..500u32 {
            let t = i as f64 * 10_000.0; // 100 kpps: everyone keeps up.
            eng.offer(&mut hw, &flow(i % 32), &[0u8; 64], t).unwrap();
        }
        eng.drain(&mut hw);
        eng.finish(&mut hw).0
    }

    #[test]
    fn echo_delivers_everything_at_low_rate() {
        let rep = run_echo(Execution::Serial);
        assert_eq!(rep.offered, 500);
        assert_eq!(rep.delivered, 500);
        assert_eq!(rep.nic.total() + rep.app_drops, 0);
        assert_eq!(rep.in_flight, 0);
        assert!(rep.duration_ns >= 500.0 * 10_000.0 * 0.9);
        // Per-queue ledgers partition the aggregate.
        let sum: u64 = rep.per_queue.iter().map(|l| l.delivered).sum();
        assert_eq!(sum, rep.delivered);
        assert!(rep.per_queue.iter().all(|l| l.delivered > 0));
    }

    #[test]
    fn parallel_echo_matches_serial_exactly() {
        let serial = run_echo(Execution::Serial);
        for threads in [1, 2, 3] {
            let par = run_echo(Execution::Parallel { threads });
            assert_eq!(serial, par, "threads={threads} must match serial");
        }
    }

    #[test]
    fn overload_drops_but_conserves() {
        let (mut m, mut pool, mut port) = setup(1, 32);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let mut eng = Engine::new(
            echo_apps(10_000, 1), // ~3 µs/pkt service.
            EngineConfig {
                workers: WorkerSpec::run_to_completion(1),
                queue_depth: 32,
                burst: 8,
                faults: FaultPlan::none(),
                execution: Execution::Serial,
                admission: AdmissionPolicy::AcceptAll,
                scheduler: Scheduler::default(),
            },
            &mut hw,
        );
        for i in 0..2_000u32 {
            let t = i as f64 * 50.0; // 20 Mpps: hopeless.
            let _ = eng.offer(&mut hw, &flow(i % 8), &[0u8; 64], t);
        }
        eng.drain(&mut hw);
        let (rep, _) = eng.finish(&mut hw);
        assert!(rep.nic.nodesc > 0, "overload must exhaust descriptors");
        assert!(rep.delivered > 0, "the loop still makes progress");
        assert_eq!(rep.offered, rep.delivered + rep.nic.total() + rep.app_drops);
    }

    /// Offers a steady trickle with a 1 µs control hook installed and
    /// returns (boundary times seen, report).
    fn run_with_control(scheduler: Scheduler, execution: Execution) -> (Vec<f64>, EngineReport) {
        use std::cell::RefCell;
        use std::rc::Rc;
        let (mut m, mut pool, mut port) = setup(2, 32);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let mut eng = Engine::new(
            echo_apps(300, 2),
            EngineConfig {
                workers: WorkerSpec::run_to_completion(2),
                queue_depth: 32,
                burst: 8,
                faults: FaultPlan::none(),
                execution,
                admission: AdmissionPolicy::AcceptAll,
                scheduler,
            },
            &mut hw,
        );
        let seen = Rc::new(RefCell::new(Vec::new()));
        let log = Rc::clone(&seen);
        eng.set_control_hook(
            1_000.0,
            Box::new(move |apps, _mc, t| {
                assert_eq!(apps.len(), 2);
                log.borrow_mut().push(t);
            }),
        );
        for i in 0..40u32 {
            // Irregular gaps so horizons cross boundaries mid-stride.
            let t = i as f64 * 137.0;
            let _ = eng.offer(&mut hw, &flow(i), &[0u8; 64], t);
        }
        eng.run_until(&mut hw, 6_500.0);
        eng.drain(&mut hw);
        let (rep, _) = eng.finish(&mut hw);
        (Rc::try_unwrap(seen).unwrap().into_inner(), rep)
    }

    #[test]
    fn control_hook_fires_at_exact_boundaries_under_both_schedulers() {
        // 40 arrivals spread to ~5.3 µs, final horizon 6.5 µs: every
        // multiple of the 1 µs period up to 6 µs must fire, exactly
        // once, at exactly the boundary time — independent of which
        // scheduler dispatched the epochs in between.
        let (ref_times, ref_rep) = run_with_control(Scheduler::ReferenceTick, Execution::Serial);
        assert_eq!(
            ref_times,
            vec![1_000.0, 2_000.0, 3_000.0, 4_000.0, 5_000.0, 6_000.0]
        );
        for scheduler in [Scheduler::EventDriven, Scheduler::ReferenceTick] {
            for execution in [Execution::Serial, Execution::Parallel { threads: 2 }] {
                let (times, rep) = run_with_control(scheduler, execution);
                assert_eq!(times, ref_times, "{scheduler:?}/{execution:?} boundaries");
                // Everything but the scheduler counters is bit-identical.
                assert_eq!(rep.per_queue, ref_rep.per_queue);
                assert_eq!(rep.duration_ns, ref_rep.duration_ns);
                assert_eq!(rep.delivered, ref_rep.delivered);
            }
        }
    }

    #[test]
    fn control_hook_timed_work_lands_in_busy_time() {
        // A hook that burns cycles on a worker's core must push that
        // worker's free-at time (and so the run duration) forward, the
        // same accounting as epoch-hook time.
        let run = |burn: u64| {
            let (mut m, mut pool, mut port) = setup(1, 32);
            let mut policy = rte::nic::FixedHeadroom(128);
            let mut hw = Hw {
                m: &mut m,
                port: &mut port,
                pool: &mut pool,
                policy: &mut policy,
            };
            let mut eng = Engine::new(
                echo_apps(300, 1),
                EngineConfig {
                    workers: WorkerSpec::run_to_completion(1),
                    queue_depth: 32,
                    burst: 8,
                    faults: FaultPlan::none(),
                    execution: Execution::Serial,
                    admission: AdmissionPolicy::AcceptAll,
                    scheduler: Scheduler::default(),
                },
                &mut hw,
            );
            eng.set_control_hook(
                500.0,
                Box::new(move |_apps, mc, _t| {
                    mc.m.advance(0, burn);
                }),
            );
            for i in 0..10u32 {
                let _ = eng.offer(&mut hw, &flow(i), &[0u8; 64], i as f64 * 100.0);
            }
            eng.run_until(&mut hw, 2_000.0);
            eng.drain(&mut hw);
            eng.finish(&mut hw).0.duration_ns
        };
        let idle_hook = run(0);
        let busy_hook = run(50_000);
        assert!(
            busy_hook > idle_hook,
            "hook cycles must extend busy time: {busy_hook} vs {idle_hook}"
        );
    }

    #[test]
    fn queue_groups_partition_the_aggregate() {
        let (mut m, mut pool, mut port) = setup(4, 32);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let mut eng = Engine::new(
            echo_apps(300, 4),
            EngineConfig {
                workers: WorkerSpec::run_to_completion(4),
                queue_depth: 32,
                burst: 8,
                faults: FaultPlan::none(),
                execution: Execution::Serial,
                admission: AdmissionPolicy::AcceptAll,
                scheduler: Scheduler::default(),
            },
            &mut hw,
        );
        eng.set_queue_groups(vec![0, 0, 1, 1]);
        for i in 0..400u32 {
            let _ = eng.offer(&mut hw, &flow(i), &[0u8; 64], i as f64 * 20.0);
        }
        eng.drain(&mut hw);
        let (rep, _) = eng.finish(&mut hw);
        assert_eq!(rep.per_group.len(), 2);
        for (field, agg) in [
            (
                rep.per_group.iter().map(|g| g.offered).sum::<u64>(),
                rep.offered,
            ),
            (
                rep.per_group.iter().map(|g| g.delivered).sum::<u64>(),
                rep.delivered,
            ),
            (
                rep.per_group.iter().map(|g| g.in_flight).sum::<u64>(),
                rep.in_flight,
            ),
        ] {
            assert_eq!(field, agg, "groups must partition the aggregate");
        }
        assert_eq!(
            rep.per_group.iter().map(|g| g.nic.total()).sum::<u64>(),
            rep.nic.total()
        );
        // Group 0 == queues {0,1}, group 1 == queues {2,3}.
        assert_eq!(
            rep.per_group[0].offered,
            rep.per_queue[0].offered + rep.per_queue[1].offered
        );
    }

    /// Drives the same hopeless 20 Mpps overload as
    /// `overload_drops_but_conserves`, under the given admission policy
    /// and with every offer carrying `deadline_ns` past its arrival.
    fn run_overload(admission: AdmissionPolicy, deadline_ns: f64) -> EngineReport {
        let (mut m, mut pool, mut port) = setup(1, 32);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let mut eng = Engine::new(
            echo_apps(10_000, 1),
            EngineConfig {
                workers: WorkerSpec::run_to_completion(1),
                queue_depth: 32,
                burst: 8,
                faults: FaultPlan::none(),
                execution: Execution::Serial,
                admission,
                scheduler: Scheduler::default(),
            },
            &mut hw,
        );
        for i in 0..2_000u32 {
            let t = i as f64 * 50.0;
            let _ = eng.offer_with_deadline(&mut hw, &flow(i % 8), &[0u8; 64], t, t + deadline_ns);
        }
        eng.drain(&mut hw);
        eng.finish(&mut hw).0
    }

    #[test]
    fn queue_depth_policy_sheds_before_descriptor_exhaustion() {
        let rep = run_overload(
            AdmissionPolicy::QueueDepth { max_backlog: 8 },
            f64::INFINITY,
        );
        assert!(rep.admit.depth_shed > 0, "overload must shed on depth");
        assert_eq!(rep.admit.deadline_shed, 0);
        // The filter caps the backlog below the ring size, so the ring
        // itself never runs out of descriptors.
        assert_eq!(rep.nic.nodesc, 0, "shedding must pre-empt nodesc");
        assert!(rep.delivered > 0);
        assert_eq!(
            rep.offered,
            rep.delivered + rep.nic.total() + rep.admit.total() + rep.app_drops
        );
    }

    #[test]
    fn deadline_policy_sheds_infeasible_frames_only() {
        // Service is ~3.3 µs/pkt; a 10 µs deadline admits a backlog of
        // at most ~3, so most of the 20 Mpps storm is shed as
        // infeasible. Without deadlines the same policy never sheds.
        let est = 10_000.0 * 0.476; // cycles → ns at 2.1 GHz.
        let policy = AdmissionPolicy::DeadlineInfeasible {
            est_service_ns: est,
        };
        let with_deadline = run_overload(policy, 10_000.0);
        assert!(with_deadline.admit.deadline_shed > 0, "must shed");
        assert_eq!(with_deadline.admit.depth_shed, 0);
        assert_eq!(
            with_deadline.offered,
            with_deadline.delivered
                + with_deadline.nic.total()
                + with_deadline.admit.total()
                + with_deadline.app_drops
        );
        let without = run_overload(policy, f64::INFINITY);
        assert_eq!(
            without.admit.total(),
            0,
            "frames without a deadline are never shed as infeasible"
        );
    }

    #[test]
    fn backpressure_signal_tracks_the_admission_threshold() {
        let (mut m, mut pool, mut port) = setup(1, 32);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let mut eng = Engine::new(
            echo_apps(1_000_000, 1), // So slow nothing is served below.
            EngineConfig {
                workers: WorkerSpec::run_to_completion(1),
                queue_depth: 32,
                burst: 1,
                faults: FaultPlan::none(),
                execution: Execution::Serial,
                admission: AdmissionPolicy::QueueDepth { max_backlog: 4 },
                scheduler: Scheduler::default(),
            },
            &mut hw,
        );
        assert!(!eng.backpressured(&hw, 0), "empty queue: no pressure");
        // Five offers a few ns apart: the worker pulls exactly one into
        // service (~476 µs of work) during the catch-up after the first
        // offer, so four completions pile up in the ready ring.
        for i in 0..4u32 {
            eng.offer(&mut hw, &flow(0), &[0u8; 64], i as f64).unwrap();
        }
        assert!(
            !eng.backpressured(&hw, 0),
            "backlog below the shed threshold: no pressure yet"
        );
        // The fifth offer fills the backlog to the threshold: the
        // signal flips, and the very next offer is shed exactly as the
        // signal promised.
        eng.offer(&mut hw, &flow(0), &[0u8; 64], 4.0).unwrap();
        assert!(
            eng.backpressured(&hw, 0),
            "backlog at the shed threshold must signal backpressure"
        );
        let err = eng.offer(&mut hw, &flow(0), &[0u8; 64], 5.0).unwrap_err();
        assert_eq!(err, Rejection::Shed(ShedCause::QueueDepth));
        eng.drain(&mut hw);
        let (rep, _) = eng.finish(&mut hw);
        assert_eq!(rep.admit.depth_shed, 1);
        assert_eq!(rep.delivered, 5);
    }

    #[test]
    fn tx_stall_window_sheds_processed_frames() {
        let (mut m, mut pool, mut port) = setup(1, 64);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let mut eng = Engine::new(
            echo_apps(100, 1),
            EngineConfig {
                workers: WorkerSpec::run_to_completion(1),
                queue_depth: 64,
                burst: 8,
                faults: FaultPlan::none().with_tx_stall(rte::fault::Window::new(100_000, 300_000)),
                execution: Execution::Serial,
                admission: AdmissionPolicy::AcceptAll,
                scheduler: Scheduler::default(),
            },
            &mut hw,
        );
        let before = hw.pool.available();
        for i in 0..100u32 {
            let t = i as f64 * 5_000.0; // 0..500 µs, spanning the window.
            eng.offer(&mut hw, &flow(3), &[0u8; 64], t).unwrap();
        }
        eng.drain(&mut hw);
        let (rep, _) = eng.finish(&mut hw);
        assert!(rep.nic.tx_stall > 0, "the stall window must bite");
        assert_eq!(rep.delivered + rep.nic.tx_stall, 100);
        assert_eq!(
            hw.pool.available(),
            before,
            "stalled frames' buffers are recycled, not leaked"
        );
    }

    #[test]
    fn per_queue_stall_degrades_only_its_queue() {
        let (mut m, mut pool, mut port) = setup(4, 64);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let mut eng = Engine::new(
            echo_apps(200, 4),
            EngineConfig {
                workers: WorkerSpec::run_to_completion(4),
                queue_depth: 64,
                burst: 16,
                faults: FaultPlan::none()
                    .with_queue_rx_stall(1, rte::fault::Window::new(0, u64::MAX)),
                execution: Execution::Serial,
                admission: AdmissionPolicy::AcceptAll,
                scheduler: Scheduler::default(),
            },
            &mut hw,
        );
        for i in 0..800u32 {
            let t = i as f64 * 2_000.0;
            let _ = eng.offer(&mut hw, &flow(i), &[0u8; 64], t);
        }
        eng.drain(&mut hw);
        let (rep, _) = eng.finish(&mut hw);
        assert!(rep.per_queue[1].offered > 0, "RSS spreads to queue 1");
        assert_eq!(
            rep.per_queue[1].nic.rx_stall, rep.per_queue[1].offered,
            "queue 1 loses everything"
        );
        assert_eq!(rep.per_queue[1].delivered, 0);
        for q in [0, 2, 3] {
            assert_eq!(
                rep.per_queue[q].delivered, rep.per_queue[q].offered,
                "queue {q} must be untouched"
            );
        }
    }

    #[test]
    fn clock_is_monotone_across_offers() {
        let (mut m, mut pool, mut port) = setup(1, 32);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let mut eng = Engine::new(
            echo_apps(500, 1),
            EngineConfig {
                workers: WorkerSpec::run_to_completion(1),
                queue_depth: 32,
                burst: 8,
                faults: FaultPlan::none(),
                execution: Execution::Serial,
                admission: AdmissionPolicy::AcceptAll,
                scheduler: Scheduler::default(),
            },
            &mut hw,
        );
        let mut prev = 0.0;
        for i in 0..300u32 {
            let t = i as f64 * 700.0;
            let _ = eng.offer(&mut hw, &flow(1), &[0u8; 64], t);
            let now = eng.now_ns();
            assert!(now >= prev, "clock went backwards: {now} < {prev}");
            prev = now;
        }
    }

    #[test]
    #[should_panic(expected = "polled by two workers")]
    fn double_polling_a_queue_is_rejected() {
        let (mut m, mut pool, mut port) = setup(1, 32);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let _ = Engine::new(
            echo_apps(1, 2),
            EngineConfig {
                workers: vec![
                    WorkerSpec {
                        core: 0,
                        queue: Some(0),
                    },
                    WorkerSpec {
                        core: 1,
                        queue: Some(0),
                    },
                ],
                queue_depth: 32,
                burst: 8,
                faults: FaultPlan::none(),
                execution: Execution::Serial,
                admission: AdmissionPolicy::AcceptAll,
                scheduler: Scheduler::default(),
            },
            &mut hw,
        );
    }

    #[test]
    #[should_panic(expected = "driven by two workers")]
    fn sharing_a_core_is_rejected() {
        let (mut m, mut pool, mut port) = setup(2, 32);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let _ = Engine::new(
            echo_apps(1, 2),
            EngineConfig {
                workers: vec![
                    WorkerSpec {
                        core: 0,
                        queue: Some(0),
                    },
                    WorkerSpec {
                        core: 0,
                        queue: Some(1),
                    },
                ],
                queue_depth: 32,
                burst: 8,
                faults: FaultPlan::none(),
                execution: Execution::Serial,
                admission: AdmissionPolicy::AcceptAll,
                scheduler: Scheduler::default(),
            },
            &mut hw,
        );
    }
}
