//! The unified multi-core event engine: one polling loop for every
//! queue application in the workspace.
//!
//! The paper's evaluation (§4–§5) runs every workload — stateless
//! forwarding, stateful service chains, and the KVS — on the same
//! substrate: per-core run-to-completion PMD loops over DDIO-fed RX
//! queues. This crate is that substrate. An application implements
//! [`QueueApp`] (what to do with one received packet, plus an optional
//! `pump` hook for work that does not come from an RX queue, like a
//! pipeline's handoff ring) and the engine supplies everything else:
//!
//! * **Simulated clock.** Each [`WorkerSpec`] (a core, optionally bound
//!   to one RX queue) has a *free-at* timestamp. Workers never run ahead
//!   of the load generator's clock, so queueing emerges naturally: a
//!   busy worker leaves arrivals in the descriptor ring, and when the
//!   ring's posted descriptors run out the NIC drops (`rx_nodesc`) — the
//!   throughput ceiling of Table 3.
//! * **The polling loop.** `rx_burst → on_packet → tx_burst → refill`,
//!   with the idle re-arm that keeps RX rings stocked across transient
//!   pool outages. This is the only PMD loop in the workspace; the NFV
//!   testbed, the pipelined chain, and the multi-queue KVS are all thin
//!   [`QueueApp`]s over it.
//! * **Drop accounting.** A per-queue [`NicDrops`] ledger plus a
//!   per-queue count of application drops. The engine owns the
//!   conservation invariant
//!   `offered + carried == delivered + Σ nic[cause] + app + in_flight`
//!   and asserts it (globally and per queue) in [`Engine::finish`],
//!   cross-checking its classification against the port's own counters.
//! * **Fault injection.** [`rte::fault::FaultPlan`] windows — including
//!   the TX-side kinds (`tx_stall`, `ready_overrun`) and per-queue RX
//!   stalls — are drawn per offered frame with the target queue known,
//!   so queue-scoped faults degrade only their queue.
//!
//! Hardware (machine, port, mempool, headroom policy) is *not* owned by
//! the engine; callers pass a [`Hw`] view per call. That keeps warm
//! state (e.g. a KVS store and its LLC contents) reusable across runs,
//! which Fig. 8's warm-then-measure methodology depends on.

pub mod drops;

pub use drops::NicDrops;

use llc_sim::machine::Machine;
use rte::fault::{FaultPlan, FaultState};
use rte::mempool::MbufPool;
use rte::nic::{DropReason, HeadroomPolicy, Port, RxCompletion, TxDesc};
use trafficgen::FlowTuple;

/// A borrowed view of the hardware the engine drives. The engine owns
/// clocks and ledgers only; machine, port, pool, and headroom policy
/// stay with the caller so they can outlive a run (warm stores, reused
/// ports).
pub struct Hw<'a> {
    /// The simulated machine.
    pub m: &'a mut Machine,
    /// The NIC port whose queues the workers poll.
    pub port: &'a mut Port,
    /// The mbuf pool backing the port's descriptors.
    pub pool: &'a mut MbufPool,
    /// The headroom policy applied on refill (stock or CacheDirector).
    pub policy: &'a mut dyn HeadroomPolicy,
}

/// One worker: a core running the polling loop, optionally bound to one
/// RX queue. Queue-less workers only run their app's [`QueueApp::pump`]
/// hook (e.g. the second stage of a pipelined chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSpec {
    /// The core this worker's cycles are charged to.
    pub core: usize,
    /// The RX queue it polls, if any.
    pub queue: Option<usize>,
}

impl WorkerSpec {
    /// The usual run-to-completion shape: core `c` polls queue `c`.
    pub fn run_to_completion(cores: usize) -> Vec<WorkerSpec> {
        (0..cores)
            .map(|c| WorkerSpec {
                core: c,
                queue: Some(c),
            })
            .collect()
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The workers (cores × queues).
    pub workers: Vec<WorkerSpec>,
    /// RX descriptors per queue; also the refill target.
    pub queue_depth: usize,
    /// PMD burst size.
    pub burst: usize,
    /// Injected faults.
    pub faults: FaultPlan,
}

/// What an application decides about one received packet.
#[derive(Debug, Clone, Copy)]
pub enum Verdict {
    /// Transmit this descriptor (the engine counts it as delivered and
    /// recycles the buffer through `tx_burst`).
    Tx(TxDesc),
    /// Drop: the engine recycles the buffer and counts one application
    /// drop on the worker's queue. Cause-level accounting is the app's
    /// job (it has richer vocabulary than the engine needs).
    Drop,
    /// The app took ownership of the buffer (e.g. queued it on a
    /// handoff ring). It must eventually resurface as a [`Verdict::Tx`]
    /// from `pump`, a [`Ctx::drop_packet`], or stay counted in flight.
    Consumed,
}

/// Per-poll context handed to the application. Wraps the machine and
/// pool (reborrowed from [`Hw`]) plus the worker's identity and the
/// wall-clock anchor of the current poll iteration.
pub struct Ctx<'a> {
    /// The simulated machine.
    pub m: &'a mut Machine,
    /// The mbuf pool (for recycling consumed buffers).
    pub pool: &'a mut MbufPool,
    /// The worker's core.
    pub core: usize,
    /// The worker's index in [`EngineConfig::workers`].
    pub worker: usize,
    /// The worker's RX queue, if any.
    pub queue: Option<usize>,
    start_cycles: u64,
    start_ns: f64,
    ns_per_cycle: f64,
    dropped: u64,
}

impl Ctx<'_> {
    /// The current simulated wall clock on this worker's core: the poll
    /// iteration's start plus the cycles burned so far.
    pub fn wall_ns(&self) -> f64 {
        self.start_ns + (self.m.now(self.core) - self.start_cycles) as f64 * self.ns_per_cycle
    }

    /// Recycles `mbuf` and counts one application drop on this worker's
    /// queue — the explicit form of [`Verdict::Drop`] for packets the
    /// app previously [`Verdict::Consumed`] (e.g. a full handoff ring).
    pub fn drop_packet(&mut self, mbuf: u32) {
        self.pool.put(mbuf);
        self.dropped += 1;
    }
}

/// A queue application: the per-packet half of the polling loop.
pub trait QueueApp {
    /// Processes one received packet on `ctx.worker` and decides its
    /// fate. Runs timed work against `ctx.m` on `ctx.core`.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, comp: &RxCompletion) -> Verdict;

    /// Non-RX work for this worker (e.g. draining a handoff ring).
    /// Push transmissions into `tx`; recycle drops with
    /// [`Ctx::drop_packet`]. Returns how many packets moved — it MUST
    /// make progress whenever [`QueueApp::has_backlog`] is true for this
    /// worker, or the engine's drain loop cannot terminate.
    fn pump(&mut self, _ctx: &mut Ctx<'_>, _tx: &mut Vec<TxDesc>) -> usize {
        0
    }

    /// Whether worker `w` has non-RX work pending (see
    /// [`QueueApp::pump`]).
    fn has_backlog(&self, _worker: usize) -> bool {
        false
    }
}

/// Per-queue slice of the final [`EngineReport`].
#[derive(Debug, Clone, Copy)]
pub struct QueueLedger {
    /// Frames the load generator offered that steered to this queue.
    pub offered: u64,
    /// Completions a previous run left in this queue's ready ring.
    pub carried: u64,
    /// Frames transmitted by this queue's worker.
    pub delivered: u64,
    /// NIC/driver drops.
    pub nic: NicDrops,
    /// Application drops.
    pub app_drops: u64,
    /// Completions still in the ready ring at finish.
    pub in_flight: u64,
}

/// What a finished engine run reports. Aggregates satisfy
/// `offered + carried == delivered + nic.total() + app_drops +
/// in_flight`, and each [`QueueLedger`] satisfies the same per queue
/// (both asserted in [`Engine::finish`]).
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Frames offered.
    pub offered: u64,
    /// Completions carried in from a previous run.
    pub carried: u64,
    /// Frames transmitted.
    pub delivered: u64,
    /// Aggregate NIC/driver drops.
    pub nic: NicDrops,
    /// Aggregate application drops.
    pub app_drops: u64,
    /// Completions left in ready rings (closed-loop runs end with some).
    pub in_flight: u64,
    /// The per-queue breakdown; sums to the aggregate fields above.
    pub per_queue: Vec<QueueLedger>,
    /// Simulated run duration: the latest worker free-at time, ≥ 1 ns.
    pub duration_ns: f64,
    /// The last offered frame's arrival time.
    pub last_arrival_ns: f64,
    /// Wire bits offered (for Gbps math).
    pub offered_wire_bits: u64,
    /// Wire bits transmitted.
    pub tx_wire_bits: u64,
}

/// The engine: clocks, fault state, and drop ledgers around one
/// [`QueueApp`].
pub struct Engine<A: QueueApp> {
    app: A,
    cfg: EngineConfig,
    free_ns: Vec<f64>,
    ns_per_cycle: f64,
    faults: FaultState,
    nic: Vec<NicDrops>,
    app_drops: Vec<u64>,
    offered_q: Vec<u64>,
    delivered_q: Vec<u64>,
    carried: Vec<u64>,
    offered: u64,
    delivered: u64,
    offered_wire_bits: u64,
    tx_wire_bits: u64,
    last_arrival_ns: f64,
    base_stats: rte::nic::PortStats,
}

impl<A: QueueApp> Engine<A> {
    /// Assembles the engine around `app` and performs the initial
    /// descriptor posting (each queue topped up to `queue_depth` minus
    /// any completions carried over from a previous run — the ring's
    /// slots are shared by posted descriptors and unharvested
    /// completions).
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry: no workers, zero burst/depth, a
    /// worker queue outside the port, a queue polled by two workers, or
    /// a port queue no worker polls.
    pub fn new(app: A, cfg: EngineConfig, hw: &mut Hw<'_>) -> Self {
        assert!(!cfg.workers.is_empty(), "no workers");
        assert!(cfg.burst > 0 && cfg.queue_depth > 0, "bad queue geometry");
        let queues = hw.port.num_queues();
        let mut polled = vec![false; queues];
        for w in &cfg.workers {
            assert!(w.core < hw.m.config().cores, "worker core off-machine");
            if let Some(q) = w.queue {
                assert!(q < queues, "worker polls a queue the port lacks");
                assert!(!polled[q], "queue {q} polled by two workers");
                polled[q] = true;
            }
        }
        assert!(
            polled.iter().all(|&p| p),
            "every port queue needs a polling worker"
        );
        let carried: Vec<u64> = (0..queues).map(|q| hw.port.ready_count(q) as u64).collect();
        let ns_per_cycle = 1.0 / hw.m.config().freq_ghz;
        let base_stats = hw.port.stats();
        let eng = Self {
            free_ns: vec![0.0; cfg.workers.len()],
            ns_per_cycle,
            faults: FaultState::new(cfg.faults.clone()),
            nic: vec![NicDrops::default(); queues],
            app_drops: vec![0; queues],
            offered_q: vec![0; queues],
            delivered_q: vec![0; queues],
            carried,
            offered: 0,
            delivered: 0,
            offered_wire_bits: 0,
            tx_wire_bits: 0,
            last_arrival_ns: 0.0,
            base_stats,
            app,
            cfg,
        };
        for w in 0..eng.cfg.workers.len() {
            if let Some(q) = eng.cfg.workers[w].queue {
                let core = eng.cfg.workers[w].core;
                let target = eng.cfg.queue_depth - hw.port.ready_count(q);
                hw.port.refill(hw.m, hw.pool, q, core, hw.policy, target);
            }
        }
        eng
    }

    /// The application (inspection).
    pub fn app(&self) -> &A {
        &self.app
    }

    /// The application (mutation between polls).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// The global simulated clock: the latest worker free-at time.
    pub fn now_ns(&self) -> f64 {
        self.free_ns.iter().copied().fold(0.0f64, f64::max)
    }

    /// Frames offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Frames transmitted so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Offers one frame at `t_ns`: routes it, draws its faults (with
    /// the target queue known, so queue-scoped windows apply), lets the
    /// workers catch up to the present, then delivers through the NIC.
    /// Every failure is classified into the per-queue ledger; the
    /// `Err` is returned so closed-loop callers can back off.
    pub fn offer(
        &mut self,
        hw: &mut Hw<'_>,
        flow: &FlowTuple,
        frame: &[u8],
        t_ns: f64,
    ) -> Result<usize, DropReason> {
        let (q, mark) = hw.port.route(flow);
        // Draw this frame's faults before the catch-up: a pool-exhaustion
        // window must already be in force while the workers run to the
        // arrival (their refills are what the outage starves).
        let fault = self.faults.draw_for_queue(t_ns, q);
        hw.pool.set_outage(fault.pool_blocked);
        self.run_until(hw, t_ns);
        self.offered += 1;
        self.offered_q[q] += 1;
        self.offered_wire_bits += trafficgen::arrival::wire_bits(frame.len() as u16);
        self.last_arrival_ns = self.last_arrival_ns.max(t_ns);
        match hw.port.deliver_routed(hw.m, frame, q, mark, t_ns, fault) {
            Ok(()) => Ok(q),
            Err(reason) => {
                let n = &mut self.nic[q];
                match reason {
                    DropReason::NoDescriptor => {
                        // The NIC only sees the ring; the engine knows
                        // whether descriptors were missing because the
                        // *pool* was dry.
                        if hw.pool.in_outage() || hw.pool.available() == 0 {
                            n.pool_starved += 1;
                        } else {
                            n.nodesc += 1;
                        }
                    }
                    DropReason::Overrun => n.overrun += 1,
                    DropReason::CrcError => n.crc += 1,
                    DropReason::LinkDown => n.link_down += 1,
                    DropReason::RxStall => n.rx_stall += 1,
                    DropReason::ReadyOverrun => n.ready_overrun += 1,
                }
                Err(reason)
            }
        }
    }

    /// Runs every worker's polling loop until simulated time `until_ns`.
    pub fn run_until(&mut self, hw: &mut Hw<'_>, until_ns: f64) {
        for w in 0..self.cfg.workers.len() {
            self.run_worker_until(hw, w, until_ns);
        }
    }

    fn run_worker_until(&mut self, hw: &mut Hw<'_>, w: usize, until_ns: f64) {
        loop {
            if self.free_ns[w] >= until_ns {
                return;
            }
            let spec = self.cfg.workers[w];
            let has_rx = spec.queue.is_some_and(|q| hw.port.ready_count(q) > 0);
            if !has_rx && !self.app.has_backlog(w) {
                // An idle PMD still re-arms its RX ring. Without this, a
                // transient pool outage that drains the posted ring would
                // leave the queue dry forever once the pool recovers.
                if let Some(q) = spec.queue {
                    if hw.port.posted_count(q) < self.cfg.queue_depth {
                        hw.port.refill(
                            hw.m,
                            hw.pool,
                            q,
                            spec.core,
                            hw.policy,
                            self.cfg.queue_depth,
                        );
                    }
                }
                // Idle-poll forward to the horizon.
                self.free_ns[w] = until_ns;
                return;
            }
            self.poll_worker(hw, w);
        }
    }

    /// One poll round over every worker with pending work, then a clock
    /// sync: all workers advance to the latest free-at time. Closed-loop
    /// callers alternate `offer(.., now_ns())` top-ups with `step`, and
    /// the sync guarantees those offers never trigger catch-up
    /// processing mid-top-up. Returns how many packets moved; zero means
    /// the engine is drained (or wedged by faults) and the caller should
    /// stop.
    pub fn step(&mut self, hw: &mut Hw<'_>) -> usize {
        let mut moved = 0;
        for w in 0..self.cfg.workers.len() {
            let spec = self.cfg.workers[w];
            let has_rx = spec.queue.is_some_and(|q| hw.port.ready_count(q) > 0);
            if has_rx || self.app.has_backlog(w) {
                moved += self.poll_worker(hw, w);
            }
        }
        let now = self.now_ns();
        for f in &mut self.free_ns {
            *f = now;
        }
        moved
    }

    /// Polls until no worker moves a packet (open-loop tail drain).
    pub fn drain(&mut self, hw: &mut Hw<'_>) {
        while self.step(hw) > 0 {}
    }

    /// One full PMD iteration for worker `w`:
    /// `rx_burst → on_packet* → pump → tx_burst → refill`, with the
    /// worker's clock advanced by the cycles burned. Returns packets
    /// moved.
    fn poll_worker(&mut self, hw: &mut Hw<'_>, w: usize) -> usize {
        let spec = self.cfg.workers[w];
        let core = spec.core;
        let start_cycles = hw.m.now(core);
        let start_ns = self.free_ns[w];
        let aq = spec.queue.unwrap_or(0);
        let batch = match spec.queue {
            Some(q) => hw.port.rx_burst(hw.m, hw.pool, q, core, self.cfg.burst).0,
            None => Vec::new(),
        };
        let mut moved = batch.len();
        let mut tx: Vec<TxDesc> = Vec::with_capacity(batch.len());
        {
            let mut ctx = Ctx {
                m: hw.m,
                pool: hw.pool,
                core,
                worker: w,
                queue: spec.queue,
                start_cycles,
                start_ns,
                ns_per_cycle: self.ns_per_cycle,
                dropped: 0,
            };
            for comp in &batch {
                match self.app.on_packet(&mut ctx, comp) {
                    Verdict::Tx(desc) => tx.push(desc),
                    Verdict::Drop => ctx.drop_packet(comp.mbuf),
                    Verdict::Consumed => {}
                }
            }
            moved += self.app.pump(&mut ctx, &mut tx);
            self.app_drops[aq] += ctx.dropped;
        }
        if !tx.is_empty() {
            let t_tx = start_ns + (hw.m.now(core) - start_cycles) as f64 * self.ns_per_cycle;
            if self.faults.tx_stalled(t_tx) {
                // The TX descriptor path is wedged: fully processed
                // frames cannot leave the box; the PMD recycles them.
                for d in &tx {
                    hw.pool.put(d.mbuf);
                }
                self.nic[aq].tx_stall += tx.len() as u64;
            } else {
                hw.port.tx_burst(hw.m, hw.pool, core, &tx);
                self.delivered += tx.len() as u64;
                self.delivered_q[aq] += tx.len() as u64;
                for d in &tx {
                    self.tx_wire_bits += trafficgen::arrival::wire_bits(d.len);
                }
            }
        }
        if let Some(q) = spec.queue {
            // A real RX ring has `depth` slots shared by posted
            // descriptors and not-yet-harvested completions; refill only
            // the slots this burst freed.
            let target = self.cfg.queue_depth - hw.port.ready_count(q);
            hw.port.refill(hw.m, hw.pool, q, core, hw.policy, target);
        }
        let busy = (hw.m.now(core) - start_cycles) as f64 * self.ns_per_cycle;
        self.free_ns[w] = start_ns + busy;
        moved
    }

    /// Ends the run: clears any pool outage, asserts conservation
    /// (globally, per queue, and against the port's own counters), and
    /// returns the report plus the application. Does *not* drain —
    /// open-loop callers should [`Engine::drain`] first; closed-loop
    /// callers end with requests legitimately in flight.
    pub fn finish(self, hw: &mut Hw<'_>) -> (EngineReport, A) {
        hw.pool.set_outage(false);
        let queues = self.nic.len();
        let per_queue: Vec<QueueLedger> = (0..queues)
            .map(|q| QueueLedger {
                offered: self.offered_q[q],
                carried: self.carried[q],
                delivered: self.delivered_q[q],
                nic: self.nic[q],
                app_drops: self.app_drops[q],
                in_flight: hw.port.ready_count(q) as u64,
            })
            .collect();
        for (q, l) in per_queue.iter().enumerate() {
            assert_eq!(
                l.offered + l.carried,
                l.delivered + l.nic.total() + l.app_drops + l.in_flight,
                "queue {q} conservation: offered {} + carried {} != delivered {} \
                 + nic [{}] + app {} + in_flight {}",
                l.offered,
                l.carried,
                l.delivered,
                l.nic,
                l.app_drops,
                l.in_flight
            );
        }
        let nic = NicDrops::sum(per_queue.iter().map(|l| &l.nic));
        let app_drops: u64 = per_queue.iter().map(|l| l.app_drops).sum();
        let in_flight: u64 = per_queue.iter().map(|l| l.in_flight).sum();
        let carried: u64 = self.carried.iter().sum();
        assert_eq!(
            self.offered + carried,
            self.delivered + nic.total() + app_drops + in_flight,
            "conservation violated: offered {} + carried {carried} != delivered {} \
             + nic [{nic}] + app {app_drops} + in_flight {in_flight}",
            self.offered,
            self.delivered,
        );
        // Cross-check the engine's classification against the NIC's own
        // counters (deltas over this run).
        let s = hw.port.stats();
        let b = self.base_stats;
        assert_eq!(self.delivered, s.tx_pkts - b.tx_pkts, "tx accounting");
        assert_eq!(
            nic.nodesc + nic.pool_starved,
            s.rx_nodesc - b.rx_nodesc,
            "descriptor-drop classification must partition rx_nodesc"
        );
        assert_eq!(nic.crc, s.rx_crc - b.rx_crc, "crc accounting");
        assert_eq!(nic.overrun, s.rx_overrun - b.rx_overrun, "overrun");
        assert_eq!(nic.link_down, s.rx_linkdown - b.rx_linkdown, "link");
        assert_eq!(nic.rx_stall, s.rx_stall - b.rx_stall, "stall");
        assert_eq!(
            nic.ready_overrun,
            s.rx_ready_overrun - b.rx_ready_overrun,
            "ready-overrun accounting"
        );
        let report = EngineReport {
            offered: self.offered,
            carried,
            delivered: self.delivered,
            nic,
            app_drops,
            in_flight,
            per_queue,
            duration_ns: self.now_ns().max(1.0),
            last_arrival_ns: self.last_arrival_ns,
            offered_wire_bits: self.offered_wire_bits,
            tx_wire_bits: self.tx_wire_bits,
        };
        (report, self.app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::machine::MachineConfig;
    use rte::steering::{Rss, Steering};

    /// Echo every packet back (a MacSwap-free forwarder).
    struct Echo {
        work: u64,
    }

    impl QueueApp for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, comp: &RxCompletion) -> Verdict {
            ctx.m.advance(ctx.core, self.work);
            Verdict::Tx(TxDesc {
                mbuf: comp.mbuf,
                data_pa: comp.data_pa,
                len: comp.len,
            })
        }
    }

    fn setup(queues: usize, depth: usize) -> (Machine, MbufPool, Port) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
        let pool = MbufPool::create(&mut m, (4 * queues * depth) as u32, 128, 2048).unwrap();
        let port = Port::new(0, Steering::Rss(Rss::new(queues)), depth);
        (m, pool, port)
    }

    fn flow(i: u32) -> FlowTuple {
        FlowTuple::tcp(0x0a00_0000 + i, 1000 + (i as u16), 0xc0a8_0001, 80)
    }

    #[test]
    fn echo_delivers_everything_at_low_rate() {
        let (mut m, mut pool, mut port) = setup(2, 64);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let mut eng = Engine::new(
            Echo { work: 300 },
            EngineConfig {
                workers: WorkerSpec::run_to_completion(2),
                queue_depth: 64,
                burst: 16,
                faults: FaultPlan::none(),
            },
            &mut hw,
        );
        for i in 0..500u32 {
            let t = i as f64 * 10_000.0; // 100 kpps: everyone keeps up.
            eng.offer(&mut hw, &flow(i % 32), &[0u8; 64], t).unwrap();
        }
        eng.drain(&mut hw);
        let (rep, _) = eng.finish(&mut hw);
        assert_eq!(rep.offered, 500);
        assert_eq!(rep.delivered, 500);
        assert_eq!(rep.nic.total() + rep.app_drops, 0);
        assert_eq!(rep.in_flight, 0);
        assert!(rep.duration_ns >= 500.0 * 10_000.0 * 0.9);
        // Per-queue ledgers partition the aggregate.
        let sum: u64 = rep.per_queue.iter().map(|l| l.delivered).sum();
        assert_eq!(sum, rep.delivered);
        assert!(rep.per_queue.iter().all(|l| l.delivered > 0));
    }

    #[test]
    fn overload_drops_but_conserves() {
        let (mut m, mut pool, mut port) = setup(1, 32);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let mut eng = Engine::new(
            Echo { work: 10_000 }, // ~3 µs/pkt service.
            EngineConfig {
                workers: WorkerSpec::run_to_completion(1),
                queue_depth: 32,
                burst: 8,
                faults: FaultPlan::none(),
            },
            &mut hw,
        );
        for i in 0..2_000u32 {
            let t = i as f64 * 50.0; // 20 Mpps: hopeless.
            let _ = eng.offer(&mut hw, &flow(i % 8), &[0u8; 64], t);
        }
        eng.drain(&mut hw);
        let (rep, _) = eng.finish(&mut hw);
        assert!(rep.nic.nodesc > 0, "overload must exhaust descriptors");
        assert!(rep.delivered > 0, "the loop still makes progress");
        assert_eq!(rep.offered, rep.delivered + rep.nic.total() + rep.app_drops);
    }

    #[test]
    fn tx_stall_window_sheds_processed_frames() {
        let (mut m, mut pool, mut port) = setup(1, 64);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let mut eng = Engine::new(
            Echo { work: 100 },
            EngineConfig {
                workers: WorkerSpec::run_to_completion(1),
                queue_depth: 64,
                burst: 8,
                faults: FaultPlan::none().with_tx_stall(rte::fault::Window::new(100_000, 300_000)),
            },
            &mut hw,
        );
        let before = hw.pool.available();
        for i in 0..100u32 {
            let t = i as f64 * 5_000.0; // 0..500 µs, spanning the window.
            eng.offer(&mut hw, &flow(3), &[0u8; 64], t).unwrap();
        }
        eng.drain(&mut hw);
        let (rep, _) = eng.finish(&mut hw);
        assert!(rep.nic.tx_stall > 0, "the stall window must bite");
        assert_eq!(rep.delivered + rep.nic.tx_stall, 100);
        assert_eq!(
            hw.pool.available(),
            before,
            "stalled frames' buffers are recycled, not leaked"
        );
    }

    #[test]
    fn per_queue_stall_degrades_only_its_queue() {
        let (mut m, mut pool, mut port) = setup(4, 64);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let mut eng = Engine::new(
            Echo { work: 200 },
            EngineConfig {
                workers: WorkerSpec::run_to_completion(4),
                queue_depth: 64,
                burst: 16,
                faults: FaultPlan::none()
                    .with_queue_rx_stall(1, rte::fault::Window::new(0, u64::MAX)),
            },
            &mut hw,
        );
        for i in 0..800u32 {
            let t = i as f64 * 2_000.0;
            let _ = eng.offer(&mut hw, &flow(i), &[0u8; 64], t);
        }
        eng.drain(&mut hw);
        let (rep, _) = eng.finish(&mut hw);
        assert!(rep.per_queue[1].offered > 0, "RSS spreads to queue 1");
        assert_eq!(
            rep.per_queue[1].nic.rx_stall, rep.per_queue[1].offered,
            "queue 1 loses everything"
        );
        assert_eq!(rep.per_queue[1].delivered, 0);
        for q in [0, 2, 3] {
            assert_eq!(
                rep.per_queue[q].delivered, rep.per_queue[q].offered,
                "queue {q} must be untouched"
            );
        }
    }

    #[test]
    fn clock_is_monotone_across_offers() {
        let (mut m, mut pool, mut port) = setup(1, 32);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let mut eng = Engine::new(
            Echo { work: 500 },
            EngineConfig {
                workers: WorkerSpec::run_to_completion(1),
                queue_depth: 32,
                burst: 8,
                faults: FaultPlan::none(),
            },
            &mut hw,
        );
        let mut prev = 0.0;
        for i in 0..300u32 {
            let t = i as f64 * 700.0;
            let _ = eng.offer(&mut hw, &flow(1), &[0u8; 64], t);
            let now = eng.now_ns();
            assert!(now >= prev, "clock went backwards: {now} < {prev}");
            prev = now;
        }
    }

    #[test]
    #[should_panic(expected = "polled by two workers")]
    fn double_polling_a_queue_is_rejected() {
        let (mut m, mut pool, mut port) = setup(1, 32);
        let mut policy = rte::nic::FixedHeadroom(128);
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: &mut policy,
        };
        let _ = Engine::new(
            Echo { work: 1 },
            EngineConfig {
                workers: vec![
                    WorkerSpec {
                        core: 0,
                        queue: Some(0),
                    },
                    WorkerSpec {
                        core: 1,
                        queue: Some(0),
                    },
                ],
                queue_depth: 32,
                burst: 8,
                faults: FaultPlan::none(),
            },
            &mut hw,
        );
    }
}
