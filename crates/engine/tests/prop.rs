//! Property test: the engine conserves every packet and its simulated
//! clock never runs backwards, for *any* combination of app behaviour,
//! steering mode, queue geometry, arrival pattern, fault plan — **and
//! execution mode**. Every seeded iteration runs twice, once under
//! [`Execution::Serial`] and once under [`Execution::Parallel`], and the
//! two [`EngineReport`]s must be bit-identical.
//!
//! The engine already asserts the conservation invariant internally (per
//! queue, globally, and against the NIC's own counters) inside
//! [`Engine::finish`] — so this test's job is to drive it through a wide
//! randomized space of configurations and make sure none of them trips
//! an assert, loses a packet, bends time, or diverges between execution
//! modes. Randomness comes from the in-tree seeded
//! [`trafficgen::Rng64`]; a failure prints its iteration seed and
//! replays exactly.

use engine::{
    AdmissionPolicy, Ctx, Engine, EngineConfig, EngineReport, Execution, Hw, QueueApp, SchedStats,
    Scheduler, Verdict, WorkerSpec,
};
use llc_sim::machine::{Machine, MachineConfig};
use rte::fault::{FaultPlan, Window};
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, Port, RxCompletion, TxDesc};
use rte::steering::{FlowDirector, Rss, Steering};
use trafficgen::{FlowTuple, Rng64};

/// A toy app that forwards, drops, or swallows packets at seeded random,
/// with variable per-packet work — the adversarial superset of the real
/// apps (NFV chains forward/drop; the pipeline consumes and re-emits).
/// One instance per worker, seeded per worker, so its decision stream is
/// a pure function of (iteration seed, worker, packet order) — identical
/// under serial and parallel execution.
struct ChaosApp {
    rng: Rng64,
    drop_permille: u32,
    work: u64,
    /// Packets noted since the last economics-hook decision — the same
    /// observable the KVS cost-aware migrator folds over.
    seen: u64,
}

impl QueueApp for ChaosApp {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, comp: &RxCompletion) -> Verdict {
        self.seen += 1;
        ctx.m
            .advance(ctx.core, self.work + self.rng.gen_range(0u32..200) as u64);
        if self.rng.gen_range(0u32..1000) < self.drop_permille {
            Verdict::Drop
        } else {
            Verdict::Tx(TxDesc {
                mbuf: comp.mbuf,
                data_pa: comp.data_pa,
                len: comp.len,
            })
        }
    }
}

fn random_plan(rng: &mut Rng64, horizon_ns: u64, queues: usize) -> FaultPlan {
    let mut plan = if rng.gen_range(0u32..2) == 0 {
        FaultPlan::none()
    } else {
        FaultPlan::frame_indexed()
    };
    plan = plan.with_seed(rng.next_u64());
    if rng.gen_range(0u32..2) == 0 {
        plan = plan.with_corrupt_prob(rng.gen_range(0u32..300) as f64 / 1000.0);
    }
    if rng.gen_range(0u32..2) == 0 {
        plan = plan.with_truncate_prob(rng.gen_range(0u32..200) as f64 / 1000.0);
    }
    let window = |rng: &mut Rng64| {
        let start = rng.next_u64() % horizon_ns;
        let len = rng.next_u64() % (horizon_ns / 4).max(1);
        Window::new(start, start.saturating_add(len))
    };
    if rng.gen_range(0u32..2) == 0 {
        let w = window(rng);
        plan = plan.with_rx_stall(w);
    }
    if rng.gen_range(0u32..2) == 0 {
        let w = window(rng);
        plan = plan.with_link_flap(w);
    }
    if rng.gen_range(0u32..2) == 0 {
        let w = window(rng);
        plan = plan.with_pool_exhaustion(w);
    }
    if rng.gen_range(0u32..2) == 0 {
        let w = window(rng);
        plan = plan.with_ready_overrun(w);
    }
    if rng.gen_range(0u32..2) == 0 {
        let w = window(rng);
        plan = plan.with_tx_stall(w);
    }
    if rng.gen_range(0u32..2) == 0 {
        let q = rng.gen_range(0u32..queues as u32) as usize;
        let w = window(rng);
        plan = plan.with_queue_rx_stall(q, w);
    }
    plan
}

/// Which epoch hook (if any) a scenario installs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum HookKind {
    /// No hook.
    None,
    /// Unconditionally burns RNG state and cycles *per hook call* —
    /// deliberately violates the no-op-at-workless-epochs contract, so
    /// scenarios with it are excluded from the event≡reference check.
    Unconditional,
    /// Economics-style hook shaped like the cost-aware migrator:
    /// decisions are a pure function of packets noted since the last
    /// acting epoch, charges are batched, the estimate self-tunes, and
    /// workless epochs are exact no-ops — so it stays *included* in the
    /// event≡reference comparison.
    Economics,
}

/// Replays iteration `seed` under the given execution mode and
/// scheduler, returning the final report plus which epoch hook the
/// scenario installed. Everything — geometry, fault plan, app
/// behaviour, arrivals, interleaved step calls — is a pure function
/// of `seed`, so two calls with different `execution` or `scheduler`
/// run the exact same scenario.
fn run_once(
    iter: u64,
    seed: u64,
    execution: Execution,
    scheduler: Scheduler,
) -> (EngineReport, HookKind) {
    let mut rng = Rng64::seed_from_u64(seed);
    let queues = 1usize << rng.gen_range(0u32..3); // 1, 2 or 4.
    let depth = [16usize, 32, 64][rng.gen_range(0u32..3) as usize];
    let burst = [1usize, 8, 32][rng.gen_range(0u32..3) as usize];
    let offers = 200 + rng.gen_range(0u32..300) as usize;
    let gap_ns = [50.0f64, 400.0, 3000.0][rng.gen_range(0u32..3) as usize];
    let horizon = ((offers as f64 * gap_ns) as u64).max(1);
    let plan = random_plan(&mut rng, horizon, queues);
    let steering = if rng.gen_range(0u32..2) == 0 {
        Steering::Rss(Rss::new(queues))
    } else {
        Steering::FlowDirector(FlowDirector::new(queues))
    };
    let drop_permille = rng.gen_range(0u32..400);
    let work = 50 + rng.gen_range(0u32..500) as u64;
    let hook_kind = match rng.gen_range(0u32..3) {
        0 => HookKind::None,
        1 => HookKind::Unconditional,
        _ => HookKind::Economics,
    };
    // A third of the grid runs with an ingress admission policy; its
    // sheds must keep every conservation identity balanced and stay
    // bit-identical across execution modes like every other drop cause.
    let admission = match rng.gen_range(0u32..3) {
        0 => AdmissionPolicy::AcceptAll,
        1 => AdmissionPolicy::QueueDepth {
            max_backlog: 1 + rng.gen_range(0u32..depth as u32) as usize,
        },
        _ => AdmissionPolicy::DeadlineInfeasible {
            est_service_ns: 10.0 + rng.gen_range(0u32..2000) as f64,
        },
    };
    let apps: Vec<ChaosApp> = (0..queues)
        .map(|w| ChaosApp {
            rng: Rng64::seed_from_u64(seed ^ 0xabcd ^ (w as u64).wrapping_mul(0x9e37)),
            drop_permille,
            work,
            seen: 0,
        })
        .collect();

    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
    let mut pool = MbufPool::create(&mut m, (4 * queues * depth) as u32, 128, 2048).unwrap();
    let mut port = Port::new(0, steering, depth);
    let mut policy = FixedHeadroom(128);
    let mut hw = Hw {
        m: &mut m,
        port: &mut port,
        pool: &mut pool,
        policy: &mut policy,
    };
    let cfg = EngineConfig {
        workers: WorkerSpec::run_to_completion(queues),
        queue_depth: depth,
        burst,
        faults: plan,
        execution,
        admission,
        scheduler,
    };
    let mut eng = Engine::new(apps, cfg, &mut hw);
    match hook_kind {
        HookKind::None => {}
        HookKind::Unconditional => {
            // A third of the grid installs an epoch hook that runs
            // *timed* work against the merged machine — the
            // coordinator-side surface the KVS hot-set migration uses
            // (`MergeCtx::m`). The hook's cycle charges are a pure
            // function of the iteration seed, so they must land
            // identically under serial and parallel execution, and the
            // conservation/monotonicity asserts below must keep holding
            // with inter-epoch time injected.
            let mut hrng = Rng64::seed_from_u64(seed ^ 0x5ee5_a11d);
            eng.set_epoch_hook(Box::new(move |_apps, mc| {
                let core = hrng.gen_range(0u32..queues as u32) as usize;
                let cycles = hrng.gen_range(0u32..500) as u64;
                mc.m.advance(core, cycles);
                0
            }));
        }
        HookKind::Economics => {
            // Another third installs a hook shaped like the cost-aware
            // migrator (DESIGN.md §3g): it only acts on workers whose
            // apps made progress since its last decision, charges a
            // batched cost on the worker's core, and refines its cost
            // estimate from the charge it just made. Because every
            // decision is a pure function of the per-worker noted
            // counts — and those evolve only at epochs with work, which
            // the two schedulers dispatch identically — the full report
            // must stay bit-identical across *schedulers* as well as
            // execution modes.
            let threshold = 20 + (seed % 40);
            let benefit = 8 + ((seed >> 8) % 24);
            let mut est = vec![600u64; queues];
            eng.set_epoch_hook(Box::new(move |apps: &mut [ChaosApp], mc| {
                for (w, app) in apps.iter_mut().enumerate() {
                    if app.seen < threshold {
                        continue; // workless/quiet epoch: exact no-op
                    }
                    let projected = app.seen * benefit;
                    if projected > est[w] {
                        let batch = (app.seen / 8).clamp(1, 4);
                        let cycles = batch * (est[w] / 2) + 31;
                        mc.m.advance(w, cycles);
                        est[w] = (est[w] + cycles / batch) / 2;
                    }
                    app.seen = 0;
                }
                0
            }));
        }
    }

    let mut t = 0.0f64;
    let mut clock_floor = eng.now_ns();
    let mut frame = vec![0u8; 64];
    for i in 0..offers {
        t += rng.gen_range(0u32..(2.0 * gap_ns) as u32 + 1) as f64;
        let f = FlowTuple::tcp(
            0x0a00_0000 + rng.gen_range(0u32..64),
            1000 + rng.gen_range(0u32..64) as u16,
            0xc0a8_0001,
            80,
        );
        frame[0] = i as u8;
        // Half the offers carry a (sometimes already-tight) deadline so
        // the DeadlineInfeasible policy actually fires. Offers may be
        // shed by the NIC or the admission filter; every outcome must
        // be accounted, so the Result itself is moot.
        let deadline = if rng.gen_range(0u32..2) == 0 {
            f64::INFINITY
        } else {
            t + rng.gen_range(0u32..(8.0 * gap_ns) as u32 + 100) as f64
        };
        let _ = eng.offer_with_deadline(&mut hw, &f, &frame, t, deadline);
        let now = eng.now_ns();
        assert!(
            now >= clock_floor,
            "iter {iter} (seed {seed:#x}, {execution:?}): clock ran backwards ({now} < {clock_floor})"
        );
        clock_floor = now;
        if rng.gen_range(0u32..4) == 0 {
            eng.step(&mut hw);
            let now = eng.now_ns();
            assert!(
                now >= clock_floor,
                "iter {iter} (seed {seed:#x}, {execution:?}): step reversed time"
            );
            clock_floor = now;
        }
    }
    eng.drain(&mut hw);
    let now = eng.now_ns();
    assert!(
        now >= clock_floor,
        "iter {iter} (seed {seed:#x}, {execution:?}): drain reversed time"
    );

    // `finish` asserts conservation per queue, globally, and against
    // the port's own counters; restate the global identity from the
    // report so a regression in the report itself is also caught.
    let (rep, _) = eng.finish(&mut hw);
    assert_eq!(
        rep.offered, offers as u64,
        "iter {iter} (seed {seed:#x}, {execution:?})"
    );
    assert_eq!(
        rep.offered + rep.carried,
        rep.delivered + rep.nic.total() + rep.admit.total() + rep.app_drops + rep.in_flight,
        "iter {iter} (seed {seed:#x}, {execution:?}): conservation"
    );
    assert_eq!(
        rep.in_flight, 0,
        "iter {iter} (seed {seed:#x}, {execution:?}): drained open-loop runs leave nothing in flight"
    );
    assert_eq!(rep.per_queue.len(), queues);
    let q_off: u64 = rep.per_queue.iter().map(|l| l.offered).sum();
    assert_eq!(
        q_off, rep.offered,
        "iter {iter} (seed {seed:#x}, {execution:?}): queue partition"
    );
    assert!(rep.duration_ns > 0.0);
    (rep, hook_kind)
}

/// The same report with the scheduler counters blanked — the one field
/// that legitimately differs between [`Scheduler::EventDriven`] and
/// [`Scheduler::ReferenceTick`].
fn sans_sched(mut rep: EngineReport) -> EngineReport {
    rep.sched = SchedStats::default();
    rep
}

#[test]
fn random_configs_conserve_packets_and_time_in_both_modes() {
    let mut meta = Rng64::seed_from_u64(0x9e37_79b9_7f4a_7c15);
    for iter in 0..60u64 {
        let seed = meta.next_u64();
        let (serial, hooked) = run_once(iter, seed, Execution::Serial, Scheduler::EventDriven);
        // Thread count varies with the iteration so the sweep covers
        // under- and over-subscribed dispatch, including threads == 1.
        let threads = 1 + (iter as usize % 3);
        let (parallel, _) = run_once(
            iter,
            seed,
            Execution::Parallel { threads },
            Scheduler::EventDriven,
        );
        assert_eq!(
            serial, parallel,
            "iter {iter} (seed {seed:#x}): parallel({threads}) diverged from serial"
        );
        // The retained reference tick-stepper must agree field-for-field
        // with the event-driven scheduler (sched counters aside) in both
        // execution modes — except when the scenario installed the
        // *unconditional* timed hook: that hook burns RNG state and
        // machine cycles *per hook call*, and the number of hook calls
        // is exactly what event-driven scheduling reduces (hooks run
        // only at dispatched epochs; all real apps' hooks are no-ops at
        // workless epochs, that synthetic one is deliberately not — see
        // DESIGN.md §3f). The economics-style hook honors the contract,
        // so its scenarios stay in the comparison.
        let (ref_serial, _) = run_once(iter, seed, Execution::Serial, Scheduler::ReferenceTick);
        let (ref_parallel, _) = run_once(
            iter,
            seed,
            Execution::Parallel { threads },
            Scheduler::ReferenceTick,
        );
        assert_eq!(
            ref_serial, ref_parallel,
            "iter {iter} (seed {seed:#x}): reference parallel({threads}) diverged from serial"
        );
        if hooked != HookKind::Unconditional {
            assert_eq!(
                sans_sched(serial.clone()),
                sans_sched(ref_serial.clone()),
                "iter {iter} (seed {seed:#x}): event-driven diverged from reference tick-stepper"
            );
            assert!(
                serial.sched.epochs_dispatched <= ref_serial.sched.epochs_dispatched,
                "iter {iter} (seed {seed:#x}): event-driven dispatched more epochs \
                 ({}) than the tick-stepper ({})",
                serial.sched.epochs_dispatched,
                ref_serial.sched.epochs_dispatched,
            );
        }
    }
}
