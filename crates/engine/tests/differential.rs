//! Differential determinism harness: every scenario in a grid of
//! app behaviour × steering × queue geometry × fault plan is executed
//! once under [`Execution::Serial`] and repeatedly under
//! [`Execution::Parallel`] with several thread counts, and every run
//! must produce a bit-identical [`EngineReport`].
//!
//! This is the proof obligation for the engine's parallel mode: both
//! modes run the *same* frozen-LLC epoch algorithm (workers on disjoint
//! shards, coordinator replays their LLC logs in canonical worker
//! order), so equality is expected by construction — this suite is the
//! regression tripwire that keeps it that way. The real applications
//! (NFV chain, pipelined chain, KVS) get the same treatment in the
//! workspace-level `tests/determinism.rs`.

use engine::{
    AdmissionPolicy, Ctx, Engine, EngineConfig, EngineReport, Execution, Hw, QueueApp, SchedStats,
    Scheduler, Verdict, WorkerSpec,
};
use llc_sim::machine::{Machine, MachineConfig};
use rte::fault::{FaultPlan, Window};
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, Port, RxCompletion, TxDesc};
use rte::steering::{FlowDirector, Rss, Steering};
use trafficgen::{FlowTuple, Rng64};

/// The app-behaviour axis of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AppKind {
    /// Forward every packet with fixed work (the fast path).
    Echo,
    /// Seeded random forward/drop with variable work (adversarial).
    Chaos,
    /// Consume into a private backlog, re-emit from `pump` next epoch
    /// (the pipeline-shaped path: Consumed + pump + has_backlog).
    Backlog,
}

/// The steering axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SteerKind {
    Rss,
    FlowDirector,
}

/// One per-worker app instance covering all three behaviours.
struct GridApp {
    kind: AppKind,
    rng: Rng64,
    inbox: Vec<RxCompletion>,
    burst: usize,
}

impl QueueApp for GridApp {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, comp: &RxCompletion) -> Verdict {
        match self.kind {
            AppKind::Echo => {
                ctx.m.advance(ctx.core, 120);
                Verdict::Tx(TxDesc {
                    mbuf: comp.mbuf,
                    data_pa: comp.data_pa,
                    len: comp.len,
                })
            }
            AppKind::Chaos => {
                ctx.m
                    .advance(ctx.core, 60 + self.rng.gen_range(0u32..300) as u64);
                if self.rng.gen_range(0u32..1000) < 250 {
                    Verdict::Drop
                } else {
                    Verdict::Tx(TxDesc {
                        mbuf: comp.mbuf,
                        data_pa: comp.data_pa,
                        len: comp.len,
                    })
                }
            }
            AppKind::Backlog => {
                ctx.m.advance(ctx.core, 80);
                self.inbox.push(*comp);
                Verdict::Consumed
            }
        }
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>, tx: &mut Vec<TxDesc>) -> usize {
        if self.kind != AppKind::Backlog || self.inbox.is_empty() {
            return 0;
        }
        let take = self.burst.min(self.inbox.len());
        for c in self.inbox.drain(..take) {
            ctx.m.advance(ctx.core, 90);
            tx.push(TxDesc {
                mbuf: c.mbuf,
                data_pa: c.data_pa,
                len: c.len,
            });
        }
        take
    }

    fn has_backlog(&self) -> bool {
        !self.inbox.is_empty()
    }
}

/// A fault plan exercising frame faults and every outage window.
fn mixed_plan(seed: u64, horizon_ns: u64, queues: usize) -> FaultPlan {
    let third = horizon_ns / 3;
    let mut plan = FaultPlan::frame_indexed()
        .with_seed(seed)
        .with_corrupt_prob(0.04)
        .with_truncate_prob(0.06)
        .with_rx_stall(Window::new(third / 2, third))
        .with_tx_stall(Window::new(third, third + third / 2))
        .with_pool_exhaustion(Window::new(2 * third, 2 * third + third / 3));
    if queues > 1 {
        plan = plan.with_queue_rx_stall(queues - 1, Window::new(third / 4, third / 2));
    }
    plan
}

/// Runs one grid scenario under `execution` (and the default
/// event-driven scheduler) and returns the report. Everything else —
/// arrivals, flows, app decisions — is a pure function of the scenario,
/// so any divergence between two calls is the execution mode's fault.
fn run_scenario(
    app: AppKind,
    steer: SteerKind,
    queues: usize,
    depth: usize,
    burst: usize,
    faulty: bool,
    execution: Execution,
) -> EngineReport {
    run_scheduled(
        app,
        steer,
        queues,
        depth,
        burst,
        faulty,
        execution,
        Scheduler::EventDriven,
    )
}

/// [`run_scenario`] with the scheduler as an explicit axis.
#[allow(clippy::too_many_arguments)]
fn run_scheduled(
    app: AppKind,
    steer: SteerKind,
    queues: usize,
    depth: usize,
    burst: usize,
    faulty: bool,
    execution: Execution,
    scheduler: Scheduler,
) -> EngineReport {
    let seed = 0xd1f_0000
        ^ (queues as u64) << 4
        ^ (depth as u64) << 8
        ^ (burst as u64) << 16
        ^ (faulty as u64) << 24;
    let offers = 400usize;
    let gap_ns = 250.0f64;
    let horizon = (offers as f64 * gap_ns) as u64;
    let steering = match steer {
        SteerKind::Rss => Steering::Rss(Rss::new(queues)),
        SteerKind::FlowDirector => Steering::FlowDirector(FlowDirector::new(queues)),
    };
    let faults = if faulty {
        mixed_plan(seed, horizon, queues)
    } else {
        FaultPlan::none()
    };
    let apps: Vec<GridApp> = (0..queues)
        .map(|w| GridApp {
            kind: app,
            rng: Rng64::seed_from_u64(seed ^ 0x5eed ^ (w as u64).wrapping_mul(0x9e37)),
            inbox: Vec::new(),
            burst,
        })
        .collect();

    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
    let mut pool = MbufPool::create(&mut m, (4 * queues * depth) as u32, 128, 2048).unwrap();
    let mut port = Port::new(0, steering, depth);
    let mut policy = FixedHeadroom(128);
    let mut hw = Hw {
        m: &mut m,
        port: &mut port,
        pool: &mut pool,
        policy: &mut policy,
    };
    let cfg = EngineConfig {
        workers: WorkerSpec::run_to_completion(queues),
        queue_depth: depth,
        burst,
        faults,
        execution,
        admission: AdmissionPolicy::AcceptAll,
        scheduler,
    };
    let mut eng = Engine::new(apps, cfg, &mut hw);

    let mut rng = Rng64::seed_from_u64(seed);
    let mut t = 0.0f64;
    let mut frame = vec![0u8; 128];
    for i in 0..offers {
        t += rng.gen_range(1u32..(2.0 * gap_ns) as u32) as f64;
        let f = FlowTuple::tcp(
            0x0a00_0000 + rng.gen_range(0u32..48),
            2000 + rng.gen_range(0u32..48) as u16,
            0xc0a8_0001,
            443,
        );
        frame[0] = i as u8;
        let _ = eng.offer(&mut hw, &f, &frame, t);
        if rng.gen_range(0u32..5) == 0 {
            eng.step(&mut hw);
        }
    }
    eng.drain(&mut hw);
    let (rep, _) = eng.finish(&mut hw);
    rep
}

const GEOMETRIES: &[(usize, usize, usize)] = &[(1, 16, 8), (2, 64, 32), (4, 32, 1)];

/// The headline grid: serial vs parallel at threads ∈ {1, 2, queues},
/// bit-identical reports everywhere.
#[test]
fn grid_serial_and_parallel_reports_are_bit_identical() {
    for app in [AppKind::Echo, AppKind::Chaos, AppKind::Backlog] {
        for steer in [SteerKind::Rss, SteerKind::FlowDirector] {
            for &(queues, depth, burst) in GEOMETRIES {
                for faulty in [false, true] {
                    let serial =
                        run_scenario(app, steer, queues, depth, burst, faulty, Execution::Serial);
                    for threads in [1usize, 2, queues] {
                        let par = run_scenario(
                            app,
                            steer,
                            queues,
                            depth,
                            burst,
                            faulty,
                            Execution::Parallel { threads },
                        );
                        assert_eq!(
                            serial, par,
                            "{app:?}/{steer:?} q={queues} d={depth} b={burst} \
                             faulty={faulty}: parallel({threads}) diverged from serial"
                        );
                    }
                }
            }
        }
    }
}

/// The reference-vs-event-driven differential: over the entire grid, in
/// both execution modes, the event-driven scheduler's report equals the
/// retained reference tick-stepper's field-for-field — except
/// [`EngineReport::sched`], whose whole point is to differ (the
/// event-driven run must never dispatch *more* epochs).
#[test]
fn event_driven_scheduler_matches_reference_tick_stepper() {
    let sans_sched = |mut rep: EngineReport| {
        rep.sched = SchedStats::default();
        rep
    };
    for app in [AppKind::Echo, AppKind::Chaos, AppKind::Backlog] {
        for steer in [SteerKind::Rss, SteerKind::FlowDirector] {
            for &(queues, depth, burst) in GEOMETRIES {
                for faulty in [false, true] {
                    for execution in [Execution::Serial, Execution::Parallel { threads: 2 }] {
                        let evt = run_scheduled(
                            app,
                            steer,
                            queues,
                            depth,
                            burst,
                            faulty,
                            execution,
                            Scheduler::EventDriven,
                        );
                        let tick = run_scheduled(
                            app,
                            steer,
                            queues,
                            depth,
                            burst,
                            faulty,
                            execution,
                            Scheduler::ReferenceTick,
                        );
                        assert_eq!(
                            sans_sched(evt.clone()),
                            sans_sched(tick.clone()),
                            "{app:?}/{steer:?} q={queues} d={depth} b={burst} faulty={faulty} \
                             {execution:?}: event-driven diverged from the reference tick-stepper"
                        );
                        assert!(
                            evt.sched.epochs_dispatched <= tick.sched.epochs_dispatched,
                            "{app:?}/{steer:?} q={queues} d={depth} b={burst} faulty={faulty} \
                             {execution:?}: event-driven dispatched more epochs ({}) than the \
                             tick-stepper ({})",
                            evt.sched.epochs_dispatched,
                            tick.sched.epochs_dispatched,
                        );
                    }
                }
            }
        }
    }
}

/// Parallel mode must also be deterministic against *itself*: repeated
/// runs of the same scenario with the same thread count, and runs with
/// different thread counts, all agree.
#[test]
fn parallel_is_self_deterministic_across_repeats_and_thread_counts() {
    for app in [AppKind::Chaos, AppKind::Backlog] {
        let reference = run_scenario(
            app,
            SteerKind::Rss,
            4,
            32,
            8,
            true,
            Execution::Parallel { threads: 2 },
        );
        for repeat in 0..3 {
            for threads in [1usize, 2, 4] {
                let rep = run_scenario(
                    app,
                    SteerKind::Rss,
                    4,
                    32,
                    8,
                    true,
                    Execution::Parallel { threads },
                );
                assert_eq!(
                    reference, rep,
                    "{app:?}: parallel run (repeat {repeat}, threads {threads}) \
                     is not reproducible"
                );
            }
        }
    }
}

/// Stress: several *whole engines* running concurrently on OS threads
/// (as a parallel test harness would run them) must each still produce
/// the canonical report — no cross-engine interference through shared
/// process state. Run this suite with `--test-threads=1` and with the
/// default parallel harness; both must pass identically.
#[test]
fn concurrent_engines_do_not_interfere() {
    let expected = run_scenario(
        AppKind::Chaos,
        SteerKind::FlowDirector,
        4,
        32,
        8,
        true,
        Execution::Parallel { threads: 4 },
    );
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    run_scenario(
                        AppKind::Chaos,
                        SteerKind::FlowDirector,
                        4,
                        32,
                        8,
                        true,
                        Execution::Parallel { threads: 4 },
                    )
                })
            })
            .collect();
        for h in handles {
            let rep = h.join().expect("engine thread panicked");
            assert_eq!(expected, rep, "concurrent engines interfered");
        }
    });
}

/// An app whose epoch hook behaves like the cost-aware migrator: it
/// accumulates per-queue access counts, and at epoch merges performs
/// *conditional, batched, timed* machine work on the serving core —
/// with a running cost estimate, an economics veto, and dormancy
/// back-off, exactly the stateful shape of `kvs`'s controller (which
/// gets its own end-to-end differential in the workspace-level
/// `tests/determinism.rs`).
struct EconApp {
    seen: u64,
    charged: u64,
}

impl QueueApp for EconApp {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, comp: &RxCompletion) -> Verdict {
        ctx.m.advance(ctx.core, 100);
        self.seen += 1;
        Verdict::Tx(TxDesc {
            mbuf: comp.mbuf,
            data_pa: comp.data_pa,
            len: comp.len,
        })
    }
}

/// Runs the economics-hook scenario and returns the report, the final
/// per-core machine clocks, and the cycles each queue's hook charged.
fn run_econ(execution: Execution, scheduler: Scheduler) -> (EngineReport, Vec<u64>, Vec<u64>) {
    let queues = 2usize;
    let depth = 32usize;
    let apps: Vec<EconApp> = (0..queues)
        .map(|_| EconApp {
            seen: 0,
            charged: 0,
        })
        .collect();
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
    let mut pool = MbufPool::create(&mut m, (4 * queues * depth) as u32, 128, 2048).unwrap();
    let mut port = Port::new(0, Steering::Rss(Rss::new(queues)), depth);
    let mut policy = FixedHeadroom(128);
    let mut hw = Hw {
        m: &mut m,
        port: &mut port,
        pool: &mut pool,
        policy: &mut policy,
    };
    let cfg = EngineConfig {
        workers: WorkerSpec::run_to_completion(queues),
        queue_depth: depth,
        burst: 8,
        faults: FaultPlan::none(),
        execution,
        admission: AdmissionPolicy::AcceptAll,
        scheduler,
    };
    let mut eng = Engine::new(apps, cfg, &mut hw);
    // Controller state captured by the hook: a per-queue cost estimate
    // refined from "realized" charges, calm-epoch counters and dormancy
    // flags. Everything is a pure function of the apps' access counts,
    // so both schedulers and both execution modes must replay it
    // identically. Crucially the hook is a strict no-op at workless
    // epochs: `seen` only moves when packets were processed, and every
    // acting branch resets it.
    let mut est = vec![800u64; queues];
    let mut calm = vec![0u32; queues];
    let mut dormant = vec![false; queues];
    eng.set_epoch_hook(Box::new(
        move |apps: &mut [EconApp], mc: &mut engine::MergeCtx<'_>| {
            for (w, app) in apps.iter_mut().enumerate() {
                if app.seen < 60 {
                    continue;
                }
                let projected = app.seen * 20;
                if dormant[w] && projected <= 2 * est[w] {
                    app.seen = 0;
                    continue;
                }
                if projected > est[w] {
                    // Batched timed work on the serving core (worker w runs
                    // on core w under run_to_completion).
                    let batch = (app.seen / 12).min(4);
                    let cycles = batch * est[w] / 2 + 37;
                    mc.m.advance(w, cycles);
                    app.charged += cycles;
                    est[w] = (est[w] + cycles / batch.max(1)) / 2;
                    calm[w] = 0;
                    dormant[w] = false;
                } else {
                    calm[w] += 1;
                    if calm[w] >= 2 {
                        dormant[w] = true;
                    }
                }
                app.seen = 0;
            }
            0
        },
    ));
    let mut rng = Rng64::seed_from_u64(0xec0_90d);
    let mut t = 0.0f64;
    let mut frame = vec![0u8; 128];
    for i in 0..400usize {
        t += rng.gen_range(1u32..500) as f64;
        let f = FlowTuple::tcp(
            0x0a00_0000 + rng.gen_range(0u32..48),
            2000 + rng.gen_range(0u32..48) as u16,
            0xc0a8_0001,
            443,
        );
        frame[0] = i as u8;
        let _ = eng.offer(&mut hw, &f, &frame, t);
        if rng.gen_range(0u32..5) == 0 {
            eng.step(&mut hw);
        }
    }
    eng.drain(&mut hw);
    let (rep, apps) = eng.finish(&mut hw);
    let clocks = (0..queues).map(|c| hw.m.now(c)).collect();
    let charged = apps.iter().map(|a| a.charged).collect();
    (rep, clocks, charged)
}

/// The tentpole's engine-side obligation: a stateful, economics-driven
/// epoch hook that charges timed machine work at merges must stay
/// bit-identical — report, per-core clocks, and charged cycles — across
/// serial/parallel and event-driven/reference-tick, because its
/// decisions are pure functions of noted access counts and it is a
/// no-op at workless epochs (DESIGN §3f).
#[test]
fn stateful_economics_hook_is_bit_identical_across_modes_and_schedulers() {
    let sans_sched = |mut rep: EngineReport| {
        rep.sched = SchedStats::default();
        rep
    };
    let (ref_rep, ref_clocks, ref_charged) = run_econ(Execution::Serial, Scheduler::EventDriven);
    assert!(
        ref_charged.iter().sum::<u64>() > 0,
        "the hook must actually charge work for this test to mean anything"
    );
    for execution in [
        Execution::Serial,
        Execution::Parallel { threads: 1 },
        Execution::Parallel { threads: 2 },
    ] {
        for scheduler in [Scheduler::EventDriven, Scheduler::ReferenceTick] {
            let (rep, clocks, charged) = run_econ(execution, scheduler);
            assert_eq!(
                sans_sched(ref_rep.clone()),
                sans_sched(rep),
                "{execution:?}/{scheduler:?}: report diverged"
            );
            assert_eq!(
                ref_clocks, clocks,
                "{execution:?}/{scheduler:?}: hook charges landed on different clocks"
            );
            assert_eq!(
                ref_charged, charged,
                "{execution:?}/{scheduler:?}: hook charged different cycles"
            );
        }
    }
}

/// Over-subscription: more threads than workers (and more threads than
/// host cores would sensibly allow) still yields the canonical report.
#[test]
fn oversubscribed_thread_counts_are_harmless() {
    let serial = run_scenario(
        AppKind::Echo,
        SteerKind::Rss,
        2,
        32,
        8,
        false,
        Execution::Serial,
    );
    for threads in [3usize, 8, 64] {
        let par = run_scenario(
            AppKind::Echo,
            SteerKind::Rss,
            2,
            32,
            8,
            false,
            Execution::Parallel { threads },
        );
        assert_eq!(serial, par, "threads={threads} diverged");
    }
}
