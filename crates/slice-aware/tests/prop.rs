//! Property-based tests for the slice-aware allocator and mapping.

use llc_sim::addr::PhysAddr;
use llc_sim::hash::{FoldedSliceHash, SliceHash, XorSliceHash};
use llc_sim::mem::PhysMem;
use proptest::prelude::*;
use slice_aware::alloc::SliceAllocator;

/// Random interleavings of slice-local and contiguous requests never
/// hand out the same line twice, always honour the slice constraint, and
/// contiguous buffers are truly contiguous.
fn check_alloc_sequence(requests: Vec<(u8, u16)>, slices: usize) {
    let mut mem = PhysMem::new(4 << 20);
    let region = mem.alloc(2 << 20, 1 << 20).unwrap();
    let mk = |slices: usize| -> Box<dyn FnMut(PhysAddr) -> usize> {
        if slices == 8 {
            let h = XorSliceHash::haswell_8slice();
            Box::new(move |pa| h.slice_of(pa))
        } else {
            let h = FoldedSliceHash::new(slices);
            Box::new(move |pa| h.slice_of(pa))
        }
    };
    let mut check = mk(slices);
    let mut alloc = SliceAllocator::new(region, mk(slices));
    let mut seen = std::collections::HashSet::new();
    for (kind, count) in requests {
        let count = count as usize + 1;
        if kind as usize % (slices + 1) == slices {
            if let Ok(buf) = alloc.alloc_contiguous_lines(count) {
                for w in buf.lines().windows(2) {
                    assert_eq!(w[1].raw(), w[0].raw() + 64, "contiguity");
                }
                for &pa in buf.lines() {
                    assert!(seen.insert(pa), "double allocation {pa}");
                }
            }
        } else {
            let target = kind as usize % (slices + 1);
            if let Ok(buf) = alloc.alloc_lines(target, count) {
                assert_eq!(buf.len(), count);
                for &pa in buf.lines() {
                    assert_eq!(check(pa), target, "slice constraint");
                    assert!(seen.insert(pa), "double allocation {pa}");
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn allocator_invariants_haswell(
        requests in proptest::collection::vec((0u8..9, 0u16..400), 1..40),
    ) {
        check_alloc_sequence(requests, 8);
    }

    #[test]
    fn allocator_invariants_skylake(
        requests in proptest::collection::vec((0u8..19, 0u16..200), 1..30),
    ) {
        check_alloc_sequence(requests, 18);
    }

    /// Exclusive allocation never overlaps earlier stash-based buffers.
    #[test]
    fn exclusive_never_overlaps(
        first in 1usize..500,
        second in 1usize..500,
        s1 in 0usize..8,
        s2 in 0usize..8,
    ) {
        let mut mem = PhysMem::new(4 << 20);
        let region = mem.alloc(2 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
        let a = alloc.alloc_lines(s1, first).unwrap();
        let b = alloc.alloc_lines_exclusive(s2, second).unwrap();
        let set: std::collections::HashSet<_> = a.lines().iter().collect();
        for pa in b.lines() {
            prop_assert!(!set.contains(pa), "overlap at {pa}");
        }
    }

    /// Polled slice maps agree with ground truth for arbitrary offsets.
    #[test]
    fn polling_agrees_with_hash(offsets in proptest::collection::vec(0usize..16_384, 1..8)) {
        use llc_sim::machine::{Machine, MachineConfig};
        use slice_aware::mapping::poll_slice_of;
        let mut m = Machine::new(
            MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20),
        );
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        for off in offsets {
            let pa = r.pa(off * 64);
            prop_assert_eq!(poll_slice_of(&mut m, 0, pa, 8), m.slice_of(pa));
        }
    }
}
