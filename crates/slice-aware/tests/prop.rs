//! Property-style tests for the slice-aware allocator and mapping.
//! Seeded loops over [`trafficgen::Rng64`] (fully offline).

use llc_sim::addr::PhysAddr;
use llc_sim::hash::{FoldedSliceHash, SliceHash, XorSliceHash};
use llc_sim::mem::PhysMem;
use slice_aware::alloc::SliceAllocator;
use trafficgen::Rng64;

/// Random interleavings of slice-local and contiguous requests never
/// hand out the same line twice, always honour the slice constraint, and
/// contiguous buffers are truly contiguous.
fn check_alloc_sequence(requests: Vec<(u8, u16)>, slices: usize) {
    let mut mem = PhysMem::new(4 << 20);
    let region = mem.alloc(2 << 20, 1 << 20).unwrap();
    let mk = |slices: usize| -> Box<dyn FnMut(PhysAddr) -> usize> {
        if slices == 8 {
            let h = XorSliceHash::haswell_8slice();
            Box::new(move |pa| h.slice_of(pa))
        } else {
            let h = FoldedSliceHash::new(slices);
            Box::new(move |pa| h.slice_of(pa))
        }
    };
    let mut check = mk(slices);
    let mut alloc = SliceAllocator::new(region, mk(slices));
    let mut seen = std::collections::HashSet::new();
    for (kind, count) in requests {
        let count = count as usize + 1;
        if kind as usize % (slices + 1) == slices {
            if let Ok(buf) = alloc.alloc_contiguous_lines(count) {
                for w in buf.lines().windows(2) {
                    assert_eq!(w[1].raw(), w[0].raw() + 64, "contiguity");
                }
                for &pa in buf.lines() {
                    assert!(seen.insert(pa), "double allocation {pa}");
                }
            }
        } else {
            let target = kind as usize % (slices + 1);
            if let Ok(buf) = alloc.alloc_lines(target, count) {
                assert_eq!(buf.len(), count);
                for &pa in buf.lines() {
                    assert_eq!(check(pa), target, "slice constraint");
                    assert!(seen.insert(pa), "double allocation {pa}");
                }
            }
        }
    }
}

#[test]
fn allocator_invariants_haswell() {
    let mut rng = Rng64::seed_from_u64(0xa101);
    for _ in 0..24 {
        let n = rng.gen_range(1usize..40);
        let requests: Vec<(u8, u16)> = (0..n)
            .map(|_| (rng.gen_range(0u32..9) as u8, rng.gen_range(0u16..400)))
            .collect();
        check_alloc_sequence(requests, 8);
    }
}

#[test]
fn allocator_invariants_skylake() {
    let mut rng = Rng64::seed_from_u64(0xa102);
    for _ in 0..16 {
        let n = rng.gen_range(1usize..30);
        let requests: Vec<(u8, u16)> = (0..n)
            .map(|_| (rng.gen_range(0u32..19) as u8, rng.gen_range(0u16..200)))
            .collect();
        check_alloc_sequence(requests, 18);
    }
}

/// Exclusive allocation never overlaps earlier stash-based buffers.
#[test]
fn exclusive_never_overlaps() {
    let mut rng = Rng64::seed_from_u64(0xa103);
    for _ in 0..32 {
        let first = rng.gen_range(1usize..500);
        let second = rng.gen_range(1usize..500);
        let s1 = rng.gen_range(0usize..8);
        let s2 = rng.gen_range(0usize..8);
        let mut mem = PhysMem::new(4 << 20);
        let region = mem.alloc(2 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
        let a = alloc.alloc_lines(s1, first).unwrap();
        let b = alloc.alloc_lines_exclusive(s2, second).unwrap();
        let set: std::collections::HashSet<_> = a.lines().iter().collect();
        for pa in b.lines() {
            assert!(!set.contains(pa), "overlap at {pa}");
        }
    }
}

/// Polled slice maps agree with ground truth for arbitrary offsets.
#[test]
fn polling_agrees_with_hash() {
    use llc_sim::machine::{Machine, MachineConfig};
    use slice_aware::mapping::poll_slice_of;
    let mut rng = Rng64::seed_from_u64(0xa104);
    for _ in 0..16 {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20));
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        let n = rng.gen_range(1usize..8);
        for _ in 0..n {
            let off = rng.gen_range(0usize..16_384);
            let pa = r.pa(off * 64);
            assert_eq!(poll_slice_of(&mut m, 0, pa, 8), m.slice_of(pa));
        }
    }
}
