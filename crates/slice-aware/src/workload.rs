//! The §3 microbenchmark kernels: uniform random reads/writes over a
//! buffer reached through a pointer table.
//!
//! Figs. 6, 7 and 17 all run the same inner loop — "locations in this
//! memory are read/written randomly (with uniform distribution)" — over
//! buffers allocated either slice-aware or contiguously. The paper notes
//! the addresses live in "an array of pointers", so every operation pays
//! a little fixed work on top of the probed access; [`OP_OVERHEAD`]
//! models that (index generation + pointer load served from the nearby
//! table).

use crate::alloc::SliceBuffer;
use llc_sim::hierarchy::Cycles;
use llc_sim::machine::Machine;
use llc_sim::AccessKind;
use trafficgen::Rng64;

/// Fixed per-operation cycles: random-index arithmetic plus the pointer
/// fetch from the (hot) pointer array.
pub const OP_OVERHEAD: Cycles = 20;

/// Touches every line once so the measurement starts warm (the paper's
/// 100-run experiments amortise the cold start; we separate it).
pub fn warm_buffer(m: &mut Machine, core: usize, buf: &SliceBuffer) {
    for &pa in buf.lines() {
        m.touch_read(core, pa);
    }
    m.drain_write_backs(core);
}

/// Runs `ops` uniform random reads or writes over `buf` from `core`;
/// returns total cycles including per-op overhead.
pub fn random_access(
    m: &mut Machine,
    core: usize,
    buf: &SliceBuffer,
    ops: usize,
    kind: AccessKind,
    seed: u64,
) -> Cycles {
    assert!(!buf.is_empty(), "empty buffer");
    let mut rng = Rng64::seed_from_u64(seed);
    let mut total = 0;
    for _ in 0..ops {
        let pa = buf.line(rng.gen_range(0..buf.len()));
        m.advance(core, OP_OVERHEAD);
        total += OP_OVERHEAD;
        total += match kind {
            AccessKind::Read => m.touch_read(core, pa),
            AccessKind::Write => m.touch_write(core, pa),
        };
    }
    total
}

/// Interleaves the random-access kernel across several `(core, buffer)`
/// pairs round-robin — the multi-core runs of Fig. 7 — and returns each
/// core's total cycles.
pub fn random_access_multicore(
    m: &mut Machine,
    work: &[(usize, &SliceBuffer)],
    ops_per_core: usize,
    kind: AccessKind,
    seed: u64,
) -> Vec<Cycles> {
    assert!(!work.is_empty(), "no work");
    let mut rngs: Vec<Rng64> = (0..work.len())
        .map(|i| Rng64::seed_from_u64(seed ^ (i as u64) << 32))
        .collect();
    let mut totals = vec![0; work.len()];
    for _ in 0..ops_per_core {
        for (i, &(core, buf)) in work.iter().enumerate() {
            let pa = buf.line(rngs[i].gen_range(0..buf.len()));
            m.advance(core, OP_OVERHEAD);
            totals[i] += OP_OVERHEAD;
            totals[i] += match kind {
                AccessKind::Read => m.touch_read(core, pa),
                AccessKind::Write => m.touch_write(core, pa),
            };
        }
    }
    totals
}

/// Aggregate operations per second over per-core cycle totals (Fig. 7's
/// y-axis): each core retires `ops` in `cycles/freq` seconds; the system
/// rate is the sum of per-core rates.
pub fn aggregate_ops_per_sec(totals: &[Cycles], ops_per_core: usize, freq_ghz: f64) -> f64 {
    totals
        .iter()
        .map(|&c| {
            if c == 0 {
                0.0
            } else {
                ops_per_core as f64 / (c as f64 / (freq_ghz * 1e9))
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::SliceAllocator;
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::machine::MachineConfig;

    fn setup() -> (
        Machine,
        SliceAllocator<impl FnMut(llc_sim::PhysAddr) -> usize>,
    ) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
        let r = m.mem_mut().alloc(128 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        (m, SliceAllocator::new(r, move |pa| h.slice_of(pa)))
    }

    #[test]
    fn warm_buffer_makes_reads_cache_hits() {
        let (mut m, mut a) = setup();
        let buf = a.alloc_lines(0, 256).unwrap();
        warm_buffer(&mut m, 0, &buf);
        // 256 lines fit in L2 (4096 lines): every read is now a hit.
        let c = random_access(&mut m, 0, &buf, 100, AccessKind::Read, 1);
        let per_op = c as f64 / 100.0;
        assert!(per_op <= (OP_OVERHEAD + 11) as f64, "per-op {per_op}");
    }

    #[test]
    fn close_slice_reads_beat_far_slice_reads() {
        // The heart of §3: same working set size, different slice.
        let (mut m, mut a) = setup();
        let lines = 1_441_792 / 64; // The paper's 1.375 MB buffer.
        let near = a.alloc_lines(m.closest_slice(0), lines).unwrap();
        let far_slice = *m.slices_by_distance(0).last().unwrap();
        let far = a.alloc_lines(far_slice, lines).unwrap();
        warm_buffer(&mut m, 0, &near);
        let c_near = random_access(&mut m, 0, &near, 20_000, AccessKind::Read, 2);
        warm_buffer(&mut m, 0, &far);
        let c_far = random_access(&mut m, 0, &far, 20_000, AccessKind::Read, 2);
        assert!(
            c_near < c_far,
            "near {c_near} must beat far {c_far} for LLC-resident sets"
        );
        let speedup = (c_far - c_near) as f64 / c_far as f64;
        assert!(speedup > 0.05, "speedup {speedup} too small");
    }

    #[test]
    fn slice_aware_beats_contiguous_on_reads() {
        let (mut m, mut a) = setup();
        let lines = 1_441_792 / 64;
        let aware = a.alloc_lines(m.closest_slice(0), lines).unwrap();
        let normal = a.alloc_contiguous_lines(lines).unwrap();
        warm_buffer(&mut m, 0, &aware);
        let c_aware = random_access(&mut m, 0, &aware, 20_000, AccessKind::Read, 3);
        warm_buffer(&mut m, 0, &normal);
        let c_normal = random_access(&mut m, 0, &normal, 20_000, AccessKind::Read, 3);
        assert!(c_aware < c_normal);
    }

    #[test]
    fn sustained_writes_show_slice_dependence() {
        // Fig. 6b: with enough writes, the write-back backlog exposes the
        // slice distance.
        let (mut m, mut a) = setup();
        let lines = 1_441_792 / 64;
        let near = a.alloc_lines(m.closest_slice(0), lines).unwrap();
        let far_slice = *m.slices_by_distance(0).last().unwrap();
        let far = a.alloc_lines(far_slice, lines).unwrap();
        warm_buffer(&mut m, 0, &near);
        let c_near = random_access(&mut m, 0, &near, 20_000, AccessKind::Write, 4);
        m.drain_write_backs(0);
        warm_buffer(&mut m, 0, &far);
        let c_far = random_access(&mut m, 0, &far, 20_000, AccessKind::Write, 4);
        assert!(c_near < c_far, "near {c_near} vs far {c_far}");
    }

    #[test]
    fn multicore_runs_all_cores() {
        let (mut m, mut a) = setup();
        let bufs: Vec<_> = (0..8)
            .map(|c| a.alloc_lines(m.closest_slice(c), 512).unwrap())
            .collect();
        let work: Vec<(usize, &SliceBuffer)> = bufs.iter().enumerate().collect();
        let totals = random_access_multicore(&mut m, &work, 500, AccessKind::Read, 5);
        assert_eq!(totals.len(), 8);
        assert!(totals.iter().all(|&t| t > 0));
        let ops = aggregate_ops_per_sec(&totals, 500, 3.2);
        assert!(ops > 0.0);
    }

    #[test]
    fn aggregate_ops_formula() {
        // One core, 1000 ops in 3.2e9 cycles at 3.2 GHz = 1 second => 1000 ops/s.
        let ops = aggregate_ops_per_sec(&[3_200_000_000], 1000, 3.2);
        assert!((ops - 1000.0).abs() < 1e-6);
        assert_eq!(aggregate_ops_per_sec(&[0], 10, 3.2), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn random_access_rejects_empty() {
        let (mut m, _a) = setup();
        let empty = SliceBuffer::from_lines(vec![]);
        random_access(&mut m, 0, &empty, 1, AccessKind::Read, 0);
    }
}
