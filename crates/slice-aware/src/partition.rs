//! Slice partitioning for multi-tenant hosts (paper §7, future work).
//!
//! "Slice isolation can also be employed in hypervisors (e.g., KVM) to
//! allocate different LLC slices to different virtual machines." A
//! [`SlicePartitioner`] plays that hypervisor role: it owns the slice
//! inventory, grants each tenant a disjoint slice set, and hands out
//! per-tenant allocators whose memory maps only to the tenant's slices —
//! so a tenant's LLC footprint is physically confined without CAT.

use crate::alloc::{AllocError, SliceAllocator, SliceBuffer};
use llc_sim::addr::PhysAddr;
use std::collections::HashMap;
use std::fmt;

/// A tenant identifier.
pub type TenantId = u32;

/// Partitioning failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A requested slice is already granted to another tenant.
    SliceTaken {
        /// The contested slice.
        slice: usize,
        /// Its current owner.
        owner: TenantId,
    },
    /// The tenant id is already registered.
    DuplicateTenant(TenantId),
    /// The tenant is unknown.
    NoSuchTenant(TenantId),
    /// No slice granted to this tenant.
    EmptyGrant,
    /// The underlying allocator ran out of lines.
    Alloc(AllocError),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::SliceTaken { slice, owner } => {
                write!(f, "slice {slice} already granted to tenant {owner}")
            }
            PartitionError::DuplicateTenant(t) => write!(f, "tenant {t} already registered"),
            PartitionError::NoSuchTenant(t) => write!(f, "no tenant {t}"),
            PartitionError::EmptyGrant => write!(f, "tenant holds no slices"),
            PartitionError::Alloc(e) => write!(f, "allocation failed: {e}"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl From<AllocError> for PartitionError {
    fn from(e: AllocError) -> Self {
        PartitionError::Alloc(e)
    }
}

/// The hypervisor-side slice inventory and per-tenant grants.
pub struct SlicePartitioner<F> {
    alloc: SliceAllocator<F>,
    slices: usize,
    owner: Vec<Option<TenantId>>,
    grants: HashMap<TenantId, Vec<usize>>,
}

impl<F> fmt::Debug for SlicePartitioner<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlicePartitioner")
            .field("slices", &self.slices)
            .field("tenants", &self.grants.len())
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(PhysAddr) -> usize> SlicePartitioner<F> {
    /// A partitioner over `slices` slices backed by `alloc`.
    pub fn new(alloc: SliceAllocator<F>, slices: usize) -> Self {
        Self {
            alloc,
            slices,
            owner: vec![None; slices],
            grants: HashMap::new(),
        }
    }

    /// Grants `slices` exclusively to `tenant`.
    ///
    /// # Errors
    ///
    /// Fails without side effects when the tenant exists or any slice is
    /// taken.
    pub fn grant(&mut self, tenant: TenantId, slices: &[usize]) -> Result<(), PartitionError> {
        if self.grants.contains_key(&tenant) {
            return Err(PartitionError::DuplicateTenant(tenant));
        }
        for &s in slices {
            assert!(s < self.slices, "slice out of range");
            if let Some(owner) = self.owner[s] {
                return Err(PartitionError::SliceTaken { slice: s, owner });
            }
        }
        for &s in slices {
            self.owner[s] = Some(tenant);
        }
        self.grants.insert(tenant, slices.to_vec());
        Ok(())
    }

    /// Revokes a tenant's grant, freeing its slices for new grants.
    ///
    /// Memory already allocated stays allocated (the underlying
    /// allocator never frees), mirroring a teardown where the hugepage is
    /// returned wholesale.
    pub fn revoke(&mut self, tenant: TenantId) -> Result<Vec<usize>, PartitionError> {
        let slices = self
            .grants
            .remove(&tenant)
            .ok_or(PartitionError::NoSuchTenant(tenant))?;
        for &s in &slices {
            self.owner[s] = None;
        }
        Ok(slices)
    }

    /// The slices granted to `tenant`.
    pub fn slices_of(&self, tenant: TenantId) -> Option<&[usize]> {
        self.grants.get(&tenant).map(Vec::as_slice)
    }

    /// The owner of `slice`.
    pub fn owner_of(&self, slice: usize) -> Option<TenantId> {
        self.owner[slice]
    }

    /// Slices not granted to anyone.
    pub fn free_slices(&self) -> Vec<usize> {
        (0..self.slices)
            .filter(|&s| self.owner[s].is_none())
            .collect()
    }

    /// Allocates `lines` cache lines for `tenant`, spread round-robin
    /// over its granted slices.
    pub fn alloc_for(
        &mut self,
        tenant: TenantId,
        lines: usize,
    ) -> Result<SliceBuffer, PartitionError> {
        let slices = self
            .grants
            .get(&tenant)
            .ok_or(PartitionError::NoSuchTenant(tenant))?
            .clone();
        if slices.is_empty() {
            return Err(PartitionError::EmptyGrant);
        }
        Ok(self.alloc.alloc_lines_multi(&slices, lines)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::mem::PhysMem;

    fn partitioner() -> SlicePartitioner<impl FnMut(PhysAddr) -> usize> {
        let mut mem = PhysMem::new(32 << 20);
        let region = mem.alloc(16 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        // The PhysMem handle can drop: a Region is plain address
        // bookkeeping and these tests only inspect addresses.
        drop(mem);
        SlicePartitioner::new(SliceAllocator::new(region, move |pa| h.slice_of(pa)), 8)
    }

    #[test]
    fn grants_are_exclusive() {
        let mut p = partitioner();
        p.grant(1, &[0, 1]).unwrap();
        let err = p.grant(2, &[1, 2]).unwrap_err();
        assert_eq!(err, PartitionError::SliceTaken { slice: 1, owner: 1 });
        // The failed grant must not have claimed slice 2.
        assert_eq!(p.owner_of(2), None);
        p.grant(2, &[2, 3]).unwrap();
        assert_eq!(p.owner_of(2), Some(2));
    }

    #[test]
    fn tenant_memory_stays_in_its_slices() {
        let mut p = partitioner();
        p.grant(7, &[4, 5]).unwrap();
        p.grant(9, &[0]).unwrap();
        let h = XorSliceHash::haswell_8slice();
        let a = p.alloc_for(7, 200).unwrap();
        for &pa in a.lines() {
            assert!([4, 5].contains(&h.slice_of(pa)));
        }
        let b = p.alloc_for(9, 100).unwrap();
        for &pa in b.lines() {
            assert_eq!(h.slice_of(pa), 0);
        }
    }

    #[test]
    fn tenants_never_share_lines() {
        let mut p = partitioner();
        p.grant(1, &[0, 2]).unwrap();
        p.grant(2, &[1, 3]).unwrap();
        let a = p.alloc_for(1, 500).unwrap();
        let b = p.alloc_for(2, 500).unwrap();
        let set: std::collections::HashSet<_> = a.lines().iter().collect();
        assert!(b.lines().iter().all(|pa| !set.contains(pa)));
    }

    #[test]
    fn revoke_frees_slices() {
        let mut p = partitioner();
        p.grant(1, &[6, 7]).unwrap();
        assert_eq!(p.free_slices().len(), 6);
        let freed = p.revoke(1).unwrap();
        assert_eq!(freed, vec![6, 7]);
        assert_eq!(p.free_slices().len(), 8);
        p.grant(2, &[6]).unwrap();
        assert_eq!(p.owner_of(6), Some(2));
    }

    #[test]
    fn errors_are_reported() {
        let mut p = partitioner();
        p.grant(1, &[0]).unwrap();
        assert_eq!(
            p.grant(1, &[1]).unwrap_err(),
            PartitionError::DuplicateTenant(1)
        );
        assert_eq!(
            p.alloc_for(5, 1).unwrap_err(),
            PartitionError::NoSuchTenant(5)
        );
        assert_eq!(p.revoke(5).unwrap_err(), PartitionError::NoSuchTenant(5));
        p.grant(3, &[]).unwrap();
        assert_eq!(p.alloc_for(3, 1).unwrap_err(), PartitionError::EmptyGrant);
    }

    #[test]
    fn slices_of_reports_grant() {
        let mut p = partitioner();
        p.grant(4, &[1, 3, 5]).unwrap();
        assert_eq!(p.slices_of(4), Some(&[1usize, 3, 5][..]));
        assert_eq!(p.slices_of(8), None);
    }
}
