//! Polling-based slice-mapping discovery (paper §2.1, "Polling").
//!
//! The technique needs no knowledge of the hash function: program every
//! CBo counter to count LLC lookups, access one physical address many
//! times in a way that defeats the private caches (flush + reload), and
//! the slice whose counter moved is the one the address maps to. It works
//! "on any processor with any number of cores, which \[is\] equipped with
//! \[an\] uncore performance monitoring unit" — including the Skylake part
//! whose hash is unknown (§6).

use llc_sim::addr::PhysAddr;
use llc_sim::machine::Machine;
use llc_sim::mem::Region;
use llc_sim::uncore::UncoreEvent;

/// Number of flush+reload probes per address; enough for the target
/// slice's counter to dominate incidental lookups (fills, prefetches).
pub const DEFAULT_POLLS: usize = 32;

/// Determines the slice `pa` maps to by polling the uncore counters.
///
/// Runs `polls` flush+reload rounds on `core` and returns the slice whose
/// lookup counter grew the most. Leaves the uncore programmed to
/// [`UncoreEvent::LlcLookupAny`].
pub fn poll_slice_of(m: &mut Machine, core: usize, pa: PhysAddr, polls: usize) -> usize {
    m.uncore_mut().select(UncoreEvent::LlcLookupAny);
    for _ in 0..polls {
        // The flush guarantees the next load misses L1/L2 and therefore
        // performs an LLC lookup in the owning slice.
        m.clflush(core, pa);
        m.touch_read(core, pa);
    }
    m.uncore().busiest_slice()
}

/// A discovered line → slice mapping for one region.
///
/// Stores one byte per cache line; a 1 GB hugepage costs 16 MiB, which is
/// why the paper calls pure polling "expensive in terms of time" and
/// constructs the hash function instead when possible.
#[derive(Debug, Clone)]
pub struct SliceMap {
    base_line: u64,
    slices: Vec<u8>,
}

impl SliceMap {
    /// Discovers the mapping of every `stride`-th line of `region` by
    /// polling (lines in between get the mapping of the nearest probed
    /// line below — exact when `stride == 1`).
    ///
    /// # Panics
    ///
    /// Panics when `stride == 0` or the machine has more than 255 slices.
    pub fn discover(
        m: &mut Machine,
        core: usize,
        region: Region,
        stride: usize,
        polls: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(m.config().slices <= u8::MAX as usize, "slice id overflow");
        let lines = region.len() / llc_sim::CACHE_LINE;
        let mut slices = vec![0u8; lines];
        let mut i = 0;
        while i < lines {
            let pa = region.pa(i * llc_sim::CACHE_LINE);
            let s = poll_slice_of(m, core, pa, polls) as u8;
            let end = (i + stride).min(lines);
            for e in &mut slices[i..end] {
                *e = s;
            }
            i += stride;
        }
        Self {
            base_line: region.base().line(),
            slices,
        }
    }

    /// Builds a map from ground truth (the machine's hash function) —
    /// used when the hash is known, and by tests as the reference.
    pub fn from_hash(m: &Machine, region: Region) -> Self {
        let lines = region.len() / llc_sim::CACHE_LINE;
        let slices = (0..lines)
            .map(|i| m.slice_of(region.pa(i * llc_sim::CACHE_LINE)) as u8)
            .collect();
        Self {
            base_line: region.base().line(),
            slices,
        }
    }

    /// The slice for `pa`; `None` outside the mapped region.
    pub fn slice_of(&self, pa: PhysAddr) -> Option<usize> {
        let line = pa.line();
        line.checked_sub(self.base_line)
            .and_then(|off| self.slices.get(off as usize))
            .map(|&s| s as usize)
    }

    /// Number of mapped lines.
    pub fn lines(&self) -> usize {
        self.slices.len()
    }

    /// Per-slice line counts (distribution check).
    pub fn histogram(&self, slices: usize) -> Vec<usize> {
        let mut h = vec![0usize; slices];
        for &s in &self.slices {
            h[s as usize] += 1;
        }
        h
    }

    /// Fraction of lines whose mapping agrees with `other` (e.g. polled vs
    /// ground truth).
    pub fn agreement(&self, other: &SliceMap) -> f64 {
        assert_eq!(self.base_line, other.base_line, "different regions");
        assert_eq!(self.slices.len(), other.slices.len(), "different sizes");
        let same = self
            .slices
            .iter()
            .zip(&other.slices)
            .filter(|(a, b)| a == b)
            .count();
        same as f64 / self.slices.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::machine::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20))
    }

    #[test]
    fn polling_matches_ground_truth() {
        let mut m = machine();
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        for i in [0usize, 1, 7, 100, 1000] {
            let pa = r.pa(i * 64);
            let polled = poll_slice_of(&mut m, 0, pa, DEFAULT_POLLS);
            assert_eq!(polled, m.slice_of(pa), "line {i}");
        }
    }

    #[test]
    fn polling_works_from_any_core() {
        let mut m = machine();
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        let pa = r.pa(12345 * 64);
        let want = m.slice_of(pa);
        for core in 0..8 {
            assert_eq!(poll_slice_of(&mut m, core, pa, 16), want);
        }
    }

    #[test]
    fn polling_works_on_skylake_without_hash_knowledge() {
        // §6: the Skylake mapping was measured "through polling without
        // knowing the hash function".
        let mut m = Machine::new(MachineConfig::skylake_gold_6134().with_dram_capacity(64 << 20));
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        for i in [3usize, 17, 900] {
            let pa = r.pa(i * 64);
            assert_eq!(poll_slice_of(&mut m, 0, pa, DEFAULT_POLLS), m.slice_of(pa));
        }
    }

    #[test]
    fn slice_map_discover_stride1_is_exact() {
        let mut m = machine();
        let r = m.mem_mut().alloc(64 * 1024, 64 * 1024).unwrap();
        let polled = SliceMap::discover(&mut m, 0, r, 1, 8);
        let truth = SliceMap::from_hash(&m, r);
        assert_eq!(polled.agreement(&truth), 1.0);
    }

    #[test]
    fn slice_map_lookup_and_bounds() {
        let mut m = machine();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let map = SliceMap::from_hash(&m, r);
        assert_eq!(map.lines(), 64);
        let pa = r.pa(0);
        assert_eq!(map.slice_of(pa), Some(m.slice_of(pa)));
        assert_eq!(map.slice_of(PhysAddr(r.base().raw() + 4096)), None);
    }

    #[test]
    fn histogram_is_balanced_for_xor_hash() {
        let mut m = machine();
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        let map = SliceMap::from_hash(&m, r);
        let h = map.histogram(8);
        // 2^14 lines over 8 slices: the XOR hash balances exactly.
        assert!(h.iter().all(|&c| c == map.lines() / 8), "{h:?}");
    }

    #[test]
    fn coarse_stride_approximates() {
        let mut m = machine();
        let r = m.mem_mut().alloc(64 * 1024, 64 * 1024).unwrap();
        let coarse = SliceMap::discover(&mut m, 0, r, 8, 4);
        let truth = SliceMap::from_hash(&m, r);
        // Every 8th line is exact; in-between lines are best-effort.
        let exact: Vec<usize> = (0..truth.lines()).step_by(8).collect();
        for i in exact {
            let pa = r.pa(i * 64);
            assert_eq!(coarse.slice_of(pa), truth.slice_of(pa));
        }
    }
}
