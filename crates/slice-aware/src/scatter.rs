//! Slice-aware placement for objects larger than 64 B (paper §8).
//!
//! Complex Addressing remaps every cache line, so an object larger than
//! one line cannot sit in a single slice *contiguously*. §8 sketches the
//! fix: "it would still be possible to map larger data to the
//! appropriate LLC slice(s) by using a linked-list and scattering the
//! data". [`ScatteredBuf`] implements that: a logical byte buffer whose
//! 64 B segments each live on a slice-local line, with timed copy-in /
//! copy-out that walks the hierarchy segment by segment.
//!
//! §8 also suggests spreading across *several* nearby slices to lower
//! eviction pressure ("one can use multiple slices for memory
//! allocation, as §2.2 showed that LLC access times are bimodal");
//! [`SliceAllocator::alloc_lines_multi`] (re-exported here) allocates
//! round-robin over a preferred set for exactly that.

use crate::alloc::{AllocError, SliceAllocator, SliceBuffer};
use llc_sim::addr::PhysAddr;
use llc_sim::hierarchy::Cycles;
use llc_sim::machine::Machine;
use llc_sim::CACHE_LINE;

impl<F: FnMut(PhysAddr) -> usize> SliceAllocator<F> {
    /// Allocates `count` lines spread round-robin over `slices` (e.g. a
    /// core's primary + secondary slices from
    /// [`crate::placement::PlacementPolicy::preferred_set`]).
    ///
    /// # Panics
    ///
    /// Panics when `slices` is empty.
    pub fn alloc_lines_multi(
        &mut self,
        slices: &[usize],
        count: usize,
    ) -> Result<SliceBuffer, AllocError> {
        assert!(!slices.is_empty(), "need at least one target slice");
        let mut lines = Vec::with_capacity(count);
        for i in 0..count {
            let target = slices[i % slices.len()];
            lines.extend_from_slice(self.alloc_lines(target, 1)?.lines());
        }
        Ok(SliceBuffer::from_lines(lines))
    }
}

/// A logical byte buffer scattered over slice-local cache lines.
#[derive(Debug, Clone)]
pub struct ScatteredBuf {
    segments: SliceBuffer,
    len: usize,
}

impl ScatteredBuf {
    /// Allocates a `len`-byte object whose every line maps to `slice`.
    pub fn new<F: FnMut(PhysAddr) -> usize>(
        alloc: &mut SliceAllocator<F>,
        slice: usize,
        len: usize,
    ) -> Result<Self, AllocError> {
        let segments = alloc.alloc_lines(slice, len.div_ceil(CACHE_LINE))?;
        Ok(Self { segments, len })
    }

    /// Wraps an already-allocated segment list as a `len`-byte object.
    ///
    /// # Panics
    ///
    /// Panics when the segments cannot hold `len` bytes.
    pub fn from_segments(segments: SliceBuffer, len: usize) -> Self {
        assert!(
            segments.len() * CACHE_LINE >= len,
            "segments too small for the object"
        );
        Self { segments, len }
    }

    /// Allocates a `len`-byte object spread over the `slices` set.
    pub fn new_multi<F: FnMut(PhysAddr) -> usize>(
        alloc: &mut SliceAllocator<F>,
        slices: &[usize],
        len: usize,
    ) -> Result<Self, AllocError> {
        let segments = alloc.alloc_lines_multi(slices, len.div_ceil(CACHE_LINE))?;
        Ok(Self { segments, len })
    }

    /// Logical length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length object.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing lines (inspection).
    pub fn segments(&self) -> &SliceBuffer {
        &self.segments
    }

    /// Physical location of logical offset `off`.
    ///
    /// # Panics
    ///
    /// Panics when `off >= len`.
    pub fn pa_of(&self, off: usize) -> PhysAddr {
        assert!(off < self.len, "offset outside object");
        self.segments
            .line(off / CACHE_LINE)
            .add((off % CACHE_LINE) as u64)
    }

    /// Timed write of `data` at logical offset `off`.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the object.
    pub fn write(&self, m: &mut Machine, core: usize, off: usize, data: &[u8]) -> Cycles {
        assert!(off + data.len() <= self.len, "write outside object");
        let mut cycles = 0;
        let mut cursor = off;
        let mut remaining = data;
        while !remaining.is_empty() {
            let in_line = cursor % CACHE_LINE;
            let take = (CACHE_LINE - in_line).min(remaining.len());
            cycles += m.write_bytes(core, self.pa_of(cursor), &remaining[..take]);
            cursor += take;
            remaining = &remaining[take..];
        }
        cycles
    }

    /// Timed read of `out.len()` bytes at logical offset `off`.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the object.
    pub fn read(&self, m: &mut Machine, core: usize, off: usize, out: &mut [u8]) -> Cycles {
        assert!(off + out.len() <= self.len, "read outside object");
        let mut cycles = 0;
        let mut cursor = off;
        let mut written = 0;
        while written < out.len() {
            let in_line = cursor % CACHE_LINE;
            let take = (CACHE_LINE - in_line).min(out.len() - written);
            cycles += m.read_bytes(core, self.pa_of(cursor), &mut out[written..written + take]);
            cursor += take;
            written += take;
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::machine::MachineConfig;

    fn setup() -> (Machine, SliceAllocator<impl FnMut(PhysAddr) -> usize>) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
        let r = m.mem_mut().alloc(16 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        (m, SliceAllocator::new(r, move |pa| h.slice_of(pa)))
    }

    #[test]
    fn scattered_object_lives_in_one_slice() {
        let (m, mut a) = setup();
        let obj = ScatteredBuf::new(&mut a, 5, 1000).unwrap();
        assert_eq!(obj.len(), 1000);
        assert_eq!(obj.segments().len(), 16, "1000 B = 16 lines");
        for off in [0usize, 63, 64, 500, 999] {
            assert_eq!(m.slice_of(obj.pa_of(off)), 5, "offset {off}");
        }
    }

    #[test]
    fn roundtrip_across_segment_boundaries() {
        let (mut m, mut a) = setup();
        let obj = ScatteredBuf::new(&mut a, 2, 256).unwrap();
        let data: Vec<u8> = (0..200u8).collect();
        // Unaligned start, crosses three segment boundaries.
        obj.write(&mut m, 0, 30, &data);
        let mut out = vec![0u8; 200];
        obj.read(&mut m, 0, 30, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn multi_slice_spread_round_robin() {
        let (m, mut a) = setup();
        let obj = ScatteredBuf::new_multi(&mut a, &[0, 2], 64 * 8).unwrap();
        let slices: Vec<usize> = (0..8).map(|i| m.slice_of(obj.segments().line(i))).collect();
        assert_eq!(slices, vec![0, 2, 0, 2, 0, 2, 0, 2]);
    }

    #[test]
    fn alloc_lines_multi_balances() {
        let (m, mut a) = setup();
        let buf = a.alloc_lines_multi(&[1, 3, 5], 99).unwrap();
        let mut counts = [0usize; 8];
        for &pa in buf.lines() {
            counts[m.slice_of(pa)] += 1;
        }
        assert_eq!(counts[1], 33);
        assert_eq!(counts[3], 33);
        assert_eq!(counts[5], 33);
    }

    #[test]
    fn scattered_reads_pay_per_segment() {
        let (mut m, mut a) = setup();
        let obj = ScatteredBuf::new(&mut a, 0, 256).unwrap();
        // Cold read of 256 B = 4 segment lines from DRAM.
        let mut out = vec![0u8; 256];
        let c = obj.read(&mut m, 0, 0, &mut out);
        assert_eq!(c, 4 * 192);
        // Warm read: 4 L1 hits.
        let c = obj.read(&mut m, 0, 0, &mut out);
        assert_eq!(c, 4 * 4);
    }

    #[test]
    #[should_panic(expected = "outside object")]
    fn read_beyond_len_panics() {
        let (mut m, mut a) = setup();
        let obj = ScatteredBuf::new(&mut a, 0, 100).unwrap();
        let mut out = vec![0u8; 8];
        obj.read(&mut m, 0, 96, &mut out);
    }
}
