//! Cache isolation: slices vs. CAT way masks (paper §7, Fig. 17).
//!
//! Intel CAT partitions the LLC by *ways*: a class of service gets a way
//! mask and its fills cannot evict outside it. Slice-aware allocation can
//! partition by *slices* instead: give the protected application memory
//! that maps to one slice and let the noisy neighbour run everywhere
//! else. The paper's Fig. 17 compares three scenarios on Skylake; the
//! scenario setup lives here and the measurement loop reuses
//! [`crate::workload`].

use crate::alloc::{AllocError, SliceAllocator, SliceBuffer};
use llc_sim::addr::PhysAddr;
use llc_sim::machine::Machine;

/// The Fig. 17 scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationScenario {
    /// Both applications allocate normally and share all LLC ways.
    NoCat,
    /// The main application is limited to `ways` LLC ways via CAT; the
    /// noisy neighbour gets the remaining ways.
    WayIsolated {
        /// Ways granted to the main application.
        ways: usize,
    },
    /// The main application's memory maps to `slice` only; the neighbour
    /// allocates over the other slices (no CAT).
    SliceIsolated {
        /// The protected slice.
        slice: usize,
    },
    /// Both techniques combined (§7: "even CAT-enabled systems can
    /// benefit from the slice-aware memory management"): the main
    /// application gets `ways` CAT ways *and* slice-local memory in
    /// `slice`; the neighbour gets the remaining ways over all slices.
    WaysAndSlice {
        /// Ways granted to the main application.
        ways: usize,
        /// The slice its memory maps to.
        slice: usize,
    },
}

/// Buffers and machine state for one isolation run.
#[derive(Debug)]
pub struct IsolationSetup {
    /// The protected application's working set.
    pub main_buf: SliceBuffer,
    /// The noisy neighbour's (much larger) working set.
    pub noise_buf: SliceBuffer,
}

/// Why an isolation scenario could not be set up. Both causes are
/// recoverable — an experiment sweep (or an online controller probing
/// candidate partitions) skips the infeasible point and moves on —
/// matching the PR-1 graceful-degradation convention of typed errors on
/// setup paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationError {
    /// The requested CAT split grants the main application zero ways or
    /// leaves none for the neighbour (`ways` must satisfy
    /// `0 < ways < llc_ways`).
    InvalidWaySplit {
        /// The ways requested for the main application.
        ways: usize,
        /// The LLC's associativity (the exclusive upper bound).
        llc_ways: usize,
    },
    /// Allocating one of the working sets failed.
    Alloc(AllocError),
}

impl core::fmt::Display for IsolationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IsolationError::InvalidWaySplit { ways, llc_ways } => write!(
                f,
                "invalid way split: {ways} ways for the main application \
                 (need 0 < ways < {llc_ways})"
            ),
            IsolationError::Alloc(e) => write!(f, "working-set allocation failed: {e}"),
        }
    }
}

impl std::error::Error for IsolationError {}

impl From<AllocError> for IsolationError {
    fn from(e: AllocError) -> Self {
        IsolationError::Alloc(e)
    }
}

/// Prepares machine CAT masks and allocates both working sets.
///
/// `main_bytes` follows the paper: "2 MB, which corresponds to
/// three-fourths of the size of each slice plus the size of L2" on the
/// Xeon Gold 6134. The neighbour's set is sized to sweep the whole LLC.
///
/// Returns [`IsolationError::InvalidWaySplit`] when a CAT scenario's
/// `ways` is zero or not below the LLC associativity (the machine is
/// left untouched in that case), and [`IsolationError::Alloc`] when a
/// working set does not fit the allocator's region.
pub fn setup_isolation<F: FnMut(PhysAddr) -> usize>(
    m: &mut Machine,
    alloc: &mut SliceAllocator<F>,
    scenario: IsolationScenario,
    main_core: usize,
    noise_core: usize,
    main_bytes: usize,
    noise_bytes: usize,
) -> Result<IsolationSetup, IsolationError> {
    let llc_ways = m.config().llc_slice.ways;
    // Validate before mutating: an infeasible split must not clobber the
    // masks an earlier (successful) setup installed.
    if let IsolationScenario::WayIsolated { ways } | IsolationScenario::WaysAndSlice { ways, .. } =
        scenario
    {
        if ways == 0 || ways >= llc_ways {
            return Err(IsolationError::InvalidWaySplit { ways, llc_ways });
        }
    }
    m.clear_cat_mask(main_core);
    m.clear_cat_mask(noise_core);
    let (main_buf, noise_buf) = match scenario {
        IsolationScenario::NoCat => (
            alloc.alloc_contiguous_bytes(main_bytes)?,
            alloc.alloc_contiguous_bytes(noise_bytes)?,
        ),
        IsolationScenario::WayIsolated { ways } => {
            let main_mask = (1u64 << ways) - 1;
            let noise_mask = ((1u64 << llc_ways) - 1) & !main_mask;
            m.set_cat_mask(main_core, main_mask);
            m.set_cat_mask(noise_core, noise_mask);
            (
                alloc.alloc_contiguous_bytes(main_bytes)?,
                alloc.alloc_contiguous_bytes(noise_bytes)?,
            )
        }
        IsolationScenario::SliceIsolated { slice } => {
            let main = alloc.alloc_bytes(slice, main_bytes)?;
            // The neighbour "pollutes all LLC slices except slice 0": carve
            // its set out of the other slices round-robin.
            let slices = m.config().slices;
            let per = (noise_bytes / llc_sim::CACHE_LINE).div_ceil(slices.saturating_sub(1).max(1));
            let mut lines = Vec::new();
            for s in (0..slices).filter(|&s| s != slice) {
                lines.extend_from_slice(alloc.alloc_lines(s, per)?.lines());
            }
            (main, SliceBuffer::from_lines(lines))
        }
        IsolationScenario::WaysAndSlice { ways, slice } => {
            let main_mask = (1u64 << ways) - 1;
            let noise_mask = ((1u64 << llc_ways) - 1) & !main_mask;
            m.set_cat_mask(main_core, main_mask);
            m.set_cat_mask(noise_core, noise_mask);
            (
                alloc.alloc_bytes(slice, main_bytes)?,
                alloc.alloc_contiguous_bytes(noise_bytes)?,
            )
        }
    };
    Ok(IsolationSetup {
        main_buf,
        noise_buf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{random_access, warm_buffer};
    use llc_sim::hash::{FoldedSliceHash, SliceHash};
    use llc_sim::machine::MachineConfig;
    use llc_sim::AccessKind;

    // Paper §7 uses 2 MB ("three-fourths of the size of each slice plus
    // the size of L2" on the Gold 6134). Under strict LRU a 2 MB random
    // working set overflows a 1.375 MB slice (see EXPERIMENTS.md), so the
    // tests use a fits-one-slice size where the paper's comparison is
    // well-posed. The noisy neighbour streams through a set larger than
    // the whole LLC (18 × 1.375 MB ≈ 24.75 MB) so it evicts constantly.
    const MAIN_BYTES: usize = 1_310_720;
    const NOISE_BYTES: usize = 40 * 1024 * 1024;

    fn setup() -> (Machine, SliceAllocator<impl FnMut(PhysAddr) -> usize>) {
        let mut m = Machine::new(MachineConfig::skylake_gold_6134().with_dram_capacity(512 << 20));
        let r = m.mem_mut().alloc(256 << 20, 1 << 20).unwrap();
        let h = FoldedSliceHash::skylake_18slice();
        (m, SliceAllocator::new(r, move |pa| h.slice_of(pa)))
    }

    /// Runs main + neighbour interleaved and returns the main app's cycles.
    fn contended_run(m: &mut Machine, main: &SliceBuffer, noise: &SliceBuffer, ops: usize) -> u64 {
        warm_buffer(m, 0, main);
        // The neighbour has been running for a while before the
        // measurement starts: its streaming set already fills the LLC.
        warm_buffer(m, 1, noise);
        let mut total = 0;
        // Interleave in small quanta so the neighbour keeps polluting; the
        // neighbour runs hotter than the protected app (4 : 1), like the
        // paper's continuously running noise process.
        let quantum = 50;
        let mut done = 0;
        let mut round = 0;
        while done < ops {
            let n = quantum.min(ops - done);
            total += random_access(m, 0, main, n, AccessKind::Read, 100 + round);
            random_access(m, 1, noise, 4 * quantum, AccessKind::Read, 200 + round);
            done += n;
            round += 1;
        }
        total
    }

    #[test]
    fn way_isolation_beats_no_cat_under_noise() {
        let (mut m, mut a) = setup();
        let ops = 10_000;
        let no_cat = setup_isolation(
            &mut m,
            &mut a,
            IsolationScenario::NoCat,
            0,
            1,
            MAIN_BYTES,
            NOISE_BYTES,
        )
        .unwrap();
        let t_nocat = contended_run(&mut m, &no_cat.main_buf, &no_cat.noise_buf, ops);
        let way = setup_isolation(
            &mut m,
            &mut a,
            IsolationScenario::WayIsolated { ways: 2 },
            0,
            1,
            MAIN_BYTES,
            NOISE_BYTES,
        )
        .unwrap();
        let t_way = contended_run(&mut m, &way.main_buf, &way.noise_buf, ops);
        assert!(
            t_way < t_nocat,
            "CAT must shield the main app: {t_way} vs {t_nocat}"
        );
    }

    #[test]
    fn slice_isolation_is_competitive_with_way_isolation() {
        // Fig. 17's comparison: when the working set fits the protected
        // slice, slice isolation serves it at minimum latency using 1/18
        // of the LLC, competitive with (the paper measured ~11 % better
        // than) a 2-way CAT partition that burns 2/11 of every slice.
        // Our LRU model reproduces the "competitive with far less cache"
        // claim; the exact ordering depends on replacement/bandwidth
        // details discussed in EXPERIMENTS.md.
        let (mut m, mut a) = setup();
        let ops = 10_000;
        let way = setup_isolation(
            &mut m,
            &mut a,
            IsolationScenario::WayIsolated { ways: 2 },
            0,
            1,
            MAIN_BYTES,
            NOISE_BYTES,
        )
        .unwrap();
        let t_way = contended_run(&mut m, &way.main_buf, &way.noise_buf, ops);
        let closest = m.closest_slice(0);
        let slice = setup_isolation(
            &mut m,
            &mut a,
            IsolationScenario::SliceIsolated { slice: closest },
            0,
            1,
            MAIN_BYTES,
            NOISE_BYTES,
        )
        .unwrap();
        let t_slice = contended_run(&mut m, &slice.main_buf, &slice.noise_buf, ops);
        let ratio = t_slice as f64 / t_way as f64;
        assert!(
            ratio < 1.10,
            "slice isolation (1/18 of LLC) must stay within 10% of 2-way CAT              (2/11 of LLC): {t_slice} vs {t_way}"
        );
    }

    #[test]
    fn combined_cat_and_slice_beats_plain_cat_when_capacity_allows() {
        // §7: "even CAT-enabled systems can benefit from the slice-aware
        // memory management". Stacking both restrictions multiplies the
        // capacity constraints (ways x one slice), so the latency benefit
        // appears when the working set fits the compound capacity —
        // which Haswell's geometry (8 of 20 ways x 2048 sets = 1 MB per
        // slice, 256 kB L2) permits for a 512 kB set.
        let mut m = Machine::new(
            llc_sim::machine::MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20),
        );
        let region = m.mem_mut().alloc(256 << 20, 1 << 20).unwrap();
        let h = llc_sim::hash::XorSliceHash::haswell_8slice();
        let mut a = SliceAllocator::new(region, move |pa| {
            use llc_sim::hash::SliceHash;
            h.slice_of(pa)
        });
        let main_bytes = 512 * 1024;
        let ops = 10_000;
        let way = setup_isolation(
            &mut m,
            &mut a,
            IsolationScenario::WayIsolated { ways: 8 },
            0,
            1,
            main_bytes,
            NOISE_BYTES,
        )
        .unwrap();
        let t_way = contended_run(&mut m, &way.main_buf, &way.noise_buf, ops);
        let closest = m.closest_slice(0);
        let both = setup_isolation(
            &mut m,
            &mut a,
            IsolationScenario::WaysAndSlice {
                ways: 8,
                slice: closest,
            },
            0,
            1,
            main_bytes,
            NOISE_BYTES,
        )
        .unwrap();
        let t_both = contended_run(&mut m, &both.main_buf, &both.noise_buf, ops);
        assert!(
            t_both < t_way,
            "CAT+slice {t_both} must beat CAT alone {t_way}"
        );
    }

    #[test]
    fn slice_isolated_noise_avoids_protected_slice() {
        let (mut m, mut a) = setup();
        let protected = 0;
        let s = setup_isolation(
            &mut m,
            &mut a,
            IsolationScenario::SliceIsolated { slice: protected },
            0,
            1,
            MAIN_BYTES,
            1 << 20,
        )
        .unwrap();
        let h = FoldedSliceHash::skylake_18slice();
        assert!(s
            .main_buf
            .lines()
            .iter()
            .all(|&pa| h.slice_of(pa) == protected));
        assert!(s
            .noise_buf
            .lines()
            .iter()
            .all(|&pa| h.slice_of(pa) != protected));
    }

    #[test]
    fn way_masks_are_disjoint() {
        let (mut m, mut a) = setup();
        let _ = setup_isolation(
            &mut m,
            &mut a,
            IsolationScenario::WayIsolated { ways: 2 },
            0,
            1,
            MAIN_BYTES,
            1 << 20,
        )
        .unwrap();
        // Indirect check: the main core can only keep 2 ways of any set.
        // (Direct mask access is private; behaviour is asserted in the
        // llc-sim CAT test. Here we just ensure setup succeeds.)
    }

    #[test]
    fn rejects_full_way_grant_with_typed_error() {
        let (mut m, mut a) = setup();
        for ways in [0, 11, 12] {
            let err = setup_isolation(
                &mut m,
                &mut a,
                IsolationScenario::WayIsolated { ways },
                0,
                1,
                MAIN_BYTES,
                1 << 20,
            )
            .unwrap_err();
            assert_eq!(err, IsolationError::InvalidWaySplit { ways, llc_ways: 11 });
            assert!(err.to_string().contains("invalid way split"));
        }
        // The combined scenario validates the same bound.
        let err = setup_isolation(
            &mut m,
            &mut a,
            IsolationScenario::WaysAndSlice { ways: 11, slice: 0 },
            0,
            1,
            MAIN_BYTES,
            1 << 20,
        )
        .unwrap_err();
        assert!(matches!(err, IsolationError::InvalidWaySplit { .. }));
    }

    #[test]
    fn infeasible_split_leaves_existing_masks_untouched() {
        let (mut m, mut a) = setup();
        let _ = setup_isolation(
            &mut m,
            &mut a,
            IsolationScenario::WayIsolated { ways: 2 },
            0,
            1,
            MAIN_BYTES,
            1 << 20,
        )
        .unwrap();
        let (main_before, noise_before) = (m.cat_mask(0), m.cat_mask(1));
        let _ = setup_isolation(
            &mut m,
            &mut a,
            IsolationScenario::WayIsolated { ways: 0 },
            0,
            1,
            MAIN_BYTES,
            1 << 20,
        )
        .unwrap_err();
        assert_eq!(
            m.cat_mask(0),
            main_before,
            "rejected split must not clobber"
        );
        assert_eq!(m.cat_mask(1), noise_before);
    }

    #[test]
    fn alloc_failure_maps_to_typed_error() {
        let (mut m, mut a) = setup();
        let err = setup_isolation(
            &mut m,
            &mut a,
            IsolationScenario::NoCat,
            0,
            1,
            usize::MAX / 2, // cannot fit any region
            1 << 20,
        )
        .unwrap_err();
        assert!(matches!(err, IsolationError::Alloc(_)));
    }
}
