//! The slice-aware allocator (paper §3).
//!
//! Complex Addressing changes slice every cache line, so memory that maps
//! to a single slice is inherently **non-contiguous**: a "buffer" is a
//! collection of 64 B lines scattered through a hugepage (the paper's §3
//! experiment allocates "1.375 MB non-contiguous memory which maps to a
//! specific slice"). [`SliceAllocator`] carves such buffers out of a
//! [`Region`] with a single lazy scan that files every examined line into
//! a per-slice stash, and also hands out ordinary contiguous buffers for
//! the "normal allocation" baselines.
//!
//! The allocator is deliberately independent of the simulator: it only
//! needs a *slice oracle* — any `FnMut(PhysAddr) -> usize`, which can be
//! the reconstructed hash function (fast path) or a polled
//! [`crate::mapping::SliceMap`] (portable path).

use llc_sim::addr::PhysAddr;
use llc_sim::mem::Region;
use llc_sim::CACHE_LINE;
use std::fmt;

/// Allocation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The region ran out of lines mapping to the requested slice.
    ExhaustedSlice {
        /// The slice that ran dry.
        slice: usize,
        /// Lines that could still be delivered.
        got: usize,
        /// Lines requested.
        want: usize,
    },
    /// The region ran out of contiguous space.
    ExhaustedContiguous,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::ExhaustedSlice { slice, got, want } => {
                write!(f, "slice {slice} exhausted: {got}/{want} lines available")
            }
            AllocError::ExhaustedContiguous => write!(f, "contiguous space exhausted"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A slice-aware buffer: an ordered set of cache-line addresses.
///
/// For slice-local buffers the lines are non-contiguous; the "normal"
/// baseline produces consecutive lines. Elements are addressed by line
/// index, mirroring how the paper's experiments treat the buffer as an
/// array of 64 B slots reached through a pointer table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceBuffer {
    lines: Vec<PhysAddr>,
}

impl SliceBuffer {
    /// Wraps an explicit line list.
    pub fn from_lines(lines: Vec<PhysAddr>) -> Self {
        Self { lines }
    }

    /// The line addresses.
    pub fn lines(&self) -> &[PhysAddr] {
        &self.lines
    }

    /// Number of 64 B lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when the buffer holds no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Total capacity in bytes.
    pub fn bytes(&self) -> usize {
        self.lines.len() * CACHE_LINE
    }

    /// Address of line `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn line(&self, i: usize) -> PhysAddr {
        self.lines[i]
    }
}

/// Lazily scanning slice-aware allocator over one region.
///
/// A single scan cursor walks the region once, front to back; every
/// examined line is filed into its slice's stash, and allocations pop
/// from the stash. Contiguous allocations are carved from the region's
/// *end*, growing downward, so the two kinds never collide until the
/// region is genuinely full.
pub struct SliceAllocator<F> {
    region: Region,
    oracle: F,
    slices: usize,
    /// Next unexamined line index (global scan cursor).
    scan: usize,
    /// Per-slice FIFO of discovered-but-unallocated line offsets.
    stash: Vec<std::collections::VecDeque<u32>>,
    /// Next line index for contiguous allocation (exclusive, from the top).
    contig_top: usize,
}

impl<F> fmt::Debug for SliceAllocator<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SliceAllocator")
            .field("region_len", &self.region.len())
            .field("slices", &self.slices)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(PhysAddr) -> usize> SliceAllocator<F> {
    /// An allocator over `region` using `oracle` as the PA→slice map.
    ///
    /// The slice count is discovered lazily; oracles must return stable
    /// values below 256 (matching real slice counts).
    pub fn new(region: Region, oracle: F) -> Self {
        Self {
            region,
            oracle,
            slices: 0,
            scan: 0,
            stash: Vec::new(),
            contig_top: region.len() / CACHE_LINE,
        }
    }

    fn ensure_slice(&mut self, slice: usize) {
        if slice >= self.slices {
            self.slices = slice + 1;
            self.stash.resize_with(self.slices, Default::default);
        }
    }

    /// Allocates `count` cache lines that all map to `slice`.
    ///
    /// Lines come back in ascending address order within one scan epoch;
    /// they are scattered through the region (by construction of Complex
    /// Addressing, roughly one line in `slices` qualifies).
    pub fn alloc_lines(&mut self, slice: usize, count: usize) -> Result<SliceBuffer, AllocError> {
        self.ensure_slice(slice);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            if let Some(off) = self.stash[slice].pop_front() {
                out.push(self.region.pa(off as usize * CACHE_LINE));
                continue;
            }
            if self.scan >= self.contig_top {
                return Err(AllocError::ExhaustedSlice {
                    slice,
                    got: out.len(),
                    want: count,
                });
            }
            let idx = self.scan;
            self.scan += 1;
            let pa = self.region.pa(idx * CACHE_LINE);
            let s = (self.oracle)(pa);
            self.ensure_slice(s);
            self.stash[s].push_back(idx as u32);
        }
        Ok(SliceBuffer::from_lines(out))
    }

    /// Allocates `bytes` rounded up to whole lines, all in `slice`.
    pub fn alloc_bytes(&mut self, slice: usize, bytes: usize) -> Result<SliceBuffer, AllocError> {
        self.alloc_lines(slice, bytes.div_ceil(CACHE_LINE))
    }

    /// Like [`SliceAllocator::alloc_lines`], but *discards* scanned lines
    /// belonging to other slices instead of stashing them.
    ///
    /// For gigabyte-scale single-slice carvings (the slice-aware KVS needs
    /// `2^24` lines of one slice out of an 8× larger region) the stash
    /// would hold hundreds of millions of offsets; a dedicated region does
    /// not need them back. Memory the scan skipped cannot be allocated
    /// later.
    pub fn alloc_lines_exclusive(
        &mut self,
        slice: usize,
        count: usize,
    ) -> Result<SliceBuffer, AllocError> {
        self.ensure_slice(slice);
        let mut out = Vec::with_capacity(count);
        // Drain anything already stashed for this slice first.
        while out.len() < count {
            match self.stash[slice].pop_front() {
                Some(off) => out.push(self.region.pa(off as usize * CACHE_LINE)),
                None => break,
            }
        }
        while out.len() < count {
            if self.scan >= self.contig_top {
                return Err(AllocError::ExhaustedSlice {
                    slice,
                    got: out.len(),
                    want: count,
                });
            }
            let idx = self.scan;
            self.scan += 1;
            let pa = self.region.pa(idx * CACHE_LINE);
            if (self.oracle)(pa) == slice {
                out.push(pa);
            }
        }
        Ok(SliceBuffer::from_lines(out))
    }

    /// Allocates `count` consecutive lines (the "normal memory allocation"
    /// baseline of §3), carved from the top of the region.
    pub fn alloc_contiguous_lines(&mut self, count: usize) -> Result<SliceBuffer, AllocError> {
        if self.contig_top < count || self.contig_top - count < self.scan {
            return Err(AllocError::ExhaustedContiguous);
        }
        self.contig_top -= count;
        let base = self.contig_top;
        let lines = (0..count)
            .map(|i| self.region.pa((base + i) * CACHE_LINE))
            .collect();
        Ok(SliceBuffer::from_lines(lines))
    }

    /// Contiguous variant of [`SliceAllocator::alloc_bytes`].
    pub fn alloc_contiguous_bytes(&mut self, bytes: usize) -> Result<SliceBuffer, AllocError> {
        self.alloc_contiguous_lines(bytes.div_ceil(CACHE_LINE))
    }

    /// The region this allocator carves from.
    pub fn region(&self) -> Region {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::mem::PhysMem;

    fn setup(bytes: usize) -> (Region, impl FnMut(PhysAddr) -> usize) {
        let mut mem = PhysMem::new(bytes * 2);
        let region = mem.alloc(bytes, bytes).unwrap();
        let hash = XorSliceHash::haswell_8slice();
        (region, move |pa: PhysAddr| hash.slice_of(pa))
    }

    #[test]
    fn allocated_lines_map_to_requested_slice() {
        let (region, oracle) = setup(1 << 20);
        let hash = XorSliceHash::haswell_8slice();
        let mut a = SliceAllocator::new(region, oracle);
        for slice in 0..8 {
            let buf = a.alloc_lines(slice, 100).unwrap();
            assert_eq!(buf.len(), 100);
            for &pa in buf.lines() {
                assert_eq!(hash.slice_of(pa), slice, "slice {slice}");
            }
        }
    }

    #[test]
    fn no_line_is_handed_out_twice() {
        let (region, oracle) = setup(1 << 20);
        let mut a = SliceAllocator::new(region, oracle);
        let mut seen = std::collections::HashSet::new();
        for slice in 0..8 {
            for _ in 0..3 {
                let buf = a.alloc_lines(slice, 50).unwrap();
                for &pa in buf.lines() {
                    assert!(seen.insert(pa), "double allocation of {pa}");
                }
            }
        }
        let contig = a.alloc_contiguous_lines(256).unwrap();
        for &pa in contig.lines() {
            assert!(seen.insert(pa), "contiguous overlaps slice-local: {pa}");
        }
    }

    #[test]
    fn contiguous_lines_are_consecutive() {
        let (region, oracle) = setup(1 << 20);
        let mut a = SliceAllocator::new(region, oracle);
        let buf = a.alloc_contiguous_lines(64).unwrap();
        for w in buf.lines().windows(2) {
            assert_eq!(w[1].raw(), w[0].raw() + 64);
        }
    }

    #[test]
    fn exhaustion_is_reported() {
        // A 64 KB region has 1024 lines, 128 per slice.
        let (region, oracle) = setup(64 * 1024);
        let mut a = SliceAllocator::new(region, oracle);
        let err = a.alloc_lines(0, 1000).unwrap_err();
        match err {
            AllocError::ExhaustedSlice { slice, got, want } => {
                assert_eq!(slice, 0);
                assert_eq!(want, 1000);
                assert_eq!(got, 128, "exactly the slice's share of the region");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn contiguous_exhaustion() {
        let (region, oracle) = setup(64 * 1024);
        let mut a = SliceAllocator::new(region, oracle);
        assert!(a.alloc_contiguous_lines(1024).is_ok());
        assert_eq!(
            a.alloc_contiguous_lines(1).unwrap_err(),
            AllocError::ExhaustedContiguous
        );
    }

    #[test]
    fn slice_and_contiguous_never_collide() {
        let (region, oracle) = setup(64 * 1024);
        let mut a = SliceAllocator::new(region, oracle);
        let s = a.alloc_lines(0, 64).unwrap();
        let c = a.alloc_contiguous_lines(512).unwrap();
        let sset: std::collections::HashSet<_> = s.lines().iter().collect();
        assert!(c.lines().iter().all(|pa| !sset.contains(pa)));
    }

    #[test]
    fn alloc_bytes_rounds_up() {
        let (region, oracle) = setup(1 << 20);
        let mut a = SliceAllocator::new(region, oracle);
        let buf = a.alloc_bytes(2, 100).unwrap();
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.bytes(), 128);
    }

    #[test]
    fn paper_buffer_1_375mb_fits_in_1gb_page_share() {
        // §3 allocates 1.375 MB of slice-local memory out of a 1 GB page;
        // a 16 MB region already holds 2 MB per slice.
        let (region, oracle) = setup(16 << 20);
        let mut a = SliceAllocator::new(region, oracle);
        let buf = a.alloc_bytes(5, 1_441_792).unwrap();
        assert_eq!(buf.bytes(), 1_441_792);
    }

    #[test]
    fn stash_reuses_lines_seen_by_other_scans() {
        let (region, oracle) = setup(1 << 20);
        let mut a = SliceAllocator::new(region, oracle);
        // Scanning for slice 0 stashes lines of slices 1..7; allocating
        // slice 3 afterwards must not rescan from zero (observable via
        // uniqueness, already covered) and must return valid lines.
        let _ = a.alloc_lines(0, 200).unwrap();
        let hash = XorSliceHash::haswell_8slice();
        let buf = a.alloc_lines(3, 200).unwrap();
        assert!(buf.lines().iter().all(|&pa| hash.slice_of(pa) == 3));
    }

    #[test]
    fn buffer_accessors() {
        let buf = SliceBuffer::from_lines(vec![PhysAddr(0), PhysAddr(64)]);
        assert_eq!(buf.len(), 2);
        assert!(!buf.is_empty());
        assert_eq!(buf.line(1), PhysAddr(64));
        assert_eq!(buf.bytes(), 128);
    }
}

#[cfg(test)]
mod exclusive_tests {
    use super::*;
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::mem::PhysMem;

    #[test]
    fn exclusive_alloc_matches_slice_and_is_unique() {
        let mut mem = PhysMem::new(2 << 20);
        let region = mem.alloc(1 << 20, 1 << 20).unwrap();
        let hash = XorSliceHash::haswell_8slice();
        let h2 = hash.clone();
        let mut a = SliceAllocator::new(region, move |pa| h2.slice_of(pa));
        let buf = a.alloc_lines_exclusive(4, 1500).unwrap();
        assert_eq!(buf.len(), 1500);
        let set: std::collections::HashSet<_> = buf.lines().iter().collect();
        assert_eq!(set.len(), 1500);
        assert!(buf.lines().iter().all(|&pa| hash.slice_of(pa) == 4));
    }

    #[test]
    fn exclusive_alloc_reports_exhaustion() {
        let mut mem = PhysMem::new(1 << 20);
        let region = mem.alloc(64 * 1024, 64 * 1024).unwrap();
        let hash = XorSliceHash::haswell_8slice();
        let mut a = SliceAllocator::new(region, move |pa| hash.slice_of(pa));
        let err = a.alloc_lines_exclusive(0, 10_000).unwrap_err();
        assert!(matches!(err, AllocError::ExhaustedSlice { got: 128, .. }));
    }
}
