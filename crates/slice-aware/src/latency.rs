//! Core→slice access-time profiling — the §2.2 methodology.
//!
//! For every (core, slice) pair the paper measures LLC hit latency as
//! follows: pick 20 cache lines (the LLC's associativity) that share one
//! cache set and map to the target slice; write them; `clflush` the lot;
//! read all 20 — the loads fill the LLC set completely while the 8-way
//! L1/L2 keep only the last 8 — and then time re-reading the *first
//! eight*, which can only be LLC hits in the target slice. `rdtsc`
//! overhead (32 cycles) is subtracted.
//!
//! [`profile_access_times`] reproduces the procedure verbatim against the
//! simulator and regenerates Fig. 5 (Haswell) and Fig. 16 (Skylake).

use llc_sim::addr::PhysAddr;
use llc_sim::machine::Machine;
use llc_sim::mem::Region;
use llc_sim::tsc::measure_interval;

/// Measured read/write cycles from one core to one slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceAccessTime {
    /// Target slice.
    pub slice: usize,
    /// Average cycles per read of an LLC-resident line.
    pub read_cycles: f64,
    /// Average visible cycles per write.
    pub write_cycles: f64,
}

/// A full core→slice latency profile.
#[derive(Debug, Clone)]
pub struct SliceLatencyProfile {
    /// Probing core.
    pub core: usize,
    /// One entry per slice, in slice order.
    pub entries: Vec<SliceAccessTime>,
}

impl SliceLatencyProfile {
    /// Slices ordered by measured read latency (ascending).
    pub fn by_read_latency(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| {
            self.entries[a]
                .read_cycles
                .partial_cmp(&self.entries[b].read_cycles)
                .expect("finite latencies")
                .then(a.cmp(&b))
        });
        order
    }

    /// The measured-closest slice.
    pub fn closest(&self) -> usize {
        self.by_read_latency()[0]
    }

    /// Max read-latency saving vs. the farthest slice (the paper's "up to
    /// ~20 cycles").
    pub fn max_read_saving(&self) -> f64 {
        let reads: Vec<f64> = self.entries.iter().map(|e| e.read_cycles).collect();
        let lo = reads.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = reads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }
}

/// Finds `count` line addresses inside `region` that map to `slice` and
/// share one LLC set (and therefore one L1/L2 set, given the strides).
///
/// Returns fewer than `count` only if the region is too small.
pub fn find_conflicting_lines(
    m: &Machine,
    region: Region,
    slice: usize,
    count: usize,
) -> Vec<PhysAddr> {
    // Lines 128 KB apart share the 2048-entry LLC set index, the 512-entry
    // L2 index and the 64-entry L1 index.
    let llc_sets = m.config().llc_slice.sets;
    let stride = llc_sets * llc_sim::CACHE_LINE;
    let mut out = Vec::with_capacity(count);
    let mut off = 0usize;
    while out.len() < count && off < region.len() {
        let pa = region.pa(off);
        if m.slice_of(pa) == slice {
            out.push(pa);
        }
        off += stride;
    }
    out
}

/// Measures average read and write cycles from `core` to every slice,
/// repeating the §2.2 procedure `reps` times per slice.
///
/// # Panics
///
/// Panics when `region` cannot supply enough conflicting lines (use a
/// 1 GB hugepage, like the paper).
pub fn profile_access_times(
    m: &mut Machine,
    core: usize,
    region: Region,
    reps: usize,
) -> SliceLatencyProfile {
    let slices = m.config().slices;
    // Number of timed lines: the paper times the first `L1-ways` (8) lines
    // on Haswell. On victim-cache parts (Skylake) each timed read spills an
    // L2 victim into the same LLC set, so the batch must be small enough
    // that set pressure never evicts a yet-untimed line mid-measurement.
    let timed = match m.config().llc_mode {
        llc_sim::machine::LlcMode::Inclusive => m.config().l1.ways,
        llc_sim::machine::LlcMode::Victim => {
            (m.config().llc_slice.ways / 2).min(m.config().l1.ways)
        }
    };
    // Enough lines that the timed ones are LLC-resident but out of the
    // private caches: the LLC associativity on inclusive parts (the paper's
    // 20 lines on Haswell), or `L2 ways + timed` on victim-cache parts so
    // the timed lines get evicted from L2 *into* the LLC first.
    let needed = match m.config().llc_mode {
        llc_sim::machine::LlcMode::Inclusive => {
            m.config().llc_slice.ways.max(m.config().l2.ways + timed)
        }
        llc_sim::machine::LlcMode::Victim => m.config().l2.ways + timed,
    };
    let mut entries = Vec::with_capacity(slices);
    for slice in 0..slices {
        let lines = find_conflicting_lines(m, region, slice, needed);
        assert!(
            lines.len() == needed,
            "region too small: found {} of {needed} lines for slice {slice}",
            lines.len(),
        );
        let mut read_total = 0.0;
        let mut write_total = 0.0;
        for _ in 0..reps {
            // Write a fixed value into all lines, flush the hierarchy.
            for &pa in &lines {
                m.touch_write(core, pa);
            }
            for &pa in &lines {
                m.clflush(core, pa);
            }
            m.drain_write_backs(core);
            // Read all lines: fills the LLC set; only the last 8 stay in
            // the private caches.
            for &pa in &lines {
                m.touch_read(core, pa);
            }
            // Timed phase: re-read the first 8 — LLC hits in `slice`.
            let t0 = m.now(core);
            for &pa in &lines[..timed] {
                m.touch_read(core, pa);
            }
            let read = measure_interval(t0, m.now(core));
            read_total += read.cycles() as f64 / timed as f64;
            // Write phase (Fig. 5b): flush-refill, then time stores to the
            // first 8 lines.
            for &pa in &lines {
                m.clflush(core, pa);
            }
            for &pa in &lines {
                m.touch_read(core, pa);
            }
            m.drain_write_backs(core);
            let t0 = m.now(core);
            for &pa in &lines[..timed] {
                m.touch_write(core, pa);
            }
            let write = measure_interval(t0, m.now(core));
            write_total += write.cycles() as f64 / timed as f64;
        }
        entries.push(SliceAccessTime {
            slice,
            read_cycles: read_total / reps as f64,
            write_cycles: write_total / reps as f64,
        });
    }
    SliceLatencyProfile { core, entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::machine::MachineConfig;

    fn haswell() -> (Machine, Region) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
        let r = m.mem_mut().alloc(128 << 20, 1 << 20).unwrap();
        (m, r)
    }

    #[test]
    fn conflicting_lines_share_set_and_slice() {
        let (m, r) = haswell();
        let lines = find_conflicting_lines(&m, r, 3, 20);
        assert_eq!(lines.len(), 20);
        let set = lines[0].line() & 2047;
        for &pa in &lines {
            assert_eq!(m.slice_of(pa), 3);
            assert_eq!(pa.line() & 2047, set);
        }
    }

    #[test]
    fn profile_reproduces_ring_latencies() {
        // Fig. 5a: reads from core 0 must equal the interconnect latency
        // per slice (the methodology isolates pure LLC hits).
        let (mut m, r) = haswell();
        let prof = profile_access_times(&mut m, 0, r, 3);
        for e in &prof.entries {
            let expect = f64::from(m.llc_latency(0, e.slice));
            assert!(
                (e.read_cycles - expect).abs() < 0.5,
                "slice {}: measured {} expected {expect}",
                e.slice,
                e.read_cycles
            );
        }
    }

    #[test]
    fn profile_reads_are_bimodal_writes_flat() {
        let (mut m, r) = haswell();
        let prof = profile_access_times(&mut m, 0, r, 2);
        // Reads: ~20-cycle spread (paper: "save up to ~20 cycles").
        let saving = prof.max_read_saving();
        assert!((18.0..=24.0).contains(&saving), "saving {saving}");
        // Writes: flat across slices (Fig. 5b).
        let writes: Vec<f64> = prof.entries.iter().map(|e| e.write_cycles).collect();
        let lo = writes.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = writes.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi - lo < 1.0, "write latencies must not vary: {writes:?}");
    }

    #[test]
    fn closest_slice_matches_topology() {
        let (mut m, r) = haswell();
        for core in [0usize, 3, 7] {
            let prof = profile_access_times(&mut m, core, r, 2);
            assert_eq!(prof.closest(), m.closest_slice(core), "core {core}");
        }
    }

    #[test]
    fn skylake_profile_matches_mesh() {
        let mut m = Machine::new(MachineConfig::skylake_gold_6134().with_dram_capacity(512 << 20));
        let r = m.mem_mut().alloc(256 << 20, 1 << 20).unwrap();
        let prof = profile_access_times(&mut m, 0, r, 2);
        assert_eq!(prof.entries.len(), 18);
        assert_eq!(prof.closest(), m.closest_slice(0));
        // Fig. 16 spread: ~30 cycles between nearest and farthest.
        assert!(prof.max_read_saving() >= 20.0);
    }

    #[test]
    fn latency_order_is_stable() {
        let (mut m, r) = haswell();
        let prof = profile_access_times(&mut m, 0, r, 2);
        let order = prof.by_read_latency();
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 8);
        // Even slices (same ring) come before odd slices.
        assert!(order[..4].iter().all(|s| s % 2 == 0));
    }
}
