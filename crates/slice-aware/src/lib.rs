//! Slice-aware memory management — the paper's core contribution.
//!
//! Intel LLCs are sliced and NUCA: a core reaches its nearest slice up to
//! ~20 cycles faster than a far one (paper §2.2). This crate packages the
//! paper's technique for exploiting that:
//!
//! 1. **Discover the mapping** between physical addresses and slices.
//!    Either poll the uncore counters per address ([`mapping`], works on
//!    any CPU with CBo/CHA counters — §2.1 "Polling") or reconstruct the
//!    XOR hash function once and evaluate it for free afterwards
//!    ([`reverse`] — §2.1 "Constructing the hash function", Fig. 4).
//! 2. **Profile access latency** from each core to each slice with the
//!    fill-flush-read methodology of §2.2 ([`latency`], Figs. 5/16), and
//!    derive each core's preferred slice order ([`placement`], Table 4).
//! 3. **Allocate slice-local memory**: [`alloc::SliceAllocator`] carves
//!    non-contiguous 64 B lines that all map to chosen slice(s) out of a
//!    hugepage, the allocation primitive behind Figs. 6-8 and
//!    CacheDirector.
//! 4. **Isolate**: use slices as partitioning units instead of (or on top
//!    of) CAT way masks ([`isolation`], §7, Fig. 17).
//!
//! The [`workload`] module carries the §3 random-access kernels shared by
//! the microbenchmark figures.
//!
//! # Examples
//!
//! ```
//! use llc_sim::machine::{Machine, MachineConfig};
//! use slice_aware::alloc::SliceAllocator;
//!
//! let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3());
//! let page = m.mem_mut().alloc_hugepage_1g().unwrap();
//!
//! // Allocate 64 lines that all live in core 0's closest slice.
//! let target = m.closest_slice(0);
//! let hash = llc_sim::hash::XorSliceHash::haswell_8slice();
//! let mut alloc = SliceAllocator::new(page, move |pa| {
//!     use llc_sim::hash::SliceHash;
//!     hash.slice_of(pa)
//! });
//! let buf = alloc.alloc_lines(target, 64).unwrap();
//! assert!(buf.lines().iter().all(|&pa| m.slice_of(pa) == target));
//! ```

pub mod alloc;
pub mod isolation;
pub mod latency;
pub mod mapping;
pub mod partition;
pub mod placement;
pub mod reverse;
pub mod scatter;
pub mod workload;

pub use alloc::{SliceAllocator, SliceBuffer};
pub use latency::SliceLatencyProfile;
pub use mapping::poll_slice_of;
pub use partition::SlicePartitioner;
pub use placement::PlacementPolicy;
pub use scatter::ScatteredBuf;
