//! Reconstructing the Complex Addressing hash (paper §2.1, Fig. 4).
//!
//! For CPUs with `2^n` slices the hash is linear over GF(2): each output
//! bit is the XOR of a subset of physical-address bits. Linearity means
//! `slice(a ⊕ e_b) = slice(a) ⊕ slice-contribution(e_b)`, so comparing the
//! polled slices of two addresses that differ in exactly one bit reveals
//! which output bits that address bit feeds — "one can compare the slices
//! found, acquired by polling, for different addresses that differ in only
//! one bit and then determine whether that bit is part of the hash
//! function or not".
//!
//! [`reconstruct_hash`] runs that procedure against a machine using only
//! the polling primitive, then [`verify_hash`] checks the reconstruction
//! on a batch of addresses — the validation step the paper describes.

use crate::mapping::poll_slice_of;
use llc_sim::addr::PhysAddr;
use llc_sim::hash::{SliceHash, XorSliceHash};
use llc_sim::machine::Machine;
use llc_sim::mem::Region;
use trafficgen::Rng64;

/// Lowest physical-address bit that can participate (bit 6: below that is
/// the line offset, which never matters).
pub const FIRST_CANDIDATE_BIT: u32 = 6;

/// Result of a hash reconstruction.
#[derive(Debug, Clone)]
pub struct ReconstructedHash {
    /// Per-output-bit XOR masks over physical-address bits.
    pub masks: Vec<u64>,
    /// The highest address bit that was probed.
    pub max_bit: u32,
}

impl ReconstructedHash {
    /// The reconstructed function as a usable [`XorSliceHash`].
    pub fn as_hash(&self) -> XorSliceHash {
        XorSliceHash::from_masks(self.masks.clone())
    }

    /// Renders the Fig. 4-style table: one row per output bit, one column
    /// per probed address bit (`#` participating, `.` not).
    pub fn render_fig4(&self) -> String {
        let mut out = String::new();
        out.push_str("bit   ");
        for b in (FIRST_CANDIDATE_BIT..=self.max_bit).rev() {
            out.push_str(&format!("{:>3}", b));
        }
        out.push('\n');
        for (k, &mask) in self.masks.iter().enumerate() {
            out.push_str(&format!("o{k}    "));
            for b in (FIRST_CANDIDATE_BIT..=self.max_bit).rev() {
                out.push_str(if mask & (1u64 << b) != 0 {
                    "  #"
                } else {
                    "  ."
                });
            }
            out.push('\n');
        }
        out
    }
}

/// Reconstructs the XOR masks of a `2^n`-slice hash by bit-flip polling.
///
/// `region` must be large enough that `base ⊕ (1 << bit)` stays inside it
/// for every probed bit; a naturally aligned region of `2^(max_bit+1)`
/// bytes with `base` at its start works (the paper uses a 1 GB hugepage,
/// covering bits 6..=29; higher bits need multiple hugepages — we probe
/// whatever fits).
///
/// # Panics
///
/// Panics when the machine's slice count is not a power of two (the
/// technique is defined for linear hashes only) or the region is smaller
/// than two cache lines.
pub fn reconstruct_hash(
    m: &mut Machine,
    core: usize,
    region: Region,
    polls: usize,
) -> ReconstructedHash {
    let slices = m.config().slices;
    assert!(
        slices.is_power_of_two(),
        "bit-flip reconstruction needs a linear (2^n-slice) hash"
    );
    let out_bits = slices.trailing_zeros() as usize;
    assert!(region.len() >= 128, "region too small to flip any bit");
    // Highest bit we can flip while staying inside the region.
    let max_bit = 63 - (region.len() as u64).leading_zeros() - 1;
    let base = region.base();
    let base_slice = poll_slice_of(m, core, base, polls);
    let mut masks = vec![0u64; out_bits];
    for bit in FIRST_CANDIDATE_BIT..=max_bit {
        let flipped = PhysAddr(base.raw() ^ (1u64 << bit));
        if !region.contains(flipped) {
            continue;
        }
        let s = poll_slice_of(m, core, flipped, polls);
        let diff = s ^ base_slice;
        for (k, mask) in masks.iter_mut().enumerate() {
            if diff & (1 << k) != 0 {
                *mask |= 1u64 << bit;
            }
        }
    }
    ReconstructedHash { masks, max_bit }
}

/// Verifies a reconstructed hash against polling on `samples` random
/// addresses within `region`; returns the agreement fraction (the paper
/// "verified by assessing a wide range of addresses").
pub fn verify_hash(
    m: &mut Machine,
    core: usize,
    region: Region,
    rec: &ReconstructedHash,
    samples: usize,
    polls: usize,
    seed: u64,
) -> f64 {
    let hash = rec.as_hash();
    let mut rng = Rng64::seed_from_u64(seed);
    let lines = region.len() / llc_sim::CACHE_LINE;
    let mut agree = 0usize;
    for _ in 0..samples {
        let pa = region.pa(rng.gen_range(0..lines) * llc_sim::CACHE_LINE);
        let predicted = hash.slice_of(pa);
        let polled = poll_slice_of(m, core, pa, polls);
        if predicted == polled {
            agree += 1;
        }
    }
    agree as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::hash::{mask_of_bits, O0_BITS, O1_BITS, O2_BITS};
    use llc_sim::machine::MachineConfig;

    fn machine_with_region(bytes: usize) -> (Machine, Region) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(bytes * 2));
        let r = m.mem_mut().alloc(bytes, bytes).unwrap();
        (m, r)
    }

    #[test]
    fn reconstructs_published_masks_up_to_region_bits() {
        // A 16 MB naturally aligned region covers bits 6..=23.
        let (mut m, r) = machine_with_region(16 << 20);
        let rec = reconstruct_hash(&mut m, 0, r, 8);
        assert_eq!(rec.max_bit, 23);
        let below = |mask: u64| mask & ((1u64 << 24) - 1);
        assert_eq!(rec.masks[0], below(mask_of_bits(O0_BITS)));
        assert_eq!(rec.masks[1], below(mask_of_bits(O1_BITS)));
        assert_eq!(rec.masks[2], below(mask_of_bits(O2_BITS)));
    }

    #[test]
    fn verification_is_perfect_within_probed_bits() {
        let (mut m, r) = machine_with_region(16 << 20);
        let rec = reconstruct_hash(&mut m, 0, r, 8);
        // All sample addresses vary only in bits the reconstruction probed,
        // so agreement must be exact.
        let agreement = verify_hash(&mut m, 0, r, &rec, 64, 8, 42);
        assert_eq!(agreement, 1.0);
    }

    #[test]
    fn fig4_rendering_marks_participating_bits() {
        let (mut m, r) = machine_with_region(1 << 20);
        let rec = reconstruct_hash(&mut m, 0, r, 8);
        let s = rec.render_fig4();
        assert!(s.contains("o0"));
        assert!(s.contains("o2"));
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 4, "header + 3 output bits");
    }

    #[test]
    fn small_region_probes_fewer_bits() {
        let (mut m, r) = machine_with_region(64 * 1024);
        let rec = reconstruct_hash(&mut m, 0, r, 4);
        assert_eq!(rec.max_bit, 15);
        // Bit 16 participates in o0 on real hardware but cannot be probed.
        assert_eq!(rec.masks[0] >> 16, 0);
    }

    #[test]
    #[should_panic(expected = "2^n-slice")]
    fn rejects_non_pow2_slice_counts() {
        let mut m = Machine::new(MachineConfig::skylake_gold_6134().with_dram_capacity(64 << 20));
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        reconstruct_hash(&mut m, 0, r, 4);
    }
}
