//! Preferred-slice placement policy (paper Table 4, §6, §8).
//!
//! On Haswell every core has exactly one nearest slice (its own). On
//! Skylake there are more slices than cores and the mesh distances group
//! them: each core has a *primary* slice and one or two *secondary*
//! slices at the next latency step (Table 4). [`PlacementPolicy`] captures
//! that ordering — built either from interconnect ground truth or from a
//! measured [`crate::latency::SliceLatencyProfile`] — and answers the two
//! questions the rest of the stack asks:
//!
//! * "which slice should core *c*'s hot data live in?" (primary), and
//! * "which slices may I spill to before it stops being worth it?"
//!   (preferred set; §8 notes multiple slices lower eviction pressure).

use crate::latency::SliceLatencyProfile;
use llc_sim::machine::Machine;

/// Per-core slice preference tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementPolicy {
    /// `order[c]` lists all slices by increasing latency from core `c`.
    order: Vec<Vec<usize>>,
    /// `primary[c]` is the closest slice.
    primary: Vec<usize>,
    /// `secondary[c]` are the slices at the second-lowest latency.
    secondary: Vec<Vec<usize>>,
}

impl PlacementPolicy {
    /// Builds the policy from the machine's interconnect (ground truth).
    pub fn from_topology(m: &Machine) -> Self {
        let cores = m.config().cores;
        let mut order = Vec::with_capacity(cores);
        let mut primary = Vec::with_capacity(cores);
        let mut secondary = Vec::with_capacity(cores);
        for c in 0..cores {
            let by_dist = m.slices_by_distance(c);
            let p = by_dist[0];
            let second_lat = m.llc_latency(c, by_dist[1]);
            let secs: Vec<usize> = by_dist
                .iter()
                .copied()
                .filter(|&s| s != p && m.llc_latency(c, s) == second_lat)
                .collect();
            primary.push(p);
            secondary.push(secs);
            order.push(by_dist);
        }
        Self {
            order,
            primary,
            secondary,
        }
    }

    /// Builds the policy from measured latency profiles, one per core —
    /// the portable path when the interconnect is unknown (paper §6
    /// measures Skylake this way).
    ///
    /// Latencies within `tolerance` cycles of each other count as one
    /// group when extracting the secondary set.
    ///
    /// # Panics
    ///
    /// Panics when `profiles` is empty or cores are missing/duplicated.
    pub fn from_profiles(profiles: &[SliceLatencyProfile], tolerance: f64) -> Self {
        assert!(!profiles.is_empty(), "need at least one profile");
        let cores = profiles.len();
        let mut by_core: Vec<Option<&SliceLatencyProfile>> = vec![None; cores];
        for p in profiles {
            assert!(p.core < cores, "core id out of range");
            assert!(by_core[p.core].is_none(), "duplicate profile for core");
            by_core[p.core] = Some(p);
        }
        let mut order = Vec::with_capacity(cores);
        let mut primary = Vec::with_capacity(cores);
        let mut secondary = Vec::with_capacity(cores);
        for slot in &by_core {
            let prof = slot.expect("profile for every core");
            let ord = prof.by_read_latency();
            let p = ord[0];
            let second_lat = prof.entries[ord[1]].read_cycles;
            let secs: Vec<usize> = ord
                .iter()
                .copied()
                .filter(|&s| {
                    s != p && (prof.entries[s].read_cycles - second_lat).abs() <= tolerance
                })
                .collect();
            primary.push(p);
            secondary.push(secs);
            order.push(ord);
        }
        Self {
            order,
            primary,
            secondary,
        }
    }

    /// Number of cores covered.
    pub fn cores(&self) -> usize {
        self.primary.len()
    }

    /// The closest slice for `core`.
    pub fn primary(&self, core: usize) -> usize {
        self.primary[core]
    }

    /// The slices at the second latency step for `core`.
    pub fn secondary(&self, core: usize) -> &[usize] {
        &self.secondary[core]
    }

    /// All slices ordered by preference for `core`.
    pub fn preference_order(&self, core: usize) -> &[usize] {
        &self.order[core]
    }

    /// The `n` most preferred slices for `core` (primary first). Spreading
    /// hot data over a couple of nearby slices lowers the eviction
    /// probability (§8 "in practice, one can use multiple slices").
    pub fn preferred_set(&self, core: usize, n: usize) -> &[usize] {
        &self.order[core][..n.min(self.order[core].len())]
    }

    /// A compromise slice for data shared by several cores: the slice with
    /// the smallest worst-case latency over `cores` (§8 "multi-threaded
    /// applications ... should find a compromise placement").
    pub fn compromise_slice(&self, m: &Machine, cores: &[usize]) -> usize {
        assert!(!cores.is_empty(), "need at least one core");
        (0..m.config().slices)
            .min_by_key(|&s| {
                cores
                    .iter()
                    .map(|&c| m.llc_latency(c, s))
                    .max()
                    .expect("non-empty cores")
            })
            .expect("at least one slice")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::profile_access_times;
    use llc_sim::machine::MachineConfig;

    fn haswell() -> Machine {
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20))
    }

    fn skylake() -> Machine {
        Machine::new(MachineConfig::skylake_gold_6134().with_dram_capacity(64 << 20))
    }

    #[test]
    fn haswell_primary_is_own_slice() {
        let m = haswell();
        let p = PlacementPolicy::from_topology(&m);
        for c in 0..8 {
            assert_eq!(p.primary(c), c);
        }
    }

    #[test]
    fn skylake_matches_paper_table4() {
        let m = skylake();
        let p = PlacementPolicy::from_topology(&m);
        let primaries = [0, 4, 8, 12, 10, 14, 3, 15];
        let secondaries: [&[usize]; 8] = [&[2, 6], &[1], &[11], &[13], &[7, 9], &[16], &[5], &[17]];
        for c in 0..8 {
            assert_eq!(p.primary(c), primaries[c], "core {c} primary");
            assert_eq!(p.secondary(c), secondaries[c], "core {c} secondary");
        }
    }

    #[test]
    fn preferred_set_starts_with_primary() {
        let m = skylake();
        let p = PlacementPolicy::from_topology(&m);
        for c in 0..8 {
            let set = p.preferred_set(c, 3);
            assert_eq!(set[0], p.primary(c));
            assert_eq!(set.len(), 3);
        }
        assert_eq!(p.preferred_set(0, 100).len(), 18, "clamped to slice count");
    }

    #[test]
    fn measured_policy_agrees_with_topology() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
        let profiles: Vec<_> = (0..2)
            .map(|c| profile_access_times(&mut m, c, r, 2))
            .collect();
        let measured = PlacementPolicy::from_profiles(&profiles, 0.5);
        let truth = PlacementPolicy::from_topology(&m);
        for c in 0..2 {
            assert_eq!(measured.primary(c), truth.primary(c));
            assert_eq!(measured.secondary(c), truth.secondary(c));
        }
    }

    #[test]
    fn compromise_slice_minimises_worst_case() {
        let m = haswell();
        let p = PlacementPolicy::from_topology(&m);
        // For a single core the compromise is the primary.
        assert_eq!(p.compromise_slice(&m, &[3]), p.primary(3));
        // For cores 0 and 2 the compromise must not be worse for either
        // than the worst choice.
        let s = p.compromise_slice(&m, &[0, 2]);
        let worst = m.llc_latency(0, s).max(m.llc_latency(2, s));
        for cand in 0..8 {
            let w = m.llc_latency(0, cand).max(m.llc_latency(2, cand));
            assert!(worst <= w, "slice {cand} would be a better compromise");
        }
    }

    #[test]
    #[should_panic(expected = "need at least one profile")]
    fn from_profiles_rejects_empty() {
        PlacementPolicy::from_profiles(&[], 0.5);
    }
}
