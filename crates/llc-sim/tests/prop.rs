//! Property-style tests for the simulator's core structures.
//!
//! Formerly proptest-based; now seeded loops over the in-tree
//! [`trafficgen::Rng64`] so the suite runs fully offline with the same
//! coverage (every case is a deterministic function of the loop seed).

use llc_sim::addr::{split_lines, PhysAddr};
use llc_sim::cache::SetAssocCache;
use llc_sim::hash::{FoldedSliceHash, SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use llc_sim::replacement::ReplacementKind;
use llc_sim::topology::{Interconnect, Mesh, RingBus};
use trafficgen::Rng64;

/// The XOR hash is constant within a cache line and uses only bits 6..=38.
#[test]
fn hash_line_granularity() {
    let h = XorSliceHash::haswell_8slice();
    let mut rng = Rng64::seed_from_u64(0x11ac);
    for _ in 0..256 {
        let base = rng.gen_range(0u64..(1 << 38));
        let off = rng.gen_range(0u64..64);
        let line_start = base & !63;
        assert_eq!(
            h.slice_of(PhysAddr(line_start)),
            h.slice_of(PhysAddr(line_start + off))
        );
        assert!(h.slice_of(PhysAddr(base)) < 8);
    }
}

/// The hash is GF(2)-linear: slice(a ^ b) ^ slice(0) = s(a) ^ s(b).
#[test]
fn hash_is_linear() {
    let h = XorSliceHash::haswell_8slice();
    let mut rng = Rng64::seed_from_u64(0x11ad);
    for _ in 0..256 {
        let a = rng.gen_range(0u64..(1 << 32));
        let b = rng.gen_range(0u64..(1 << 32));
        let sa = h.slice_of(PhysAddr(a));
        let sb = h.slice_of(PhysAddr(b));
        let sx = h.slice_of(PhysAddr(a ^ b));
        let s0 = h.slice_of(PhysAddr(0));
        assert_eq!(sx ^ s0, sa ^ sb);
    }
}

/// The folded (Skylake) hash stays in range and is line-stable.
#[test]
fn folded_hash_in_range() {
    let mut rng = Rng64::seed_from_u64(0x11ae);
    for _ in 0..256 {
        let base = rng.gen_range(0u64..(1 << 40));
        let slices = rng.gen_range(1usize..64);
        let h = FoldedSliceHash::new(slices);
        let s = h.slice_of(PhysAddr(base));
        assert!(s < slices);
        assert_eq!(s, h.slice_of(PhysAddr((base & !63) + 63)));
    }
}

/// `split_lines` tiles a byte range exactly: pieces are contiguous,
/// line-aligned, and sum to the requested length.
#[test]
fn split_lines_tiles_exactly() {
    let mut rng = Rng64::seed_from_u64(0x11af);
    for _ in 0..256 {
        let addr = rng.gen_range(0u64..100_000);
        let len = rng.gen_range(0usize..5_000);
        let pieces: Vec<_> = split_lines(PhysAddr(addr), len).collect();
        let total: usize = pieces.iter().map(|p| p.2).sum();
        assert_eq!(total, len);
        let mut cursor = addr;
        for (base, off, n) in pieces {
            assert!(base.is_line_aligned());
            assert_eq!(base.raw() + off as u64, cursor);
            assert!(off + n <= 64);
            cursor += n as u64;
        }
    }
}

/// A set-associative cache never exceeds its capacity, never loses a
/// line silently (evictions are reported), and a lookup right after
/// insert always hits.
#[test]
fn cache_accounting() {
    let mut rng = Rng64::seed_from_u64(0x11b0);
    for case in 0..64 {
        let ways = rng.gen_range(1usize..8);
        let n_ops = rng.gen_range(1usize..200);
        let mut c = SetAssocCache::new(16, ways, ReplacementKind::Lru, 1);
        let mut resident = std::collections::HashSet::new();
        for _ in 0..n_ops {
            let line = rng.gen_range(0u64..512);
            let dirty = rng.gen_bool(0.5);
            if let Some(ev) = c.insert(line, dirty) {
                assert!(
                    resident.remove(&ev.line),
                    "case {case}: evicted a non-resident line"
                );
            }
            resident.insert(line);
            assert!(c.lookup(line).is_some(), "just-inserted line must hit");
            assert!(c.occupancy() <= 16 * ways);
            assert_eq!(c.occupancy(), resident.len());
        }
        for &line in &resident {
            assert!(c.probe(line), "tracked line {line} missing");
        }
    }
}

/// Dirtiness is sticky: once inserted dirty, a line leaves the cache dirty.
#[test]
fn cache_dirty_sticky() {
    let mut rng = Rng64::seed_from_u64(0x11b1);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..50);
        let mut c = SetAssocCache::new(4, 2, ReplacementKind::Lru, 2);
        let mut dirty_set = std::collections::HashSet::new();
        for _ in 0..n {
            let line = rng.gen_range(0u64..64);
            if let Some(ev) = c.insert(line, true) {
                assert!(dirty_set.remove(&ev.line));
                assert!(ev.dirty, "dirty line must be evicted dirty");
            }
            dirty_set.insert(line);
        }
    }
}

/// Ring latency is symmetric in core-relative distance and bounded.
#[test]
fn ring_latency_bounds() {
    let r = RingBus::haswell_8();
    for core in 0..8 {
        for slice in 0..8 {
            let lat = r.llc_latency(core, slice);
            assert!((34..=54).contains(&lat));
        }
        assert_eq!(r.llc_latency(core, core), 34);
    }
}

/// Mesh latencies are bounded (Table 4 structure).
#[test]
fn mesh_latency_bounds() {
    let m = Mesh::skylake_6134();
    for core in 0..8 {
        for slice in 0..18 {
            let lat = m.llc_latency(core, slice);
            assert!((44..=74).contains(&lat));
        }
    }
}

/// Timed reads return one of the four architectural latencies, and an
/// immediate repeat always hits L1.
#[test]
fn read_latency_levels() {
    let mut rng = Rng64::seed_from_u64(0x11b2);
    for _ in 0..8 {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20));
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        let n = rng.gen_range(1usize..40);
        for _ in 0..n {
            let off = rng.gen_range(0usize..4096);
            let pa = r.pa(off * 64);
            let c1 = m.touch_read(0, pa);
            let slice = m.slice_of(pa);
            let llc = u64::from(m.llc_latency(0, slice));
            assert!(
                c1 == 4 || c1 == 11 || c1 == llc || c1 == 192,
                "unexpected latency {c1}"
            );
            let c2 = m.touch_read(0, pa);
            assert_eq!(c2, 4, "immediate re-read must hit L1");
        }
    }
}

/// Data written through the timed path is always read back intact,
/// regardless of cache state (caches are metadata-only).
#[test]
fn data_integrity_through_caches() {
    let mut rng = Rng64::seed_from_u64(0x11b3);
    for _ in 0..8 {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20));
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        let mut model = std::collections::HashMap::new();
        let n = rng.gen_range(1usize..60);
        for _ in 0..n {
            let slot = rng.gen_range(0usize..8192);
            let v = rng.next_u64();
            m.write_u64(0, r.pa(slot * 8), v);
            model.insert(slot, v);
            // Occasionally flush to force re-fetch paths.
            if slot.is_multiple_of(3) {
                m.clflush(0, r.pa(slot * 8));
            }
        }
        for (slot, v) in model {
            let (got, _) = m.read_u64(0, r.pa(slot * 8));
            assert_eq!(got, v, "slot {slot}");
        }
    }
}

/// DMA'd bytes land in memory and in the LLC, and core reads see them.
#[test]
fn dma_coherency() {
    let mut rng = Rng64::seed_from_u64(0x11b4);
    for _ in 0..8 {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20));
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        let n = rng.gen_range(1usize..20);
        for _ in 0..n {
            let slot = rng.gen_range(0usize..256);
            let len = rng.gen_range(1usize..200);
            let pa = r.pa(slot * 2048);
            let data = vec![(slot % 251) as u8; len];
            m.dma_write(pa, &data);
            let mut back = vec![0u8; len];
            m.read_bytes(0, pa, &mut back);
            assert_eq!(back, data);
        }
    }
}

/// The inclusive-LLC invariant holds under arbitrary interleavings of
/// reads, writes, flushes and DMA from all cores.
#[test]
fn inclusion_invariant_under_chaos() {
    let mut rng = Rng64::seed_from_u64(0x11b5);
    for _ in 0..6 {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20));
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        let n = rng.gen_range(1usize..150);
        for _ in 0..n {
            let op = rng.gen_range(0u32..4);
            let core = rng.gen_range(0usize..8);
            let slot = rng.gen_range(0usize..2048);
            let pa = r.pa(slot * 512);
            match op {
                0 => {
                    m.touch_read(core, pa);
                }
                1 => {
                    m.touch_write(core, pa);
                }
                2 => {
                    m.clflush(core, pa);
                }
                _ => m.dma_write(pa, &[1u8; 64]),
            }
            assert_eq!(m.check_inclusion(), None);
        }
    }
}
