//! Property-based tests for the simulator's core structures.

use llc_sim::addr::{split_lines, PhysAddr};
use llc_sim::cache::SetAssocCache;
use llc_sim::hash::{FoldedSliceHash, SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use llc_sim::replacement::ReplacementKind;
use llc_sim::topology::{Interconnect, Mesh, RingBus};
use proptest::prelude::*;

proptest! {
    /// The XOR hash is constant within a cache line and uses only bits
    /// 6..=38.
    #[test]
    fn hash_line_granularity(base in 0u64..(1 << 38), off in 0u64..64) {
        let h = XorSliceHash::haswell_8slice();
        let line_start = base & !63;
        prop_assert_eq!(
            h.slice_of(PhysAddr(line_start)),
            h.slice_of(PhysAddr(line_start + off))
        );
        prop_assert!(h.slice_of(PhysAddr(base)) < 8);
    }

    /// The hash is GF(2)-linear: slice(a ^ b ^ c) = s(a) ^ s(b) ^ s(c)
    /// for line-aligned inputs (since each output bit is a parity).
    #[test]
    fn hash_is_linear(a in 0u64..(1 << 32), b in 0u64..(1 << 32)) {
        let h = XorSliceHash::haswell_8slice();
        let sa = h.slice_of(PhysAddr(a));
        let sb = h.slice_of(PhysAddr(b));
        let sx = h.slice_of(PhysAddr(a ^ b));
        let s0 = h.slice_of(PhysAddr(0));
        prop_assert_eq!(sx ^ s0, sa ^ sb);
    }

    /// The folded (Skylake) hash stays in range and is line-stable.
    #[test]
    fn folded_hash_in_range(base in 0u64..(1 << 40), slices in 1usize..64) {
        let h = FoldedSliceHash::new(slices);
        let s = h.slice_of(PhysAddr(base));
        prop_assert!(s < slices);
        prop_assert_eq!(s, h.slice_of(PhysAddr((base & !63) + 63)));
    }

    /// `split_lines` tiles a byte range exactly: pieces are contiguous,
    /// line-aligned, and sum to the requested length.
    #[test]
    fn split_lines_tiles_exactly(addr in 0u64..100_000, len in 0usize..5_000) {
        let pieces: Vec<_> = split_lines(PhysAddr(addr), len).collect();
        let total: usize = pieces.iter().map(|p| p.2).sum();
        prop_assert_eq!(total, len);
        let mut cursor = addr;
        for (base, off, n) in pieces {
            prop_assert!(base.is_line_aligned());
            prop_assert_eq!(base.raw() + off as u64, cursor);
            prop_assert!(off + n <= 64);
            cursor += n as u64;
        }
    }

    /// A set-associative cache never exceeds its capacity, never loses a
    /// line silently (evictions are reported), and a lookup right after
    /// insert always hits.
    #[test]
    fn cache_accounting(
        ops in proptest::collection::vec((0u64..512, any::<bool>()), 1..200),
        ways in 1usize..8,
    ) {
        let mut c = SetAssocCache::new(16, ways, ReplacementKind::Lru, 1);
        let mut resident = std::collections::HashSet::new();
        for (line, dirty) in ops {
            if let Some(ev) = c.insert(line, dirty) {
                prop_assert!(resident.remove(&ev.line), "evicted a non-resident line");
            }
            resident.insert(line);
            prop_assert!(c.lookup(line).is_some(), "just-inserted line must hit");
            prop_assert!(c.occupancy() <= 16 * ways);
            prop_assert_eq!(c.occupancy(), resident.len());
        }
        for &line in &resident {
            prop_assert!(c.probe(line), "tracked line {} missing", line);
        }
    }

    /// Dirtiness is sticky: once inserted dirty (or marked), a line
    /// leaves the cache dirty.
    #[test]
    fn cache_dirty_sticky(lines in proptest::collection::vec(0u64..64, 1..50)) {
        let mut c = SetAssocCache::new(4, 2, ReplacementKind::Lru, 2);
        let mut dirty_set = std::collections::HashSet::new();
        for line in lines {
            if let Some(ev) = c.insert(line, true) {
                prop_assert!(dirty_set.remove(&ev.line));
                prop_assert!(ev.dirty, "dirty line must be evicted dirty");
            }
            dirty_set.insert(line);
        }
    }

    /// Ring latency is symmetric in core-relative distance and bounded.
    #[test]
    fn ring_latency_bounds(core in 0usize..8, slice in 0usize..8) {
        let r = RingBus::haswell_8();
        let lat = r.llc_latency(core, slice);
        prop_assert!((34..=54).contains(&lat));
        prop_assert_eq!(r.llc_latency(core, core), 34);
    }

    /// Mesh latencies are bounded and every core's closest slice is
    /// unique to it (Table 4 structure).
    #[test]
    fn mesh_latency_bounds(core in 0usize..8, slice in 0usize..18) {
        let m = Mesh::skylake_6134();
        let lat = m.llc_latency(core, slice);
        prop_assert!((44..=74).contains(&lat));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Timed reads return one of the four architectural latencies, and
    /// repeating a read never goes slower (monotone warm-up) in the
    /// absence of interfering traffic.
    #[test]
    fn read_latency_levels(offsets in proptest::collection::vec(0usize..4096, 1..40)) {
        let mut m = Machine::new(
            MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20),
        );
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        for off in offsets {
            let pa = r.pa(off * 64);
            let c1 = m.touch_read(0, pa);
            let slice = m.slice_of(pa);
            let llc = u64::from(m.llc_latency(0, slice));
            prop_assert!(
                c1 == 4 || c1 == 11 || c1 == llc || c1 == 192,
                "unexpected latency {c1}"
            );
            let c2 = m.touch_read(0, pa);
            prop_assert_eq!(c2, 4, "immediate re-read must hit L1");
        }
    }

    /// Data written through the timed path is always read back intact,
    /// regardless of cache state (caches are metadata-only).
    #[test]
    fn data_integrity_through_caches(
        writes in proptest::collection::vec((0usize..8192, any::<u64>()), 1..60),
    ) {
        let mut m = Machine::new(
            MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20),
        );
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        let mut model = std::collections::HashMap::new();
        for (slot, v) in writes {
            m.write_u64(0, r.pa(slot * 8), v);
            model.insert(slot, v);
            // Occasionally flush to force re-fetch paths.
            if slot % 3 == 0 {
                m.clflush(0, r.pa(slot * 8));
            }
        }
        for (slot, v) in model {
            let (got, _) = m.read_u64(0, r.pa(slot * 8));
            prop_assert_eq!(got, v, "slot {}", slot);
        }
    }

    /// DMA'd bytes land in memory and in the LLC, and core reads see them.
    #[test]
    fn dma_coherency(frames in proptest::collection::vec((0usize..256, 1usize..200), 1..20)) {
        let mut m = Machine::new(
            MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20),
        );
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        for (slot, len) in frames {
            let pa = r.pa(slot * 2048);
            let data = vec![(slot % 251) as u8; len];
            m.dma_write(pa, &data);
            let mut back = vec![0u8; len];
            m.read_bytes(0, pa, &mut back);
            prop_assert_eq!(back, data);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The inclusive-LLC invariant holds under arbitrary interleavings of
    /// reads, writes, flushes and DMA from all cores.
    #[test]
    fn inclusion_invariant_under_chaos(
        ops in proptest::collection::vec((0u8..4, 0usize..8, 0usize..2048), 1..150),
    ) {
        let mut m = Machine::new(
            MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20),
        );
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        for (op, core, slot) in ops {
            let pa = r.pa(slot * 512);
            match op {
                0 => {
                    m.touch_read(core, pa);
                }
                1 => {
                    m.touch_write(core, pa);
                }
                2 => {
                    m.clflush(core, pa);
                }
                _ => m.dma_write(pa, &[1u8; 64]),
            }
            prop_assert_eq!(m.check_inclusion(), None);
        }
    }
}
