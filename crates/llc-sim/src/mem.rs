//! Simulated physical memory, hugepages and pagemap translation.
//!
//! The paper's user-space technique needs three things from the OS/memory
//! system: (i) large contiguous physical ranges (1 GB hugepages allocated
//! with `mmap`), (ii) knowledge of the physical address behind a virtual
//! one (`/proc/self/pagemap`), and (iii) actual bytes to read and write.
//! [`PhysMem`] provides all three against a deterministic simulated
//! physical address space.
//!
//! Layout determinism matters: slice-aware allocation carves a hugepage by
//! physical address, so experiments must see the same carving on every run.
//! Reservations are placed sequentially with alignment, optionally after a
//! seeded fragmentation offset, and the whole space starts zeroed.

use crate::addr::PhysAddr;
use std::fmt;

/// 4 KiB base page.
pub const PAGE_4K: usize = 4 * 1024;
/// 2 MiB hugepage.
pub const PAGE_2M: usize = 2 * 1024 * 1024;
/// 1 GiB hugepage, the granularity used throughout the paper.
pub const PAGE_1G: usize = 1024 * 1024 * 1024;

/// Errors from physical-memory reservations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The request does not fit in the remaining simulated DRAM.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available.
        available: u64,
    },
    /// Size/alignment arguments were invalid.
    BadRequest,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "out of simulated DRAM: requested {requested} bytes, {available} available"
            ),
            MemError::BadRequest => write!(f, "invalid size or alignment"),
        }
    }
}

impl std::error::Error for MemError {}

/// A reserved physically contiguous region (a hugepage or page run).
///
/// Cloneable handle; the backing bytes live in [`PhysMem`]. This plays the
/// role of the paper's `mmap`-ed hugepage plus the pagemap lookup: the
/// holder knows both the region's size and its physical base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: PhysAddr,
    len: usize,
}

impl Region {
    /// Physical base address.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length region (not constructable via [`PhysMem`]).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The physical address `offset` bytes into the region — the simulated
    /// equivalent of translating a VA through `/proc/self/pagemap`.
    ///
    /// # Panics
    ///
    /// Panics when `offset >= len`.
    pub fn pa(&self, offset: usize) -> PhysAddr {
        assert!(offset < self.len, "offset {offset} outside region");
        self.base.add(offset as u64)
    }

    /// Like [`Region::pa`] but checked: `None` outside the region.
    pub fn try_pa(&self, offset: usize) -> Option<PhysAddr> {
        (offset < self.len).then(|| self.base.add(offset as u64))
    }

    /// Whether `pa` falls inside this region.
    pub fn contains(&self, pa: PhysAddr) -> bool {
        pa.raw() >= self.base.raw() && pa.raw() < self.base.raw() + self.len as u64
    }
}

/// The simulated DRAM: a flat physical address space with bump reservation.
#[derive(Debug)]
pub struct PhysMem {
    bytes: Vec<u8>,
    next: u64,
    capacity: u64,
}

impl PhysMem {
    /// A physical address space of `capacity` bytes, all zero.
    ///
    /// The backing store is allocated lazily per reservation would be more
    /// frugal, but experiments reserve at most a few GB and the simulator
    /// zero-fills once, so one flat `Vec` keeps the hot paths branch-free.
    pub fn new(capacity: usize) -> Self {
        Self {
            bytes: vec![0; capacity],
            next: 0,
            capacity: capacity as u64,
        }
    }

    /// Bytes not yet reserved.
    pub fn available(&self) -> u64 {
        self.capacity - self.next
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Reserves `len` bytes aligned to `align` (a power of two).
    pub fn alloc(&mut self, len: usize, align: usize) -> Result<Region, MemError> {
        if len == 0 || align == 0 || !align.is_power_of_two() {
            return Err(MemError::BadRequest);
        }
        let base = (self.next + align as u64 - 1) & !(align as u64 - 1);
        let end = base + len as u64;
        if end > self.capacity {
            return Err(MemError::OutOfMemory {
                requested: len,
                available: self.available(),
            });
        }
        self.next = end;
        Ok(Region {
            base: PhysAddr(base),
            len,
        })
    }

    /// Reserves a naturally aligned 1 GiB hugepage (paper §2.2, §3).
    pub fn alloc_hugepage_1g(&mut self) -> Result<Region, MemError> {
        self.alloc(PAGE_1G, PAGE_1G)
    }

    /// Reserves a naturally aligned 2 MiB hugepage.
    pub fn alloc_hugepage_2m(&mut self) -> Result<Region, MemError> {
        self.alloc(PAGE_2M, PAGE_2M)
    }

    /// Skips `bytes` of the physical space, emulating other tenants /
    /// kernel reservations so experiment layouts are not all page-aligned
    /// twins of each other.
    pub fn fragment(&mut self, bytes: usize) {
        self.next = (self.next + bytes as u64).min(self.capacity);
    }

    /// The raw backing bytes, for [`crate::epoch::SharedMem`]'s
    /// cross-shard view.
    pub(crate) fn raw_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Reads `buf.len()` bytes at `pa` (no timing — see
    /// [`crate::machine::Machine`] for timed access).
    ///
    /// # Panics
    ///
    /// Panics when the range is outside the physical space.
    pub fn read(&self, pa: PhysAddr, buf: &mut [u8]) {
        let s = pa.raw() as usize;
        buf.copy_from_slice(&self.bytes[s..s + buf.len()]);
    }

    /// Writes `data` at `pa` (no timing).
    ///
    /// # Panics
    ///
    /// Panics when the range is outside the physical space.
    pub fn write(&mut self, pa: PhysAddr, data: &[u8]) {
        let s = pa.raw() as usize;
        self.bytes[s..s + data.len()].copy_from_slice(data);
    }

    /// Reads a little-endian `u64` at `pa`.
    pub fn read_u64(&self, pa: PhysAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(pa, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `pa`.
    pub fn write_u64(&mut self, pa: PhysAddr, v: u64) {
        self.write(pa, &v.to_le_bytes());
    }

    /// Borrows the raw bytes of a range (zero-copy inspection).
    ///
    /// # Panics
    ///
    /// Panics when the range is outside the physical space.
    pub fn slice(&self, pa: PhysAddr, len: usize) -> &[u8] {
        let s = pa.raw() as usize;
        &self.bytes[s..s + len]
    }

    /// Mutably borrows the raw bytes of a range.
    ///
    /// # Panics
    ///
    /// Panics when the range is outside the physical space.
    pub fn slice_mut(&mut self, pa: PhysAddr, len: usize) -> &mut [u8] {
        let s = pa.raw() as usize;
        &mut self.bytes[s..s + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_sequential() {
        let mut m = PhysMem::new(1 << 20);
        let a = m.alloc(100, 64).unwrap();
        let b = m.alloc(100, 64).unwrap();
        assert_eq!(a.base().raw() % 64, 0);
        assert_eq!(b.base().raw() % 64, 0);
        assert!(b.base().raw() >= a.base().raw() + 100);
    }

    #[test]
    fn alloc_rejects_bad_requests() {
        let mut m = PhysMem::new(1 << 20);
        assert_eq!(m.alloc(0, 64), Err(MemError::BadRequest));
        assert_eq!(m.alloc(16, 3), Err(MemError::BadRequest));
        assert_eq!(m.alloc(16, 0), Err(MemError::BadRequest));
    }

    #[test]
    fn alloc_out_of_memory() {
        let mut m = PhysMem::new(4096);
        assert!(m.alloc(4096, 1).is_ok());
        let err = m.alloc(1, 1).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { .. }));
    }

    #[test]
    fn hugepage_natural_alignment() {
        let mut m = PhysMem::new(PAGE_2M * 4);
        m.fragment(1234);
        let hp = m.alloc_hugepage_2m().unwrap();
        assert_eq!(hp.base().raw() % PAGE_2M as u64, 0);
        assert_eq!(hp.len(), PAGE_2M);
    }

    #[test]
    fn region_pa_translation() {
        let mut m = PhysMem::new(1 << 20);
        let r = m.alloc(4096, 4096).unwrap();
        assert_eq!(r.pa(0), r.base());
        assert_eq!(r.pa(100).raw(), r.base().raw() + 100);
        assert_eq!(r.try_pa(4096), None);
        assert!(r.contains(r.pa(4095)));
        assert!(!r.contains(PhysAddr(r.base().raw() + 4096)));
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn region_pa_out_of_bounds_panics() {
        let mut m = PhysMem::new(1 << 20);
        let r = m.alloc(64, 64).unwrap();
        r.pa(64);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = PhysMem::new(1 << 16);
        let r = m.alloc(128, 64).unwrap();
        m.write(r.pa(8), &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        m.read(r.pa(8), &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn u64_roundtrip_little_endian() {
        let mut m = PhysMem::new(1 << 16);
        let r = m.alloc(64, 64).unwrap();
        m.write_u64(r.pa(0), 0x0102_0304_0506_0708);
        assert_eq!(m.read_u64(r.pa(0)), 0x0102_0304_0506_0708);
        assert_eq!(m.slice(r.pa(0), 1)[0], 0x08);
    }

    #[test]
    fn memory_starts_zeroed() {
        let m = PhysMem::new(4096);
        assert!(m.slice(PhysAddr(0), 4096).iter().all(|&b| b == 0));
    }

    #[test]
    fn fragment_moves_cursor() {
        let mut m = PhysMem::new(1 << 16);
        m.fragment(1000);
        let r = m.alloc(16, 1).unwrap();
        assert!(r.base().raw() >= 1000);
    }
}
