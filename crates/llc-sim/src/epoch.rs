//! Epoch-parallel execution support: per-core machine shards that can run
//! on OS threads and merge back deterministically.
//!
//! The event engine (crates/engine) steps per-core run-to-completion
//! workers under one simulated clock. To execute those workers on real
//! threads *without* changing any simulated result, this module splits a
//! [`Machine`] into disjoint per-core [`EpochShard`]s for the duration of
//! one **epoch**:
//!
//! * Private state (L1, L2, core clock, write-back debt, streamer) is
//!   `&mut`-borrowed per core — fully owned by the shard.
//! * The shared LLC is **frozen**: shards only [`SetAssocCache::probe`] it
//!   (non-mutating) to decide hit/miss *latencies*, and append every
//!   would-be LLC interaction to a per-shard [`LlcOp`] event log.
//! * Physical memory is shared through [`SharedMem`], a raw-pointer view;
//!   soundness rests on the engine's partitioning (per-queue mbufs,
//!   per-shard application data, read-only shared tables), which keeps
//!   concurrent *writes* disjoint.
//!
//! After the epoch, the coordinator replays every shard's log through
//! [`Machine::replay_llc`] in a canonical worker order. Replay decisions
//! (insert vs. refresh, victim choice, uncore counters) are made against
//! the *live* LLC at replay time, so the merged machine state is exactly
//! what a serial execution of the same per-core traces — with LLC effects
//! applied at epoch granularity — would produce. Both the serial and the
//! parallel engine run this same shard+replay algorithm, which is what
//! makes their results bit-identical by construction.
//!
//! Fidelity note: within one epoch a core does not observe other cores'
//! LLC fills (and re-misses lines its own L2 evicted mid-epoch). This is
//! a deterministic, bounded coarsening of LLC timing — identical in both
//! execution modes — and collapses to the exact original model when each
//! epoch contains a single access (verified by tests below).

use crate::addr::{split_lines, PhysAddr};
use crate::cache::SetAssocCache;
use crate::hash::SliceHash;
use crate::hierarchy::{Cycles, Machine};
use crate::machine::{LlcMode, MachineConfig};
use crate::mem::PhysMem;
use crate::prefetch::StreamerState;
use crate::topology::Interconnect;

/// Timed per-core memory operations — the worker-side subset of
/// [`Machine`]'s interface, implemented both by `Machine` itself (serial
/// direct execution, e.g. in unit tests and coordinator-side code) and by
/// [`EpochShard`] (epoch execution). Application and driver code that
/// runs inside an engine worker is written against `&mut dyn CoreMem`.
pub trait CoreMem {
    /// The machine's configuration.
    fn config(&self) -> &MachineConfig;
    /// Current cycle clock of `core`.
    fn now(&self, core: usize) -> u64;
    /// Advances `core`'s clock by `cycles` of non-memory work.
    fn advance(&mut self, core: usize, cycles: Cycles);
    /// Timed load of the line containing `pa` (no data movement).
    fn touch_read(&mut self, core: usize, pa: PhysAddr) -> Cycles;
    /// Timed store to the line containing `pa` (no data movement).
    fn touch_write(&mut self, core: usize, pa: PhysAddr) -> Cycles;
    /// Timed load of `buf.len()` bytes at `pa` into `buf`.
    fn read_bytes(&mut self, core: usize, pa: PhysAddr, buf: &mut [u8]) -> Cycles;
    /// Timed store of `data` at `pa`.
    fn write_bytes(&mut self, core: usize, pa: PhysAddr, data: &[u8]) -> Cycles;
    /// Device DMA read (NIC TX): copies `buf.len()` bytes from `pa`.
    fn dma_read(&mut self, pa: PhysAddr, buf: &mut [u8]);
    /// The slice Complex Addressing maps `pa` to.
    fn slice_of(&self, pa: PhysAddr) -> usize;
    /// The cheapest slice for `core`.
    fn closest_slice(&self, core: usize) -> usize;
    /// LLC hit latency from `core` to `slice`.
    fn llc_latency(&self, core: usize, slice: usize) -> u32;

    /// Timed load of a little-endian `u64`.
    fn read_u64(&mut self, core: usize, pa: PhysAddr) -> (u64, Cycles) {
        let mut b = [0u8; 8];
        let c = self.read_bytes(core, pa, &mut b);
        (u64::from_le_bytes(b), c)
    }

    /// Timed store of a little-endian `u64`.
    fn write_u64(&mut self, core: usize, pa: PhysAddr, v: u64) -> Cycles {
        self.write_bytes(core, pa, &v.to_le_bytes())
    }
}

impl CoreMem for Machine {
    fn config(&self) -> &MachineConfig {
        Machine::config(self)
    }
    fn now(&self, core: usize) -> u64 {
        Machine::now(self, core)
    }
    fn advance(&mut self, core: usize, cycles: Cycles) {
        Machine::advance(self, core, cycles);
    }
    fn touch_read(&mut self, core: usize, pa: PhysAddr) -> Cycles {
        Machine::touch_read(self, core, pa)
    }
    fn touch_write(&mut self, core: usize, pa: PhysAddr) -> Cycles {
        Machine::touch_write(self, core, pa)
    }
    fn read_bytes(&mut self, core: usize, pa: PhysAddr, buf: &mut [u8]) -> Cycles {
        Machine::read_bytes(self, core, pa, buf)
    }
    fn write_bytes(&mut self, core: usize, pa: PhysAddr, data: &[u8]) -> Cycles {
        Machine::write_bytes(self, core, pa, data)
    }
    fn dma_read(&mut self, pa: PhysAddr, buf: &mut [u8]) {
        Machine::dma_read(self, pa, buf);
    }
    fn slice_of(&self, pa: PhysAddr) -> usize {
        Machine::slice_of(self, pa)
    }
    fn closest_slice(&self, core: usize) -> usize {
        Machine::closest_slice(self, core)
    }
    fn llc_latency(&self, core: usize, slice: usize) -> u32 {
        Machine::llc_latency(self, core, slice)
    }
}

/// One deferred LLC interaction recorded by a shard, replayed at merge.
///
/// The log records *what the core did*, not what the frozen LLC answered:
/// replay re-decides hit/miss/insert against the live LLC, so state and
/// uncore counters always reflect replay-time truth in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcOp {
    /// An L2-missed demand fetch (read or RFO) of `line`.
    Fetch {
        /// The fetched line number.
        line: u64,
    },
    /// An L2 victim headed toward the LLC.
    L2Evict {
        /// The evicted line number.
        line: u64,
        /// Whether it held modified data.
        dirty: bool,
    },
    /// A hardware-prefetch candidate fetched through the LLC.
    Prefetch {
        /// The prefetched line number.
        line: u64,
    },
    /// A device DMA read touching `line` (uncore lookup only).
    DmaProbe {
        /// The probed line number.
        line: u64,
    },
}

/// A raw-pointer view of [`PhysMem`]'s byte store, shareable across the
/// shards of one epoch.
///
/// # Safety contract
///
/// Shards of the same epoch may run concurrently. The caller of
/// [`Machine::epoch_shards`] must guarantee that concurrently running
/// shards never write a byte range another shard accesses in the same
/// epoch (reads may overlap freely). The event engine enforces this by
/// construction: each worker owns its queue's mbufs and its application
/// shard, and cross-worker data (lookup tables, indexes) is read-only
/// during an epoch.
#[derive(Clone, Copy)]
pub(crate) struct SharedMem {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: see the struct-level contract — disjoint-write access is
// guaranteed by the epoch partitioning of the caller.
unsafe impl Send for SharedMem {}

impl SharedMem {
    pub(crate) fn new(mem: &mut PhysMem) -> Self {
        let bytes = mem.raw_bytes_mut();
        Self {
            ptr: bytes.as_mut_ptr(),
            len: bytes.len(),
        }
    }

    fn read(&self, pa: PhysAddr, buf: &mut [u8]) {
        let s = pa.raw() as usize;
        assert!(
            s.checked_add(buf.len()).is_some_and(|e| e <= self.len),
            "read outside the physical space"
        );
        // SAFETY: bounds checked above; liveness is guaranteed because the
        // shard's lifetime keeps the whole Machine mutably borrowed.
        unsafe { std::ptr::copy_nonoverlapping(self.ptr.add(s), buf.as_mut_ptr(), buf.len()) }
    }

    fn write(&self, pa: PhysAddr, data: &[u8]) {
        let s = pa.raw() as usize;
        assert!(
            s.checked_add(data.len()).is_some_and(|e| e <= self.len),
            "write outside the physical space"
        );
        // SAFETY: bounds checked above; disjointness of concurrent writes
        // is the caller's contract (see struct docs).
        unsafe { std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr.add(s), data.len()) }
    }
}

/// A per-core slice of the machine, live for one epoch.
///
/// Implements [`CoreMem`] with exactly the cost model of [`Machine`],
/// except that LLC *state* transitions are deferred to the epoch merge
/// (see the module docs). Obtained from [`Machine::epoch_shards`];
/// dissolves into its event log via [`EpochShard::into_log`].
pub struct EpochShard<'a> {
    core: usize,
    cfg: &'a MachineConfig,
    hash: &'a dyn SliceHash,
    topo: &'a dyn Interconnect,
    /// Frozen LLC slices: probe-only.
    llc: &'a [SetAssocCache],
    mem: SharedMem,
    l1: &'a mut SetAssocCache,
    l2: &'a mut SetAssocCache,
    clock: &'a mut u64,
    wb_debt: &'a mut u64,
    streamer: &'a mut StreamerState,
    log: Vec<LlcOp>,
}

// Compile-time guarantee that shards may cross thread boundaries.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<EpochShard<'_>>();
    assert_send::<LlcOp>();
    assert_send::<SharedMem>();
};

impl<'a> EpochShard<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        core: usize,
        cfg: &'a MachineConfig,
        hash: &'a dyn SliceHash,
        topo: &'a dyn Interconnect,
        llc: &'a [SetAssocCache],
        mem: SharedMem,
        l1: &'a mut SetAssocCache,
        l2: &'a mut SetAssocCache,
        clock: &'a mut u64,
        wb_debt: &'a mut u64,
        streamer: &'a mut StreamerState,
    ) -> Self {
        Self {
            core,
            cfg,
            hash,
            topo,
            llc,
            mem,
            l1,
            l2,
            clock,
            wb_debt,
            streamer,
            log: Vec::new(),
        }
    }

    /// The core this shard owns.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Dissolves the shard into its deferred-LLC event log, to be fed to
    /// [`Machine::replay_llc`] for this shard's core.
    pub fn into_log(self) -> Vec<LlcOp> {
        self.log
    }

    // -- cost engine, mirroring `Machine` ------------------------------

    fn charge(&mut self, base: Cycles) -> Cycles {
        *self.wb_debt = self.wb_debt.saturating_sub(base);
        let mut cost = base;
        if *self.wb_debt > self.cfg.wb_buffer_cap {
            let stall = *self.wb_debt - self.cfg.wb_buffer_cap;
            cost += stall;
            *self.wb_debt = self.cfg.wb_buffer_cap;
        }
        *self.clock += cost;
        cost
    }

    fn walk_read(&mut self, line: u64) -> Cycles {
        if self.l1.lookup(line).is_some() {
            return u64::from(self.cfg.l1.latency);
        }
        if self.l2.lookup(line).is_some() {
            self.fill_l1(line, false);
            return u64::from(self.cfg.l2.latency);
        }
        let lat = self.frozen_fetch(line);
        self.fill_l2(line, false);
        self.fill_l1(line, false);
        self.run_prefetch(line);
        lat
    }

    fn walk_write(&mut self, line: u64) -> Cycles {
        if self.l1.lookup(line).is_some() {
            self.l1.mark_dirty(line);
            return u64::from(self.cfg.store_hit_cost);
        }
        let fetch = if self.l2.lookup(line).is_some() {
            u64::from(self.cfg.l2.latency)
        } else {
            let lat = self.frozen_fetch(line);
            self.fill_l2(line, false);
            self.run_prefetch(line);
            lat
        };
        self.fill_l1(line, true);
        *self.wb_debt += fetch;
        u64::from(self.cfg.store_miss_cost)
    }

    /// L2-missed fetch against the frozen LLC: decides the *latency* from
    /// the epoch-start snapshot and defers the state transition.
    fn frozen_fetch(&mut self, line: u64) -> Cycles {
        let s = self.hash.slice_of(PhysAddr(line << 6));
        self.log.push(LlcOp::Fetch { line });
        if self.llc[s].probe(line) {
            u64::from(self.topo.llc_latency(self.core, s))
        } else {
            u64::from(self.cfg.dram_latency)
        }
    }

    fn fill_l1(&mut self, line: u64, dirty: bool) {
        if let Some(ev) = self.l1.insert(line, dirty) {
            if ev.dirty && !self.l2.mark_dirty(ev.line) {
                self.fill_l2(ev.line, true);
            }
        }
    }

    fn fill_l2(&mut self, line: u64, dirty: bool) {
        if let Some(ev) = self.l2.insert(line, dirty) {
            self.l2_evict(ev);
        }
    }

    fn l2_evict(&mut self, ev: crate::cache::Evicted) {
        let s = self.hash.slice_of(PhysAddr(ev.line << 6));
        match self.cfg.llc_mode {
            LlcMode::Inclusive => {
                if ev.dirty {
                    self.log.push(LlcOp::L2Evict {
                        line: ev.line,
                        dirty: true,
                    });
                    *self.wb_debt += u64::from(self.topo.llc_latency(self.core, s));
                }
            }
            LlcMode::Victim => {
                self.log.push(LlcOp::L2Evict {
                    line: ev.line,
                    dirty: ev.dirty,
                });
                if ev.dirty {
                    *self.wb_debt += u64::from(self.topo.llc_latency(self.core, s));
                }
            }
        }
    }

    fn run_prefetch(&mut self, line: u64) {
        let cfg = self.cfg.prefetch;
        if !cfg.adjacent_line && !cfg.streamer {
            return;
        }
        let cands = self.streamer.observe(line, &cfg);
        for cand in cands {
            if self.l2.probe(cand) {
                continue;
            }
            self.log.push(LlcOp::Prefetch { line: cand });
            self.fill_l2(cand, false);
        }
    }
}

impl CoreMem for EpochShard<'_> {
    fn config(&self) -> &MachineConfig {
        self.cfg
    }

    fn now(&self, core: usize) -> u64 {
        debug_assert_eq!(core, self.core, "shard asked about a foreign core");
        *self.clock
    }

    fn advance(&mut self, core: usize, cycles: Cycles) {
        debug_assert_eq!(core, self.core, "shard asked about a foreign core");
        *self.wb_debt = self.wb_debt.saturating_sub(cycles);
        *self.clock += cycles;
    }

    fn touch_read(&mut self, core: usize, pa: PhysAddr) -> Cycles {
        debug_assert_eq!(core, self.core, "shard asked about a foreign core");
        let lat = self.walk_read(pa.line());
        self.charge(lat)
    }

    fn touch_write(&mut self, core: usize, pa: PhysAddr) -> Cycles {
        debug_assert_eq!(core, self.core, "shard asked about a foreign core");
        let cost = self.walk_write(pa.line());
        self.charge(cost)
    }

    fn read_bytes(&mut self, core: usize, pa: PhysAddr, buf: &mut [u8]) -> Cycles {
        debug_assert_eq!(core, self.core, "shard asked about a foreign core");
        let mut total = 0;
        let pieces: Vec<_> = split_lines(pa, buf.len()).collect();
        let mut off = 0;
        for (base, in_line, len) in pieces {
            let lat = self.walk_read(base.line());
            total += self.charge(lat);
            self.mem
                .read(base.add(in_line as u64), &mut buf[off..off + len]);
            off += len;
        }
        total
    }

    fn write_bytes(&mut self, core: usize, pa: PhysAddr, data: &[u8]) -> Cycles {
        debug_assert_eq!(core, self.core, "shard asked about a foreign core");
        let mut total = 0;
        let pieces: Vec<_> = split_lines(pa, data.len()).collect();
        let mut off = 0;
        for (base, in_line, len) in pieces {
            let cost = self.walk_write(base.line());
            total += self.charge(cost);
            self.mem
                .write(base.add(in_line as u64), &data[off..off + len]);
            off += len;
        }
        total
    }

    fn dma_read(&mut self, pa: PhysAddr, buf: &mut [u8]) {
        let lines: Vec<u64> = split_lines(pa, buf.len())
            .map(|(b, _, _)| b.line())
            .collect();
        for line in lines {
            self.log.push(LlcOp::DmaProbe { line });
        }
        self.mem.read(pa, buf);
    }

    fn slice_of(&self, pa: PhysAddr) -> usize {
        self.hash.slice_of(pa)
    }

    fn closest_slice(&self, core: usize) -> usize {
        self.topo.closest_slice(core)
    }

    fn llc_latency(&self, core: usize, slice: usize) -> u32 {
        self.topo.llc_latency(core, slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::prefetch::PrefetchConfig;

    /// Tiny deterministic generator for access traces.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    fn fresh(prefetch: bool) -> Machine {
        let mut cfg = MachineConfig::haswell_e5_2667_v3().with_dram_capacity(32 << 20);
        if prefetch {
            cfg = cfg.with_prefetch(PrefetchConfig::bios_default());
        }
        Machine::new(cfg)
    }

    #[derive(Clone, Copy)]
    enum Op {
        Read(u64, usize),
        Write(u64, usize),
        Advance(u64),
        DmaRead(u64, usize),
    }

    fn trace(seed: u64, n: usize, span: u64, cores: usize) -> Vec<(usize, Op)> {
        let mut rng = Lcg(seed);
        (0..n)
            .map(|_| {
                let core = (rng.next() as usize) % cores;
                let off = (rng.next() % span) & !7;
                let len = 1 + (rng.next() as usize % 64);
                let op = match rng.next() % 10 {
                    0..=3 => Op::Read(off, len),
                    4..=7 => Op::Write(off, len),
                    8 => Op::Advance(rng.next() % 300),
                    _ => Op::DmaRead(off, len),
                };
                (core, op)
            })
            .collect()
    }

    fn apply_direct(m: &mut Machine, base: PhysAddr, core: usize, op: Op) -> u64 {
        match op {
            Op::Read(off, len) => {
                let mut buf = vec![0u8; len];
                m.read_bytes(core, base.add(off), &mut buf)
            }
            Op::Write(off, len) => {
                let data = vec![core as u8 + 1; len];
                m.write_bytes(core, base.add(off), &data)
            }
            Op::Advance(c) => {
                m.advance(core, c);
                0
            }
            Op::DmaRead(off, len) => {
                let mut buf = vec![0u8; len];
                m.dma_read(base.add(off), &mut buf);
                0
            }
        }
    }

    fn apply_shard(s: &mut EpochShard<'_>, base: PhysAddr, core: usize, op: Op) -> u64 {
        match op {
            Op::Read(off, len) => {
                let mut buf = vec![0u8; len];
                s.read_bytes(core, base.add(off), &mut buf)
            }
            Op::Write(off, len) => {
                let data = vec![core as u8 + 1; len];
                s.write_bytes(core, base.add(off), &data)
            }
            Op::Advance(c) => {
                s.advance(core, c);
                0
            }
            Op::DmaRead(off, len) => {
                let mut buf = vec![0u8; len];
                s.dma_read(base.add(off), &mut buf);
                0
            }
        }
    }

    fn snapshot(
        m: &Machine,
    ) -> (
        Vec<u64>,
        Vec<crate::cache::CacheStats>,
        Vec<usize>,
        Vec<u64>,
    ) {
        let cores = m.config().cores;
        let slices = m.config().slices;
        (
            (0..cores).map(|c| m.now(c)).collect(),
            (0..slices).map(|s| m.llc_stats(s)).collect(),
            (0..slices).map(|s| m.llc_occupancy(s)).collect(),
            m.uncore().read_all(),
        )
    }

    /// With one access per epoch, shard + replay is *exactly* the serial
    /// machine: same per-op cycles, same clocks, same LLC state and
    /// counters. This pins the replay semantics to the reference model.
    #[test]
    fn single_access_epochs_match_direct_execution_exactly() {
        for prefetch in [false, true] {
            let mut a = fresh(prefetch);
            let mut b = fresh(prefetch);
            let ra = a.mem_mut().alloc(8 << 20, 1 << 20).unwrap();
            let rb = b.mem_mut().alloc(8 << 20, 1 << 20).unwrap();
            assert_eq!(ra.base(), rb.base(), "identical layouts expected");
            for (core, op) in trace(0xfeed, 1500, (8 << 20) - 64, 2) {
                let ca = apply_direct(&mut a, ra.base(), core, op);
                let cb = {
                    let mut shards = b.epoch_shards(&[core]);
                    let c = apply_shard(&mut shards[0], rb.base(), core, op);
                    let log = shards.pop().unwrap().into_log();
                    drop(shards);
                    b.replay_llc(core, &log);
                    c
                };
                assert_eq!(ca, cb, "per-op cycle cost must match the reference");
            }
            assert_eq!(snapshot(&a), snapshot(&b));
            assert_eq!(a.check_inclusion(), None);
            assert_eq!(b.check_inclusion(), None);
            // Data is coherent: both machines hold the same bytes.
            assert_eq!(
                a.mem().slice(ra.base(), 1 << 20),
                b.mem().slice(rb.base(), 1 << 20)
            );
        }
    }

    /// Multi-access epochs over two cores: running the two shards inline
    /// vs. on real threads yields byte-identical machines, and repeats are
    /// self-deterministic.
    #[test]
    fn threaded_epochs_match_inline_epochs() {
        let build = |threaded: bool| {
            let mut m = fresh(true);
            let r = m.mem_mut().alloc(8 << 20, 1 << 20).unwrap();
            // Disjoint per-core working sets (the engine's contract).
            let spans = [(0u64, 4 << 20), (4 << 20, 4 << 20)];
            for epoch in 0..40u64 {
                let mut shards = m.epoch_shards(&[0, 1]);
                let (s0, rest) = shards.split_at_mut(1);
                let (s1, _) = rest.split_at_mut(1);
                let run = |s: &mut EpochShard<'_>, core: usize| {
                    let (lo, span) = spans[core];
                    for (c, op) in trace(epoch * 7 + core as u64, 40, span - 64, 1) {
                        debug_assert_eq!(c, 0);
                        apply_shard(s, r.base().add(lo), core, op);
                    }
                };
                if threaded {
                    std::thread::scope(|scope| {
                        scope.spawn(|| run(&mut s0[0], 0));
                        scope.spawn(|| run(&mut s1[0], 1));
                    });
                } else {
                    run(&mut s0[0], 0);
                    run(&mut s1[0], 1);
                }
                let logs: Vec<_> = shards.drain(..).map(|s| s.into_log()).collect();
                drop(shards);
                for (core, log) in logs.iter().enumerate() {
                    m.replay_llc(core, log);
                }
            }
            assert_eq!(m.check_inclusion(), None);
            let snap = snapshot(&m);
            let bytes = m.mem().slice(r.base(), 8 << 20).to_vec();
            (snap, bytes)
        };
        let inline_1 = build(false);
        let inline_2 = build(false);
        let threaded_1 = build(true);
        let threaded_2 = build(true);
        assert_eq!(inline_1, inline_2, "inline epochs must be deterministic");
        assert_eq!(
            threaded_1, threaded_2,
            "threaded epochs must be deterministic"
        );
        assert_eq!(inline_1, threaded_1, "threads must not change any result");
    }

    #[test]
    #[should_panic(expected = "requested twice")]
    fn duplicate_cores_are_rejected() {
        let mut m = fresh(false);
        let _ = m.epoch_shards(&[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_is_rejected() {
        let mut m = fresh(false);
        let _ = m.epoch_shards(&[99]);
    }
}
