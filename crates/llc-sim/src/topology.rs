//! NUCA interconnect floorplans: core → slice access latency.
//!
//! LLC slices sit on an on-die interconnect — a bi-directional ring bus up
//! to Broadwell, a mesh from Skylake-SP — so the cycles needed to reach a
//! slice depend on where the requesting core sits (paper §2, §6). The paper
//! measures this as:
//!
//! * **Haswell (Fig. 5a)**: bimodal; from core 0, slices 0/2/4/6 are cheap
//!   (~34–40 cycles) and 1/3/5/7 expensive (~50–58), the two groups each
//!   growing slowly with distance. Every core sees the same pattern shifted
//!   onto itself, with slice *i* closest to core *i*.
//! * **Skylake (Fig. 16, Table 4)**: 18 slices for 8 cores; each core has
//!   one primary and one or two secondary slices.
//!
//! [`RingBus`] reproduces the Haswell shape from a dual-ring distance
//! formula; [`Mesh`] uses an explicit hop table calibrated to the paper's
//! Skylake measurements (see DESIGN.md §2 — the real floorplan of the
//! Xeon Gold 6134 is not public, so the hop table is fitted to Fig. 16 and
//! Table 4 rather than derived from die photos).

/// Maps `(core, slice)` to an LLC access latency in core cycles.
pub trait Interconnect: Send + Sync {
    /// Total load-to-use latency of an LLC hit from `core` to `slice`.
    fn llc_latency(&self, core: usize, slice: usize) -> u32;

    /// Number of cores attached.
    fn cores(&self) -> usize;

    /// Number of LLC slices attached.
    fn slices(&self) -> usize;

    /// The cheapest slice for `core` (ties broken toward lower indices).
    fn closest_slice(&self, core: usize) -> usize {
        (0..self.slices())
            .min_by_key(|&s| self.llc_latency(core, s))
            .expect("at least one slice")
    }

    /// All slices ordered by increasing latency from `core`.
    fn slices_by_distance(&self, core: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.slices()).collect();
        v.sort_by_key(|&s| (self.llc_latency(core, s), s));
        v
    }
}

/// The Haswell bi-directional ring bus.
///
/// Cores and slices are co-located in pairs on two physical rings (even
/// pairs on the requesting core's ring, odd pairs on the other), which is
/// what produces the paper's bimodal Fig. 5a: reaching a same-ring slice
/// costs a couple of cycles per hop; crossing to the other ring costs a
/// fixed penalty on top.
#[derive(Debug, Clone)]
pub struct RingBus {
    nodes: usize,
    base: u32,
    hop: u32,
    cross: u32,
}

impl RingBus {
    /// A ring with `nodes` co-located core/slice pairs.
    ///
    /// `base` is the latency to the co-located slice, `hop` the extra per
    /// same-ring step and `cross` the ring-crossing penalty.
    ///
    /// # Panics
    ///
    /// Panics when `nodes == 0` or `nodes` is odd (pairs sit on two rings).
    pub fn new(nodes: usize, base: u32, hop: u32, cross: u32) -> Self {
        assert!(
            nodes > 0 && nodes.is_multiple_of(2),
            "need an even node count"
        );
        Self {
            nodes,
            base,
            hop,
            cross,
        }
    }

    /// The 8-node ring of the Xeon E5-2667 v3, calibrated to Fig. 5a:
    /// closest slice ≈ 34 cycles, farthest ≈ 56, save up to ~20 cycles.
    pub fn haswell_8() -> Self {
        Self::new(8, 34, 2, 14)
    }
}

impl Interconnect for RingBus {
    fn llc_latency(&self, core: usize, slice: usize) -> u32 {
        assert!(core < self.nodes && slice < self.nodes, "node out of range");
        // Position of the slice relative to the requesting core.
        let delta = (slice + self.nodes - core) % self.nodes;
        // Same-ring slices are the even deltas; each pair of deltas is one
        // physical hop further along the ring.
        let hops = (delta / 2) as u32;
        let crossing = (delta % 2) as u32;
        self.base + self.hop * hops + self.cross * crossing
    }

    fn cores(&self) -> usize {
        self.nodes
    }

    fn slices(&self) -> usize {
        self.nodes
    }
}

/// A mesh interconnect described by an explicit per-`(core, slice)` hop
/// table (Skylake-SP and newer).
#[derive(Debug, Clone)]
pub struct Mesh {
    hops: Vec<Vec<u8>>,
    base: u32,
    hop: u32,
    slices: usize,
}

impl Mesh {
    /// A mesh with the given hop table; latency is `base + hop × hops`.
    ///
    /// # Panics
    ///
    /// Panics on an empty or ragged table.
    pub fn new(hops: Vec<Vec<u8>>, base: u32, hop: u32) -> Self {
        assert!(!hops.is_empty(), "need at least one core row");
        let slices = hops[0].len();
        assert!(slices > 0, "need at least one slice column");
        assert!(
            hops.iter().all(|r| r.len() == slices),
            "hop table must be rectangular"
        );
        Self {
            hops,
            base,
            hop,
            slices,
        }
    }

    /// The Xeon Gold 6134 (8 cores, 18 slices), calibrated so that each
    /// core's primary and secondary slices match the paper's Table 4 and
    /// the latency spread matches Fig. 16 (~45 to ~75 cycles).
    ///
    /// Primary slices per core: S0 S4 S8 S12 S10 S14 S3 S15; secondary:
    /// {S2,S6} {S1} {S11} {S13} {S7,S9} {S16} {S5} {S17}.
    pub fn skylake_6134() -> Self {
        const PRIMARY: [usize; 8] = [0, 4, 8, 12, 10, 14, 3, 15];
        const SECONDARY: [&[usize]; 8] = [&[2, 6], &[1], &[11], &[13], &[7, 9], &[16], &[5], &[17]];
        let slices = 18;
        let mut hops = vec![vec![0u8; slices]; 8];
        for core in 0..8 {
            // Remaining slices get deterministic, increasing hop counts in
            // a rotation that keeps the overall latency distribution similar
            // from every core (Fig. 16 is shown for core 0 only; the paper
            // reports the same behaviour from all cores on Haswell).
            let mut next_hop = 3u8;
            for k in 0..slices {
                let s = (PRIMARY[core] + k) % slices;
                if s == PRIMARY[core] {
                    hops[core][s] = 0;
                } else if SECONDARY[core].contains(&s) {
                    hops[core][s] = 1;
                } else {
                    hops[core][s] = next_hop;
                    // Spread the rest over hops 3..=15.
                    next_hop = if next_hop >= 15 { 3 } else { next_hop + 1 };
                }
            }
        }
        Self::new(hops, 44, 2)
    }
}

impl Interconnect for Mesh {
    fn llc_latency(&self, core: usize, slice: usize) -> u32 {
        self.base + self.hop * u32::from(self.hops[core][slice])
    }

    fn cores(&self) -> usize {
        self.hops.len()
    }

    fn slices(&self) -> usize {
        self.slices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bimodal_from_core0() {
        let r = RingBus::haswell_8();
        let lat: Vec<u32> = (0..8).map(|s| r.llc_latency(0, s)).collect();
        // Even slices cheap and increasing; odd slices expensive.
        assert_eq!(lat[0], 34);
        assert!(lat[2] > lat[0] && lat[4] > lat[2] && lat[6] > lat[4]);
        for s in [1, 3, 5, 7] {
            assert!(lat[s] >= 48, "odd slice {s} must be on the far ring");
        }
        let spread = lat.iter().max().unwrap() - lat.iter().min().unwrap();
        assert!(
            (18..=24).contains(&spread),
            "paper: save up to ~20 cycles, got {spread}"
        );
    }

    #[test]
    fn ring_pattern_is_core_relative() {
        let r = RingBus::haswell_8();
        for c in 0..8 {
            for s in 0..8 {
                assert_eq!(
                    r.llc_latency(c, s),
                    r.llc_latency(0, (s + 8 - c) % 8),
                    "every core sees the same shifted pattern"
                );
            }
        }
    }

    #[test]
    fn ring_closest_slice_is_own() {
        let r = RingBus::haswell_8();
        for c in 0..8 {
            assert_eq!(r.closest_slice(c), c);
        }
    }

    #[test]
    fn ring_distance_order_from_core0() {
        let r = RingBus::haswell_8();
        let order = r.slices_by_distance(0);
        assert_eq!(order[..4], [0, 2, 4, 6], "same-ring slices come first");
    }

    #[test]
    #[should_panic(expected = "even node count")]
    fn ring_rejects_odd() {
        RingBus::new(7, 30, 2, 10);
    }

    #[test]
    fn mesh_matches_table4_primaries() {
        let m = Mesh::skylake_6134();
        let primaries = [0, 4, 8, 12, 10, 14, 3, 15];
        for (core, &p) in primaries.iter().enumerate() {
            assert_eq!(m.closest_slice(core), p, "core {core}");
        }
    }

    #[test]
    fn mesh_matches_table4_secondaries() {
        let m = Mesh::skylake_6134();
        let secondaries: [&[usize]; 8] = [&[2, 6], &[1], &[11], &[13], &[7, 9], &[16], &[5], &[17]];
        for (core, &secs) in secondaries.iter().enumerate() {
            let order = m.slices_by_distance(core);
            let second_lat = m.llc_latency(core, order[1]);
            let at_second: Vec<usize> = (0..18)
                .filter(|&s| m.llc_latency(core, s) == second_lat)
                .collect();
            assert_eq!(at_second, secs, "core {core} secondary set");
        }
    }

    #[test]
    fn mesh_latency_spread_matches_fig16() {
        let m = Mesh::skylake_6134();
        let lats: Vec<u32> = (0..18).map(|s| m.llc_latency(0, s)).collect();
        let lo = *lats.iter().min().unwrap();
        let hi = *lats.iter().max().unwrap();
        assert_eq!(lo, 44);
        assert!(
            (70..=80).contains(&hi),
            "Fig. 16 tops out near ~75, got {hi}"
        );
    }

    #[test]
    fn mesh_dimensions() {
        let m = Mesh::skylake_6134();
        assert_eq!(m.cores(), 8);
        assert_eq!(m.slices(), 18);
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn mesh_rejects_ragged_table() {
        Mesh::new(vec![vec![0, 1], vec![0]], 40, 2);
    }
}
