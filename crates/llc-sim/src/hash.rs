//! Intel LLC *Complex Addressing*: the physical-address → slice hash.
//!
//! Intel distributes cache lines over LLC slices with an undocumented hash
//! of the physical address, so that consecutive lines land on different
//! slices and LLC bandwidth scales (paper §2). For CPUs with `2^n` slices
//! the function was reverse-engineered by Maurice et al. (RAID '15) as an
//! XOR of address-bit subsets; the paper verifies the same function on its
//! Xeon E5-2667 v3 (paper Fig. 4) and we reproduce it bit for bit in
//! [`XorSliceHash`].
//!
//! Skylake parts can have a slice count that is not a power of two (the
//! paper's Xeon Gold 6134 has 8 cores but 18 slices). The exact function
//! for those dies is not public; the paper side-steps it by using
//! counter-polling only. We model it with [`FoldedSliceHash`], a
//! deterministic per-line mix reduced modulo the slice count — it preserves
//! the properties the evaluation depends on (mapping changes at cache-line
//! granularity, near-uniform slice distribution) without claiming to be
//! Intel's function. See DESIGN.md §2 for the substitution note.

use crate::addr::PhysAddr;

/// A function mapping physical addresses to LLC slice indices.
pub trait SliceHash: Send + Sync {
    /// The slice holding the line that contains `pa`.
    fn slice_of(&self, pa: PhysAddr) -> usize;

    /// Total number of slices.
    fn slices(&self) -> usize;
}

/// Address bits XOR-ed into output bit `o0` (Maurice et al., Table 3;
/// paper Fig. 4 dark cells, first row).
pub const O0_BITS: &[u32] = &[
    6, 10, 12, 14, 16, 17, 18, 20, 22, 24, 25, 26, 27, 28, 30, 32, 33, 35, 36,
];

/// Address bits XOR-ed into output bit `o1` (second row of Fig. 4).
pub const O1_BITS: &[u32] = &[
    7, 11, 13, 15, 17, 19, 20, 21, 22, 23, 24, 26, 28, 29, 31, 33, 34, 35, 37,
];

/// Address bits XOR-ed into output bit `o2` (third row of Fig. 4).
pub const O2_BITS: &[u32] = &[8, 12, 13, 16, 19, 22, 23, 26, 27, 30, 31, 35, 36, 37, 38];

/// Builds the XOR mask (one bit set per participating address bit).
pub fn mask_of_bits(bits: &[u32]) -> u64 {
    bits.iter().fold(0u64, |m, &b| m | (1u64 << b))
}

/// The reverse-engineered Complex Addressing hash for `2^n`-slice CPUs.
///
/// Output bit `k` is the XOR (parity) of the physical-address bits selected
/// by `masks[k]`. With 8 slices all three published mask rows are used;
/// 4-slice parts use the first two and 2-slice parts the first one, exactly
/// as in Maurice et al.
#[derive(Debug, Clone)]
pub struct XorSliceHash {
    masks: Vec<u64>,
}

impl XorSliceHash {
    /// The function for a CPU with `2^n` slices, `n` in `1..=3`.
    ///
    /// # Panics
    ///
    /// Panics for `n == 0` or `n > 3` (no published masks beyond 8 slices).
    pub fn for_slices_pow2(n: u32) -> Self {
        assert!((1..=3).contains(&n), "published masks cover 2..=8 slices");
        let all = [O0_BITS, O1_BITS, O2_BITS];
        Self {
            masks: all[..n as usize].iter().map(|b| mask_of_bits(b)).collect(),
        }
    }

    /// The 8-slice function of the paper's Xeon E5-2667 v3.
    pub fn haswell_8slice() -> Self {
        Self::for_slices_pow2(3)
    }

    /// Constructs a hash from explicit per-output-bit XOR masks.
    ///
    /// Used by the reverse-engineering code in the `slice-aware` crate to
    /// compare a reconstructed function against the ground truth.
    pub fn from_masks(masks: Vec<u64>) -> Self {
        assert!(!masks.is_empty(), "need at least one output bit");
        Self { masks }
    }

    /// The per-output-bit XOR masks.
    pub fn masks(&self) -> &[u64] {
        &self.masks
    }
}

impl SliceHash for XorSliceHash {
    fn slice_of(&self, pa: PhysAddr) -> usize {
        let mut slice = 0usize;
        for (k, &mask) in self.masks.iter().enumerate() {
            let parity = (pa.raw() & mask).count_ones() & 1;
            slice |= (parity as usize) << k;
        }
        slice
    }

    fn slices(&self) -> usize {
        1 << self.masks.len()
    }
}

/// Deterministic per-line hash folded modulo a non-power-of-two slice count
/// (Skylake substitute; see module docs).
///
/// The mix is a fixed-point multiplication ("splitmix"-style finaliser) of
/// the line number, which gives near-uniform slice occupancy while staying
/// a pure function of the physical address.
#[derive(Debug, Clone)]
pub struct FoldedSliceHash {
    slices: usize,
}

impl FoldedSliceHash {
    /// A folded hash over `slices` slices.
    ///
    /// # Panics
    ///
    /// Panics when `slices == 0`.
    pub fn new(slices: usize) -> Self {
        assert!(slices > 0, "need at least one slice");
        Self { slices }
    }

    /// The 18-slice layout of the paper's Xeon Gold 6134.
    pub fn skylake_18slice() -> Self {
        Self::new(18)
    }
}

impl SliceHash for FoldedSliceHash {
    fn slice_of(&self, pa: PhysAddr) -> usize {
        let mut x = pa.line();
        // SplitMix64 finaliser: full-avalanche mix of the line number.
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x % self.slices as u64) as usize
    }

    fn slices(&self) -> usize {
        self.slices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_match_published_bit_lists() {
        let h = XorSliceHash::haswell_8slice();
        assert_eq!(h.masks().len(), 3);
        assert_eq!(h.masks()[0], mask_of_bits(O0_BITS));
        assert_eq!(h.masks()[2] & (1 << 38), 1 << 38);
        // Bit 6 participates in o0 only.
        assert_eq!(h.masks()[0] & (1 << 6), 1 << 6);
        assert_eq!(h.masks()[1] & (1 << 6), 0);
    }

    #[test]
    fn same_line_same_slice() {
        let h = XorSliceHash::haswell_8slice();
        let base = PhysAddr(0x12345 * 64);
        for off in 0..64 {
            assert_eq!(h.slice_of(base.add(off)), h.slice_of(base));
        }
    }

    #[test]
    fn adjacent_lines_usually_differ() {
        // Bit 6 flips o0 between adjacent lines, so consecutive lines must
        // alternate the low output bit.
        let h = XorSliceHash::haswell_8slice();
        let a = h.slice_of(PhysAddr(0));
        let b = h.slice_of(PhysAddr(64));
        assert_ne!(a & 1, b & 1);
    }

    #[test]
    fn xor_hash_distribution_is_uniform() {
        let h = XorSliceHash::haswell_8slice();
        let mut counts = [0usize; 8];
        // 1 MB of consecutive lines.
        for i in 0..16384u64 {
            counts[h.slice_of(PhysAddr(i * 64))] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 16384 / 8, "XOR hash is exactly balanced over 2^k lines");
        }
    }

    #[test]
    fn slice_count_by_mask_rows() {
        assert_eq!(XorSliceHash::for_slices_pow2(1).slices(), 2);
        assert_eq!(XorSliceHash::for_slices_pow2(2).slices(), 4);
        assert_eq!(XorSliceHash::for_slices_pow2(3).slices(), 8);
    }

    #[test]
    #[should_panic(expected = "published masks")]
    fn rejects_unknown_widths() {
        XorSliceHash::for_slices_pow2(4);
    }

    #[test]
    fn hash_depends_only_on_masked_bits() {
        let h = XorSliceHash::haswell_8slice();
        let combined = h.masks().iter().fold(0, |a, &m| a | m);
        let pa = PhysAddr(0x0dea_dbee_f000);
        // Flipping a non-participating bit never changes the slice.
        for bit in 0..40 {
            if combined & (1 << bit) == 0 {
                let flipped = PhysAddr(pa.raw() ^ (1 << bit));
                assert_eq!(h.slice_of(pa), h.slice_of(flipped), "bit {bit}");
            }
        }
    }

    #[test]
    fn flipping_a_participating_bit_changes_the_slice() {
        let h = XorSliceHash::haswell_8slice();
        let pa = PhysAddr(0x4000_0000);
        for &bit in O0_BITS {
            let flipped = PhysAddr(pa.raw() ^ (1 << bit));
            assert_ne!(h.slice_of(pa), h.slice_of(flipped), "bit {bit}");
        }
    }

    #[test]
    fn folded_hash_covers_all_slices_roughly_uniformly() {
        let h = FoldedSliceHash::skylake_18slice();
        let mut counts = [0usize; 18];
        let lines = 18 * 4096;
        for i in 0..lines as u64 {
            counts[h.slice_of(PhysAddr(i * 64))] += 1;
        }
        let expect = lines / 18;
        for (s, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect as f64).abs() / expect as f64;
            assert!(dev < 0.10, "slice {s} occupancy off by {dev:.3}");
        }
    }

    #[test]
    fn folded_hash_stable_within_line() {
        let h = FoldedSliceHash::skylake_18slice();
        let base = PhysAddr(0xabc * 64);
        assert_eq!(h.slice_of(base), h.slice_of(base.add(63)));
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn folded_rejects_zero() {
        FoldedSliceHash::new(0);
    }
}
