//! The simulated machine: cores, private caches, sliced LLC, DDIO and the
//! cycle-cost engine.
//!
//! [`Machine`] wires the pieces of this crate together and exposes *timed*
//! memory operations: every load/store returns the core cycles it cost,
//! advancing that core's clock. The cost rules are calibrated to the
//! paper's measurements:
//!
//! * L1 hit 4 cycles, L2 hit 11 (Haswell §2.2, Fig. 2).
//! * LLC hit: interconnect latency — this is where NUCA appears; the same
//!   line costs more from a distant core (Figs. 5a, 16).
//! * Miss: DRAM latency (~60 ns).
//! * Stores retire through the store buffer: a visible cost of a few
//!   cycles regardless of where the line lives (Fig. 5b shows writes are
//!   flat across slices), while the fill and any dirty write-backs are
//!   charged to a bounded per-core **write-back budget**. Once the budget
//!   saturates, further stores stall for the backlog — which is exactly
//!   how the paper explains Fig. 6b: "the difference in access times
//!   becomes visible with an increasing number of write operations ...
//!   modified cache lines accumulate in L1 and need to be written to
//!   higher level caches".
//!
//! DMA (`dma_write`/`dma_read`) models DDIO: device writes allocate
//! directly into the target LLC slice but only into a restricted set of
//! ways (2 of 20 by default, the 10 % limit of §8).

use crate::addr::{split_lines, PhysAddr};
use crate::cache::SetAssocCache;
use crate::epoch::{EpochShard, LlcOp, SharedMem};
use crate::hash::{FoldedSliceHash, SliceHash, XorSliceHash};
use crate::machine::{HashConfig, InterconnectConfig, LlcMode, MachineConfig};
use crate::mem::PhysMem;
use crate::prefetch::StreamerState;
use crate::topology::{Interconnect, Mesh, RingBus};
use crate::uncore::Uncore;

/// A duration in core cycles.
pub type Cycles = u64;

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// The simulated socket. See the module docs for the cost model.
pub struct Machine {
    cfg: MachineConfig,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    llc: Vec<SetAssocCache>,
    hash: Box<dyn SliceHash>,
    topo: Box<dyn Interconnect>,
    uncore: Uncore,
    mem: PhysMem,
    clock: Vec<u64>,
    wb_debt: Vec<u64>,
    streamer: Vec<StreamerState>,
    cat_mask: Vec<u64>,
    ddio_mask: u64,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("name", &self.cfg.name)
            .field("cores", &self.cfg.cores)
            .field("slices", &self.cfg.slices)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics when the hash slice count disagrees with `cfg.slices` or the
    /// interconnect dimensions disagree with the core/slice counts.
    pub fn new(cfg: MachineConfig) -> Self {
        let hash: Box<dyn SliceHash> = match cfg.hash {
            HashConfig::XorPow2 { bits } => Box::new(XorSliceHash::for_slices_pow2(bits)),
            HashConfig::Folded { slices } => Box::new(FoldedSliceHash::new(slices)),
        };
        assert_eq!(hash.slices(), cfg.slices, "hash/slice count mismatch");
        let topo: Box<dyn Interconnect> = match cfg.interconnect {
            InterconnectConfig::Ring { base, hop, cross } => {
                Box::new(RingBus::new(cfg.cores.max(cfg.slices), base, hop, cross))
            }
            InterconnectConfig::MeshSkylake6134 => Box::new(Mesh::skylake_6134()),
        };
        assert!(topo.cores() >= cfg.cores, "interconnect too small (cores)");
        assert_eq!(topo.slices(), cfg.slices, "interconnect/slice mismatch");
        let mk = |g: crate::machine::CacheGeometry, seed: u64| {
            SetAssocCache::new(g.sets, g.ways, cfg.replacement, seed)
        };
        let l1 = (0..cfg.cores)
            .map(|i| mk(cfg.l1, cfg.seed ^ (0x1000 + i as u64)))
            .collect();
        let l2 = (0..cfg.cores)
            .map(|i| mk(cfg.l2, cfg.seed ^ (0x2000 + i as u64)))
            .collect();
        let llc = (0..cfg.slices)
            .map(|i| mk(cfg.llc_slice, cfg.seed ^ (0x3000 + i as u64)))
            .collect();
        // DDIO allocates into the top `ddio_ways` ways of each slice.
        let w = cfg.llc_slice.ways;
        let dd = cfg.ddio_ways.min(w);
        let ddio_mask = (((1u64 << dd) - 1) << (w - dd)).max(1);
        Self {
            uncore: Uncore::new(cfg.slices),
            mem: PhysMem::new(cfg.dram_capacity),
            clock: vec![0; cfg.cores],
            wb_debt: vec![0; cfg.cores],
            streamer: vec![StreamerState::default(); cfg.cores],
            cat_mask: vec![u64::MAX; cfg.cores],
            l1,
            l2,
            llc,
            hash,
            topo,
            ddio_mask,
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Shared physical memory.
    pub fn mem(&self) -> &PhysMem {
        &self.mem
    }

    /// Mutable physical memory (reservations, untimed data setup).
    pub fn mem_mut(&mut self) -> &mut PhysMem {
        &mut self.mem
    }

    /// The uncore monitoring unit.
    pub fn uncore(&self) -> &Uncore {
        &self.uncore
    }

    /// Mutable uncore (event select / reset).
    pub fn uncore_mut(&mut self) -> &mut Uncore {
        &mut self.uncore
    }

    /// The slice Complex Addressing maps `pa` to.
    pub fn slice_of(&self, pa: PhysAddr) -> usize {
        self.hash.slice_of(pa)
    }

    /// LLC hit latency from `core` to `slice`.
    pub fn llc_latency(&self, core: usize, slice: usize) -> u32 {
        self.topo.llc_latency(core, slice)
    }

    /// The cheapest slice for `core`.
    pub fn closest_slice(&self, core: usize) -> usize {
        self.topo.closest_slice(core)
    }

    /// All slices ordered by increasing latency from `core`.
    pub fn slices_by_distance(&self, core: usize) -> Vec<usize> {
        self.topo.slices_by_distance(core)
    }

    /// Current cycle clock of `core`.
    pub fn now(&self, core: usize) -> u64 {
        self.clock[core]
    }

    /// Advances `core`'s clock by `cycles` of non-memory work.
    pub fn advance(&mut self, core: usize, cycles: Cycles) {
        // Non-memory work also drains the write-back backlog.
        self.wb_debt[core] = self.wb_debt[core].saturating_sub(cycles);
        self.clock[core] += cycles;
    }

    /// Zeroes all core clocks and write-back backlogs.
    pub fn reset_clocks(&mut self) {
        self.clock.iter_mut().for_each(|c| *c = 0);
        self.wb_debt.iter_mut().for_each(|c| *c = 0);
    }

    /// Waits for `core`'s pending write-backs to finish (measurement-phase
    /// separator; the paper's experiments do the equivalent with fences).
    pub fn drain_write_backs(&mut self, core: usize) {
        let debt = self.wb_debt[core];
        self.clock[core] += debt;
        self.wb_debt[core] = 0;
    }

    /// Restricts LLC allocations by `core` to the ways in `mask` — Intel
    /// CAT with one class of service per core (paper §7).
    ///
    /// # Panics
    ///
    /// Panics when the mask selects no way of the LLC.
    pub fn set_cat_mask(&mut self, core: usize, mask: u64) {
        let valid = (1u64 << self.cfg.llc_slice.ways) - 1;
        assert!(mask & valid != 0, "CAT mask selects no LLC way");
        self.cat_mask[core] = mask;
    }

    /// Removes `core`'s CAT restriction.
    pub fn clear_cat_mask(&mut self, core: usize) {
        self.cat_mask[core] = u64::MAX;
    }

    /// The CAT way mask currently applied to `core` (`u64::MAX` when
    /// unrestricted).
    pub fn cat_mask(&self, core: usize) -> u64 {
        self.cat_mask[core]
    }

    /// Reprograms the number of ways DDIO allocates into at runtime —
    /// the `IIO_LLC_WAYS` register an isolation controller rewrites to
    /// shrink or widen the I/O ways online (paper §6; IOCA). The same
    /// construction rule as [`Machine::new`] applies: the top `ways`
    /// ways of every slice, clamped to the slice associativity, and the
    /// mask never goes empty (0 keeps way 0 usable, matching the
    /// config-time clamp). Only *future* DMA placements are affected;
    /// lines already resident stay wherever they are until evicted.
    pub fn set_ddio_ways(&mut self, ways: usize) {
        let w = self.cfg.llc_slice.ways;
        let dd = ways.min(w);
        self.ddio_mask = (((1u64 << dd) - 1) << (w - dd)).max(1);
    }

    /// The number of ways DDIO currently allocates into (the popcount
    /// of the active DDIO way mask).
    pub fn ddio_ways(&self) -> usize {
        self.ddio_mask.count_ones() as usize
    }

    /// Per-slice LLC statistics.
    pub fn llc_stats(&self, slice: usize) -> crate::cache::CacheStats {
        self.llc[slice].stats()
    }

    /// Whether the line containing `pa` is resident in slice `slice`
    /// (inspection only; no counters move).
    pub fn llc_probe(&self, slice: usize, pa: PhysAddr) -> bool {
        self.llc[slice].probe(pa.line())
    }

    /// Number of valid lines currently in slice `slice`.
    pub fn llc_occupancy(&self, slice: usize) -> usize {
        self.llc[slice].occupancy()
    }

    /// Verifies the inclusion invariant: in [`LlcMode::Inclusive`] every
    /// line resident in any private cache is also resident in the LLC.
    /// Returns the first violating `(core, line)` or `None` when the
    /// hierarchy is consistent. Inspection only (no counters move);
    /// intended for tests and debugging.
    pub fn check_inclusion(&self) -> Option<(usize, u64)> {
        if self.cfg.llc_mode != LlcMode::Inclusive {
            return None;
        }
        for c in 0..self.cfg.cores {
            for (line, _) in self.l1[c]
                .resident_lines()
                .chain(self.l2[c].resident_lines())
            {
                let s = self.hash.slice_of(PhysAddr(line << 6));
                if !self.llc[s].probe(line) {
                    return Some((c, line));
                }
            }
        }
        None
    }

    /// Resets hit/miss statistics at every level.
    pub fn reset_stats(&mut self) {
        for c in &mut self.l1 {
            c.reset_stats();
        }
        for c in &mut self.l2 {
            c.reset_stats();
        }
        for c in &mut self.llc {
            c.reset_stats();
        }
    }

    // ------------------------------------------------------------------
    // Timed operations.
    // ------------------------------------------------------------------

    /// Timed load of the line containing `pa` (no data movement).
    pub fn touch_read(&mut self, core: usize, pa: PhysAddr) -> Cycles {
        let lat = self.walk_read(core, pa.line());
        self.charge(core, lat)
    }

    /// Timed store to the line containing `pa` (no data movement).
    pub fn touch_write(&mut self, core: usize, pa: PhysAddr) -> Cycles {
        let cost = self.walk_write(core, pa.line());
        self.charge(core, cost)
    }

    /// Timed load of `buf.len()` bytes at `pa` into `buf`.
    pub fn read_bytes(&mut self, core: usize, pa: PhysAddr, buf: &mut [u8]) -> Cycles {
        let mut total = 0;
        let pieces: Vec<_> = split_lines(pa, buf.len()).collect();
        let mut off = 0;
        for (base, in_line, len) in pieces {
            let lat = self.walk_read(core, base.line());
            total += self.charge(core, lat);
            self.mem
                .read(base.add(in_line as u64), &mut buf[off..off + len]);
            off += len;
        }
        total
    }

    /// Timed store of `data` at `pa`.
    pub fn write_bytes(&mut self, core: usize, pa: PhysAddr, data: &[u8]) -> Cycles {
        let mut total = 0;
        let pieces: Vec<_> = split_lines(pa, data.len()).collect();
        let mut off = 0;
        for (base, in_line, len) in pieces {
            let cost = self.walk_write(core, base.line());
            total += self.charge(core, cost);
            self.mem
                .write(base.add(in_line as u64), &data[off..off + len]);
            off += len;
        }
        total
    }

    /// Timed load of a little-endian `u64`.
    pub fn read_u64(&mut self, core: usize, pa: PhysAddr) -> (u64, Cycles) {
        let mut b = [0u8; 8];
        let c = self.read_bytes(core, pa, &mut b);
        (u64::from_le_bytes(b), c)
    }

    /// Timed store of a little-endian `u64`.
    pub fn write_u64(&mut self, core: usize, pa: PhysAddr, v: u64) -> Cycles {
        self.write_bytes(core, pa, &v.to_le_bytes())
    }

    /// `clflush`: writes back and invalidates the line containing `pa`
    /// from every cache in the hierarchy (paper §2.2 methodology).
    pub fn clflush(&mut self, core: usize, pa: PhysAddr) -> Cycles {
        let line = pa.line();
        for c in 0..self.cfg.cores {
            self.l1[c].invalidate(line);
            self.l2[c].invalidate(line);
        }
        let s = self.hash.slice_of(pa);
        self.llc[s].invalidate(line);
        // Dirty data is already coherent in PhysMem (data writes go straight
        // through), so the flush is a pure state change plus its cost.
        let cost = u64::from(self.cfg.clflush_cost);
        self.charge(core, cost)
    }

    // ------------------------------------------------------------------
    // DMA / DDIO.
    // ------------------------------------------------------------------

    /// Device DMA write (DDIO): stores `data` at `pa` and allocates the
    /// touched lines into their LLC slices, restricted to the DDIO ways.
    ///
    /// Costs no core cycles; any stale copies in private caches are
    /// invalidated, as hardware coherency would.
    pub fn dma_write(&mut self, pa: PhysAddr, data: &[u8]) {
        self.mem.write(pa, data);
        self.dma_place(pa, data.len());
    }

    /// The allocation half of [`Machine::dma_write`] without data movement
    /// (for workloads that only need placement effects).
    pub fn dma_place(&mut self, pa: PhysAddr, len: usize) {
        let lines: Vec<u64> = split_lines(pa, len).map(|(b, _, _)| b.line()).collect();
        for line in lines {
            for c in 0..self.cfg.cores {
                self.l1[c].invalidate(line);
                self.l2[c].invalidate(line);
            }
            let s = self.hash.slice_of(PhysAddr(line << 6));
            self.uncore.on_lookup(s);
            let present = self.llc[s].probe(line);
            if !present {
                self.uncore.on_miss(s);
                self.uncore.on_fill(s);
            }
            if let Some(ev) = self.llc[s].insert_masked(line, true, self.ddio_mask) {
                self.uncore.on_victim(s);
                // The victim's dirty data is already coherent in PhysMem.
                let _ = ev;
            }
        }
    }

    /// Device DMA read (NIC TX): copies `buf.len()` bytes from `pa`.
    ///
    /// Reads served from the LLC when resident (DDIO), otherwise from
    /// DRAM; either way no cache state changes and no core cycles.
    pub fn dma_read(&mut self, pa: PhysAddr, buf: &mut [u8]) {
        let len = buf.len();
        let lines: Vec<u64> = split_lines(pa, len).map(|(b, _, _)| b.line()).collect();
        for line in lines {
            let s = self.hash.slice_of(PhysAddr(line << 6));
            self.uncore.on_lookup(s);
        }
        self.mem.read(pa, buf);
    }

    // ------------------------------------------------------------------
    // Engine internals.
    // ------------------------------------------------------------------

    /// Applies the write-back-budget mechanics to a base cost and advances
    /// the core clock. See the module docs.
    fn charge(&mut self, core: usize, base: Cycles) -> Cycles {
        // Background write-backs retire while the core is busy.
        self.wb_debt[core] = self.wb_debt[core].saturating_sub(base);
        let mut cost = base;
        if self.wb_debt[core] > self.cfg.wb_buffer_cap {
            let stall = self.wb_debt[core] - self.cfg.wb_buffer_cap;
            cost += stall;
            self.wb_debt[core] = self.cfg.wb_buffer_cap;
        }
        self.clock[core] += cost;
        cost
    }

    /// Read walk: returns the load-to-use latency and applies all state
    /// transitions (fills, evictions, prefetches).
    fn walk_read(&mut self, core: usize, line: u64) -> Cycles {
        if self.l1[core].lookup(line).is_some() {
            return u64::from(self.cfg.l1.latency);
        }
        if self.l2[core].lookup(line).is_some() {
            self.fill_l1(core, line, false);
            return u64::from(self.cfg.l2.latency);
        }
        let lat = self.fetch_from_llc_or_dram(core, line);
        self.fill_l2(core, line, false);
        self.fill_l1(core, line, false);
        self.run_prefetch(core, line);
        lat
    }

    /// Write: L1 hit is cheap; a miss triggers a background
    /// read-for-ownership charged to the write-back budget.
    fn walk_write(&mut self, core: usize, line: u64) -> Cycles {
        if self.l1[core].lookup(line).is_some() {
            self.l1[core].mark_dirty(line);
            return u64::from(self.cfg.store_hit_cost);
        }
        let fetch = if self.l2[core].lookup(line).is_some() {
            u64::from(self.cfg.l2.latency)
        } else {
            let lat = self.fetch_from_llc_or_dram(core, line);
            self.fill_l2(core, line, false);
            self.run_prefetch(core, line);
            lat
        };
        self.fill_l1(core, line, true);
        // The RFO fill occupies the memory pipeline but the store buffer
        // hides it from the core until the budget saturates (Fig. 5b vs
        // Fig. 6b).
        self.wb_debt[core] += fetch;
        u64::from(self.cfg.store_miss_cost)
    }

    /// L2-missed fetch: LLC hit latency or DRAM, with inclusive-mode LLC
    /// allocation.
    fn fetch_from_llc_or_dram(&mut self, core: usize, line: u64) -> Cycles {
        let s = self.hash.slice_of(PhysAddr(line << 6));
        self.uncore.on_lookup(s);
        if self.llc[s].lookup(line).is_some() {
            u64::from(self.topo.llc_latency(core, s))
        } else {
            self.uncore.on_miss(s);
            if self.cfg.llc_mode == LlcMode::Inclusive {
                self.llc_insert(core, line, false);
            }
            u64::from(self.cfg.dram_latency)
        }
    }

    /// Inserts into the LLC under the core's CAT mask, handling victims
    /// (and inclusive back-invalidation).
    fn llc_insert(&mut self, core: usize, line: u64, dirty: bool) {
        let s = self.hash.slice_of(PhysAddr(line << 6));
        self.uncore.on_fill(s);
        let mask = self.cat_mask[core];
        if let Some(ev) = self.llc[s].insert_masked(line, dirty, mask) {
            self.uncore.on_victim(s);
            if self.cfg.llc_mode == LlcMode::Inclusive {
                // Inclusive LLC: a victim must leave the private caches too.
                for c in 0..self.cfg.cores {
                    self.l1[c].invalidate(ev.line);
                    self.l2[c].invalidate(ev.line);
                }
            }
            // Dirty victims drain to DRAM through deep buffers; no core
            // cost is modelled for them.
        }
    }

    /// Fills a line into `core`'s L1, spilling the victim to L2.
    fn fill_l1(&mut self, core: usize, line: u64, dirty: bool) {
        if let Some(ev) = self.l1[core].insert(line, dirty) {
            if ev.dirty && !self.l2[core].mark_dirty(ev.line) {
                // Not in L2 (victim-mode L2 may have dropped it):
                // re-insert dirty.
                self.fill_l2(core, ev.line, true);
            }
        }
    }

    /// Fills a line into `core`'s L2, spilling the victim toward the LLC.
    fn fill_l2(&mut self, core: usize, line: u64, dirty: bool) {
        if let Some(ev) = self.l2[core].insert(line, dirty) {
            self.l2_evict(core, ev);
        }
    }

    /// Handles an L2 victim per the LLC mode.
    fn l2_evict(&mut self, core: usize, ev: crate::cache::Evicted) {
        let s = self.hash.slice_of(PhysAddr(ev.line << 6));
        match self.cfg.llc_mode {
            LlcMode::Inclusive => {
                if ev.dirty {
                    if !self.llc[s].mark_dirty(ev.line) {
                        // Transiently absent (e.g. CAT shuffles): restore.
                        self.llc_insert(core, ev.line, true);
                    }
                    // The dirty write-back occupies the path to the slice.
                    self.wb_debt[core] += u64::from(self.topo.llc_latency(core, s));
                }
            }
            LlcMode::Victim => {
                // Skylake: L2 victims (clean or dirty) move into the LLC.
                self.llc_insert(core, ev.line, ev.dirty);
                if ev.dirty {
                    self.wb_debt[core] += u64::from(self.topo.llc_latency(core, s));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Epoch-parallel execution (see [`crate::epoch`]).
    // ------------------------------------------------------------------

    /// Splits the machine into disjoint per-core [`EpochShard`]s for one
    /// epoch of (possibly threaded) execution.
    ///
    /// While the returned shards are alive the machine is fully borrowed;
    /// each shard owns its core's private caches, clock, write-back debt
    /// and streamer, shares the LLC read-only and physical memory through
    /// a raw view. After running the shards, feed each shard's
    /// [`EpochShard::into_log`] to [`Machine::replay_llc`] in canonical
    /// worker order to merge the deferred LLC effects.
    ///
    /// Callers must keep concurrent shards' memory *writes* disjoint (see
    /// the safety contract in [`crate::epoch`]).
    ///
    /// # Panics
    ///
    /// Panics when a core index is out of range or listed twice.
    pub fn epoch_shards(&mut self, cores: &[usize]) -> Vec<EpochShard<'_>> {
        for (i, &c) in cores.iter().enumerate() {
            assert!(c < self.cfg.cores, "core {c} out of range");
            assert!(
                !cores[..i].contains(&c),
                "core {c} requested twice in one epoch"
            );
        }
        let mem = SharedMem::new(&mut self.mem);
        let cfg = &self.cfg;
        let hash: &dyn SliceHash = &*self.hash;
        let topo: &dyn Interconnect = &*self.topo;
        let llc: &[SetAssocCache] = &self.llc;
        let mut l1: Vec<Option<&mut SetAssocCache>> = self.l1.iter_mut().map(Some).collect();
        let mut l2: Vec<Option<&mut SetAssocCache>> = self.l2.iter_mut().map(Some).collect();
        let mut clock: Vec<Option<&mut u64>> = self.clock.iter_mut().map(Some).collect();
        let mut wb: Vec<Option<&mut u64>> = self.wb_debt.iter_mut().map(Some).collect();
        let mut st: Vec<Option<&mut StreamerState>> = self.streamer.iter_mut().map(Some).collect();
        cores
            .iter()
            .map(|&c| {
                EpochShard::new(
                    c,
                    cfg,
                    hash,
                    topo,
                    llc,
                    mem,
                    l1[c].take().expect("core split"),
                    l2[c].take().expect("core split"),
                    clock[c].take().expect("core split"),
                    wb[c].take().expect("core split"),
                    st[c].take().expect("core split"),
                )
            })
            .collect()
    }

    /// Replays one shard's deferred-LLC event log against the live LLC,
    /// attributing allocations (CAT mask, back-invalidation) to `core`.
    ///
    /// Decisions are made from replay-time state, so replaying all
    /// shards' logs in canonical worker order reconstructs exactly the
    /// state a serial execution of the same epoch would produce. No core
    /// cycles move here — the shards already charged them.
    pub fn replay_llc(&mut self, core: usize, ops: &[LlcOp]) {
        for op in ops {
            match *op {
                LlcOp::Fetch { line } => {
                    let s = self.hash.slice_of(PhysAddr(line << 6));
                    self.uncore.on_lookup(s);
                    if self.llc[s].lookup(line).is_none() {
                        self.uncore.on_miss(s);
                        if self.cfg.llc_mode == LlcMode::Inclusive {
                            self.llc_insert(core, line, false);
                        }
                    }
                }
                LlcOp::L2Evict { line, dirty } => match self.cfg.llc_mode {
                    LlcMode::Inclusive => {
                        let s = self.hash.slice_of(PhysAddr(line << 6));
                        if !self.llc[s].mark_dirty(line) {
                            self.llc_insert(core, line, true);
                        }
                    }
                    LlcMode::Victim => {
                        self.llc_insert(core, line, dirty);
                    }
                },
                LlcOp::Prefetch { line } => {
                    let s = self.hash.slice_of(PhysAddr(line << 6));
                    self.uncore.on_lookup(s);
                    if !self.llc[s].probe(line) {
                        self.uncore.on_miss(s);
                        if self.cfg.llc_mode == LlcMode::Inclusive {
                            self.llc_insert(core, line, false);
                        }
                    } else {
                        self.llc[s].lookup(line);
                    }
                }
                LlcOp::DmaProbe { line } => {
                    let s = self.hash.slice_of(PhysAddr(line << 6));
                    self.uncore.on_lookup(s);
                }
            }
        }
    }

    /// Feeds the streamer with an L2 demand miss and fills candidates.
    fn run_prefetch(&mut self, core: usize, line: u64) {
        let cfg = self.cfg.prefetch;
        if !cfg.adjacent_line && !cfg.streamer {
            return;
        }
        let cands = self.streamer[core].observe(line, &cfg);
        for cand in cands {
            if self.l2[core].probe(cand) {
                continue;
            }
            // Prefetch fetches through the LLC like a demand miss, without
            // charging the core.
            let s = self.hash.slice_of(PhysAddr(cand << 6));
            self.uncore.on_lookup(s);
            if !self.llc[s].probe(cand) {
                self.uncore.on_miss(s);
                if self.cfg.llc_mode == LlcMode::Inclusive {
                    self.llc_insert(core, cand, false);
                }
            } else {
                // Refresh recency in the slice.
                self.llc[s].lookup(cand);
            }
            self.fill_l2(core, cand, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::prefetch::PrefetchConfig;

    fn haswell() -> Machine {
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 * 1024 * 1024))
    }

    fn skylake() -> Machine {
        Machine::new(MachineConfig::skylake_gold_6134().with_dram_capacity(64 * 1024 * 1024))
    }

    #[test]
    fn read_latencies_follow_the_hierarchy() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let pa = r.pa(0);
        let dram = m.touch_read(0, pa);
        assert_eq!(dram, 192, "cold read pays DRAM latency");
        let l1 = m.touch_read(0, pa);
        assert_eq!(l1, 4, "hot read hits L1");
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = haswell();
        // 9 lines in the same L1 set (stride = 64 sets * 64 B = 4 KB) so one
        // gets evicted from the 8-way L1 but stays in the 512-set L2.
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        let lines: Vec<PhysAddr> = (0..9).map(|i| r.pa(i * 4096)).collect();
        for &pa in &lines {
            m.touch_read(0, pa);
        }
        // The first line left L1 (LRU) but is in L2.
        let c = m.touch_read(0, lines[0]);
        assert_eq!(c, 11, "L2 hit");
    }

    #[test]
    fn llc_hit_latency_depends_on_slice_distance() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
        // Find one line in the closest slice and one in the farthest.
        let near_slice = m.closest_slice(0);
        let far_slice = *m.slices_by_distance(0).last().unwrap();
        let mut near = None;
        let mut far = None;
        for i in 0..100_000 {
            let pa = r.pa(i * 64);
            let s = m.slice_of(pa);
            if s == near_slice && near.is_none() {
                near = Some(pa);
            }
            if s == far_slice && far.is_none() {
                far = Some(pa);
            }
            if near.is_some() && far.is_some() {
                break;
            }
        }
        let (near, far) = (near.unwrap(), far.unwrap());
        // Bring both into LLC only: read once (fills L1/L2/LLC), then evict
        // from the private caches by flushing... simpler: read once, then
        // flush L1/L2 via conflict is fiddly — instead use dma_place which
        // fills the LLC without touching the private caches.
        m.dma_place(near, 64);
        m.dma_place(far, 64);
        let c_near = m.touch_read(0, near);
        let c_far = m.touch_read(0, far);
        assert_eq!(c_near, 34);
        assert_eq!(c_far, 54);
    }

    #[test]
    fn clflush_pushes_line_out_everywhere() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let pa = r.pa(0);
        m.touch_read(0, pa);
        assert_eq!(m.touch_read(0, pa), 4);
        m.clflush(0, pa);
        assert_eq!(m.touch_read(0, pa), 192, "flushed line misses everywhere");
    }

    #[test]
    fn stores_are_flat_in_small_bursts() {
        // Fig. 5b: per-store visible cost does not depend on the slice.
        let mut m = haswell();
        let r = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
        let mut costs = Vec::new();
        for s in 0..8 {
            // A line in slice s.
            let pa = (0..100_000)
                .map(|i| r.pa(i * 64))
                .find(|&pa| m.slice_of(pa) == s)
                .unwrap();
            m.clflush(0, pa);
            m.drain_write_backs(0);
            costs.push(m.touch_write(0, pa));
        }
        assert!(
            costs.iter().all(|&c| c == costs[0]),
            "store cost must be slice-independent in short bursts: {costs:?}"
        );
    }

    #[test]
    fn sustained_stores_saturate_the_write_back_budget() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
        // Hammer store misses (distinct lines) until the budget saturates.
        let mut last = 0;
        for i in 0..10_000 {
            last = m.touch_write(0, r.pa((i * 64) % (16 << 20)));
        }
        assert!(
            last > u64::from(m.config().store_miss_cost),
            "steady-state store cost must include the backlog stall"
        );
    }

    #[test]
    fn inclusive_llc_eviction_back_invalidates() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(48 << 20, 1 << 20).unwrap();
        // Fill one LLC set (2048-set stride = 128 KB) past 20 ways from
        // core 0; all lines also map to the same L1/L2 sets.
        let target = r.pa(0);
        let target_slice = m.slice_of(target);
        // Collect 21 lines in the same LLC set AND same slice.
        let mut same_set = Vec::new();
        let mut i = 0;
        while same_set.len() < 21 && i < 400 {
            let pa = r.pa(i * 128 * 1024);
            if m.slice_of(pa) == target_slice {
                same_set.push(pa);
            }
            i += 1;
        }
        assert!(same_set.len() >= 21, "need enough conflicting lines");
        for &pa in &same_set[..21] {
            m.touch_read(0, pa);
        }
        // The LRU line of that LLC set was evicted and must have left the
        // private caches as well (inclusivity): re-reading costs DRAM.
        let victim = same_set[0];
        let c = m.touch_read(0, victim);
        assert_eq!(c, 192, "back-invalidated line must miss everywhere");
    }

    #[test]
    fn victim_mode_fills_llc_on_l2_eviction_only() {
        let mut m = skylake();
        let r = m.mem_mut().alloc(16 << 20, 1 << 20).unwrap();
        let pa = r.pa(0);
        let s = m.slice_of(pa);
        m.touch_read(0, pa);
        assert!(
            !m.llc_probe(s, pa),
            "Skylake: a DRAM fill bypasses the LLC (non-inclusive)"
        );
        // Evict it from L2 by filling the same L2 set (1024-set stride =
        // 64 KB) past 16 ways.
        for i in 1..=17 {
            m.touch_read(0, r.pa(i * 64 * 1024));
        }
        assert!(m.llc_probe(s, pa), "L2 victim must have moved into the LLC");
        // And it is still absent from L1/L2, so the next read is an LLC hit
        // at mesh latency.
        let c = m.touch_read(0, pa);
        assert_eq!(c, u64::from(m.llc_latency(0, s)));
    }

    #[test]
    fn ddio_writes_land_in_llc() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        let pa = r.pa(0);
        let s = m.slice_of(pa);
        m.dma_write(pa, &[0xab; 64]);
        assert!(m.llc_probe(s, pa));
        // The first core read is an LLC hit, not DRAM (the point of DDIO).
        let c = m.touch_read(0, pa);
        assert_eq!(c, u64::from(m.llc_latency(0, s)));
        let mut b = [0u8; 4];
        m.mem().read(pa, &mut b);
        assert_eq!(b, [0xab; 4]);
    }

    #[test]
    fn ddio_is_limited_to_its_ways() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(64 << 20, 1 << 20).unwrap();
        // DMA many lines of one LLC set of one slice: occupancy of that set
        // must never exceed ddio_ways.
        let target = r.pa(0);
        let slice = m.slice_of(target);
        let set = target.line() & 2047;
        let mut placed = 0;
        for i in 0..400 {
            let pa = r.pa(i * 128 * 1024);
            if m.slice_of(pa) == slice && (pa.line() & 2047) == set {
                m.dma_write(pa, &[1; 64]);
                placed += 1;
            }
        }
        assert!(placed > 2, "need more DMA lines than DDIO ways");
        let resident = (0..400)
            .map(|i| r.pa(i * 128 * 1024))
            .filter(|&pa| {
                m.slice_of(pa) == slice && (pa.line() & 2047) == set && m.llc_probe(slice, pa)
            })
            .count();
        assert_eq!(resident, 2, "DDIO allocates into exactly 2 ways");
    }

    #[test]
    fn set_ddio_ways_reprograms_future_placements() {
        let mut m = haswell();
        assert_eq!(m.ddio_ways(), 2, "Haswell config default");
        m.set_ddio_ways(1);
        assert_eq!(m.ddio_ways(), 1);
        let r = m.mem_mut().alloc(64 << 20, 1 << 20).unwrap();
        let target = r.pa(0);
        let slice = m.slice_of(target);
        let set = target.line() & 2047;
        let mut placed = 0;
        for i in 0..400 {
            let pa = r.pa(i * 128 * 1024);
            if m.slice_of(pa) == slice && (pa.line() & 2047) == set {
                m.dma_write(pa, &[1; 64]);
                placed += 1;
            }
        }
        assert!(placed > 1, "need more DMA lines than DDIO ways");
        let resident = (0..400)
            .map(|i| r.pa(i * 128 * 1024))
            .filter(|&pa| {
                m.slice_of(pa) == slice && (pa.line() & 2047) == set && m.llc_probe(slice, pa)
            })
            .count();
        assert_eq!(resident, 1, "shrunk DDIO allocates into exactly 1 way");
        // Clamped to the associativity; 0 never empties the mask.
        m.set_ddio_ways(999);
        assert_eq!(m.ddio_ways(), m.config().llc_slice.ways);
        m.set_ddio_ways(0);
        assert_eq!(m.ddio_ways(), 1);
    }

    #[test]
    fn cat_mask_restricts_core_allocations() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(64 << 20, 1 << 20).unwrap();
        m.set_cat_mask(0, 0b11); // Core 0 may only use ways 0-1.
        let target = r.pa(0);
        let slice = m.slice_of(target);
        let set = target.line() & 2047;
        let mut placed = Vec::new();
        for i in 0..400 {
            let pa = r.pa(i * 128 * 1024);
            if m.slice_of(pa) == slice && (pa.line() & 2047) == set {
                m.touch_read(0, pa);
                placed.push(pa);
            }
        }
        assert!(placed.len() > 4);
        let resident = placed.iter().filter(|&&pa| m.llc_probe(slice, pa)).count();
        assert_eq!(resident, 2, "CAT limits core 0 to 2 ways in that set");
    }

    #[test]
    fn uncore_counts_lookups_per_slice() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        let pa = r.pa(0);
        let s = m.slice_of(pa);
        m.uncore_mut().reset();
        // Polling loop: flush + read => every read is an LLC lookup.
        for _ in 0..100 {
            m.clflush(0, pa);
            m.touch_read(0, pa);
        }
        assert_eq!(m.uncore().busiest_slice(), s);
        assert!(m.uncore().read(s) >= 100);
    }

    #[test]
    fn prefetcher_pulls_adjacent_line() {
        let cfg = MachineConfig::haswell_e5_2667_v3()
            .with_dram_capacity(1 << 20)
            .with_prefetch(PrefetchConfig {
                adjacent_line: true,
                streamer: false,
                stream_depth: 0,
            });
        let mut m = Machine::new(cfg);
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        m.touch_read(0, r.pa(0));
        // The buddy line was prefetched into L2: reading it now is an L2
        // hit, not a DRAM access.
        let c = m.touch_read(0, r.pa(64));
        assert_eq!(c, 11);
    }

    #[test]
    fn clock_advances_with_work() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        assert_eq!(m.now(0), 0);
        let c = m.touch_read(0, r.pa(0));
        assert_eq!(m.now(0), c);
        m.advance(0, 100);
        assert_eq!(m.now(0), c + 100);
        m.reset_clocks();
        assert_eq!(m.now(0), 0);
    }

    #[test]
    fn data_roundtrip_is_timed() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let w = m.write_bytes(0, r.pa(10), &[9, 8, 7]);
        assert!(w > 0);
        let mut buf = [0u8; 3];
        let c = m.read_bytes(0, r.pa(10), &mut buf);
        assert_eq!(buf, [9, 8, 7]);
        assert!(c > 0);
        let (v, _) = m.read_u64(0, r.pa(64));
        assert_eq!(v, 0);
        m.write_u64(0, r.pa(64), 0x1234);
        assert_eq!(m.read_u64(0, r.pa(64)).0, 0x1234);
    }

    #[test]
    fn cross_line_read_touches_both_lines() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let mut buf = [0u8; 16];
        // Spans the line boundary at offset 64.
        let c = m.read_bytes(0, r.pa(56), &mut buf);
        assert_eq!(c, 192 * 2, "two cold lines, two DRAM accesses");
    }

    #[test]
    #[should_panic(expected = "CAT mask selects no LLC way")]
    fn cat_mask_must_overlap_ways() {
        let mut m = haswell();
        m.set_cat_mask(0, 1 << 63);
    }

    #[test]
    fn drain_write_backs_charges_the_backlog() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(16 << 20, 1 << 20).unwrap();
        // Build a backlog below the stall threshold.
        for i in 0..4 {
            m.touch_write(0, r.pa(i * 64));
        }
        let before = m.now(0);
        m.drain_write_backs(0);
        let drained = m.now(0) - before;
        assert!(drained > 0, "pending RFO fills must be waited out");
        // Draining twice is idempotent.
        let before = m.now(0);
        m.drain_write_backs(0);
        assert_eq!(m.now(0), before);
    }

    #[test]
    fn non_memory_work_drains_the_backlog() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(16 << 20, 1 << 20).unwrap();
        m.touch_write(0, r.pa(0)); // Backlog: one DRAM RFO (192 cycles).
                                   // Enough ALU work for the fill to retire in the background.
        m.advance(0, 500);
        let before = m.now(0);
        m.drain_write_backs(0);
        assert_eq!(m.now(0), before, "backlog already drained by advance");
    }

    #[test]
    fn clear_cat_mask_restores_full_associativity() {
        let mut m = haswell();
        let r = m.mem_mut().alloc(64 << 20, 1 << 20).unwrap();
        m.set_cat_mask(0, 0b1);
        m.clear_cat_mask(0);
        // With the mask cleared, a set accepts the full 20 ways again.
        let target = r.pa(0);
        let slice = m.slice_of(target);
        let set = target.line() & 2047;
        let mut placed = 0;
        for i in 0..400 {
            let pa = r.pa(i * 128 * 1024);
            if m.slice_of(pa) == slice && (pa.line() & 2047) == set {
                m.touch_read(0, pa);
                placed += 1;
                if placed == 20 {
                    break;
                }
            }
        }
        let resident = (0..400)
            .map(|i| r.pa(i * 128 * 1024))
            .filter(|&pa| {
                m.slice_of(pa) == slice && (pa.line() & 2047) == set && m.llc_probe(slice, pa)
            })
            .count();
        assert_eq!(resident, placed.min(20));
    }

    #[test]
    fn victim_mode_dirty_llc_eviction_is_safe() {
        // Fill a Skylake LLC set past its 11 ways with dirty lines and
        // verify state stays consistent (dirty victims drain to DRAM).
        let mut m = skylake();
        let r = m.mem_mut().alloc(64 << 20, 1 << 20).unwrap();
        for i in 0..60 {
            let pa = r.pa(i * 64 * 1024);
            m.touch_write(0, pa);
        }
        // Force everything through L2 into the LLC.
        for i in 60..120 {
            m.touch_read(0, r.pa(i * 64 * 1024));
        }
        assert_eq!(
            m.check_inclusion(),
            None,
            "victim mode has no invariant to break"
        );
        // All data still readable.
        let (v, _) = m.read_u64(0, r.pa(0));
        assert_eq!(v, 0);
    }
}
