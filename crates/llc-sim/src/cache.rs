//! A single set-associative, write-back cache array.
//!
//! Both the private L1/L2 caches and every LLC slice are instances of
//! [`SetAssocCache`]; the hierarchy logic in [`crate::hierarchy`] wires
//! them together. A cache stores *line numbers* (physical address >> 6)
//! only — data bytes live in [`crate::mem::PhysMem`], which is sound for a
//! behavioural model because a hit/miss decision never depends on data.

use crate::replacement::{ReplacementKind, ReplacementState};
use trafficgen::Rng64;

/// One resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    line: u64,
    dirty: bool,
}

/// A line evicted to make room, reported to the caller for write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line number (physical address >> 6).
    pub line: u64,
    /// Whether the line held modified data that must be written downstream.
    pub dirty: bool,
}

/// Hit/miss/fill statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the line.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Lines inserted.
    pub fills: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
}

/// A set-associative cache of line numbers with write-back semantics.
#[derive(Debug)]
pub struct SetAssocCache {
    sets: Vec<Vec<Option<Entry>>>,
    repl: Vec<ReplacementState>,
    ways: usize,
    set_count: usize,
    set_mask: u64,
    rng: Rng64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache of `set_count` sets × `ways` ways.
    ///
    /// `set_count` must be a power of two (the set index is a bit-field of
    /// the line number, as in Table 1 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `set_count` is not a power of two or either dimension is 0.
    pub fn new(set_count: usize, ways: usize, kind: ReplacementKind, seed: u64) -> Self {
        assert!(set_count.is_power_of_two(), "set count must be 2^k");
        assert!(ways > 0, "need at least one way");
        Self {
            sets: vec![vec![None; ways]; set_count],
            repl: (0..set_count)
                .map(|_| ReplacementState::new(kind, ways))
                .collect(),
            ways,
            set_count,
            set_mask: (set_count - 1) as u64,
            rng: ReplacementState::make_rng(seed),
            stats: CacheStats::default(),
        }
    }

    /// Number of ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.set_count
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.set_count * self.ways * crate::addr::CACHE_LINE
    }

    /// The set index a line maps to.
    pub fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the counters.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Looks up `line`; on a hit updates recency and returns whether the
    /// line was dirty.
    pub fn lookup(&mut self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        for (w, slot) in self.sets[set].iter().enumerate() {
            if let Some(e) = slot {
                if e.line == line {
                    self.repl[set].touch(w);
                    self.stats.hits += 1;
                    return Some(e.dirty);
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// True when `line` is resident; does **not** touch recency or stats
    /// (an observation, not a simulated access).
    pub fn probe(&self, line: u64) -> bool {
        let set = self.set_of(line);
        self.sets[set].iter().flatten().any(|e| e.line == line)
    }

    /// Marks a resident line dirty; returns false when not resident.
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        for slot in self.sets[set].iter_mut().flatten() {
            if slot.line == line {
                slot.dirty = true;
                return true;
            }
        }
        false
    }

    /// Inserts `line`, evicting if the set is full. Equivalent to
    /// [`SetAssocCache::insert_masked`] with an all-ways mask.
    pub fn insert(&mut self, line: u64, dirty: bool) -> Option<Evicted> {
        self.insert_masked(line, dirty, u64::MAX)
    }

    /// Inserts `line` with the victim restricted to the ways in `mask`.
    ///
    /// Way masking models both Intel CAT (classes of service get disjoint
    /// way masks, §7) and DDIO's limited I/O ways (§8). Rules, matching the
    /// hardware:
    ///
    /// * If the line is already resident (in **any** way), it is updated in
    ///   place — masks restrict allocation, not hits.
    /// * Otherwise a free way *within the mask* is used, else the
    ///   replacement policy picks a victim within the mask.
    ///
    /// Returns the evicted line, if any.
    ///
    /// # Panics
    ///
    /// Panics when `mask` selects no existing way.
    pub fn insert_masked(&mut self, line: u64, dirty: bool, mask: u64) -> Option<Evicted> {
        let set = self.set_of(line);
        // Already resident: update dirtiness and recency.
        for (w, slot) in self.sets[set].iter_mut().enumerate() {
            if let Some(e) = slot {
                if e.line == line {
                    e.dirty |= dirty;
                    self.repl[set].touch(w);
                    return None;
                }
            }
        }
        self.stats.fills += 1;
        // Free way inside the mask?
        for w in 0..self.ways {
            if mask & (1u64 << w) != 0 && self.sets[set][w].is_none() {
                self.sets[set][w] = Some(Entry { line, dirty });
                self.repl[set].touch(w);
                return None;
            }
        }
        let effective = mask & ((1u64 << self.ways) - 1).max(1);
        let w = self.repl[set].victim_masked(&mut self.rng, effective);
        let old = self.sets[set][w].replace(Entry { line, dirty });
        self.repl[set].touch(w);
        self.stats.evictions += 1;
        old.map(|e| Evicted {
            line: e.line,
            dirty: e.dirty,
        })
    }

    /// Removes `line` if resident, returning whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        for slot in self.sets[set].iter_mut() {
            if let Some(e) = *slot {
                if e.line == line {
                    *slot = None;
                    return Some(e.dirty);
                }
            }
        }
        None
    }

    /// Number of currently valid lines (test/inspection helper).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|s| s.iter().flatten().count()).sum()
    }

    /// Iterates over all resident `(line, dirty)` pairs (inspection only).
    pub fn resident_lines(&self) -> impl Iterator<Item = (u64, bool)> + '_ {
        self.sets
            .iter()
            .flat_map(|s| s.iter().flatten().map(|e| (e.line, e.dirty)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: usize, ways: usize) -> SetAssocCache {
        SetAssocCache::new(sets, ways, ReplacementKind::Lru, 1)
    }

    #[test]
    fn geometry() {
        let c = cache(64, 8);
        assert_eq!(c.capacity_bytes(), 32 * 1024);
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(63), 63);
        assert_eq!(c.set_of(64), 0);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache(4, 2);
        assert!(c.lookup(10).is_none());
        assert!(c.insert(10, false).is_none());
        assert_eq!(c.lookup(10), Some(false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn fills_use_free_ways_before_evicting() {
        let mut c = cache(1, 4);
        for line in 0..4 {
            assert!(c.insert(line, false).is_none());
        }
        assert_eq!(c.occupancy(), 4);
        let ev = c.insert(4, false).expect("set full, must evict");
        assert_eq!(ev.line, 0, "LRU victim is the oldest line");
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = cache(1, 2);
        c.insert(0, true);
        c.insert(1, false);
        let ev = c.insert(2, false).unwrap();
        assert!(ev.dirty && ev.line == 0);
    }

    #[test]
    fn reinsert_merges_dirty_without_evicting() {
        let mut c = cache(1, 1);
        c.insert(5, false);
        assert!(c.insert(5, true).is_none(), "same line: update in place");
        let ev = c.insert(6, false).unwrap();
        assert!(ev.dirty, "dirtiness must have been merged");
    }

    #[test]
    fn mark_dirty_and_invalidate() {
        let mut c = cache(2, 2);
        c.insert(7, false);
        assert!(c.mark_dirty(7));
        assert!(!c.mark_dirty(9));
        assert_eq!(c.invalidate(7), Some(true));
        assert_eq!(c.invalidate(7), None);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn probe_does_not_disturb_lru_or_stats() {
        let mut c = cache(1, 2);
        c.insert(0, false);
        c.insert(1, false);
        let before = c.stats();
        // Probing line 0 must not make it recently used.
        assert!(c.probe(0));
        assert_eq!(c.stats(), before);
        let ev = c.insert(2, false).unwrap();
        assert_eq!(ev.line, 0, "probe must not have refreshed line 0");
    }

    #[test]
    fn lookup_refreshes_recency() {
        let mut c = cache(1, 2);
        c.insert(0, false);
        c.insert(1, false);
        c.lookup(0);
        let ev = c.insert(2, false).unwrap();
        assert_eq!(ev.line, 1);
    }

    #[test]
    fn masked_insert_respects_way_mask() {
        let mut c = cache(1, 4);
        for line in 0..4 {
            c.insert(line, false);
        }
        // Only ways 2 and 3 allowed: victim must be line 2 (LRU among them).
        let ev = c.insert_masked(10, false, 0b1100).unwrap();
        assert_eq!(ev.line, 2);
        assert!(c.probe(0) && c.probe(1), "masked ways untouched");
    }

    #[test]
    fn masked_insert_hits_outside_mask() {
        let mut c = cache(1, 4);
        c.insert(0, false); // Lands in way 0.
                            // Re-inserting line 0 with a mask excluding way 0 must still update
                            // in place (hit path ignores the mask, like hardware).
        assert!(c.insert_masked(0, true, 0b1000).is_none());
        let mut found_dirty = false;
        for (l, d) in c.resident_lines() {
            if l == 0 {
                found_dirty = d;
            }
        }
        assert!(found_dirty);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn set_isolation() {
        let mut c = cache(2, 1);
        c.insert(0, false); // Set 0.
        c.insert(1, false); // Set 1.
        assert_eq!(c.occupancy(), 2);
        assert!(c.insert(2, false).is_some(), "set 0 conflict evicts");
        assert!(c.probe(1), "set 1 untouched");
    }

    #[test]
    fn stats_count_fills_and_evictions() {
        let mut c = cache(1, 2);
        c.insert(0, false);
        c.insert(1, false);
        c.insert(2, false);
        let s = c.stats();
        assert_eq!(s.fills, 3);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn rejects_non_pow2_sets() {
        cache(3, 2);
    }
}
