//! Physical addresses and cache-line geometry.

use std::fmt;

/// Size of one cache line in bytes, the minimum caching unit (paper §2).
pub const CACHE_LINE: usize = 64;

/// log2 of [`CACHE_LINE`]: number of offset bits below the line number.
pub const LINE_SHIFT: u32 = 6;

/// A physical memory address.
///
/// Newtype over `u64` so that physical and virtual offsets cannot be mixed
/// up; the Complex Addressing hash and all cache indexing operate on
/// physical addresses only (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The raw 64-bit address value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The cache-line number (address divided by 64).
    pub fn line(self) -> u64 {
        self.0 >> LINE_SHIFT
    }

    /// The address of the start of the containing cache line.
    pub fn line_base(self) -> PhysAddr {
        PhysAddr(self.0 & !((CACHE_LINE as u64) - 1))
    }

    /// Byte offset within the containing cache line.
    pub fn line_offset(self) -> usize {
        (self.0 & ((CACHE_LINE as u64) - 1)) as usize
    }

    /// Address `bytes` further along.
    // Named after pointer arithmetic, not `std::ops::Add` (which would
    // allow `PhysAddr + PhysAddr`, a type error we want to keep illegal).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }

    /// True when the address is aligned to the start of a cache line.
    pub fn is_line_aligned(self) -> bool {
        self.line_offset() == 0
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA({:#x})", self.0)
    }
}

/// Splits the byte range `[addr, addr + len)` into per-cache-line pieces.
///
/// Yields `(line_base, offset_within_line, piece_len)` triples. Used by the
/// data-movement paths (DMA, typed reads/writes) that must walk the
/// hierarchy once per touched line.
pub fn split_lines(addr: PhysAddr, len: usize) -> impl Iterator<Item = (PhysAddr, usize, usize)> {
    let mut cursor = addr.raw();
    let end = addr.raw() + len as u64;
    std::iter::from_fn(move || {
        if cursor >= end {
            return None;
        }
        let base = cursor & !((CACHE_LINE as u64) - 1);
        let off = (cursor - base) as usize;
        let take = ((CACHE_LINE - off) as u64).min(end - cursor) as usize;
        cursor += take as u64;
        Some((PhysAddr(base), off, take))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_numbering() {
        assert_eq!(PhysAddr(0).line(), 0);
        assert_eq!(PhysAddr(63).line(), 0);
        assert_eq!(PhysAddr(64).line(), 1);
        assert_eq!(PhysAddr(0x1000).line(), 64);
    }

    #[test]
    fn line_base_and_offset() {
        let a = PhysAddr(0x1234);
        assert_eq!(a.line_base(), PhysAddr(0x1200));
        assert_eq!(a.line_offset(), 0x34);
        assert!(a.line_base().is_line_aligned());
        assert!(!a.is_line_aligned());
    }

    #[test]
    fn split_single_aligned_line() {
        let v: Vec<_> = split_lines(PhysAddr(0x40), 64).collect();
        assert_eq!(v, vec![(PhysAddr(0x40), 0, 64)]);
    }

    #[test]
    fn split_unaligned_spans_two_lines() {
        let v: Vec<_> = split_lines(PhysAddr(0x30), 32).collect();
        assert_eq!(v, vec![(PhysAddr(0x0), 0x30, 16), (PhysAddr(0x40), 0, 16)]);
    }

    #[test]
    fn split_large_range_covers_everything() {
        let v: Vec<_> = split_lines(PhysAddr(10), 200).collect();
        let total: usize = v.iter().map(|p| p.2).sum();
        assert_eq!(total, 200);
        // Pieces are contiguous.
        let mut expect = 10u64;
        for (base, off, len) in v {
            assert_eq!(base.raw() + off as u64, expect);
            expect += len as u64;
        }
    }

    #[test]
    fn split_empty_range() {
        assert_eq!(split_lines(PhysAddr(0), 0).count(), 0);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(PhysAddr(0xff).to_string(), "PA(0xff)");
    }
}
