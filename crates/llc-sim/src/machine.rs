//! Machine configuration and the two CPU presets the paper evaluates.

use crate::prefetch::PrefetchConfig;
use crate::replacement::ReplacementKind;

pub use crate::hierarchy::Machine;

/// Geometry of one cache level (per core for L1/L2, per slice for the LLC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in core cycles (ignored for the LLC, whose latency comes
    /// from the interconnect).
    pub latency: u32,
}

impl CacheGeometry {
    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * crate::addr::CACHE_LINE
    }
}

/// How the LLC relates to the private caches (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcMode {
    /// LLC is a superset of L1/L2; LLC evictions back-invalidate the
    /// private caches (Haswell and earlier).
    Inclusive,
    /// LLC is a victim cache for L2: lines enter the LLC when evicted from
    /// L2 and may stay resident after being re-read (Skylake-SP).
    Victim,
}

/// Which Complex Addressing function to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashConfig {
    /// The reverse-engineered XOR function for `2^n` slices (paper Fig. 4).
    XorPow2 {
        /// Number of output bits, 1..=3.
        bits: u32,
    },
    /// Deterministic folded hash for non-power-of-two slice counts
    /// (Skylake substitute; DESIGN.md §2).
    Folded {
        /// Slice count.
        slices: usize,
    },
}

/// Which interconnect floorplan to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterconnectConfig {
    /// Dual bi-directional ring with co-located core/slice pairs.
    Ring {
        /// Latency to the co-located slice.
        base: u32,
        /// Extra cycles per same-ring hop.
        hop: u32,
        /// Ring-crossing penalty.
        cross: u32,
    },
    /// The calibrated Xeon Gold 6134 mesh (8 cores, 18 slices).
    MeshSkylake6134,
}

/// Full description of a simulated socket.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Human-readable model name.
    pub name: &'static str,
    /// Number of cores (one L1+L2 pair each).
    pub cores: usize,
    /// Number of LLC slices.
    pub slices: usize,
    /// Core frequency in GHz (converts cycles to wall time).
    pub freq_ghz: f64,
    /// L1 data cache geometry.
    pub l1: CacheGeometry,
    /// L2 cache geometry.
    pub l2: CacheGeometry,
    /// Geometry of **one** LLC slice.
    pub llc_slice: CacheGeometry,
    /// Inclusive (Haswell) or victim (Skylake) LLC.
    pub llc_mode: LlcMode,
    /// DRAM access latency in cycles (~60 ns in the paper).
    pub dram_latency: u32,
    /// Number of LLC ways DDIO may allocate into (2 by default => 10 % of
    /// a 20-way Haswell LLC, the limit the paper discusses in §8).
    pub ddio_ways: usize,
    /// Replacement policy used at every level.
    pub replacement: ReplacementKind,
    /// L2 hardware prefetcher setup.
    pub prefetch: PrefetchConfig,
    /// Complex Addressing function.
    pub hash: HashConfig,
    /// Interconnect floorplan.
    pub interconnect: InterconnectConfig,
    /// Simulated DRAM capacity in bytes.
    pub dram_capacity: usize,
    /// Visible cost of a store that hits L1.
    pub store_hit_cost: u32,
    /// Visible cost of a store that misses L1 (the fill happens in the
    /// background via the write/fill buffers; see `hierarchy`).
    pub store_miss_cost: u32,
    /// Cycles of pending background write-back the per-core buffers can
    /// absorb before stores start stalling the core.
    pub wb_buffer_cap: u64,
    /// Core cycles consumed by a `clflush`.
    pub clflush_cost: u32,
    /// RNG seed for replacement randomness (deterministic runs).
    pub seed: u64,
}

impl MachineConfig {
    /// The paper's primary testbed: Intel Xeon E5-2667 v3 (Haswell),
    /// 8 cores @ 3.2 GHz, 8 × 2.5 MB inclusive LLC slices on a ring
    /// (paper Table 1 and §2.2).
    pub fn haswell_e5_2667_v3() -> Self {
        Self {
            name: "Intel Xeon E5-2667 v3 (Haswell)",
            cores: 8,
            slices: 8,
            freq_ghz: 3.2,
            l1: CacheGeometry {
                sets: 64,
                ways: 8,
                latency: 4,
            },
            l2: CacheGeometry {
                sets: 512,
                ways: 8,
                latency: 11,
            },
            llc_slice: CacheGeometry {
                sets: 2048,
                ways: 20,
                latency: 0,
            },
            llc_mode: LlcMode::Inclusive,
            // ~60 ns at 3.2 GHz (paper §1).
            dram_latency: 192,
            ddio_ways: 2,
            replacement: ReplacementKind::Lru,
            prefetch: PrefetchConfig::disabled(),
            hash: HashConfig::XorPow2 { bits: 3 },
            interconnect: InterconnectConfig::Ring {
                base: 34,
                hop: 2,
                cross: 14,
            },
            dram_capacity: 4 * 1024 * 1024 * 1024,
            store_hit_cost: 4,
            store_miss_cost: 8,
            wb_buffer_cap: 1200,
            clflush_cost: 40,
            seed: 0x5eed_cafe,
        }
    }

    /// The paper's second testbed: Intel Xeon Gold 6134 (Skylake-SP),
    /// 8 cores, 18 × 1.375 MB non-inclusive LLC slices on a mesh, 1 MB L2
    /// (paper §6).
    pub fn skylake_gold_6134() -> Self {
        Self {
            name: "Intel Xeon Gold 6134 (Skylake-SP)",
            cores: 8,
            slices: 18,
            freq_ghz: 3.2,
            l1: CacheGeometry {
                sets: 64,
                ways: 8,
                latency: 4,
            },
            l2: CacheGeometry {
                sets: 1024,
                ways: 16,
                latency: 14,
            },
            llc_slice: CacheGeometry {
                sets: 2048,
                ways: 11,
                latency: 0,
            },
            llc_mode: LlcMode::Victim,
            dram_latency: 192,
            ddio_ways: 2,
            replacement: ReplacementKind::Lru,
            prefetch: PrefetchConfig::disabled(),
            hash: HashConfig::Folded { slices: 18 },
            interconnect: InterconnectConfig::MeshSkylake6134,
            dram_capacity: 4 * 1024 * 1024 * 1024,
            store_hit_cost: 4,
            store_miss_cost: 8,
            wb_buffer_cap: 1200,
            clflush_cost: 40,
            seed: 0x5eed_cafe,
        }
    }

    /// Convenience: same config with a different DRAM capacity (large
    /// experiments such as the KVS reserve gigabytes).
    pub fn with_dram_capacity(mut self, bytes: usize) -> Self {
        self.dram_capacity = bytes;
        self
    }

    /// Convenience: same config with a different prefetcher setup.
    pub fn with_prefetch(mut self, p: PrefetchConfig) -> Self {
        self.prefetch = p;
        self
    }

    /// Convenience: same config with a different replacement policy.
    pub fn with_replacement(mut self, r: ReplacementKind) -> Self {
        self.replacement = r;
        self
    }

    /// Convenience: same config with a different DDIO way budget.
    pub fn with_ddio_ways(mut self, ways: usize) -> Self {
        self.ddio_ways = ways;
        self
    }

    /// Convenience: same config with a different RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total LLC capacity across slices, in bytes.
    pub fn llc_capacity_bytes(&self) -> usize {
        self.llc_slice.capacity_bytes() * self.slices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_matches_paper_table1() {
        let c = MachineConfig::haswell_e5_2667_v3();
        // Table 1: LLC slice 2.5 MB, 20 ways, 2048 sets.
        assert_eq!(c.llc_slice.capacity_bytes(), 2_621_440);
        assert_eq!(c.llc_slice.ways, 20);
        assert_eq!(c.llc_slice.sets, 2048);
        // Table 1: L2 256 kB, 8 ways, 512 sets.
        assert_eq!(c.l2.capacity_bytes(), 256 * 1024);
        // Table 1: L1 32 kB, 8 ways, 64 sets.
        assert_eq!(c.l1.capacity_bytes(), 32 * 1024);
        assert_eq!(c.llc_mode, LlcMode::Inclusive);
        assert_eq!(c.cores, 8);
        assert_eq!(c.slices, 8);
    }

    #[test]
    fn skylake_matches_paper_section6() {
        let c = MachineConfig::skylake_gold_6134();
        // §6: L2 grown to 1 MB, slices shrunk to 1.375 MB, 18 slices.
        assert_eq!(c.l2.capacity_bytes(), 1024 * 1024);
        assert_eq!(c.llc_slice.capacity_bytes(), 1_441_792);
        assert_eq!(c.slices, 18);
        assert_eq!(c.cores, 8);
        assert_eq!(c.llc_mode, LlcMode::Victim);
    }

    #[test]
    fn ddio_budget_is_ten_percent_of_haswell_llc() {
        // Paper §5.1.2 footnote: 2 of 20 ways = 10 %.
        let c = MachineConfig::haswell_e5_2667_v3();
        assert_eq!(c.ddio_ways * 10, c.llc_slice.ways);
    }

    #[test]
    fn dram_latency_is_60ns() {
        let c = MachineConfig::haswell_e5_2667_v3();
        let ns = c.dram_latency as f64 / c.freq_ghz;
        assert!((ns - 60.0).abs() < 1.0);
    }

    #[test]
    fn builders_apply() {
        let c = MachineConfig::haswell_e5_2667_v3()
            .with_dram_capacity(1 << 20)
            .with_ddio_ways(4)
            .with_seed(9);
        assert_eq!(c.dram_capacity, 1 << 20);
        assert_eq!(c.ddio_ways, 4);
        assert_eq!(c.seed, 9);
    }
}
