//! Hardware prefetcher models.
//!
//! Paper §8 ("The impact of H/W prefetching") points out that Intel's L2
//! prefetchers assume contiguous layouts: the *adjacent cache line*
//! prefetcher pairs each line with its buddy, and the *streamer* chases
//! ascending/descending line runs within a 4 KB page. Slice-aware
//! allocation is deliberately non-contiguous, so these prefetchers stop
//! helping — an effect DESIGN.md lists as an ablation. The models here are
//! intentionally simple: they emit candidate line numbers for the machine
//! to fill into L2 in the background (no cycle cost to the core, matching
//! the fire-and-forget nature of hardware prefetch).

/// Configuration of the per-core L2 prefetchers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Adjacent-cache-line prefetcher: fetch the 128 B buddy of each miss.
    pub adjacent_line: bool,
    /// L2 streamer: on a detected +1/-1 line stride, fetch `stream_depth`
    /// lines ahead (within the same 4 KB page).
    pub streamer: bool,
    /// How many lines ahead the streamer runs.
    pub stream_depth: u8,
}

impl PrefetchConfig {
    /// Both prefetchers off (the microbenchmark-friendly default; the
    /// paper's random-access experiments are insensitive to prefetch).
    pub fn disabled() -> Self {
        Self {
            adjacent_line: false,
            streamer: false,
            stream_depth: 0,
        }
    }

    /// Both prefetchers on, streamer depth 2 — the BIOS-default-like
    /// setting used by the prefetch ablation bench.
    pub fn bios_default() -> Self {
        Self {
            adjacent_line: true,
            streamer: true,
            stream_depth: 2,
        }
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Per-core streamer state: last miss line and a stride confidence counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamerState {
    last_line: u64,
    dir: i8,
    confidence: u8,
}

/// Lines within one 4 KB page (64 lines of 64 B).
const LINES_PER_PAGE: u64 = 64;

impl StreamerState {
    /// Observes a demand miss on `line`; returns prefetch candidates.
    pub fn observe(&mut self, line: u64, cfg: &PrefetchConfig) -> Vec<u64> {
        let mut out = Vec::new();
        if cfg.adjacent_line {
            // The buddy line in the same aligned 128 B pair.
            out.push(line ^ 1);
        }
        if cfg.streamer {
            let delta = line as i64 - self.last_line as i64;
            if delta == 1 || delta == -1 {
                if self.dir == delta as i8 {
                    self.confidence = self.confidence.saturating_add(1);
                } else {
                    self.dir = delta as i8;
                    self.confidence = 1;
                }
                if self.confidence >= 2 {
                    for k in 1..=cfg.stream_depth as i64 {
                        let cand = line as i64 + delta * k;
                        if cand >= 0 && same_page(line, cand as u64) {
                            out.push(cand as u64);
                        }
                    }
                }
            } else {
                self.dir = 0;
                self.confidence = 0;
            }
            self.last_line = line;
        }
        out
    }
}

fn same_page(a: u64, b: u64) -> bool {
    a / LINES_PER_PAGE == b / LINES_PER_PAGE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emits_nothing() {
        let cfg = PrefetchConfig::disabled();
        let mut st = StreamerState::default();
        assert!(st.observe(100, &cfg).is_empty());
    }

    #[test]
    fn adjacent_line_pairs() {
        let cfg = PrefetchConfig {
            adjacent_line: true,
            streamer: false,
            stream_depth: 0,
        };
        let mut st = StreamerState::default();
        assert_eq!(st.observe(10, &cfg), vec![11]);
        assert_eq!(st.observe(11, &cfg), vec![10]);
    }

    #[test]
    fn streamer_needs_confidence() {
        let cfg = PrefetchConfig {
            adjacent_line: false,
            streamer: true,
            stream_depth: 2,
        };
        let mut st = StreamerState::default();
        assert!(st.observe(100, &cfg).is_empty(), "first touch: no stride");
        assert!(st.observe(101, &cfg).is_empty(), "stride seen once");
        assert_eq!(st.observe(102, &cfg), vec![103, 104], "stride confirmed");
    }

    #[test]
    fn streamer_stops_at_page_boundary() {
        let cfg = PrefetchConfig {
            adjacent_line: false,
            streamer: true,
            stream_depth: 4,
        };
        let mut st = StreamerState::default();
        st.observe(60, &cfg);
        st.observe(61, &cfg);
        let out = st.observe(62, &cfg);
        assert_eq!(out, vec![63], "lines 64+ are in the next 4 KB page");
    }

    #[test]
    fn streamer_handles_descending() {
        let cfg = PrefetchConfig {
            adjacent_line: false,
            streamer: true,
            stream_depth: 1,
        };
        let mut st = StreamerState::default();
        st.observe(70, &cfg);
        st.observe(69, &cfg);
        assert_eq!(st.observe(68, &cfg), vec![67]);
    }

    #[test]
    fn random_pattern_never_streams() {
        let cfg = PrefetchConfig::bios_default();
        let mut st = StreamerState::default();
        let mut streamed = 0;
        for line in [5u64, 900, 23, 4000, 17, 250] {
            let out = st.observe(line, &cfg);
            // Adjacent-line always fires; anything beyond one candidate
            // would be the streamer.
            streamed += out.len().saturating_sub(1);
        }
        assert_eq!(streamed, 0);
    }
}
