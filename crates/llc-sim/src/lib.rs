//! A behavioural simulator of an Intel-style CPU cache hierarchy with a
//! sliced, NUCA last-level cache.
//!
//! This crate is the hardware substrate for reproducing *"Make the Most out
//! of Last Level Cache in Intel Processors"* (EuroSys '19). The paper's
//! techniques depend on micro-architectural properties that are modelled
//! here explicitly:
//!
//! * **Complex Addressing** ([`hash`]): the undocumented physical-address →
//!   LLC-slice hash, reproduced from the reverse-engineered XOR functions
//!   published by Maurice et al. (RAID '15) and verified by the paper.
//! * **NUCA interconnect** ([`topology`]): a bi-directional ring bus
//!   (Haswell) and a mesh (Skylake) floorplan, so a core's access latency
//!   depends on which slice holds the line (paper Figs. 5 and 16).
//! * **Cache hierarchy** ([`hierarchy`], [`cache`]): private write-back
//!   L1/L2 per core and a shared sliced LLC, inclusive on Haswell and a
//!   non-inclusive victim cache on Skylake (paper §6).
//! * **Uncore monitoring** ([`uncore`]): per-slice CBo/CHA event counters,
//!   the signal used for polling-based slice-mapping discovery (paper §2.1).
//! * **DDIO** ([`hierarchy`]): NIC DMA that allocates into a restricted
//!   way-subset of the LLC (paper §1, §8).
//! * **Physical memory** ([`mem`]): hugepage reservations with a
//!   deterministic physical layout and pagemap-style VA→PA queries.
//!
//! The model is *behavioural*, not cycle-accurate: every memory operation
//! returns the number of core cycles it cost, calibrated against the
//! latencies the paper reports (L1 4, L2 11, LLC ≈ 34 + ring hops, DRAM
//! ≈ 60 ns). Relative effects — which slice is closer, what hits where,
//! what gets evicted — are modelled faithfully; absolute throughput of the
//! host running this simulator is meaningless.
//!
//! # Examples
//!
//! ```
//! use llc_sim::machine::{Machine, MachineConfig};
//!
//! let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3());
//! let page = m.mem_mut().alloc_hugepage_1g().unwrap();
//! let pa = page.pa(0);
//! let slice = m.slice_of(pa);
//! // A cold read misses everywhere and pays the DRAM latency.
//! let cold = m.touch_read(0, pa);
//! // A hot read hits in L1.
//! let hot = m.touch_read(0, pa);
//! assert!(cold > hot);
//! assert!(slice < 8);
//! ```

pub mod addr;
pub mod cache;
pub mod epoch;
pub mod hash;
pub mod hierarchy;
pub mod machine;
pub mod mem;
pub mod prefetch;
pub mod replacement;
pub mod topology;
pub mod tsc;
pub mod uncore;

pub use addr::{PhysAddr, CACHE_LINE};
pub use epoch::{CoreMem, EpochShard, LlcOp};
pub use hierarchy::{AccessKind, Cycles};
pub use machine::{Machine, MachineConfig};
