//! Uncore performance monitoring: per-slice CBo/CHA event counters.
//!
//! Each LLC slice has a monitoring block — a *C-Box* (CBo) on Haswell, a
//! *Caching and Home Agent* (CHA) on Skylake — that can be programmed to
//! count events such as "all LLC lookups" (paper §2). The paper's
//! polling technique (§2.1) programs every CBo to count lookups, hammers
//! one physical address, and reads back which slice's counter moved.
//!
//! [`Uncore`] reproduces that interface: select an event per counter, read
//! and reset counters, with the [`crate::machine::Machine`] feeding events
//! as the simulated hierarchy runs.

/// Countable uncore events, a small subset of Intel's event list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UncoreEvent {
    /// Every lookup that reached this slice (`LLC_LOOKUP.ANY`).
    LlcLookupAny,
    /// Lookups that missed in this slice (`LLC_LOOKUP.MISS`-style).
    LlcMiss,
    /// Lines written back / filled into this slice.
    LlcFill,
    /// Lines evicted from this slice (`LLC_VICTIMS.ANY`-style).
    LlcVictims,
}

/// Raw per-slice tallies; the machine bumps these unconditionally and the
/// programmed [`UncoreEvent`] selects which one a counter read returns.
#[derive(Debug, Clone, Copy, Default)]
struct SliceTally {
    lookups: u64,
    misses: u64,
    fills: u64,
    victims: u64,
}

/// A point-in-time capture of the selected event's per-slice readings,
/// the base of a windowed-delta read ([`Uncore::read_window`]). Lets a
/// controller poll counter *growth* over its own control epochs without
/// resetting counters other observers may be watching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UncoreSnapshot {
    event: UncoreEvent,
    counts: Vec<u64>,
}

impl UncoreSnapshot {
    /// The event that was programmed when this snapshot was taken.
    pub fn event(&self) -> UncoreEvent {
        self.event
    }
}

/// The uncore monitoring unit: one programmable counter per slice.
#[derive(Debug)]
pub struct Uncore {
    tallies: Vec<SliceTally>,
    baseline: Vec<SliceTally>,
    event: UncoreEvent,
}

impl Uncore {
    /// Monitoring for `slices` slices, programmed to count LLC lookups
    /// (the event the paper's polling uses).
    pub fn new(slices: usize) -> Self {
        Self {
            tallies: vec![SliceTally::default(); slices],
            baseline: vec![SliceTally::default(); slices],
            event: UncoreEvent::LlcLookupAny,
        }
    }

    /// Number of monitored slices.
    pub fn slices(&self) -> usize {
        self.tallies.len()
    }

    /// Programs every per-slice counter to `event` (like writing the CBo
    /// event-select MSR) and resets the counters.
    pub fn select(&mut self, event: UncoreEvent) {
        self.event = event;
        self.reset();
    }

    /// The currently selected event.
    pub fn event(&self) -> UncoreEvent {
        self.event
    }

    /// Resets all counters to zero (snapshot of the running tallies).
    pub fn reset(&mut self) {
        self.baseline.copy_from_slice(&self.tallies);
    }

    /// Reads slice `s`'s counter for the selected event.
    pub fn read(&self, s: usize) -> u64 {
        let t = &self.tallies[s];
        let b = &self.baseline[s];
        match self.event {
            UncoreEvent::LlcLookupAny => t.lookups - b.lookups,
            UncoreEvent::LlcMiss => t.misses - b.misses,
            UncoreEvent::LlcFill => t.fills - b.fills,
            UncoreEvent::LlcVictims => t.victims - b.victims,
        }
    }

    /// Reads all counters at once.
    pub fn read_all(&self) -> Vec<u64> {
        (0..self.tallies.len()).map(|s| self.read(s)).collect()
    }

    /// The slice whose counter grew the most — the polling decision rule
    /// of §2.1 ("a C-Box counter showing a larger number of lookups will
    /// identify that the slice is mapped to that particular address").
    ///
    /// Tie-break: the **lowest-numbered** slice wins. Polling hammers one
    /// address hard enough that the target slice strictly dominates, so
    /// ties only arise in degenerate inputs (e.g. a freshly reset
    /// uncore) — but a controller branching on this value still needs
    /// the answer to be a pure function of the counters, not of
    /// iterator-combinator ordering quirks.
    pub fn busiest_slice(&self) -> usize {
        let mut best = 0;
        for s in 1..self.tallies.len() {
            if self.read(s) > self.read(best) {
                best = s;
            }
        }
        best
    }

    /// Captures the selected event's current per-slice readings for later
    /// windowed-delta reads via [`Uncore::read_window`]. Unlike
    /// [`Uncore::reset`], taking a snapshot does not disturb the shared
    /// counters, so several observers (a figure's reporting and an
    /// isolation controller, say) can each keep their own window without
    /// clobbering one another.
    pub fn snapshot(&self) -> UncoreSnapshot {
        UncoreSnapshot {
            event: self.event,
            counts: self.read_all(),
        }
    }

    /// Slice `s`'s counter growth since `base` was taken: the windowed
    /// delta `read(s) - base[s]`.
    ///
    /// The window is only meaningful while the programmed event is
    /// unchanged and no [`Uncore::reset`]/[`Uncore::select`] intervened
    /// since the snapshot; a reset can make the live reading smaller
    /// than the snapshot, in which case the delta saturates to 0 rather
    /// than wrapping.
    ///
    /// # Panics
    ///
    /// Panics when `base` was taken under a different programmed event,
    /// or from an uncore with a different slice count.
    pub fn read_window(&self, base: &UncoreSnapshot, s: usize) -> u64 {
        assert_eq!(
            base.event, self.event,
            "snapshot was taken under a different uncore event"
        );
        assert_eq!(
            base.counts.len(),
            self.tallies.len(),
            "snapshot slice count mismatch"
        );
        self.read(s).saturating_sub(base.counts[s])
    }

    /// All slices' windowed deltas since `base` (see
    /// [`Uncore::read_window`]).
    pub fn read_window_all(&self, base: &UncoreSnapshot) -> Vec<u64> {
        (0..self.tallies.len())
            .map(|s| self.read_window(base, s))
            .collect()
    }

    // Event feeds, called by the machine.

    pub(crate) fn on_lookup(&mut self, slice: usize) {
        self.tallies[slice].lookups += 1;
    }

    pub(crate) fn on_miss(&mut self, slice: usize) {
        self.tallies[slice].misses += 1;
    }

    pub(crate) fn on_fill(&mut self, slice: usize) {
        self.tallies[slice].fills += 1;
    }

    pub(crate) fn on_victim(&mut self, slice: usize) {
        self.tallies[slice].victims += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_selected_event_only() {
        let mut u = Uncore::new(4);
        u.on_lookup(2);
        u.on_lookup(2);
        u.on_miss(2);
        assert_eq!(u.read(2), 2, "lookup event selected by default");
        u.select(UncoreEvent::LlcMiss);
        assert_eq!(u.read(2), 0, "select resets");
        u.on_miss(2);
        assert_eq!(u.read(2), 1);
    }

    #[test]
    fn reset_zeroes_without_losing_feed() {
        let mut u = Uncore::new(2);
        u.on_lookup(0);
        u.reset();
        assert_eq!(u.read(0), 0);
        u.on_lookup(0);
        assert_eq!(u.read(0), 1);
    }

    #[test]
    fn busiest_slice_wins_polling() {
        let mut u = Uncore::new(8);
        for s in 0..8 {
            u.on_lookup(s);
        }
        for _ in 0..100 {
            u.on_lookup(5);
        }
        assert_eq!(u.busiest_slice(), 5);
    }

    #[test]
    fn read_all_matches_individual_reads() {
        let mut u = Uncore::new(3);
        u.on_fill(1);
        u.select(UncoreEvent::LlcFill);
        u.on_fill(1);
        u.on_fill(2);
        assert_eq!(u.read_all(), vec![0, 1, 1]);
    }

    #[test]
    fn busiest_slice_tie_breaks_to_lowest_index() {
        let u = Uncore::new(4);
        assert_eq!(u.busiest_slice(), 0, "all-zero counters: slice 0 wins");
        let mut u = Uncore::new(4);
        u.on_lookup(1);
        u.on_lookup(3);
        assert_eq!(u.busiest_slice(), 1, "tied maxima: lowest index wins");
    }

    #[test]
    fn windowed_deltas_do_not_disturb_counters() {
        let mut u = Uncore::new(3);
        u.on_lookup(0);
        u.on_lookup(2);
        let base = u.snapshot();
        u.on_lookup(2);
        u.on_lookup(2);
        // The window sees only post-snapshot growth...
        assert_eq!(u.read_window(&base, 0), 0);
        assert_eq!(u.read_window(&base, 2), 2);
        assert_eq!(u.read_window_all(&base), vec![0, 0, 2]);
        // ...while the live counters still hold the full totals.
        assert_eq!(u.read_all(), vec![1, 0, 3]);
    }

    #[test]
    fn window_saturates_after_reset() {
        let mut u = Uncore::new(1);
        u.on_lookup(0);
        u.on_lookup(0);
        let base = u.snapshot();
        u.reset();
        u.on_lookup(0);
        // Live reading (1) is below the snapshot (2): saturate, don't wrap.
        assert_eq!(u.read_window(&base, 0), 0);
    }

    #[test]
    #[should_panic(expected = "different uncore event")]
    fn window_rejects_cross_event_snapshot() {
        let mut u = Uncore::new(2);
        let base = u.snapshot();
        u.select(UncoreEvent::LlcMiss);
        u.read_window(&base, 0);
    }

    #[test]
    fn victims_event() {
        let mut u = Uncore::new(2);
        u.select(UncoreEvent::LlcVictims);
        u.on_victim(0);
        u.on_victim(0);
        assert_eq!(u.read(0), 2);
        assert_eq!(u.read(1), 0);
    }
}
