//! Timestamp-counter modelling and measurement helpers.
//!
//! The paper times cache accesses with `rdtsc`/`rdtscp` following Intel's
//! measurement guidelines, and notes that the serialising instruction pair
//! adds ~32 cycles which they subtract from every reported number (§2.2
//! footnote). The simulated per-core cycle clocks live in the machine;
//! this module provides the same "measure a closure, subtract the
//! measurement overhead" discipline so experiment code reads like the
//! paper's methodology.

/// Cycles added by a serialised `rdtsc`/`rdtscp` measurement pair, the
/// figure the paper reports for its testbed and subtracts from results.
pub const RDTSC_OVERHEAD: u64 = 32;

/// A measured duration in core cycles, with the measurement overhead
/// already removed (saturating at zero, as an empty measured region cannot
/// be negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Measured(pub u64);

impl Measured {
    /// Raw cycle count.
    pub fn cycles(self) -> u64 {
        self.0
    }

    /// Converts to nanoseconds at `freq_ghz`.
    pub fn nanos(self, freq_ghz: f64) -> f64 {
        self.0 as f64 / freq_ghz
    }
}

/// Wraps a raw measured interval the way the paper does: the `rdtsc` pair
/// cost is added by the act of measuring and subtracted from the report.
pub fn measure_interval(start: u64, end: u64) -> Measured {
    debug_assert!(end >= start, "time went backwards");
    let raw = end - start + RDTSC_OVERHEAD; // The pair itself executes...
    Measured(raw.saturating_sub(RDTSC_OVERHEAD)) // ...and is subtracted.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_cancels() {
        let m = measure_interval(100, 150);
        assert_eq!(m.cycles(), 50);
    }

    #[test]
    fn zero_interval() {
        assert_eq!(measure_interval(7, 7).cycles(), 0);
    }

    #[test]
    fn nanos_at_3_2_ghz() {
        // 32 cycles at 3.2 GHz = 10 ns.
        let m = Measured(32);
        assert!((m.nanos(3.2) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(Measured(10) < Measured(20));
    }
}
