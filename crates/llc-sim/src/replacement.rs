//! Cache replacement policies.
//!
//! The paper notes that CPUs use "different variations of LRU" (§2) and our
//! DESIGN.md calls out replacement as an ablation axis, so the policy is
//! pluggable per cache: true LRU (default, matches the set-filling
//! methodology of §2.2), tree-PLRU (closer to real silicon) and seeded
//! random (worst-case baseline).

use trafficgen::Rng64;

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementKind {
    /// True least-recently-used.
    Lru,
    /// Tree pseudo-LRU over a power-of-two way count.
    TreePlru,
    /// Uniform random victim (seeded, deterministic).
    Random,
}

/// Per-set replacement state.
///
/// One instance tracks a single cache set of `ways` lines; the cache calls
/// [`ReplacementState::touch`] on every hit/fill and
/// [`ReplacementState::victim`] when it needs to evict.
#[derive(Debug, Clone)]
pub enum ReplacementState {
    /// LRU: per-way last-use stamps (monotone counter).
    Lru { stamps: Vec<u64>, clock: u64 },
    /// Tree-PLRU: one bit per internal node of a complete binary tree.
    TreePlru { bits: u64, ways: usize },
    /// Random: shared per-cache RNG lives in the cache; here only the way
    /// count is needed.
    Random { ways: usize },
}

impl ReplacementState {
    /// Fresh state for a set with `ways` lines.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0`, or for [`ReplacementKind::TreePlru`] when
    /// `ways` is not a power of two (the tree needs a complete shape).
    pub fn new(kind: ReplacementKind, ways: usize) -> Self {
        assert!(ways > 0, "need at least one way");
        match kind {
            ReplacementKind::Lru => ReplacementState::Lru {
                stamps: vec![0; ways],
                clock: 0,
            },
            ReplacementKind::TreePlru => {
                assert!(ways.is_power_of_two(), "tree-PLRU needs 2^k ways");
                ReplacementState::TreePlru { bits: 0, ways }
            }
            ReplacementKind::Random => ReplacementState::Random { ways },
        }
    }

    /// Records a use of `way` (hit or fill).
    pub fn touch(&mut self, way: usize) {
        match self {
            ReplacementState::Lru { stamps, clock } => {
                *clock += 1;
                stamps[way] = *clock;
            }
            ReplacementState::TreePlru { bits, ways } => {
                // Walk root→leaf; at each node point the bit *away* from the
                // taken direction so the victim walk avoids this way.
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = *ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let right = way >= mid;
                    if right {
                        *bits &= !(1u64 << node);
                        lo = mid;
                        node = 2 * node + 2;
                    } else {
                        *bits |= 1u64 << node;
                        hi = mid;
                        node = 2 * node + 1;
                    }
                }
            }
            ReplacementState::Random { .. } => {}
        }
    }

    /// Chooses the way to evict. `rng` is used only by the random policy.
    pub fn victim(&self, rng: &mut Rng64) -> usize {
        match self {
            ReplacementState::Lru { stamps, .. } => {
                let mut best = 0;
                for (i, &s) in stamps.iter().enumerate() {
                    if s < stamps[best] {
                        best = i;
                    }
                }
                best
            }
            ReplacementState::TreePlru { bits, ways } => {
                // Follow the pointed-to (least recently favoured) direction.
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = *ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let right = (*bits >> node) & 1 == 1;
                    if right {
                        lo = mid;
                        node = 2 * node + 2;
                    } else {
                        hi = mid;
                        node = 2 * node + 1;
                    }
                }
                lo
            }
            ReplacementState::Random { ways } => rng.gen_range(0..*ways),
        }
    }

    /// Chooses the victim among the ways allowed by `mask` (bit `i` set ⇒
    /// way `i` allowed). Used for CAT way partitioning and DDIO's limited
    /// I/O ways (paper §7, §8).
    ///
    /// # Panics
    ///
    /// Panics when `mask` allows no way.
    pub fn victim_masked(&self, rng: &mut Rng64, mask: u64) -> usize {
        assert!(mask != 0, "way mask allows no victim");
        match self {
            ReplacementState::Lru { stamps, .. } => {
                let mut best: Option<usize> = None;
                for (i, &s) in stamps.iter().enumerate() {
                    if mask & (1u64 << i) == 0 {
                        continue;
                    }
                    if best.is_none_or(|b| s < stamps[b]) {
                        best = Some(i);
                    }
                }
                best.expect("mask selects at least one existing way")
            }
            ReplacementState::TreePlru { ways, .. } | ReplacementState::Random { ways } => {
                // Among allowed ways pick pseudo-randomly / via RNG: the
                // tree path cannot be restricted cheaply, and silicon PLRU
                // with way masks behaves similarly.
                let allowed: Vec<usize> = (0..*ways).filter(|i| mask & (1u64 << i) != 0).collect();
                assert!(
                    !allowed.is_empty(),
                    "mask selects at least one existing way"
                );
                allowed[rng.gen_range(0..allowed.len())]
            }
        }
    }

    /// Deterministic RNG used by caches for the random policy.
    pub fn make_rng(seed: u64) -> Rng64 {
        Rng64::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng64 {
        ReplacementState::make_rng(7)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = ReplacementState::new(ReplacementKind::Lru, 4);
        for w in 0..4 {
            s.touch(w);
        }
        s.touch(0);
        s.touch(2);
        assert_eq!(s.victim(&mut rng()), 1);
    }

    #[test]
    fn lru_untouched_way_is_first_victim() {
        let mut s = ReplacementState::new(ReplacementKind::Lru, 4);
        s.touch(1);
        s.touch(2);
        s.touch(3);
        assert_eq!(s.victim(&mut rng()), 0);
    }

    #[test]
    fn lru_masked_respects_mask() {
        let mut s = ReplacementState::new(ReplacementKind::Lru, 4);
        for w in 0..4 {
            s.touch(w);
        }
        // Way 0 is the true LRU but the mask excludes it.
        assert_eq!(s.victim_masked(&mut rng(), 0b1110), 1);
        assert_eq!(s.victim_masked(&mut rng(), 0b1000), 3);
    }

    #[test]
    #[should_panic(expected = "allows no victim")]
    fn masked_rejects_empty_mask() {
        let s = ReplacementState::new(ReplacementKind::Lru, 4);
        s.victim_masked(&mut rng(), 0);
    }

    #[test]
    fn plru_victim_avoids_recent_touch() {
        let mut s = ReplacementState::new(ReplacementKind::TreePlru, 8);
        let v1 = s.victim(&mut rng());
        s.touch(v1);
        let v2 = s.victim(&mut rng());
        assert_ne!(v1, v2, "just-touched way must not be the next victim");
    }

    #[test]
    fn plru_cycles_through_all_ways() {
        let mut s = ReplacementState::new(ReplacementKind::TreePlru, 4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let v = s.victim(&mut rng());
            seen.insert(v);
            s.touch(v);
        }
        assert_eq!(seen.len(), 4, "PLRU visits every way under pressure");
    }

    #[test]
    #[should_panic(expected = "2^k ways")]
    fn plru_rejects_non_pow2() {
        ReplacementState::new(ReplacementKind::TreePlru, 20);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let s = ReplacementState::new(ReplacementKind::Random, 16);
        let a: Vec<usize> = {
            let mut r = ReplacementState::make_rng(42);
            (0..8).map(|_| s.victim(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = ReplacementState::make_rng(42);
            (0..8).map(|_| s.victim(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn random_within_bounds() {
        let s = ReplacementState::new(ReplacementKind::Random, 3);
        let mut r = rng();
        for _ in 0..100 {
            assert!(s.victim(&mut r) < 3);
        }
    }
}
