//! Property-style tests for the DPDK-work-alike substrate.
//! Seeded loops over [`trafficgen::Rng64`] (fully offline).

use llc_sim::machine::{Machine, MachineConfig};
use rte::mempool::MbufPool;
use rte::ring::Ring;
use rte::steering::{toeplitz_hash, FlowDirector, Rss, TOEPLITZ_KEY};
use trafficgen::{FlowTuple, Rng64};

/// The ring behaves exactly like a bounded FIFO model.
#[test]
fn ring_matches_deque_model() {
    let mut rng = Rng64::seed_from_u64(0x5701);
    for _ in 0..64 {
        let cap = rng.gen_range(1usize..64);
        let n_ops = rng.gen_range(1usize..300);
        let mut ring = Ring::new(cap);
        let mut model = std::collections::VecDeque::new();
        let mut drops = 0u64;
        for _ in 0..n_ops {
            if rng.gen_bool(0.6) {
                let v = rng.gen_range(0u32..1000);
                let ok = ring.enqueue(v).is_ok();
                if model.len() < cap {
                    assert!(ok);
                    model.push_back(v);
                } else {
                    assert!(!ok);
                    drops += 1;
                }
            } else {
                assert_eq!(ring.dequeue(), model.pop_front());
            }
            assert_eq!(ring.len(), model.len());
            assert_eq!(ring.drops(), drops);
        }
    }
}

/// Burst dequeue preserves FIFO order and never over-returns.
#[test]
fn ring_burst_order() {
    let mut rng = Rng64::seed_from_u64(0x5702);
    for _ in 0..64 {
        let n = rng.gen_range(0usize..50);
        let burst = rng.gen_range(1usize..20);
        let values: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..1000)).collect();
        let mut ring = Ring::new(64);
        let accepted = ring.enqueue_burst(values.iter().copied());
        let got = ring.dequeue_burst(burst);
        assert!(got.len() <= burst);
        assert_eq!(&got[..], &values[..got.len().min(accepted)]);
    }
}

/// RSS is deterministic, in range, and insensitive to non-tuple bits.
#[test]
fn rss_queue_in_range() {
    let mut rng = Rng64::seed_from_u64(0x5703);
    for _ in 0..256 {
        let queues = rng.gen_range(1usize..64);
        let rss = Rss::new(queues);
        let f = FlowTuple::tcp(
            rng.next_u32(),
            rng.gen_range(0u16..=u16::MAX),
            rng.next_u32(),
            rng.gen_range(0u16..=u16::MAX),
        );
        let q = rss.queue_for(&f);
        assert!(q < queues);
        assert_eq!(rss.queue_for(&f), q);
    }
}

/// Toeplitz over a 12-byte input is XOR-linear in the input (a known
/// algebraic property of the hash).
#[test]
fn toeplitz_is_linear() {
    let mut rng = Rng64::seed_from_u64(0x5704);
    for _ in 0..256 {
        let mut a = [0u8; 12];
        let mut b = [0u8; 12];
        for i in 0..12 {
            a[i] = rng.gen_range(0u32..=255) as u8;
            b[i] = rng.gen_range(0u32..=255) as u8;
        }
        let mut x = [0u8; 12];
        for i in 0..12 {
            x[i] = a[i] ^ b[i];
        }
        let ha = toeplitz_hash(&TOEPLITZ_KEY, &a);
        let hb = toeplitz_hash(&TOEPLITZ_KEY, &b);
        let hx = toeplitz_hash(&TOEPLITZ_KEY, &x);
        let h0 = toeplitz_hash(&TOEPLITZ_KEY, &[0u8; 12]);
        assert_eq!(hx ^ h0, ha ^ hb);
    }
}

/// FlowDirector stays sticky and balanced under arbitrary flow
/// arrival orders.
#[test]
fn fdir_sticky_and_balanced() {
    let mut rng = Rng64::seed_from_u64(0x5705);
    for _ in 0..32 {
        let queues = rng.gen_range(1usize..16);
        let n_flows = rng.gen_range(1usize..200);
        let mut fd = FlowDirector::new(queues);
        let mut assigned = std::collections::HashMap::new();
        for _ in 0..n_flows {
            let ip = rng.next_u32();
            let port = rng.gen_range(0u16..=u16::MAX);
            let f = FlowTuple::tcp(ip, port, 1, 80);
            let q = fd.action_for(&f).queue;
            assert!(q < queues);
            let prev = assigned.entry(f).or_insert(q);
            assert_eq!(*prev, q, "flow moved queues");
        }
        // Round-robin balance: queue loads differ by at most 1.
        let mut counts = vec![0usize; queues];
        for &q in assigned.values() {
            counts[q] += 1;
        }
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(hi - lo <= 1, "imbalance {counts:?}");
    }
}

/// Mempool get/put sequences conserve objects and never alias.
#[test]
fn mempool_conservation() {
    let mut rng = Rng64::seed_from_u64(0x5706);
    for _ in 0..16 {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20));
        let mut pool = MbufPool::create(&mut m, 32, 128, 512).unwrap();
        let mut held = Vec::new();
        let n_ops = rng.gen_range(1usize..200);
        for _ in 0..n_ops {
            if rng.gen_bool(0.5) {
                if let Some(idx) = pool.get() {
                    assert!(!held.contains(&idx), "aliased mbuf {idx}");
                    held.push(idx);
                }
            } else if let Some(idx) = held.pop() {
                pool.put(idx);
            }
            assert_eq!(pool.available() + held.len(), 32);
        }
    }
}
