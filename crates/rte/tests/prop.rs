//! Property-based tests for the DPDK-work-alike substrate.

use llc_sim::machine::{Machine, MachineConfig};
use proptest::prelude::*;
use rte::mempool::MbufPool;
use rte::ring::Ring;
use rte::steering::{FlowDirector, Rss, TOEPLITZ_KEY};
use trafficgen::FlowTuple;

proptest! {
    /// The ring behaves exactly like a bounded FIFO model.
    #[test]
    fn ring_matches_deque_model(
        ops in proptest::collection::vec(proptest::option::of(0u32..1000), 1..300),
        cap in 1usize..64,
    ) {
        let mut ring = Ring::new(cap);
        let mut model = std::collections::VecDeque::new();
        let mut drops = 0u64;
        for op in ops {
            match op {
                Some(v) => {
                    let ok = ring.enqueue(v).is_ok();
                    if model.len() < cap {
                        prop_assert!(ok);
                        model.push_back(v);
                    } else {
                        prop_assert!(!ok);
                        drops += 1;
                    }
                }
                None => {
                    prop_assert_eq!(ring.dequeue(), model.pop_front());
                }
            }
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(ring.drops(), drops);
        }
    }

    /// Burst dequeue preserves FIFO order and never over-returns.
    #[test]
    fn ring_burst_order(
        values in proptest::collection::vec(0u32..1000, 0..50),
        burst in 1usize..20,
    ) {
        let mut ring = Ring::new(64);
        let accepted = ring.enqueue_burst(values.iter().copied());
        let got = ring.dequeue_burst(burst);
        prop_assert!(got.len() <= burst);
        prop_assert_eq!(&got[..], &values[..got.len().min(accepted)]);
    }

    /// RSS is deterministic, in range, and insensitive to non-tuple bits.
    #[test]
    fn rss_queue_in_range(
        src in any::<u32>(), dst in any::<u32>(),
        sp in any::<u16>(), dp in any::<u16>(),
        queues in 1usize..64,
    ) {
        let rss = Rss::new(queues);
        let f = FlowTuple::tcp(src, sp, dst, dp);
        let q = rss.queue_for(&f);
        prop_assert!(q < queues);
        prop_assert_eq!(rss.queue_for(&f), q);
    }

    /// Toeplitz over a 12-byte input is XOR-linear in the input (a known
    /// algebraic property of the hash).
    #[test]
    fn toeplitz_is_linear(a in any::<[u8; 12]>(), b in any::<[u8; 12]>()) {
        use rte::steering::toeplitz_hash;
        let mut x = [0u8; 12];
        for i in 0..12 {
            x[i] = a[i] ^ b[i];
        }
        let ha = toeplitz_hash(&TOEPLITZ_KEY, &a);
        let hb = toeplitz_hash(&TOEPLITZ_KEY, &b);
        let hx = toeplitz_hash(&TOEPLITZ_KEY, &x);
        let h0 = toeplitz_hash(&TOEPLITZ_KEY, &[0u8; 12]);
        prop_assert_eq!(hx ^ h0, ha ^ hb);
    }

    /// FlowDirector stays sticky and balanced under arbitrary flow
    /// arrival orders.
    #[test]
    fn fdir_sticky_and_balanced(
        flows in proptest::collection::vec((any::<u32>(), any::<u16>()), 1..200),
        queues in 1usize..16,
    ) {
        let mut fd = FlowDirector::new(queues);
        let mut assigned = std::collections::HashMap::new();
        for (ip, port) in flows {
            let f = FlowTuple::tcp(ip, port, 1, 80);
            let q = fd.action_for(&f).queue;
            prop_assert!(q < queues);
            let prev = assigned.entry(f).or_insert(q);
            prop_assert_eq!(*prev, q, "flow moved queues");
        }
        // Round-robin balance: queue loads differ by at most 1.
        let mut counts = vec![0usize; queues];
        for &q in assigned.values() {
            counts[q] += 1;
        }
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        prop_assert!(hi - lo <= 1, "imbalance {counts:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Mempool get/put sequences conserve objects and never alias.
    #[test]
    fn mempool_conservation(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut m = Machine::new(
            MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20),
        );
        let mut pool = MbufPool::create(&mut m, 32, 128, 512).unwrap();
        let mut held = Vec::new();
        for get in ops {
            if get {
                if let Some(idx) = pool.get() {
                    prop_assert!(!held.contains(&idx), "aliased mbuf {idx}");
                    held.push(idx);
                }
            } else if let Some(idx) = held.pop() {
                pool.put(idx);
            }
            prop_assert_eq!(pool.available() + held.len(), 32);
        }
    }
}
