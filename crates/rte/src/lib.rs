//! A DPDK-work-alike user-space packet I/O substrate over the simulated
//! machine.
//!
//! CacheDirector (the paper's §4) is implemented as a change to DPDK's
//! buffer management, so the reproduction needs the surrounding DPDK
//! machinery with the same shapes:
//!
//! * **Mempools & mbufs** ([`mempool`], [`mbuf`]): hugepage-backed pools
//!   of fixed-size packet buffers. Each mbuf is a 128 B (two cache line)
//!   metadata struct, a headroom whose default size is 128 B, and a data
//!   room (Fig. 9). The metadata's `udata64` field is where CacheDirector
//!   stashes its per-core headroom table (Fig. 10).
//! * **Rings** ([`ring`]): bounded FIFO queues of buffer handles.
//! * **Steering** ([`steering`]): RSS with the standard Toeplitz hash, and
//!   a FlowDirector exact-match table with queue + mark actions (the
//!   paper's §5.2 runs use FlowDirector for Metron's hardware offload).
//! * **NIC + PMD** ([`nic`]): RX queues of *posted* descriptors that the
//!   NIC consumes by DMA-ing arriving frames through DDIO, and a poll-mode
//!   driver that harvests completions and re-posts buffers. Re-posting is
//!   the hook where a [`nic::HeadroomPolicy`] decides each buffer's
//!   `data_off` — fixed at 128 B in stock DPDK, dynamic per-core in
//!   CacheDirector ("at run time CacheDirector sets the actual headroom
//!   size just before giving the address to the NIC for DMA-ing packets").
//!
//! Everything data-path runs against [`llc_sim::Machine`] so that buffer
//! metadata and packet bytes live in simulated physical memory, occupy
//! cache lines, and cost cycles to touch.
//!
//! # Examples
//!
//! The full RX→TX path:
//!
//! ```
//! use llc_sim::machine::{Machine, MachineConfig};
//! use rte::mempool::MbufPool;
//! use rte::nic::{FixedHeadroom, Port, TxDesc};
//! use rte::steering::{Rss, Steering};
//! use trafficgen::FlowTuple;
//!
//! let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3());
//! let mut pool = MbufPool::create_default(&mut m, 64).unwrap();
//! let mut port = Port::new(0, Steering::Rss(Rss::new(2)), 32);
//! let mut policy = FixedHeadroom(128);
//! for q in 0..2 {
//!     port.refill(&mut m, &mut pool, q, q, &mut policy, 16);
//! }
//! // A frame arrives, is DMA'd through DDIO, and is polled back out.
//! let flow = FlowTuple::tcp(0x0a000001, 1234, 0xc0a80001, 80);
//! let q = port.deliver(&mut m, &[0u8; 64], &flow, 0.0).unwrap();
//! let (batch, _cycles) = port.rx_burst(&mut m, &pool, q, q, 8);
//! assert_eq!(batch.len(), 1);
//! port.tx_burst(&mut m, &mut pool, q, &[TxDesc {
//!     mbuf: batch[0].mbuf,
//!     data_pa: batch[0].data_pa,
//!     len: batch[0].len,
//! }]);
//! assert_eq!(port.stats().tx_pkts, 1);
//! ```

pub mod fault;
pub mod mbuf;
pub mod mempool;
pub mod nic;
pub mod ring;
pub mod steering;

pub use fault::{Axis, FaultPlan, FaultState, FrameFault, Window};
pub use mbuf::{MbufMeta, MBUF_META_SIZE};
pub use mempool::MbufPool;
pub use nic::{tx_wire, FixedHeadroom, HeadroomPolicy, Port, RxCompletion, RxView};
pub use ring::Ring;
pub use steering::{FlowDirector, Rss, Steering};
