//! Deterministic, seeded fault injection for the simulated I/O path.
//!
//! Real testbeds misbehave: frames arrive with bad CRCs, links flap,
//! mempools run dry under bursts, and NICs stall their RX rings. The
//! paper's latency story (and any reproduction of it) is only credible
//! if the dataplane degrades gracefully under those conditions instead
//! of panicking or silently losing accounting. This module provides a
//! [`FaultPlan`] — a declarative, reproducible schedule of faults over
//! the *offered-frame index* — and a [`FaultState`] that rolls the plan
//! forward one frame at a time with a seeded [`trafficgen::Rng64`].
//!
//! Fault kinds:
//!
//! * **Frame corruption** (`corrupt_prob`): the frame arrives with a bad
//!   FCS; the NIC verifies the CRC in hardware and drops it at the MAC,
//!   counted as [`crate::nic::DropReason::CrcError`].
//! * **Truncation** (`truncate_prob`): the frame is cut short in flight.
//!   Runts (shorter than an Ethernet header) are dropped by the MAC like
//!   CRC errors; longer truncations are *delivered* and must be rejected
//!   by software parsers without panicking.
//! * **Pool exhaustion windows** (`pool_exhaust`): transient allocation
//!   outages, as when a slow consumer leaks the pool dry; the PMD's
//!   refill sees an empty pool and RX starves on descriptors.
//! * **RX stall windows** (`rx_stall`): the NIC stops draining posted
//!   descriptors (e.g. a PCIe backpressure event); arrivals are dropped
//!   as [`crate::nic::DropReason::RxStall`].
//! * **Link flap windows** (`link_flap`): carrier loss; arrivals are
//!   dropped as [`crate::nic::DropReason::LinkDown`].
//!
//! Everything is a pure function of `(seed, frame index)`, so a failing
//! run replays exactly.
//!
//! # Examples
//!
//! ```
//! use rte::fault::{FaultPlan, FaultState, Window};
//!
//! let plan = FaultPlan::none()
//!     .with_seed(7)
//!     .with_corrupt_prob(0.5)
//!     .with_link_flap(Window::new(2, 4));
//! let mut st = FaultState::new(plan);
//! let mut corrupted = 0;
//! for i in 0..8u64 {
//!     let f = st.next_frame();
//!     if f.corrupt {
//!         corrupted += 1;
//!     }
//!     assert_eq!(f.link_down, (2..4).contains(&i));
//! }
//! assert!(corrupted > 0);
//! ```

use trafficgen::Rng64;

/// A half-open `[start, end)` interval over the offered-frame index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First frame index affected.
    pub start: u64,
    /// First frame index no longer affected.
    pub end: u64,
}

impl Window {
    /// A window covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics when `end < start`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end >= start, "window end before start");
        Self { start, end }
    }

    /// Whether `idx` falls inside the window.
    pub fn contains(&self, idx: u64) -> bool {
        idx >= self.start && idx < self.end
    }
}

fn any_contains(windows: &[Window], idx: u64) -> bool {
    windows.iter().any(|w| w.contains(idx))
}

/// A declarative, reproducible schedule of injected faults.
///
/// The default plan injects nothing; builder methods add fault kinds.
/// Probabilities are per offered frame; windows are over the offered
/// frame index (frame 0 is the first call to `offer`).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the per-frame random draws (corruption, truncation).
    pub seed: u64,
    /// Probability that a frame arrives with a bad FCS.
    pub corrupt_prob: f64,
    /// Probability that a frame is truncated to a random shorter length.
    pub truncate_prob: f64,
    /// Windows during which the mbuf pool refuses allocations.
    pub pool_exhaust: Vec<Window>,
    /// Windows during which the NIC does not drain posted descriptors.
    pub rx_stall: Vec<Window>,
    /// Windows during which the link is down.
    pub link_flap: Vec<Window>,
}

impl FaultPlan {
    /// The empty plan: no faults, ever.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan can ever inject anything.
    pub fn is_none(&self) -> bool {
        self.corrupt_prob <= 0.0
            && self.truncate_prob <= 0.0
            && self.pool_exhaust.is_empty()
            && self.rx_stall.is_empty()
            && self.link_flap.is_empty()
    }

    /// Sets the RNG seed for probabilistic faults.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-frame corruption (bad FCS) probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_corrupt_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.corrupt_prob = p;
        self
    }

    /// Sets the per-frame truncation probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_truncate_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.truncate_prob = p;
        self
    }

    /// Adds a transient mbuf-pool outage window.
    pub fn with_pool_exhaustion(mut self, w: Window) -> Self {
        self.pool_exhaust.push(w);
        self
    }

    /// Adds an RX descriptor-stall window.
    pub fn with_rx_stall(mut self, w: Window) -> Self {
        self.rx_stall.push(w);
        self
    }

    /// Adds a link-flap (carrier down) window.
    pub fn with_link_flap(mut self, w: Window) -> Self {
        self.link_flap.push(w);
        self
    }
}

/// The faults affecting one offered frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameFault {
    /// The frame's FCS is bad; the MAC must drop it.
    pub corrupt: bool,
    /// Truncate the frame to this many bytes before delivery.
    pub truncate_to: Option<usize>,
    /// The link is down while this frame arrives.
    pub link_down: bool,
    /// The NIC is not draining descriptors while this frame arrives.
    pub stall: bool,
    /// The mbuf pool refuses allocations while this frame is in flight.
    pub pool_blocked: bool,
}

impl FrameFault {
    /// A fault-free frame.
    pub fn clean() -> Self {
        Self::default()
    }
}

/// Rolls a [`FaultPlan`] forward one offered frame at a time.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    rng: Rng64,
    next_idx: u64,
}

impl FaultState {
    /// Starts the plan at frame index 0.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = Rng64::seed_from_u64(plan.seed ^ 0x5eed_fa17_0000_0001u64);
        Self {
            plan,
            rng,
            next_idx: 0,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Index of the next frame to be drawn.
    pub fn frame_index(&self) -> u64 {
        self.next_idx
    }

    /// Draws the faults for the next offered frame.
    ///
    /// Exactly two RNG draws happen per frame regardless of the plan, so
    /// window edits never shift the corruption/truncation sequence.
    pub fn next_frame(&mut self) -> FrameFault {
        let idx = self.next_idx;
        self.next_idx += 1;
        let corrupt_draw = self.rng.gen_f64();
        let trunc_draw = self.rng.next_u64();
        let corrupt = corrupt_draw < self.plan.corrupt_prob;
        // High bits decide whether to truncate, low bits decide where.
        let trunc_uniform = (trunc_draw >> 11) as f64 / (1u64 << 53) as f64;
        let truncate_to = if trunc_uniform < self.plan.truncate_prob {
            // Deterministic length derived from the same draw: anywhere
            // from an unusable runt to just under a minimal frame.
            Some((trunc_draw % 61) as usize)
        } else {
            None
        };
        FrameFault {
            corrupt,
            truncate_to,
            link_down: any_contains(&self.plan.link_flap, idx),
            stall: any_contains(&self.plan.rx_stall, idx),
            pool_blocked: any_contains(&self.plan.pool_exhaust, idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_contains_half_open() {
        let w = Window::new(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        let empty = Window::new(5, 5);
        assert!(!empty.contains(5));
    }

    #[test]
    #[should_panic(expected = "end before start")]
    fn window_rejects_reversed() {
        Window::new(3, 2);
    }

    #[test]
    fn none_plan_injects_nothing() {
        let mut st = FaultState::new(FaultPlan::none());
        assert!(st.plan().is_none());
        for _ in 0..1000 {
            assert_eq!(st.next_frame(), FrameFault::clean());
        }
        assert_eq!(st.frame_index(), 1000);
    }

    #[test]
    fn same_seed_same_sequence() {
        let plan = FaultPlan::none()
            .with_seed(42)
            .with_corrupt_prob(0.3)
            .with_truncate_prob(0.3);
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        for _ in 0..500 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    #[test]
    fn windows_do_not_shift_random_draws() {
        let base = FaultPlan::none().with_seed(9).with_corrupt_prob(0.5);
        let windowed = base.clone().with_link_flap(Window::new(0, 100));
        let mut a = FaultState::new(base);
        let mut b = FaultState::new(windowed);
        for _ in 0..200 {
            assert_eq!(a.next_frame().corrupt, b.next_frame().corrupt);
        }
    }

    #[test]
    fn corruption_rate_tracks_probability() {
        let mut st = FaultState::new(FaultPlan::none().with_seed(1).with_corrupt_prob(0.25));
        let n = 20_000;
        let hits = (0..n).filter(|_| st.next_frame().corrupt).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn truncation_lengths_below_min_frame() {
        let mut st = FaultState::new(FaultPlan::none().with_seed(3).with_truncate_prob(1.0));
        let mut saw_runt = false;
        let mut saw_parseable = false;
        for _ in 0..1000 {
            let f = st.next_frame();
            let len = f.truncate_to.expect("p=1.0 always truncates");
            assert!(len < 61);
            if len < 14 {
                saw_runt = true;
            } else {
                saw_parseable = true;
            }
        }
        assert!(saw_runt && saw_parseable);
    }

    #[test]
    fn window_faults_fire_exactly_in_window() {
        let plan = FaultPlan::none()
            .with_pool_exhaustion(Window::new(5, 8))
            .with_rx_stall(Window::new(2, 3))
            .with_link_flap(Window::new(0, 1))
            .with_link_flap(Window::new(9, 10));
        let mut st = FaultState::new(plan);
        for i in 0..12u64 {
            let f = st.next_frame();
            assert_eq!(f.pool_blocked, (5..8).contains(&i), "frame {i}");
            assert_eq!(f.stall, i == 2, "frame {i}");
            assert_eq!(f.link_down, i == 0 || i == 9, "frame {i}");
        }
    }
}
