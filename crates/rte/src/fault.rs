//! Deterministic, seeded fault injection for the simulated I/O path.
//!
//! Real testbeds misbehave: frames arrive with bad CRCs, links flap,
//! mempools run dry under bursts, and NICs stall their RX rings. The
//! paper's latency story (and any reproduction of it) is only credible
//! if the dataplane degrades gracefully under those conditions instead
//! of panicking or silently losing accounting. This module provides a
//! [`FaultPlan`] — a declarative, reproducible schedule of faults over
//! either *simulated time* ([`Axis::TimeNs`], the default) or the
//! *offered-frame index* ([`Axis::Frame`], via
//! [`FaultPlan::frame_indexed`]) — and a [`FaultState`] that rolls the
//! plan forward one frame at a time with a seeded [`trafficgen::Rng64`].
//! Time-indexed windows compose naturally with bursty
//! `trafficgen::ArrivalSchedule`s (a 100 µs outage is a 100 µs outage at
//! any offered rate) and apply uniformly across RX queues; the frame
//! axis is kept for byte-exact replay of older experiments.
//!
//! Fault kinds:
//!
//! * **Frame corruption** (`corrupt_prob`): the frame arrives with a bad
//!   FCS; the NIC verifies the CRC in hardware and drops it at the MAC,
//!   counted as [`crate::nic::DropReason::CrcError`].
//! * **Truncation** (`truncate_prob`): the frame is cut short in flight.
//!   Runts (shorter than an Ethernet header) are dropped by the MAC like
//!   CRC errors; longer truncations are *delivered* and must be rejected
//!   by software parsers without panicking.
//! * **Pool exhaustion windows** (`pool_exhaust`): transient allocation
//!   outages, as when a slow consumer leaks the pool dry; the PMD's
//!   refill sees an empty pool and RX starves on descriptors.
//! * **RX stall windows** (`rx_stall`): the NIC stops draining posted
//!   descriptors (e.g. a PCIe backpressure event); arrivals are dropped
//!   as [`crate::nic::DropReason::RxStall`].
//! * **Link flap windows** (`link_flap`): carrier loss; arrivals are
//!   dropped as [`crate::nic::DropReason::LinkDown`].
//! * **Per-queue RX stall windows** (`queue_rx_stall`): a single RX
//!   queue stops draining while the others keep going — the failure
//!   mode that multi-queue isolation tests care about.
//! * **Ready-ring overrun windows** (`ready_overrun`): the completion
//!   ring backs up as if the application stopped polling; arrivals are
//!   dropped as [`crate::nic::DropReason::ReadyOverrun`].
//! * **TX stall windows** (`tx_stall`): the TX descriptor path wedges;
//!   frames that were fully processed cannot leave the box and the PMD
//!   must recycle their buffers. Queried with [`FaultState::tx_stalled`]
//!   at transmit time.
//!
//! Everything is a pure function of `(seed, frame index, clock)`, so a
//! failing run replays exactly.
//!
//! # Examples
//!
//! ```
//! use rte::fault::{FaultPlan, FaultState, Window};
//!
//! let plan = FaultPlan::none()
//!     .with_seed(7)
//!     .with_corrupt_prob(0.5)
//!     .with_link_flap(Window::new(2, 4));
//! let mut st = FaultState::new(plan);
//! let mut corrupted = 0;
//! for i in 0..8u64 {
//!     let f = st.next_frame();
//!     if f.corrupt {
//!         corrupted += 1;
//!     }
//!     assert_eq!(f.link_down, (2..4).contains(&i));
//! }
//! assert!(corrupted > 0);
//! ```

use trafficgen::Rng64;

/// A half-open `[start, end)` interval over the plan's [`Axis`]:
/// nanoseconds for [`Axis::TimeNs`], offered-frame indices for
/// [`Axis::Frame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First index (ns or frame) affected.
    pub start: u64,
    /// First index (ns or frame) no longer affected.
    pub end: u64,
}

impl Window {
    /// A window covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics when `end < start`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end >= start, "window end before start");
        Self { start, end }
    }

    /// Whether `idx` falls inside the window.
    pub fn contains(&self, idx: u64) -> bool {
        idx >= self.start && idx < self.end
    }
}

/// What a [`Window`]'s coordinates mean.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Axis {
    /// Windows span offered-frame indices (frame 0 is the first offer).
    /// The historical axis; kept for byte-exact replay of older
    /// experiments via [`FaultPlan::frame_indexed`].
    Frame,
    /// Windows span simulated nanoseconds since the run started. The
    /// default: outages have a duration, not a packet count, so they
    /// compose with bursty arrival schedules and multi-queue dispatch.
    #[default]
    TimeNs,
}

fn any_contains(windows: &[Window], idx: u64) -> bool {
    windows.iter().any(|w| w.contains(idx))
}

/// A declarative, reproducible schedule of injected faults.
///
/// The default plan injects nothing; builder methods add fault kinds.
/// Probabilities are per offered frame; windows are over the plan's
/// [`Axis`] — simulated nanoseconds by default, offered-frame indices
/// for plans built with [`FaultPlan::frame_indexed`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// What the window coordinates mean (ns or frame index).
    pub axis: Axis,
    /// Seed for the per-frame random draws (corruption, truncation).
    pub seed: u64,
    /// Probability that a frame arrives with a bad FCS.
    pub corrupt_prob: f64,
    /// Probability that a frame is truncated to a random shorter length.
    pub truncate_prob: f64,
    /// Windows during which the mbuf pool refuses allocations.
    pub pool_exhaust: Vec<Window>,
    /// Windows during which the NIC does not drain posted descriptors.
    pub rx_stall: Vec<Window>,
    /// Windows during which the link is down.
    pub link_flap: Vec<Window>,
    /// Windows during which one specific RX queue stalls while the rest
    /// of the port keeps draining.
    pub queue_rx_stall: Vec<(usize, Window)>,
    /// Windows during which the completion (ready) ring backs up as if
    /// the application stopped polling.
    pub ready_overrun: Vec<Window>,
    /// Windows during which the TX descriptor path is wedged; processed
    /// frames cannot be transmitted.
    pub tx_stall: Vec<Window>,
}

impl FaultPlan {
    /// The empty plan: no faults, ever. Windows added to it are
    /// time-indexed (ns).
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan whose windows span offered-frame indices — the
    /// compatibility constructor for pre-time-axis experiments, which
    /// counted frames instead of nanoseconds.
    pub fn frame_indexed() -> Self {
        Self {
            axis: Axis::Frame,
            ..Self::default()
        }
    }

    /// Whether the plan can ever inject anything.
    pub fn is_none(&self) -> bool {
        self.corrupt_prob <= 0.0
            && self.truncate_prob <= 0.0
            && self.pool_exhaust.is_empty()
            && self.rx_stall.is_empty()
            && self.link_flap.is_empty()
            && self.queue_rx_stall.is_empty()
            && self.ready_overrun.is_empty()
            && self.tx_stall.is_empty()
    }

    /// Sets the RNG seed for probabilistic faults.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-frame corruption (bad FCS) probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_corrupt_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.corrupt_prob = p;
        self
    }

    /// Sets the per-frame truncation probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_truncate_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.truncate_prob = p;
        self
    }

    /// Adds a transient mbuf-pool outage window.
    pub fn with_pool_exhaustion(mut self, w: Window) -> Self {
        self.pool_exhaust.push(w);
        self
    }

    /// Adds an RX descriptor-stall window.
    pub fn with_rx_stall(mut self, w: Window) -> Self {
        self.rx_stall.push(w);
        self
    }

    /// Adds a link-flap (carrier down) window.
    pub fn with_link_flap(mut self, w: Window) -> Self {
        self.link_flap.push(w);
        self
    }

    /// Adds an RX stall window that only affects queue `q`.
    pub fn with_queue_rx_stall(mut self, q: usize, w: Window) -> Self {
        self.queue_rx_stall.push((q, w));
        self
    }

    /// Adds a completion-ring (ready ring) overrun window.
    pub fn with_ready_overrun(mut self, w: Window) -> Self {
        self.ready_overrun.push(w);
        self
    }

    /// Adds a TX descriptor-stall window.
    pub fn with_tx_stall(mut self, w: Window) -> Self {
        self.tx_stall.push(w);
        self
    }
}

/// The faults affecting one offered frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameFault {
    /// The frame's FCS is bad; the MAC must drop it.
    pub corrupt: bool,
    /// Truncate the frame to this many bytes before delivery.
    pub truncate_to: Option<usize>,
    /// The link is down while this frame arrives.
    pub link_down: bool,
    /// The NIC is not draining descriptors while this frame arrives.
    pub stall: bool,
    /// The mbuf pool refuses allocations while this frame is in flight.
    pub pool_blocked: bool,
    /// The completion ring refuses this frame, as if the application
    /// stopped polling (ready-ring overrun under backpressure).
    pub ready_blocked: bool,
}

impl FrameFault {
    /// A fault-free frame.
    pub fn clean() -> Self {
        Self::default()
    }
}

/// Rolls a [`FaultPlan`] forward one offered frame at a time.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    rng: Rng64,
    next_idx: u64,
}

impl FaultState {
    /// Starts the plan at frame index 0.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = Rng64::seed_from_u64(plan.seed ^ 0x5eed_fa17_0000_0001u64);
        Self {
            plan,
            rng,
            next_idx: 0,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Index of the next frame to be drawn (equals frames drawn so far).
    pub fn frame_index(&self) -> u64 {
        self.next_idx
    }

    /// Resolves a window coordinate for the plan's axis: the frame
    /// counter for [`Axis::Frame`], the clock for [`Axis::TimeNs`].
    fn window_index(&self, t_ns: f64) -> u64 {
        match self.plan.axis {
            Axis::Frame => self.next_idx,
            Axis::TimeNs => t_ns.max(0.0) as u64,
        }
    }

    /// Draws the faults for the next offered frame, with windows
    /// evaluated at the offered-frame index regardless of the plan's
    /// axis. Prefer [`FaultState::draw`] in clocked code; this entry
    /// point serves frame-counted harnesses and keeps pre-time-axis
    /// sequences byte-identical.
    ///
    /// Exactly two RNG draws happen per frame regardless of the plan, so
    /// window edits never shift the corruption/truncation sequence.
    pub fn next_frame(&mut self) -> FrameFault {
        let idx = self.next_idx;
        self.eval(idx, None)
    }

    /// Draws the faults for the next offered frame arriving at `t_ns`,
    /// evaluating windows on the plan's axis. Per-queue stalls are not
    /// applied (the queue is unknown); use [`FaultState::draw_for_queue`]
    /// when steering has already picked one.
    pub fn draw(&mut self, t_ns: f64) -> FrameFault {
        let idx = self.window_index(t_ns);
        self.eval(idx, None)
    }

    /// Like [`FaultState::draw`], but also applies stall windows scoped
    /// to RX queue `q`.
    pub fn draw_for_queue(&mut self, t_ns: f64, q: usize) -> FrameFault {
        let idx = self.window_index(t_ns);
        self.eval(idx, Some(q))
    }

    /// Whether the TX descriptor path is wedged at `t_ns`. Pure (no RNG
    /// draw), so PMD transmit paths can query it at will.
    pub fn tx_stalled(&self, t_ns: f64) -> bool {
        any_contains(&self.plan.tx_stall, self.window_index(t_ns))
    }

    fn eval(&mut self, idx: u64, queue: Option<usize>) -> FrameFault {
        self.next_idx += 1;
        let corrupt_draw = self.rng.gen_f64();
        let trunc_draw = self.rng.next_u64();
        let corrupt = corrupt_draw < self.plan.corrupt_prob;
        // High bits decide whether to truncate, low bits decide where.
        let trunc_uniform = (trunc_draw >> 11) as f64 / (1u64 << 53) as f64;
        let truncate_to = if trunc_uniform < self.plan.truncate_prob {
            // Deterministic length derived from the same draw: anywhere
            // from an unusable runt to just under a minimal frame.
            Some((trunc_draw % 61) as usize)
        } else {
            None
        };
        let queue_stalled = queue.is_some_and(|q| {
            self.plan
                .queue_rx_stall
                .iter()
                .any(|(sq, w)| *sq == q && w.contains(idx))
        });
        FrameFault {
            corrupt,
            truncate_to,
            link_down: any_contains(&self.plan.link_flap, idx),
            stall: any_contains(&self.plan.rx_stall, idx) || queue_stalled,
            pool_blocked: any_contains(&self.plan.pool_exhaust, idx),
            ready_blocked: any_contains(&self.plan.ready_overrun, idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_contains_half_open() {
        let w = Window::new(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        let empty = Window::new(5, 5);
        assert!(!empty.contains(5));
    }

    #[test]
    #[should_panic(expected = "end before start")]
    fn window_rejects_reversed() {
        Window::new(3, 2);
    }

    #[test]
    fn none_plan_injects_nothing() {
        let mut st = FaultState::new(FaultPlan::none());
        assert!(st.plan().is_none());
        for _ in 0..1000 {
            assert_eq!(st.next_frame(), FrameFault::clean());
        }
        assert_eq!(st.frame_index(), 1000);
    }

    #[test]
    fn same_seed_same_sequence() {
        let plan = FaultPlan::none()
            .with_seed(42)
            .with_corrupt_prob(0.3)
            .with_truncate_prob(0.3);
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        for _ in 0..500 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    #[test]
    fn windows_do_not_shift_random_draws() {
        let base = FaultPlan::none().with_seed(9).with_corrupt_prob(0.5);
        let windowed = base.clone().with_link_flap(Window::new(0, 100));
        let mut a = FaultState::new(base);
        let mut b = FaultState::new(windowed);
        for _ in 0..200 {
            assert_eq!(a.next_frame().corrupt, b.next_frame().corrupt);
        }
    }

    #[test]
    fn corruption_rate_tracks_probability() {
        let mut st = FaultState::new(FaultPlan::none().with_seed(1).with_corrupt_prob(0.25));
        let n = 20_000;
        let hits = (0..n).filter(|_| st.next_frame().corrupt).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn truncation_lengths_below_min_frame() {
        let mut st = FaultState::new(FaultPlan::none().with_seed(3).with_truncate_prob(1.0));
        let mut saw_runt = false;
        let mut saw_parseable = false;
        for _ in 0..1000 {
            let f = st.next_frame();
            let len = f.truncate_to.expect("p=1.0 always truncates");
            assert!(len < 61);
            if len < 14 {
                saw_runt = true;
            } else {
                saw_parseable = true;
            }
        }
        assert!(saw_runt && saw_parseable);
    }

    #[test]
    fn window_faults_fire_exactly_in_window() {
        let plan = FaultPlan::none()
            .with_pool_exhaustion(Window::new(5, 8))
            .with_rx_stall(Window::new(2, 3))
            .with_link_flap(Window::new(0, 1))
            .with_link_flap(Window::new(9, 10));
        let mut st = FaultState::new(plan);
        for i in 0..12u64 {
            let f = st.next_frame();
            assert_eq!(f.pool_blocked, (5..8).contains(&i), "frame {i}");
            assert_eq!(f.stall, i == 2, "frame {i}");
            assert_eq!(f.link_down, i == 0 || i == 9, "frame {i}");
        }
    }

    #[test]
    fn time_axis_evaluates_windows_by_clock() {
        // Default axis is ns: a [1000, 2000) window hits by arrival
        // time, independent of how many frames were drawn before.
        let plan = FaultPlan::none().with_link_flap(Window::new(1000, 2000));
        assert_eq!(plan.axis, Axis::TimeNs);
        let mut st = FaultState::new(plan);
        assert!(!st.draw(999.9).link_down);
        assert!(st.draw(1000.0).link_down);
        assert!(st.draw(1999.0).link_down);
        assert!(!st.draw(2000.0).link_down);
        assert_eq!(st.frame_index(), 4, "every draw advances the counter");
    }

    #[test]
    fn frame_axis_ignores_the_clock() {
        let plan = FaultPlan::frame_indexed().with_rx_stall(Window::new(2, 4));
        let mut st = FaultState::new(plan);
        // Arrival times are wild, but the window spans frames 2 and 3.
        for (i, t) in [1e9, 0.0, 5.0, 7e12, 3.0].into_iter().enumerate() {
            assert_eq!(st.draw(t).stall, (2..4).contains(&i), "frame {i}");
        }
    }

    #[test]
    fn frame_indexed_draw_matches_next_frame() {
        // The compatibility constructor replays a pre-time-axis plan
        // byte-for-byte: draw(t) and next_frame() agree for any t.
        let mk = || {
            FaultPlan::frame_indexed()
                .with_seed(11)
                .with_corrupt_prob(0.3)
                .with_truncate_prob(0.2)
                .with_link_flap(Window::new(10, 30))
                .with_pool_exhaustion(Window::new(50, 60))
        };
        let mut a = FaultState::new(mk());
        let mut b = FaultState::new(mk());
        for i in 0..100 {
            assert_eq!(a.draw(i as f64 * 321.5), b.next_frame());
        }
    }

    #[test]
    fn per_queue_stall_hits_only_its_queue() {
        let plan = FaultPlan::frame_indexed().with_queue_rx_stall(2, Window::new(0, 100));
        let mut st = FaultState::new(plan);
        assert!(!st.draw_for_queue(0.0, 0).stall);
        assert!(st.draw_for_queue(0.0, 2).stall);
        assert!(!st.draw(0.0).stall, "queue-agnostic draw skips it");
        // A global stall window still hits every queue.
        let plan = FaultPlan::frame_indexed().with_rx_stall(Window::new(0, 100));
        let mut st = FaultState::new(plan);
        assert!(st.draw_for_queue(0.0, 7).stall);
    }

    #[test]
    fn tx_stall_is_pure_and_axis_aware() {
        let plan = FaultPlan::none().with_tx_stall(Window::new(500, 700));
        let st = FaultState::new(plan);
        assert!(!st.tx_stalled(499.0));
        assert!(st.tx_stalled(500.0));
        assert!(st.tx_stalled(699.9));
        assert!(!st.tx_stalled(700.0));
        // Frame axis: resolved against the frame counter.
        let plan = FaultPlan::frame_indexed().with_tx_stall(Window::new(2, 3));
        let mut st = FaultState::new(plan);
        assert!(!st.tx_stalled(1e9));
        st.next_frame();
        st.next_frame();
        assert!(st.tx_stalled(0.0), "after two frames the counter is 2");
    }

    #[test]
    fn ready_overrun_window_sets_ready_blocked() {
        let plan = FaultPlan::none().with_ready_overrun(Window::new(100, 200));
        assert!(!plan.is_none());
        let mut st = FaultState::new(plan);
        assert!(!st.draw(50.0).ready_blocked);
        assert!(st.draw(150.0).ready_blocked);
        assert!(!st.draw(250.0).ready_blocked);
    }
}
