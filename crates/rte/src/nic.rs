//! The NIC model and poll-mode driver (PMD).
//!
//! Receive path, mirroring real descriptor-based NICs (§4.1):
//!
//! 1. The driver **posts** mbufs to an RX queue: it picks the buffer's
//!    `data_off` (the [`HeadroomPolicy`] hook — fixed 128 B in stock
//!    DPDK, slice-aware in CacheDirector), writes the metadata, and hands
//!    the DMA address to the NIC.
//! 2. On packet arrival the NIC **steers** the frame to a queue (RSS or
//!    FlowDirector), consumes a posted descriptor and DMAs the frame into
//!    the buffer through DDIO — which is what places the first 64 B into
//!    an LLC slice. No posted descriptor ⇒ the frame is dropped and
//!    counted (`rx_nodesc`), which is how the NIC-side throughput ceiling
//!    of Table 3 manifests.
//! 3. The application polls completions with [`Port::rx_burst`], fills
//!    metadata (timed), processes, and transmits via [`Port::tx_burst`],
//!    which DMA-reads the frame out and recycles the buffer.

use crate::fault::FrameFault;
use crate::mempool::MbufPool;
use crate::ring::Ring;
use crate::steering::Steering;
use llc_sim::addr::PhysAddr;
use llc_sim::epoch::CoreMem;
use llc_sim::hierarchy::Cycles;
use llc_sim::machine::Machine;
use trafficgen::FlowTuple;

/// Default RX queue depth in descriptors.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

/// Frames shorter than an Ethernet header are runts; the MAC drops them
/// before software ever sees them, like a bad FCS.
pub const MIN_MAC_FRAME: usize = 14;

/// Chooses each posted buffer's `data_off`.
///
/// Invoked by the driver just before handing the buffer to the NIC —
/// exactly where CacheDirector intervenes ("at run time CacheDirector
/// sets the actual headroom size just before giving the address to the
/// NIC for DMA-ing packets", §4.2).
pub trait HeadroomPolicy {
    /// `data_off` for `mbuf`, to be received on a queue processed by
    /// `core`. May read mbuf metadata (timed on `core`).
    fn data_off(&mut self, m: &mut Machine, pool: &MbufPool, mbuf: u32, core: usize) -> u16;
}

/// Stock DPDK: every buffer gets the same fixed headroom.
#[derive(Debug, Clone, Copy)]
pub struct FixedHeadroom(pub u16);

impl HeadroomPolicy for FixedHeadroom {
    fn data_off(&mut self, _m: &mut Machine, pool: &MbufPool, _mbuf: u32, _core: usize) -> u16 {
        self.0.min(pool.headroom_cap())
    }
}

/// A descriptor the driver posted to the NIC.
#[derive(Debug, Clone, Copy)]
struct PostedDesc {
    mbuf: u32,
    data_pa: PhysAddr,
}

/// A received-packet completion, as read from the RX descriptor.
#[derive(Debug, Clone, Copy)]
pub struct RxCompletion {
    /// The buffer holding the frame.
    pub mbuf: u32,
    /// Physical address of the frame start (headroom applied).
    pub data_pa: PhysAddr,
    /// Frame length in bytes.
    pub len: u16,
    /// Arrival timestamp in simulated nanoseconds.
    pub arrival_ns: f64,
    /// FlowDirector mark, when a rule attached one.
    pub mark: Option<u32>,
}

/// A frame handed to [`Port::tx_burst`].
#[derive(Debug, Clone, Copy)]
pub struct TxDesc {
    /// Buffer to transmit and recycle.
    pub mbuf: u32,
    /// Frame start.
    pub data_pa: PhysAddr,
    /// Frame length.
    pub len: u16,
}

/// Why the NIC dropped a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The target queue had no posted descriptors.
    NoDescriptor,
    /// The NIC's packet-rate ceiling was exceeded.
    Overrun,
    /// Hardware CRC check failed (corrupt frame or runt).
    CrcError,
    /// The link was down when the frame arrived.
    LinkDown,
    /// The RX engine was stalled (not draining descriptors).
    RxStall,
    /// The completion (ready) ring was backed up: descriptors were
    /// posted, but the application was not polling completions fast
    /// enough and the frame had nowhere to land.
    ReadyOverrun,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::NoDescriptor => "no posted descriptor",
            Self::Overrun => "packet-rate overrun",
            Self::CrcError => "bad CRC / runt",
            Self::LinkDown => "link down",
            Self::RxStall => "rx engine stalled",
            Self::ReadyOverrun => "completion ring overrun",
        };
        f.write_str(s)
    }
}

/// Port-level counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct PortStats {
    /// Frames delivered into RX queues.
    pub rx_pkts: u64,
    /// Bytes delivered into RX queues.
    pub rx_bytes: u64,
    /// Frames dropped for lack of posted descriptors.
    pub rx_nodesc: u64,
    /// Frames dropped by the NIC packet-rate ceiling.
    pub rx_overrun: u64,
    /// Frames dropped by the hardware CRC check (corrupt or runt).
    pub rx_crc: u64,
    /// Frames lost while the link was down.
    pub rx_linkdown: u64,
    /// Frames lost while the RX engine was stalled.
    pub rx_stall: u64,
    /// Frames lost because the completion ring was backed up while
    /// descriptors were still posted (application not polling).
    pub rx_ready_overrun: u64,
    /// Frames transmitted.
    pub tx_pkts: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
}

impl PortStats {
    /// Every frame the NIC dropped, across all causes.
    pub fn rx_dropped(&self) -> u64 {
        self.rx_nodesc
            + self.rx_overrun
            + self.rx_crc
            + self.rx_linkdown
            + self.rx_stall
            + self.rx_ready_overrun
    }
}

/// One RX queue: posted descriptors and ready completions.
#[derive(Debug)]
struct RxQueue {
    posted: Ring<PostedDesc>,
    ready: Ring<RxCompletion>,
    rx_pkts: u64,
}

/// A NIC port with multi-queue RX steering.
#[derive(Debug)]
pub struct Port {
    id: u16,
    queues: Vec<RxQueue>,
    steering: Steering,
    stats: PortStats,
    /// Minimum spacing between accepted frames (0 = unlimited). Models
    /// the NIC/PCIe packet-rate ceiling the paper attributes its ~76 Gbps
    /// limit to ("the Mellanox NIC's limitation for packets smaller than
    /// 512 B and other architectural limitations such as PCIe and DDIO",
    /// §5.1.2).
    rx_gap_ns: f64,
    next_accept_ns: f64,
}

impl Port {
    /// A port whose steering decides the queue count, with `depth`
    /// descriptors per queue.
    pub fn new(id: u16, steering: Steering, depth: usize) -> Self {
        let queues = (0..steering.queues())
            .map(|_| RxQueue {
                posted: Ring::new(depth),
                ready: Ring::new(depth),
                rx_pkts: 0,
            })
            .collect();
        Self {
            id,
            queues,
            steering,
            stats: PortStats::default(),
            rx_gap_ns: 0.0,
            next_accept_ns: 0.0,
        }
    }

    /// Caps the RX packet rate at `mpps` million packets per second
    /// (the NIC/PCIe ceiling; pass `None` to lift the cap).
    pub fn set_rx_rate_limit(&mut self, mpps: Option<f64>) {
        self.rx_gap_ns = match mpps {
            None => 0.0,
            Some(r) => {
                assert!(r > 0.0, "rate must be positive");
                1e3 / r
            }
        };
    }

    /// Port id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Number of RX queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Counters.
    pub fn stats(&self) -> PortStats {
        self.stats
    }

    /// Frames received so far on queue `q`.
    pub fn queue_rx_pkts(&self, q: usize) -> u64 {
        self.queues[q].rx_pkts
    }

    /// Posted descriptors currently available on queue `q`.
    pub fn posted_count(&self, q: usize) -> usize {
        self.queues[q].posted.len()
    }

    /// Completions waiting on queue `q`.
    pub fn ready_count(&self, q: usize) -> usize {
        self.queues[q].ready.len()
    }

    /// Mutable access to the steering table (rule installation).
    pub fn steering_mut(&mut self) -> &mut Steering {
        &mut self.steering
    }

    /// Driver: posts `mbuf` with headroom `data_off` to queue `q`.
    ///
    /// Writes the chosen `data_off` into the mbuf metadata (timed on
    /// `core`) and hands the DMA address to the NIC. Fails when the
    /// posted ring is full.
    pub fn post(
        &mut self,
        m: &mut Machine,
        pool: &MbufPool,
        q: usize,
        core: usize,
        mbuf: u32,
        data_off: u16,
    ) -> Result<Cycles, u32> {
        let meta = pool.meta(mbuf);
        if self.queues[q].posted.is_full() {
            return Err(mbuf);
        }
        let cycles = meta.set_data_off(m, core, data_off);
        let desc = PostedDesc {
            mbuf,
            data_pa: meta.data_pa_for(data_off),
        };
        if self.queues[q].posted.enqueue(desc).is_err() {
            // Unreachable after the is_full check, but degrade by handing
            // the buffer back rather than panicking.
            return Err(mbuf);
        }
        Ok(cycles)
    }

    /// Driver: tops queue `q` back up to `target` posted descriptors,
    /// allocating from `pool` and applying `policy`. Returns `(posted,
    /// cycles)`.
    pub fn refill(
        &mut self,
        m: &mut Machine,
        pool: &mut MbufPool,
        q: usize,
        core: usize,
        policy: &mut dyn HeadroomPolicy,
        target: usize,
    ) -> (usize, Cycles) {
        let mut cycles = 0;
        let mut posted = 0;
        while self.queues[q].posted.len() < target {
            let Some(mbuf) = pool.get() else { break };
            let off = policy.data_off(m, pool, mbuf, core);
            match self.post(m, pool, q, core, mbuf, off) {
                Ok(c) => {
                    cycles += c;
                    posted += 1;
                }
                Err(mb) => {
                    pool.put(mb);
                    break;
                }
            }
        }
        (posted, cycles)
    }

    /// NIC: a frame arrives. Steers, consumes a posted descriptor and
    /// DMA-writes the frame (DDIO). Returns the queue it landed on.
    pub fn deliver(
        &mut self,
        m: &mut Machine,
        frame: &[u8],
        flow: &FlowTuple,
        arrival_ns: f64,
    ) -> Result<usize, DropReason> {
        self.deliver_faulty(m, frame, flow, arrival_ns, FrameFault::clean())
    }

    /// NIC: steers `flow` to `(queue, mark)` without delivering anything.
    ///
    /// Splitting steering from delivery lets a caller learn the target
    /// queue first (e.g. to draw queue-scoped faults) and then complete
    /// the delivery with [`Port::deliver_routed`]. Mutable because
    /// FlowDirector auto-insertion may install a rule.
    pub fn route(&mut self, flow: &FlowTuple) -> (usize, Option<u32>) {
        self.steering.steer(flow)
    }

    /// [`Port::deliver`] with an injected [`FrameFault`] applied, in the
    /// order the hardware would: carrier loss first, then the MAC's
    /// packet-rate ceiling, then the (possibly stalled) RX engine, then
    /// the CRC/runt check, then descriptor consumption.
    /// Truncated-but-parseable frames are delivered at their shortened
    /// length; rejecting them is software's job.
    pub fn deliver_faulty(
        &mut self,
        m: &mut Machine,
        frame: &[u8],
        flow: &FlowTuple,
        arrival_ns: f64,
        fault: FrameFault,
    ) -> Result<usize, DropReason> {
        let (q, mark) = self.route(flow);
        self.deliver_routed(m, frame, q, mark, arrival_ns, fault)
            .map(|()| q)
    }

    /// Delivery once steering has already picked queue `q` (see
    /// [`Port::route`]): consumes a posted descriptor and DMA-writes the
    /// frame through DDIO.
    pub fn deliver_routed(
        &mut self,
        m: &mut Machine,
        frame: &[u8],
        q: usize,
        mark: Option<u32>,
        arrival_ns: f64,
        fault: FrameFault,
    ) -> Result<(), DropReason> {
        if fault.link_down {
            self.stats.rx_linkdown += 1;
            return Err(DropReason::LinkDown);
        }
        if self.rx_gap_ns > 0.0 {
            // Leaky bucket: the NIC pipeline absorbs short bursts (a few
            // dozen frames) but sustained input beyond `1/rx_gap_ns` pps
            // overruns it.
            const BURST_FRAMES: f64 = 32.0;
            self.next_accept_ns = self.next_accept_ns.max(arrival_ns);
            if self.next_accept_ns - arrival_ns > BURST_FRAMES * self.rx_gap_ns {
                self.stats.rx_overrun += 1;
                return Err(DropReason::Overrun);
            }
            self.next_accept_ns += self.rx_gap_ns;
        }
        if fault.stall {
            self.stats.rx_stall += 1;
            return Err(DropReason::RxStall);
        }
        // Hardware CRC verification: corrupt frames and runts (too short
        // to carry an Ethernet header) die at the MAC.
        let wire_len = fault
            .truncate_to
            .map_or(frame.len(), |t| t.min(frame.len()));
        if fault.corrupt || wire_len < MIN_MAC_FRAME {
            self.stats.rx_crc += 1;
            return Err(DropReason::CrcError);
        }
        let frame = &frame[..wire_len];
        if self.queues[q].posted.is_empty() {
            self.stats.rx_nodesc += 1;
            return Err(DropReason::NoDescriptor);
        }
        if fault.ready_blocked || self.queues[q].ready.is_full() {
            // Completion ring backed up (application not polling): the
            // frame is lost but the descriptor stays posted.
            self.stats.rx_ready_overrun += 1;
            return Err(DropReason::ReadyOverrun);
        }
        let Some(desc) = self.queues[q].posted.dequeue() else {
            // Unreachable after the is_empty check, but degrade by
            // counting rather than panicking.
            self.stats.rx_nodesc += 1;
            return Err(DropReason::NoDescriptor);
        };
        m.dma_write(desc.data_pa, frame);
        let completion = RxCompletion {
            mbuf: desc.mbuf,
            data_pa: desc.data_pa,
            len: frame.len() as u16,
            arrival_ns,
            mark,
        };
        if self.queues[q].ready.enqueue(completion).is_err() {
            // Unreachable after the is_full check; degrade by re-posting
            // the descriptor and counting the loss.
            let _ = self.queues[q].posted.enqueue(desc);
            self.stats.rx_ready_overrun += 1;
            return Err(DropReason::ReadyOverrun);
        }
        self.queues[q].rx_pkts += 1;
        self.stats.rx_pkts += 1;
        self.stats.rx_bytes += frame.len() as u64;
        Ok(())
    }

    /// PMD: harvests up to `max` completions from queue `q` and fills the
    /// mbuf metadata (timed on `core`), like the RX path of a real driver.
    pub fn rx_burst(
        &mut self,
        m: &mut Machine,
        pool: &MbufPool,
        q: usize,
        core: usize,
        max: usize,
    ) -> (Vec<RxCompletion>, Cycles) {
        let batch = self.queues[q].ready.dequeue_burst(max);
        let cycles = fill_rx_meta(m, pool, self.id, q, core, &batch);
        (batch, cycles)
    }

    /// Splits the port's RX queues into per-queue [`RxView`]s, one per
    /// queue, for worker-side polling during an engine epoch. While the
    /// views are alive the port is fully borrowed; stats and posted rings
    /// stay coordinator-side.
    pub fn rx_views(&mut self) -> Vec<RxView<'_>> {
        let id = self.id;
        self.queues
            .iter_mut()
            .enumerate()
            .map(|(q, rq)| RxView {
                port_id: id,
                queue: q,
                ready: &mut rq.ready,
            })
            .collect()
    }

    /// PMD: transmits frames and recycles their buffers. The NIC DMA-reads
    /// each frame (untimed for the core); per-descriptor doorbell cost is
    /// charged to `core`.
    ///
    /// Equivalent to [`tx_wire`] (the worker-side, timed half) followed by
    /// [`Port::tx_commit`] (the coordinator-side stats + recycle half).
    pub fn tx_burst(
        &mut self,
        m: &mut Machine,
        pool: &mut MbufPool,
        core: usize,
        frames: &[TxDesc],
    ) -> Cycles {
        let cycles = tx_wire(m, core, frames);
        self.tx_commit(pool, frames);
        cycles
    }

    /// The coordinator-side half of a transmit: counts the frames and
    /// recycles their buffers. The timed wire work ([`tx_wire`]) must have
    /// been charged on the transmitting core already.
    pub fn tx_commit(&mut self, pool: &mut MbufPool, frames: &[TxDesc]) {
        for d in frames {
            self.stats.tx_pkts += 1;
            self.stats.tx_bytes += u64::from(d.len);
            pool.put(d.mbuf);
        }
    }
}

/// The worker-side half of a transmit: the per-descriptor doorbell store
/// (timed on `core`) and the NIC's DMA read of each frame. Carries no
/// port state so it can run inside an engine epoch; pair with
/// [`Port::tx_commit`] at the merge.
pub fn tx_wire<M: CoreMem + ?Sized>(m: &mut M, core: usize, frames: &[TxDesc]) -> Cycles {
    let mut cycles = 0;
    let mut scratch = vec![0u8; 2048];
    for d in frames {
        // Doorbell/descriptor write: one store.
        cycles += m.touch_write(core, d.data_pa);
        m.dma_read(d.data_pa, &mut scratch[..d.len as usize]);
    }
    cycles
}

/// Fills RX metadata for a harvested batch (timed on `core`) — the
/// driver-side cost shared by [`Port::rx_burst`] and [`RxView::rx_burst`].
fn fill_rx_meta<M: CoreMem + ?Sized>(
    m: &mut M,
    pool: &MbufPool,
    port_id: u16,
    q: usize,
    core: usize,
    batch: &[RxCompletion],
) -> Cycles {
    let mut cycles = 0;
    for c in batch {
        let meta = pool.meta(c.mbuf);
        cycles += meta.set_data_len(m, core, c.len);
        cycles += meta.set_pkt_len(m, core, u32::from(c.len));
        cycles += meta.set_port(m, core, port_id);
        cycles += meta.set_queue(m, core, q as u16);
    }
    cycles
}

/// A worker-owned view of one RX queue's completion ring, split out of a
/// [`Port`] with [`Port::rx_views`] for the duration of an engine epoch.
///
/// Only the polling half of the driver lives here; posting, refill and
/// delivery stay on the coordinator, so the view is `Send` and disjoint
/// from every other queue's state.
#[derive(Debug)]
pub struct RxView<'a> {
    port_id: u16,
    queue: usize,
    ready: &'a mut Ring<RxCompletion>,
}

impl RxView<'_> {
    /// The queue this view polls.
    pub fn queue(&self) -> usize {
        self.queue
    }

    /// Completions currently waiting.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// PMD: harvests up to `max` completions and fills the mbuf metadata
    /// (timed on `core`) — [`Port::rx_burst`] against the split view.
    pub fn rx_burst<M: CoreMem + ?Sized>(
        &mut self,
        m: &mut M,
        pool: &MbufPool,
        core: usize,
        max: usize,
    ) -> (Vec<RxCompletion>, Cycles) {
        let batch = self.ready.dequeue_burst(max);
        let cycles = fill_rx_meta(m, pool, self.port_id, self.queue, core, &batch);
        (batch, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steering::{FlowDirector, Rss};
    use llc_sim::machine::MachineConfig;

    fn setup() -> (Machine, MbufPool, Port) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
        let pool = MbufPool::create(&mut m, 256, 128, 2048).unwrap();
        let port = Port::new(0, Steering::Rss(Rss::new(2)), 64);
        (m, pool, port)
    }

    fn flow() -> FlowTuple {
        FlowTuple::tcp(0x0a000001, 1234, 0xc0a80001, 80)
    }

    #[test]
    fn rx_path_roundtrip() {
        let (mut m, mut pool, mut port) = setup();
        let mut policy = FixedHeadroom(128);
        for q in 0..2 {
            port.refill(&mut m, &mut pool, q, 0, &mut policy, 32);
        }
        let frame = vec![0xaau8; 100];
        let q = port.deliver(&mut m, &frame, &flow(), 10.0).unwrap();
        let (batch, _) = port.rx_burst(&mut m, &pool, q, 0, 32);
        assert_eq!(batch.len(), 1);
        let c = batch[0];
        assert_eq!(c.len, 100);
        assert_eq!(c.arrival_ns, 10.0);
        // The frame bytes are in simulated memory at data_pa.
        let mut buf = vec![0u8; 100];
        m.mem().read(c.data_pa, &mut buf);
        assert_eq!(buf, frame);
        // Metadata was filled by the driver.
        assert_eq!(pool.meta(c.mbuf).data_len(&mut m, 0).0, 100);
        assert_eq!(pool.meta(c.mbuf).port(&mut m, 0).0, 0);
    }

    #[test]
    fn ddio_places_frame_in_llc() {
        let (mut m, mut pool, mut port) = setup();
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 8);
        port.refill(&mut m, &mut pool, 1, 0, &mut policy, 8);
        let frame = vec![1u8; 64];
        let q = port.deliver(&mut m, &frame, &flow(), 0.0).unwrap();
        let (batch, _) = port.rx_burst(&mut m, &pool, q, 0, 8);
        let c = batch[0];
        let slice = m.slice_of(c.data_pa);
        assert!(m.llc_probe(slice, c.data_pa), "DDIO fills the LLC");
    }

    #[test]
    fn no_descriptor_drops_and_counts() {
        let (mut m, _pool, mut port) = setup();
        let frame = vec![0u8; 64];
        let err = port.deliver(&mut m, &frame, &flow(), 0.0).unwrap_err();
        assert_eq!(err, DropReason::NoDescriptor);
        assert_eq!(port.stats().rx_nodesc, 1);
        assert_eq!(port.stats().rx_pkts, 0);
    }

    #[test]
    fn refill_respects_pool_and_target() {
        let (mut m, mut pool, mut port) = setup();
        let mut policy = FixedHeadroom(128);
        let (n, _) = port.refill(&mut m, &mut pool, 0, 0, &mut policy, 16);
        assert_eq!(n, 16);
        assert_eq!(port.posted_count(0), 16);
        // Second refill to the same target posts nothing.
        let (n, _) = port.refill(&mut m, &mut pool, 0, 0, &mut policy, 16);
        assert_eq!(n, 0);
    }

    #[test]
    fn tx_recycles_buffers() {
        let (mut m, mut pool, mut port) = setup();
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 4);
        port.refill(&mut m, &mut pool, 1, 0, &mut policy, 4);
        let before = pool.available();
        let frame = vec![7u8; 200];
        let q = port.deliver(&mut m, &frame, &flow(), 0.0).unwrap();
        let (batch, _) = port.rx_burst(&mut m, &pool, q, 0, 4);
        let c = batch[0];
        port.tx_burst(
            &mut m,
            &mut pool,
            0,
            &[TxDesc {
                mbuf: c.mbuf,
                data_pa: c.data_pa,
                len: c.len,
            }],
        );
        assert_eq!(pool.available(), before + 1);
        let s = port.stats();
        assert_eq!(s.tx_pkts, 1);
        assert_eq!(s.tx_bytes, 200);
    }

    #[test]
    fn fdir_mark_is_delivered() {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
        let mut pool = MbufPool::create(&mut m, 64, 128, 2048).unwrap();
        let mut fd = FlowDirector::new(2);
        fd.set_rule(
            flow(),
            crate::steering::FdirAction {
                queue: 1,
                mark: Some(777),
            },
        );
        let mut port = Port::new(0, Steering::FlowDirector(fd), 16);
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 1, 0, &mut policy, 8);
        let q = port.deliver(&mut m, &[0u8; 64], &flow(), 0.0).unwrap();
        assert_eq!(q, 1);
        let (batch, _) = port.rx_burst(&mut m, &pool, 1, 0, 8);
        assert_eq!(batch[0].mark, Some(777));
    }

    #[test]
    fn queue_exhaustion_limits_throughput() {
        // Keep delivering without polling: after `depth` frames the queue
        // starts dropping — the NIC-side ceiling of Table 3.
        let (mut m, mut pool, mut port) = setup();
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 64);
        port.refill(&mut m, &mut pool, 1, 0, &mut policy, 64);
        let mut delivered = 0;
        let mut dropped = 0;
        for i in 0..200u32 {
            let f = FlowTuple::tcp(i, 1, 2, 3);
            match port.deliver(&mut m, &[0u8; 64], &f, 0.0) {
                Ok(_) => delivered += 1,
                Err(_) => dropped += 1,
            }
        }
        assert_eq!(delivered, 128);
        assert_eq!(dropped, 72);
        assert_eq!(port.stats().rx_nodesc, 72);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::steering::{Rss, Steering};
    use llc_sim::machine::MachineConfig;

    fn setup() -> (Machine, MbufPool, Port) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
        let pool = MbufPool::create(&mut m, 64, 128, 2048).unwrap();
        let port = Port::new(0, Steering::Rss(Rss::new(1)), 16);
        (m, pool, port)
    }

    fn flow() -> FlowTuple {
        FlowTuple::tcp(0x0a000001, 1234, 0xc0a80001, 80)
    }

    #[test]
    fn corrupt_frame_dies_at_the_mac() {
        let (mut m, mut pool, mut port) = setup();
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 8);
        let fault = FrameFault {
            corrupt: true,
            ..FrameFault::clean()
        };
        let err = port
            .deliver_faulty(&mut m, &[0u8; 64], &flow(), 0.0, fault)
            .unwrap_err();
        assert_eq!(err, DropReason::CrcError);
        assert_eq!(port.stats().rx_crc, 1);
        assert_eq!(port.posted_count(0), 8, "no descriptor consumed");
    }

    #[test]
    fn runt_truncation_counts_as_crc() {
        let (mut m, mut pool, mut port) = setup();
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 8);
        let fault = FrameFault {
            truncate_to: Some(MIN_MAC_FRAME - 1),
            ..FrameFault::clean()
        };
        let err = port
            .deliver_faulty(&mut m, &[0u8; 64], &flow(), 0.0, fault)
            .unwrap_err();
        assert_eq!(err, DropReason::CrcError);
        assert_eq!(port.stats().rx_crc, 1);
    }

    #[test]
    fn parseable_truncation_is_delivered_short() {
        let (mut m, mut pool, mut port) = setup();
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 8);
        let fault = FrameFault {
            truncate_to: Some(40),
            ..FrameFault::clean()
        };
        let q = port
            .deliver_faulty(&mut m, &[0xabu8; 100], &flow(), 0.0, fault)
            .unwrap();
        let (batch, _) = port.rx_burst(&mut m, &pool, q, 0, 8);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].len, 40, "delivered at the truncated length");
        assert_eq!(port.stats().rx_bytes, 40);
    }

    #[test]
    fn link_down_and_stall_are_counted_separately() {
        let (mut m, mut pool, mut port) = setup();
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 8);
        let down = FrameFault {
            link_down: true,
            ..FrameFault::clean()
        };
        let stall = FrameFault {
            stall: true,
            ..FrameFault::clean()
        };
        assert_eq!(
            port.deliver_faulty(&mut m, &[0u8; 64], &flow(), 0.0, down),
            Err(DropReason::LinkDown)
        );
        assert_eq!(
            port.deliver_faulty(&mut m, &[0u8; 64], &flow(), 1.0, stall),
            Err(DropReason::RxStall)
        );
        let s = port.stats();
        assert_eq!(s.rx_linkdown, 1);
        assert_eq!(s.rx_stall, 1);
        assert_eq!(s.rx_dropped(), 2);
        assert_eq!(s.rx_pkts, 0);
    }

    #[test]
    fn clean_fault_is_transparent() {
        let (mut m, mut pool, mut port) = setup();
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 8);
        let q = port
            .deliver_faulty(&mut m, &[0u8; 64], &flow(), 0.0, FrameFault::clean())
            .unwrap();
        assert_eq!(port.queue_rx_pkts(q), 1);
        assert_eq!(port.stats().rx_dropped(), 0);
    }

    #[test]
    fn ready_ring_backpressure_drops_without_panicking() {
        // Post more descriptors than the ready ring can hold and never
        // poll: deliveries beyond the ring capacity must fail cleanly.
        let (mut m, mut pool, mut port) = setup();
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 16);
        let mut ok = 0;
        let mut dropped = 0;
        for i in 0..40 {
            match port.deliver(&mut m, &[0u8; 64], &flow(), i as f64) {
                Ok(_) => ok += 1,
                Err(DropReason::NoDescriptor) => dropped += 1,
                Err(other) => panic!("unexpected drop reason {other:?}"),
            }
        }
        assert_eq!(ok, 16);
        assert_eq!(dropped, 24);
        assert_eq!(port.stats().rx_nodesc, 24);
    }

    #[test]
    fn ready_overrun_when_polling_stops_but_descriptors_remain() {
        // Fill the completion ring, then restock the posted ring without
        // ever polling: the next arrival has a descriptor but nowhere to
        // complete — that is ReadyOverrun, distinct from NoDescriptor.
        let (mut m, mut pool, mut port) = setup();
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 16);
        for i in 0..16 {
            port.deliver(&mut m, &[0u8; 64], &flow(), i as f64).unwrap();
        }
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 16);
        assert_eq!(port.posted_count(0), 16);
        let err = port.deliver(&mut m, &[0u8; 64], &flow(), 20.0).unwrap_err();
        assert_eq!(err, DropReason::ReadyOverrun);
        assert_eq!(port.stats().rx_ready_overrun, 1);
        assert_eq!(port.posted_count(0), 16, "the descriptor stays posted");
    }

    #[test]
    fn injected_ready_block_counts_as_overrun() {
        let (mut m, mut pool, mut port) = setup();
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 8);
        let fault = FrameFault {
            ready_blocked: true,
            ..FrameFault::clean()
        };
        let err = port
            .deliver_faulty(&mut m, &[0u8; 64], &flow(), 0.0, fault)
            .unwrap_err();
        assert_eq!(err, DropReason::ReadyOverrun);
        assert_eq!(port.stats().rx_ready_overrun, 1);
        assert_eq!(port.posted_count(0), 8, "no descriptor consumed");
        assert_eq!(port.ready_count(0), 0);
    }

    #[test]
    fn route_then_deliver_routed_matches_deliver() {
        let (mut m, mut pool, mut port) = setup();
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 8);
        let (q, mark) = port.route(&flow());
        port.deliver_routed(&mut m, &[0u8; 64], q, mark, 0.0, FrameFault::clean())
            .unwrap();
        let (batch, _) = port.rx_burst(&mut m, &pool, q, 0, 8);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].len, 64);
    }
}

#[cfg(test)]
mod rate_limit_tests {
    use super::*;
    use crate::steering::{Rss, Steering};
    use llc_sim::machine::MachineConfig;

    /// The leaky bucket must admit ~cap/offered of a sustained stream —
    /// not alias to 50 % when the arrival period is just below the gap
    /// (the bug a naive `next_accept = arrival + gap` check had).
    #[test]
    fn rate_limit_converges_to_cap() {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
        let mut pool = MbufPool::create(&mut m, 4096, 128, 2048).unwrap();
        let mut port = Port::new(0, Steering::Rss(Rss::new(1)), 4096);
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 4096);
        // Cap 10 Mpps (gap 100 ns); offer 13 Mpps (period ~76.9 ns).
        port.set_rx_rate_limit(Some(10.0));
        let flow = FlowTuple::tcp(1, 2, 3, 4);
        let mut accepted = 0;
        let n = 4000;
        for i in 0..n {
            let t = i as f64 * 76.923;
            if port.deliver(&mut m, &[0u8; 64], &flow, t).is_ok() {
                accepted += 1;
            }
        }
        let frac = accepted as f64 / n as f64;
        assert!(
            (frac - 10.0 / 13.0).abs() < 0.03,
            "acceptance {frac} should be ~{:.3}",
            10.0 / 13.0
        );
        assert_eq!(port.stats().rx_overrun, n - accepted);
    }

    /// Under the cap, nothing is dropped and bursts are absorbed.
    #[test]
    fn rate_limit_transparent_below_cap() {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
        let mut pool = MbufPool::create(&mut m, 512, 128, 2048).unwrap();
        let mut port = Port::new(0, Steering::Rss(Rss::new(1)), 512);
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 512);
        port.set_rx_rate_limit(Some(10.0));
        let flow = FlowTuple::tcp(1, 2, 3, 4);
        // A burst of 16 back-to-back frames, then spaced arrivals at half
        // the cap.
        for i in 0..16 {
            assert!(port.deliver(&mut m, &[0u8; 64], &flow, i as f64).is_ok());
        }
        for i in 0..100 {
            let t = 10_000.0 + i as f64 * 200.0;
            assert!(port.deliver(&mut m, &[0u8; 64], &flow, t).is_ok());
        }
        assert_eq!(port.stats().rx_overrun, 0);
    }

    /// Lifting the cap restores unlimited acceptance.
    #[test]
    fn rate_limit_can_be_lifted() {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
        let mut pool = MbufPool::create(&mut m, 256, 128, 2048).unwrap();
        let mut port = Port::new(0, Steering::Rss(Rss::new(1)), 256);
        let mut policy = FixedHeadroom(128);
        port.refill(&mut m, &mut pool, 0, 0, &mut policy, 256);
        port.set_rx_rate_limit(Some(0.001));
        let flow = FlowTuple::tcp(1, 2, 3, 4);
        port.deliver(&mut m, &[0u8; 64], &flow, 0.0).unwrap();
        // Far over the bucket: dropped.
        let mut dropped = 0;
        for i in 1..100 {
            if port.deliver(&mut m, &[0u8; 64], &flow, i as f64).is_err() {
                dropped += 1;
            }
        }
        assert!(dropped > 0);
        port.set_rx_rate_limit(None);
        for i in 0..50 {
            assert!(port
                .deliver(&mut m, &[0u8; 64], &flow, 1e9 + i as f64)
                .is_ok());
        }
    }
}
