//! The packet buffer (`rte_mbuf`) layout and metadata accessors.
//!
//! Fig. 9: each buffer object is the mbuf struct (metadata, exactly two
//! cache lines = 128 B), a headroom, and the data room that receives the
//! frame. Fig. 10: CacheDirector makes the headroom *dynamic* — `data_off`
//! moves so that the first 64 B of the frame land in the right LLC slice —
//! and saves its per-core headroom table in the otherwise unused
//! `udata64` metadata field, 4 bits per core ("since 832 ... is 13 cache
//! lines, 4 bits is sufficient for each core. Therefore, our solution
//! would be scalable for up to 16 cores").
//!
//! Metadata lives in simulated physical memory: reading a header field
//! from the data path costs cycles and occupies cache, like the real
//! thing. [`MbufMeta`] is the typed overlay.

use llc_sim::addr::PhysAddr;
use llc_sim::epoch::CoreMem;
use llc_sim::hierarchy::Cycles;

/// Size of the mbuf metadata struct: two cache lines (Fig. 9).
pub const MBUF_META_SIZE: usize = 128;

/// Default DPDK headroom (`RTE_PKTMBUF_HEADROOM`).
pub const DEFAULT_HEADROOM: u16 = 128;

/// Default data-room size.
pub const DEFAULT_DATAROOM: u16 = 2048;

/// Byte offsets of metadata fields within the object.
mod off {
    pub const DATA_OFF: usize = 0; // u16
    pub const DATA_LEN: usize = 2; // u16
    pub const PKT_LEN: usize = 4; // u32
    pub const UDATA64: usize = 8; // u64
    pub const PORT: usize = 16; // u16
    pub const QUEUE: usize = 18; // u16
}

/// Typed accessor for one mbuf's metadata, given the object's base
/// physical address.
///
/// All methods are *timed*: they walk the cache hierarchy on `core` and
/// return the cycles spent, because touching mbuf metadata is part of the
/// per-packet cost the paper is optimising.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MbufMeta {
    base: PhysAddr,
}

impl MbufMeta {
    /// Overlay at the object base address.
    pub fn at(base: PhysAddr) -> Self {
        Self { base }
    }

    /// The object's base address.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Physical address of the headroom start (offset 0 of the buffer
    /// area, directly after the metadata).
    pub fn buf_base(&self) -> PhysAddr {
        self.base.add(MBUF_META_SIZE as u64)
    }

    /// Physical address of the data start for a given `data_off`.
    pub fn data_pa_for(&self, data_off: u16) -> PhysAddr {
        self.buf_base().add(u64::from(data_off))
    }

    /// Reads `data_off` (headroom size).
    pub fn data_off<M: CoreMem + ?Sized>(&self, m: &mut M, core: usize) -> (u16, Cycles) {
        let mut b = [0u8; 2];
        let c = m.read_bytes(core, self.base.add(off::DATA_OFF as u64), &mut b);
        (u16::from_le_bytes(b), c)
    }

    /// Writes `data_off`.
    pub fn set_data_off<M: CoreMem + ?Sized>(&self, m: &mut M, core: usize, v: u16) -> Cycles {
        m.write_bytes(core, self.base.add(off::DATA_OFF as u64), &v.to_le_bytes())
    }

    /// Reads the segment data length.
    pub fn data_len<M: CoreMem + ?Sized>(&self, m: &mut M, core: usize) -> (u16, Cycles) {
        let mut b = [0u8; 2];
        let c = m.read_bytes(core, self.base.add(off::DATA_LEN as u64), &mut b);
        (u16::from_le_bytes(b), c)
    }

    /// Writes the segment data length.
    pub fn set_data_len<M: CoreMem + ?Sized>(&self, m: &mut M, core: usize, v: u16) -> Cycles {
        m.write_bytes(core, self.base.add(off::DATA_LEN as u64), &v.to_le_bytes())
    }

    /// Reads the total packet length.
    pub fn pkt_len<M: CoreMem + ?Sized>(&self, m: &mut M, core: usize) -> (u32, Cycles) {
        let mut b = [0u8; 4];
        let c = m.read_bytes(core, self.base.add(off::PKT_LEN as u64), &mut b);
        (u32::from_le_bytes(b), c)
    }

    /// Writes the total packet length.
    pub fn set_pkt_len<M: CoreMem + ?Sized>(&self, m: &mut M, core: usize, v: u32) -> Cycles {
        m.write_bytes(core, self.base.add(off::PKT_LEN as u64), &v.to_le_bytes())
    }

    /// Reads `udata64` (CacheDirector's per-core headroom table).
    pub fn udata64<M: CoreMem + ?Sized>(&self, m: &mut M, core: usize) -> (u64, Cycles) {
        let (v, c) = m.read_u64(core, self.base.add(off::UDATA64 as u64));
        (v, c)
    }

    /// Writes `udata64`.
    pub fn set_udata64<M: CoreMem + ?Sized>(&self, m: &mut M, core: usize, v: u64) -> Cycles {
        m.write_u64(core, self.base.add(off::UDATA64 as u64), v)
    }

    /// Reads the input port id.
    pub fn port<M: CoreMem + ?Sized>(&self, m: &mut M, core: usize) -> (u16, Cycles) {
        let mut b = [0u8; 2];
        let c = m.read_bytes(core, self.base.add(off::PORT as u64), &mut b);
        (u16::from_le_bytes(b), c)
    }

    /// Writes the input port id.
    pub fn set_port<M: CoreMem + ?Sized>(&self, m: &mut M, core: usize, v: u16) -> Cycles {
        m.write_bytes(core, self.base.add(off::PORT as u64), &v.to_le_bytes())
    }

    /// Reads the input queue id.
    pub fn queue<M: CoreMem + ?Sized>(&self, m: &mut M, core: usize) -> (u16, Cycles) {
        let mut b = [0u8; 2];
        let c = m.read_bytes(core, self.base.add(off::QUEUE as u64), &mut b);
        (u16::from_le_bytes(b), c)
    }

    /// Writes the input queue id.
    pub fn set_queue<M: CoreMem + ?Sized>(&self, m: &mut M, core: usize, v: u16) -> Cycles {
        m.write_bytes(core, self.base.add(off::QUEUE as u64), &v.to_le_bytes())
    }
}

/// Packs a per-core headroom table into `udata64`: for each of up to 16
/// cores, the number of *cache lines* of headroom that places the data
/// start in that core's preferred slice (Fig. 10, §4.2 "we save the
/// number of cache lines instead of actual headroom size").
pub fn pack_headroom_table(lines_per_core: &[u8]) -> u64 {
    assert!(lines_per_core.len() <= 16, "udata64 holds 16 nibbles");
    let mut v = 0u64;
    for (core, &lines) in lines_per_core.iter().enumerate() {
        assert!(lines < 16, "headroom beyond 15 lines does not fit a nibble");
        v |= u64::from(lines) << (core * 4);
    }
    v
}

/// Extracts core `core`'s headroom line count from a packed `udata64`.
pub fn unpack_headroom_lines(udata: u64, core: usize) -> u8 {
    assert!(core < 16, "udata64 holds 16 nibbles");
    ((udata >> (core * 4)) & 0xf) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::machine::{Machine, MachineConfig};

    fn machine() -> Machine {
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20))
    }

    #[test]
    fn metadata_roundtrip() {
        let mut m = machine();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let meta = MbufMeta::at(r.pa(0));
        meta.set_data_off(&mut m, 0, 256);
        meta.set_data_len(&mut m, 0, 1500);
        meta.set_pkt_len(&mut m, 0, 1500);
        meta.set_udata64(&mut m, 0, 0xdead_beef);
        meta.set_port(&mut m, 0, 3);
        meta.set_queue(&mut m, 0, 5);
        assert_eq!(meta.data_off(&mut m, 0).0, 256);
        assert_eq!(meta.data_len(&mut m, 0).0, 1500);
        assert_eq!(meta.pkt_len(&mut m, 0).0, 1500);
        assert_eq!(meta.udata64(&mut m, 0).0, 0xdead_beef);
        assert_eq!(meta.port(&mut m, 0).0, 3);
        assert_eq!(meta.queue(&mut m, 0).0, 5);
    }

    #[test]
    fn metadata_access_costs_cycles() {
        let mut m = machine();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let meta = MbufMeta::at(r.pa(0));
        let (_, cold) = meta.data_off(&mut m, 0);
        let (_, hot) = meta.data_off(&mut m, 0);
        assert!(cold > hot, "first touch misses, second hits L1");
        assert_eq!(hot, 4);
    }

    #[test]
    fn data_pa_layout_matches_fig9() {
        let meta = MbufMeta::at(PhysAddr(0x1000));
        assert_eq!(meta.buf_base(), PhysAddr(0x1000 + 128));
        assert_eq!(meta.data_pa_for(128), PhysAddr(0x1000 + 256));
        assert_eq!(meta.data_pa_for(0), meta.buf_base());
    }

    #[test]
    fn headroom_table_roundtrip() {
        let lines: Vec<u8> = (0..16).map(|c| (c % 14) as u8).collect();
        let packed = pack_headroom_table(&lines);
        for (core, &want) in lines.iter().enumerate() {
            assert_eq!(unpack_headroom_lines(packed, core), want);
        }
    }

    #[test]
    fn headroom_table_13_lines_fits() {
        // §4.2: 832 B = 13 lines, the maximum the paper needed.
        let packed = pack_headroom_table(&[13; 16]);
        assert_eq!(unpack_headroom_lines(packed, 15), 13);
    }

    #[test]
    #[should_panic(expected = "does not fit a nibble")]
    fn headroom_table_rejects_16_lines() {
        pack_headroom_table(&[16]);
    }

    #[test]
    #[should_panic(expected = "16 nibbles")]
    fn headroom_table_rejects_17_cores() {
        pack_headroom_table(&[0; 17]);
    }
}
