//! Bounded FIFO rings of buffer handles (`librte_ring`'s role).
//!
//! DPDK queues are lockless multi-producer rings; the simulation is
//! single-threaded per construction (cores are simulated), so a bounded
//! deque with burst operations models the same behaviour: fixed capacity,
//! tail drops, and burst enqueue/dequeue.

use std::collections::VecDeque;

/// A bounded FIFO ring.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    cap: usize,
    drops: u64,
}

impl<T> Ring<T> {
    /// An empty ring holding at most `cap` elements.
    ///
    /// # Panics
    ///
    /// Panics when `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        Self {
            buf: VecDeque::with_capacity(cap),
            cap,
            drops: 0,
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True when full.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.cap
    }

    /// Elements dropped by failed enqueues.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Enqueues one element; on a full ring the element is dropped and
    /// returned as `Err` (tail drop), with the drop counted.
    pub fn enqueue(&mut self, v: T) -> Result<(), T> {
        if self.is_full() {
            self.drops += 1;
            Err(v)
        } else {
            self.buf.push_back(v);
            Ok(())
        }
    }

    /// Dequeues one element.
    pub fn dequeue(&mut self) -> Option<T> {
        self.buf.pop_front()
    }

    /// Dequeues up to `n` elements.
    pub fn dequeue_burst(&mut self, n: usize) -> Vec<T> {
        let take = n.min(self.buf.len());
        self.buf.drain(..take).collect()
    }

    /// Enqueues a burst, stopping at the first failure; returns how many
    /// were accepted (like `rte_ring_enqueue_burst`).
    pub fn enqueue_burst<I: IntoIterator<Item = T>>(&mut self, items: I) -> usize {
        let mut n = 0;
        for v in items {
            if self.enqueue(v).is_err() {
                break;
            }
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = Ring::new(4);
        r.enqueue(1).unwrap();
        r.enqueue(2).unwrap();
        assert_eq!(r.dequeue(), Some(1));
        assert_eq!(r.dequeue(), Some(2));
        assert_eq!(r.dequeue(), None);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut r = Ring::new(2);
        assert!(r.enqueue(1).is_ok());
        assert!(r.enqueue(2).is_ok());
        assert_eq!(r.enqueue(3), Err(3));
        assert_eq!(r.drops(), 1);
        assert!(r.is_full());
    }

    #[test]
    fn burst_ops() {
        let mut r = Ring::new(3);
        let accepted = r.enqueue_burst([1, 2, 3, 4, 5]);
        assert_eq!(accepted, 3);
        assert_eq!(r.dequeue_burst(2), vec![1, 2]);
        assert_eq!(r.dequeue_burst(10), vec![3]);
        assert!(r.is_empty());
    }

    #[test]
    fn len_tracking() {
        let mut r = Ring::new(8);
        assert_eq!(r.len(), 0);
        r.enqueue_burst(0..5);
        assert_eq!(r.len(), 5);
        r.dequeue();
        assert_eq!(r.len(), 4);
        assert_eq!(r.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        Ring::<u32>::new(0);
    }
}
