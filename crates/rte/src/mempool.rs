//! Hugepage-backed pools of fixed-size mbuf objects (`librte_mempool`).
//!
//! "After initialization, one or more memory pools are allocated from
//! hugepage(s) in memory. These memory pools include fixed-size elements
//! (objects)" (§4.1). Each object is metadata + headroom capacity + data
//! room, cache-line aligned so that Complex Addressing sees each object's
//! lines individually.

use crate::mbuf::{MbufMeta, DEFAULT_DATAROOM, MBUF_META_SIZE};
use llc_sim::addr::PhysAddr;
use llc_sim::machine::Machine;
use llc_sim::mem::{MemError, Region};
use llc_sim::CACHE_LINE;

/// A pool of `n` equally sized mbuf objects carved from one region.
#[derive(Debug)]
pub struct MbufPool {
    region: Region,
    n: u32,
    obj_size: usize,
    headroom_cap: u16,
    dataroom: u16,
    free: Vec<u32>,
    /// Fault injection: while set, `get` behaves as if the pool were
    /// empty (a transient allocation outage).
    outage: bool,
}

impl MbufPool {
    /// Creates a pool of `n` mbufs whose buffer area is `headroom_cap`
    /// bytes of (maximum) headroom plus `dataroom` bytes of data room.
    ///
    /// Stock DPDK uses a 128 B headroom; CacheDirector enlarges it to
    /// 832 B so the dynamic placement never shrinks the data area below a
    /// full frame (§4.2).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn create(
        m: &mut Machine,
        n: u32,
        headroom_cap: u16,
        dataroom: u16,
    ) -> Result<Self, MemError> {
        assert!(n > 0, "empty pool");
        let obj_size = (MBUF_META_SIZE + headroom_cap as usize + dataroom as usize)
            .next_multiple_of(CACHE_LINE);
        let region = m.mem_mut().alloc(obj_size * n as usize, CACHE_LINE)?;
        // LIFO free list: DPDK pools hand back recently returned (cache
        // hot) objects first.
        let free = (0..n).rev().collect();
        Ok(Self {
            region,
            n,
            obj_size,
            headroom_cap,
            dataroom,
            free,
            outage: false,
        })
    }

    /// Pool with the stock DPDK geometry (128 B headroom, 2 KB data room).
    pub fn create_default(m: &mut Machine, n: u32) -> Result<Self, MemError> {
        Self::create(m, n, crate::mbuf::DEFAULT_HEADROOM, DEFAULT_DATAROOM)
    }

    /// Total objects.
    pub fn capacity(&self) -> u32 {
        self.n
    }

    /// Objects currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Bytes of one object.
    pub fn obj_size(&self) -> usize {
        self.obj_size
    }

    /// Maximum headroom an mbuf of this pool can hold.
    pub fn headroom_cap(&self) -> u16 {
        self.headroom_cap
    }

    /// Data-room size.
    pub fn dataroom(&self) -> u16 {
        self.dataroom
    }

    /// The backing region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Base physical address of object `idx`.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range index.
    pub fn obj_base(&self, idx: u32) -> PhysAddr {
        assert!(idx < self.n, "mbuf index out of range");
        self.region.pa(idx as usize * self.obj_size)
    }

    /// Metadata overlay for object `idx`.
    pub fn meta(&self, idx: u32) -> MbufMeta {
        MbufMeta::at(self.obj_base(idx))
    }

    /// Allocates an mbuf; `None` when the pool is empty or a fault
    /// window has it in outage.
    pub fn get(&mut self) -> Option<u32> {
        if self.outage {
            return None;
        }
        self.free.pop()
    }

    /// Fault injection: while `true`, allocations fail as if the pool
    /// were drained; returns (`put`) still work, so the pool recovers
    /// as soon as the outage lifts.
    pub fn set_outage(&mut self, blocked: bool) {
        self.outage = blocked;
    }

    /// Whether an injected outage is active.
    pub fn in_outage(&self) -> bool {
        self.outage
    }

    /// Returns an mbuf to the pool.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices (double frees are the caller's to
    /// avoid, as in DPDK; debug builds check via the length invariant).
    pub fn put(&mut self, idx: u32) {
        assert!(idx < self.n, "mbuf index out of range");
        debug_assert!(
            !self.free.contains(&idx),
            "double free of mbuf {idx} detected"
        );
        self.free.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::machine::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20))
    }

    #[test]
    fn objects_are_distinct_and_aligned() {
        let mut m = machine();
        let pool = MbufPool::create(&mut m, 64, 128, 2048).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let pa = pool.obj_base(i);
            assert!(pa.is_line_aligned());
            assert!(seen.insert(pa));
        }
        assert_eq!(pool.obj_size() % CACHE_LINE, 0);
    }

    #[test]
    fn get_put_cycle() {
        let mut m = machine();
        let mut pool = MbufPool::create(&mut m, 4, 128, 512).unwrap();
        assert_eq!(pool.available(), 4);
        let a = pool.get().unwrap();
        let b = pool.get().unwrap();
        assert_ne!(a, b);
        assert_eq!(pool.available(), 2);
        pool.put(a);
        assert_eq!(pool.available(), 3);
        // LIFO: the most recently returned object comes back first.
        assert_eq!(pool.get(), Some(a));
    }

    #[test]
    fn outage_blocks_get_but_not_put() {
        let mut m = machine();
        let mut pool = MbufPool::create(&mut m, 4, 128, 512).unwrap();
        let a = pool.get().unwrap();
        pool.set_outage(true);
        assert!(pool.in_outage());
        assert_eq!(pool.get(), None, "outage blocks allocation");
        pool.put(a);
        assert_eq!(pool.available(), 4, "returns still land");
        pool.set_outage(false);
        assert_eq!(pool.get(), Some(a), "recovers after the window");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut m = machine();
        let mut pool = MbufPool::create(&mut m, 2, 128, 512).unwrap();
        assert!(pool.get().is_some());
        assert!(pool.get().is_some());
        assert_eq!(pool.get(), None);
    }

    #[test]
    fn object_layout_spans_meta_headroom_dataroom() {
        let mut m = machine();
        let pool = MbufPool::create(&mut m, 2, 832, 2048).unwrap();
        assert!(pool.obj_size() >= 128 + 832 + 2048);
        let meta = pool.meta(1);
        // The second object's buffer area must not overlap the first.
        assert!(meta.base().raw() >= pool.obj_base(0).raw() + pool.obj_size() as u64);
        assert_eq!(pool.headroom_cap(), 832);
        assert_eq!(pool.dataroom(), 2048);
    }

    #[test]
    fn default_geometry_matches_dpdk() {
        let mut m = machine();
        let pool = MbufPool::create_default(&mut m, 8).unwrap();
        assert_eq!(pool.headroom_cap(), 128);
        assert_eq!(pool.dataroom(), 2048);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let mut m = machine();
        let pool = MbufPool::create(&mut m, 2, 128, 512).unwrap();
        pool.obj_base(2);
    }
}
