//! NIC RX steering: RSS (Toeplitz) and FlowDirector.
//!
//! The paper's simple-forwarding runs use Receive Side Scaling to spread
//! packets over 8 cores (Fig. 13), while the Metron service chain uses
//! Intel-style FlowDirector rules with hardware offloading (Fig. 14) —
//! and §5.2.1 observes that "FlowDirector reduces contention in each
//! slice by performing better load balancing compared to RSS for the
//! campus trace". Both are modelled:
//!
//! * [`Rss`]: the standard Toeplitz hash over the IPv4 5-tuple with the
//!   Microsoft verification key, low bits indexing the queue — real RSS,
//!   including its skew on non-uniform flow populations.
//! * [`FlowDirector`]: an exact-match flow table whose miss path assigns
//!   new flows round-robin (the balanced dispatching Metron programs),
//!   plus a 32-bit `mark` action used for hardware classification
//!   offload (the router's table lookup in §5.2).

use trafficgen::FlowTuple;

/// The Microsoft-standard 40-byte Toeplitz key used by most NICs/drivers.
pub const TOEPLITZ_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// Computes the Toeplitz hash of `data` under `key`.
pub fn toeplitz_hash(key: &[u8; 40], data: &[u8]) -> u32 {
    let mut result = 0u32;
    // The sliding 32-bit window over the key, advanced bit by bit.
    let mut window = u32::from_be_bytes([key[0], key[1], key[2], key[3]]);
    let mut next_key_bit = 32; // Absolute bit index into the key.
    for &byte in data {
        for bit in (0..8).rev() {
            if byte & (1 << bit) != 0 {
                result ^= window;
            }
            // Slide the window one bit left, pulling in the next key bit.
            let fresh = if next_key_bit < 320 {
                (key[next_key_bit / 8] >> (7 - next_key_bit % 8)) & 1
            } else {
                0
            };
            window = (window << 1) | u32::from(fresh);
            next_key_bit += 1;
        }
    }
    result
}

/// Serialises the RSS input for an IPv4 TCP/UDP flow: src ip, dst ip,
/// src port, dst port, big-endian (the `IPV4_TCP` RSS type).
pub fn rss_input(flow: &FlowTuple) -> [u8; 12] {
    let mut d = [0u8; 12];
    d[0..4].copy_from_slice(&flow.src_ip.to_be_bytes());
    d[4..8].copy_from_slice(&flow.dst_ip.to_be_bytes());
    d[8..10].copy_from_slice(&flow.src_port.to_be_bytes());
    d[10..12].copy_from_slice(&flow.dst_port.to_be_bytes());
    d
}

/// Receive Side Scaling over `queues` queues.
#[derive(Debug, Clone)]
pub struct Rss {
    queues: usize,
    key: [u8; 40],
}

impl Rss {
    /// RSS with the standard key.
    ///
    /// # Panics
    ///
    /// Panics when `queues == 0`.
    pub fn new(queues: usize) -> Self {
        assert!(queues > 0, "need at least one queue");
        Self {
            queues,
            key: TOEPLITZ_KEY,
        }
    }

    /// Number of queues.
    pub fn queues(&self) -> usize {
        self.queues
    }

    /// The queue for `flow` (hash low bits modulo the queue count, like a
    /// fully populated RETA).
    pub fn queue_for(&self, flow: &FlowTuple) -> usize {
        let h = toeplitz_hash(&self.key, &rss_input(flow));
        (h as usize) % self.queues
    }
}

/// A FlowDirector action: target queue plus an optional 32-bit mark the
/// NIC attaches to matching packets (hardware classification offload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdirAction {
    /// RX queue for matching packets.
    pub queue: usize,
    /// Mark delivered in the RX descriptor (Metron stores the routing
    /// decision here, §5.2).
    pub mark: Option<u32>,
}

/// Exact-match flow steering with round-robin placement of new flows.
#[derive(Debug, Clone)]
pub struct FlowDirector {
    queues: usize,
    table: std::collections::HashMap<FlowTuple, FdirAction>,
    next_rr: usize,
    auto_insert: bool,
}

impl FlowDirector {
    /// A FlowDirector with `queues` queues that auto-assigns unknown flows
    /// round-robin (the controller-programmed balanced dispatch).
    ///
    /// # Panics
    ///
    /// Panics when `queues == 0`.
    pub fn new(queues: usize) -> Self {
        assert!(queues > 0, "need at least one queue");
        Self {
            queues,
            table: std::collections::HashMap::new(),
            next_rr: 0,
            auto_insert: true,
        }
    }

    /// Like [`FlowDirector::new`] but unknown flows fall back to queue 0
    /// without installing a rule (pure static tables).
    pub fn new_static(queues: usize) -> Self {
        let mut fd = Self::new(queues);
        fd.auto_insert = false;
        fd
    }

    /// Number of queues.
    pub fn queues(&self) -> usize {
        self.queues
    }

    /// Installs or replaces a rule.
    pub fn set_rule(&mut self, flow: FlowTuple, action: FdirAction) {
        assert!(action.queue < self.queues, "queue out of range");
        self.table.insert(flow, action);
    }

    /// Number of installed rules.
    pub fn rules(&self) -> usize {
        self.table.len()
    }

    /// The action for `flow`; auto-inserting mode assigns new flows to
    /// queues round-robin (perfectly balanced across the flow population).
    pub fn action_for(&mut self, flow: &FlowTuple) -> FdirAction {
        if let Some(a) = self.table.get(flow) {
            return *a;
        }
        if self.auto_insert {
            let a = FdirAction {
                queue: self.next_rr,
                mark: None,
            };
            self.next_rr = (self.next_rr + 1) % self.queues;
            self.table.insert(*flow, a);
            a
        } else {
            FdirAction {
                queue: 0,
                mark: None,
            }
        }
    }
}

/// Either steering mode, as configured on a port.
#[derive(Debug, Clone)]
pub enum Steering {
    /// Receive Side Scaling.
    Rss(Rss),
    /// FlowDirector exact-match steering.
    FlowDirector(FlowDirector),
}

impl Steering {
    /// Queue + optional mark for `flow`.
    pub fn steer(&mut self, flow: &FlowTuple) -> (usize, Option<u32>) {
        match self {
            Steering::Rss(r) => (r.queue_for(flow), None),
            Steering::FlowDirector(fd) => {
                let a = fd.action_for(flow);
                (a.queue, a.mark)
            }
        }
    }

    /// Number of queues.
    pub fn queues(&self) -> usize {
        match self {
            Steering::Rss(r) => r.queues(),
            Steering::FlowDirector(fd) => fd.queues(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test vector from the Microsoft RSS specification.
    #[test]
    fn toeplitz_known_answer() {
        // 66.9.149.187:2794 -> 161.142.100.80:1766 => 0x51ccc178.
        let flow = FlowTuple::tcp(0x420995bb, 2794, 0xa18e6450, 1766);
        let h = toeplitz_hash(&TOEPLITZ_KEY, &rss_input(&flow));
        assert_eq!(h, 0x51cc_c178);
    }

    #[test]
    fn toeplitz_second_known_answer() {
        // 199.92.111.2:14230 -> 65.69.140.83:4739 => 0xc626b0ea.
        let flow = FlowTuple::tcp(0xc75c6f02, 14230, 0x41458c53, 4739);
        let h = toeplitz_hash(&TOEPLITZ_KEY, &rss_input(&flow));
        assert_eq!(h, 0xc626_b0ea);
    }

    #[test]
    fn rss_is_deterministic_and_in_range() {
        let rss = Rss::new(8);
        let f = FlowTuple::tcp(1, 2, 3, 4);
        let q = rss.queue_for(&f);
        assert!(q < 8);
        assert_eq!(rss.queue_for(&f), q);
    }

    #[test]
    fn rss_spreads_flows() {
        let rss = Rss::new(8);
        let mut counts = [0usize; 8];
        for i in 0..1000u32 {
            let f = FlowTuple::tcp(0x0a000000 + i, 1024 + (i as u16 % 100), 0xc0a80001, 80);
            counts[rss.queue_for(&f)] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 60),
            "queues too skewed: {counts:?}"
        );
    }

    #[test]
    fn fdir_round_robin_is_perfectly_balanced() {
        let mut fd = FlowDirector::new(8);
        let mut counts = [0usize; 8];
        for i in 0..800u32 {
            let f = FlowTuple::tcp(i, 1, 2, 3);
            counts[fd.action_for(&f).queue] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
        assert_eq!(fd.rules(), 800);
    }

    #[test]
    fn fdir_is_sticky_per_flow() {
        let mut fd = FlowDirector::new(4);
        let f = FlowTuple::udp(9, 9, 9, 9);
        let q = fd.action_for(&f).queue;
        for _ in 0..10 {
            assert_eq!(fd.action_for(&f).queue, q);
        }
    }

    #[test]
    fn fdir_explicit_rules_and_marks() {
        let mut fd = FlowDirector::new(4);
        let f = FlowTuple::tcp(1, 1, 1, 1);
        fd.set_rule(
            f,
            FdirAction {
                queue: 3,
                mark: Some(0x42),
            },
        );
        let a = fd.action_for(&f);
        assert_eq!(a.queue, 3);
        assert_eq!(a.mark, Some(0x42));
    }

    #[test]
    fn fdir_static_mode_defaults_to_queue0() {
        let mut fd = FlowDirector::new(4);
        fd.auto_insert = false;
        let a = fd.action_for(&FlowTuple::tcp(7, 7, 7, 7));
        assert_eq!(a.queue, 0);
        assert_eq!(fd.rules(), 0);
    }

    #[test]
    fn steering_enum_dispatch() {
        let mut s = Steering::Rss(Rss::new(2));
        assert_eq!(s.queues(), 2);
        let (q, mark) = s.steer(&FlowTuple::tcp(1, 2, 3, 4));
        assert!(q < 2);
        assert_eq!(mark, None);
        let mut s = Steering::FlowDirector(FlowDirector::new(3));
        assert_eq!(s.queues(), 3);
        let (q, _) = s.steer(&FlowTuple::tcp(1, 2, 3, 4));
        assert!(q < 3);
    }
}
