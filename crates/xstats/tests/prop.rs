//! Property-based tests for the statistics crate.

use proptest::prelude::*;
use xstats::fit::{linear_fit, quadratic_fit};
use xstats::{Cdf, Histogram, Summary};

fn finite_samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e9f64..1e9, 1..max_len)
}

proptest! {
    /// Percentiles are bounded by min/max and monotone in `p`.
    #[test]
    fn percentile_bounds_and_monotonicity(samples in finite_samples(200)) {
        let s = Summary::from_samples(samples).unwrap();
        let mut last = s.min();
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = s.percentile(p);
            prop_assert!(v >= s.min() - 1e-9 && v <= s.max() + 1e-9);
            prop_assert!(v >= last - 1e-9, "percentile not monotone at {p}");
            last = v;
        }
        prop_assert!(s.mean() >= s.min() - 1e-9 && s.mean() <= s.max() + 1e-9);
    }

    /// Shifting every sample shifts mean/percentiles and leaves stddev.
    #[test]
    fn summary_shift_invariance(samples in finite_samples(100), shift in -1e6f64..1e6) {
        let a = Summary::from_samples(samples.iter().copied()).unwrap();
        let b = Summary::from_samples(samples.iter().map(|v| v + shift)).unwrap();
        prop_assert!((b.mean() - a.mean() - shift).abs() < 1e-6 * (1.0 + a.mean().abs() + shift.abs()));
        prop_assert!((b.stddev() - a.stddev()).abs() < 1e-6 * (1.0 + a.stddev()));
        prop_assert!((b.median() - a.median() - shift).abs() < 1e-6 * (1.0 + a.median().abs() + shift.abs()));
    }

    /// The CDF is a valid distribution function: 0 at -inf side, 1 at the
    /// max, non-decreasing, and quantile() inverts it.
    #[test]
    fn cdf_is_a_distribution(samples in finite_samples(150)) {
        let c = Cdf::from_samples(samples.iter().copied()).unwrap();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(c.at(lo - 1.0), 0.0);
        prop_assert_eq!(c.at(hi), 1.0);
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = lo + (hi - lo) * i as f64 / 20.0;
            let v = c.at(x);
            prop_assert!(v >= prev);
            prev = v;
        }
        for q in [0.1, 0.5, 0.9, 1.0] {
            let x = c.quantile(q);
            prop_assert!(c.at(x) >= q - 1e-12, "quantile must reach its mass");
        }
    }

    /// Histogram counts are conserved.
    #[test]
    fn histogram_conserves_mass(samples in finite_samples(200)) {
        let mut h = Histogram::new(-1e6, 1e6, 32);
        for &v in &samples {
            h.record(v);
        }
        let binned: u64 = h.bins().iter().sum();
        prop_assert_eq!(
            binned + h.underflow() + h.overflow(),
            samples.len() as u64
        );
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.fraction_le(2e6), 1.0);
    }

    /// A linear fit recovers exact lines through noiseless points.
    #[test]
    fn linear_fit_recovers_lines(a in -100.0f64..100.0, b in -100.0f64..100.0) {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| {
            let x = i as f64;
            (x, a + b * x)
        }).collect();
        let f = linear_fit(&pts).unwrap();
        prop_assert!((f.a - a).abs() < 1e-6 * (1.0 + a.abs()));
        prop_assert!((f.b - b).abs() < 1e-6 * (1.0 + b.abs()));
        prop_assert!(f.r2 > 1.0 - 1e-9);
    }

    /// A quadratic fit recovers exact parabolas.
    #[test]
    fn quadratic_fit_recovers_parabolas(
        a in -50.0f64..50.0,
        b in -50.0f64..50.0,
        c in -5.0f64..5.0,
    ) {
        let pts: Vec<(f64, f64)> = (-10..=10).map(|i| {
            let x = i as f64;
            (x, a + b * x + c * x * x)
        }).collect();
        let f = quadratic_fit(&pts).unwrap();
        prop_assert!((f.a - a).abs() < 1e-5 * (1.0 + a.abs()));
        prop_assert!((f.b - b).abs() < 1e-5 * (1.0 + b.abs()));
        prop_assert!((f.c - c).abs() < 1e-5 * (1.0 + c.abs()));
    }

    /// R² never exceeds 1 and adding pure noise keeps it in [?, 1].
    #[test]
    fn r_squared_at_most_one(pts in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..50)) {
        if let Some(f) = linear_fit(&pts) {
            prop_assert!(f.r2 <= 1.0 + 1e-9);
        }
        if let Some(f) = quadratic_fit(&pts) {
            prop_assert!(f.r2 <= 1.0 + 1e-9);
        }
    }
}
