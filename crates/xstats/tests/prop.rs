//! Property-style tests for the statistics crate.
//! Seeded loops over [`trafficgen::Rng64`] (fully offline).

use trafficgen::Rng64;
use xstats::fit::{linear_fit, quadratic_fit};
use xstats::{Cdf, Histogram, Summary};

fn finite_samples(rng: &mut Rng64, max_len: usize) -> Vec<f64> {
    let n = rng.gen_range(1usize..max_len);
    (0..n).map(|_| (rng.gen_f64() - 0.5) * 2e9).collect()
}

/// Percentiles are bounded by min/max and monotone in `p`.
#[test]
fn percentile_bounds_and_monotonicity() {
    let mut rng = Rng64::seed_from_u64(0xe501);
    for _ in 0..64 {
        let samples = finite_samples(&mut rng, 200);
        let s = Summary::from_samples(samples).unwrap();
        let mut last = s.min();
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = s.percentile(p);
            assert!(v >= s.min() - 1e-9 && v <= s.max() + 1e-9);
            assert!(v >= last - 1e-9, "percentile not monotone at {p}");
            last = v;
        }
        assert!(s.mean() >= s.min() - 1e-9 && s.mean() <= s.max() + 1e-9);
    }
}

/// Shifting every sample shifts mean/percentiles and leaves stddev.
#[test]
fn summary_shift_invariance() {
    let mut rng = Rng64::seed_from_u64(0xe502);
    for _ in 0..64 {
        let samples = finite_samples(&mut rng, 100);
        let shift = (rng.gen_f64() - 0.5) * 2e6;
        let a = Summary::from_samples(samples.iter().copied()).unwrap();
        let b = Summary::from_samples(samples.iter().map(|v| v + shift)).unwrap();
        assert!((b.mean() - a.mean() - shift).abs() < 1e-6 * (1.0 + a.mean().abs() + shift.abs()));
        assert!((b.stddev() - a.stddev()).abs() < 1e-6 * (1.0 + a.stddev()));
        assert!(
            (b.median() - a.median() - shift).abs() < 1e-6 * (1.0 + a.median().abs() + shift.abs())
        );
    }
}

/// The CDF is a valid distribution function: 0 below the min, 1 at the
/// max, non-decreasing, and quantile() inverts it.
#[test]
fn cdf_is_a_distribution() {
    let mut rng = Rng64::seed_from_u64(0xe503);
    for _ in 0..64 {
        let samples = finite_samples(&mut rng, 150);
        let c = Cdf::from_samples(samples.iter().copied()).unwrap();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(c.at(lo - 1.0), 0.0);
        assert_eq!(c.at(hi), 1.0);
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = lo + (hi - lo) * i as f64 / 20.0;
            let v = c.at(x);
            assert!(v >= prev);
            prev = v;
        }
        for q in [0.1, 0.5, 0.9, 1.0] {
            let x = c.quantile(q);
            assert!(c.at(x) >= q - 1e-12, "quantile must reach its mass");
        }
    }
}

/// Histogram counts are conserved.
#[test]
fn histogram_conserves_mass() {
    let mut rng = Rng64::seed_from_u64(0xe504);
    for _ in 0..64 {
        let samples = finite_samples(&mut rng, 200);
        let mut h = Histogram::new(-1e6, 1e6, 32);
        for &v in &samples {
            h.record(v);
        }
        let binned: u64 = h.bins().iter().sum();
        assert_eq!(binned + h.underflow() + h.overflow(), samples.len() as u64);
        assert_eq!(h.count(), samples.len() as u64);
        assert_eq!(h.fraction_le(2e9), 1.0);
    }
}

/// A linear fit recovers exact lines through noiseless points.
#[test]
fn linear_fit_recovers_lines() {
    let mut rng = Rng64::seed_from_u64(0xe505);
    for _ in 0..128 {
        let a = (rng.gen_f64() - 0.5) * 200.0;
        let b = (rng.gen_f64() - 0.5) * 200.0;
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64;
                (x, a + b * x)
            })
            .collect();
        let f = linear_fit(&pts).unwrap();
        assert!((f.a - a).abs() < 1e-6 * (1.0 + a.abs()));
        assert!((f.b - b).abs() < 1e-6 * (1.0 + b.abs()));
        assert!(f.r2 > 1.0 - 1e-9);
    }
}

/// A quadratic fit recovers exact parabolas.
#[test]
fn quadratic_fit_recovers_parabolas() {
    let mut rng = Rng64::seed_from_u64(0xe506);
    for _ in 0..128 {
        let a = (rng.gen_f64() - 0.5) * 100.0;
        let b = (rng.gen_f64() - 0.5) * 100.0;
        let c = (rng.gen_f64() - 0.5) * 10.0;
        let pts: Vec<(f64, f64)> = (-10..=10)
            .map(|i| {
                let x = i as f64;
                (x, a + b * x + c * x * x)
            })
            .collect();
        let f = quadratic_fit(&pts).unwrap();
        assert!((f.a - a).abs() < 1e-5 * (1.0 + a.abs()));
        assert!((f.b - b).abs() < 1e-5 * (1.0 + b.abs()));
        assert!((f.c - c).abs() < 1e-5 * (1.0 + c.abs()));
    }
}

/// R² never exceeds 1 for arbitrary point clouds.
#[test]
fn r_squared_at_most_one() {
    let mut rng = Rng64::seed_from_u64(0xe507);
    for _ in 0..64 {
        let n = rng.gen_range(3usize..50);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| ((rng.gen_f64() - 0.5) * 2e3, (rng.gen_f64() - 0.5) * 2e3))
            .collect();
        if let Some(f) = linear_fit(&pts) {
            assert!(f.r2 <= 1.0 + 1e-9);
        }
        if let Some(f) = quadratic_fit(&pts) {
            assert!(f.r2 <= 1.0 + 1e-9);
        }
    }
}
