//! SLO accounting over time series: how long a measured signal spent
//! above a threshold.
//!
//! The overload study (fig_knee_kvs) reports not just percentiles but
//! *SLO-violation time*: of the run's duration, how many nanoseconds
//! was the observed latency (or any other per-sample signal) above the
//! service-level objective? The input is a time series of `(t_ns,
//! value)` samples; each sample's value is held until the next sample
//! (a step function, first-order hold), so sample *i* covers
//! `[t_i, t_{i+1})` and the last sample covers zero width — a series
//! needs at least two samples to accumulate any violation time.
//!
//! The functions follow the crate's total/`try_` convention (see
//! [`crate::percentile::Summary::percentile`]): the total variants
//! absorb dirty input — non-finite samples are skipped, non-monotone
//! timestamps contribute zero width — while the `try_` variants return
//! `None` on the first irregularity so tests can detect it.

/// Total time, in the series' time unit, that the signal sat strictly
/// above `threshold`.
///
/// Total over all inputs: samples with a non-finite time or value are
/// skipped entirely (the previous sample's hold extends over them), a
/// non-monotone successor contributes zero width (never negative), and
/// a non-finite `threshold` yields 0.0. Use [`try_time_above_threshold`]
/// to detect dirty input instead of absorbing it.
pub fn time_above_threshold(series: &[(f64, f64)], threshold: f64) -> f64 {
    if !threshold.is_finite() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut prev: Option<(f64, f64)> = None;
    for &(t, v) in series {
        if !(t.is_finite() && v.is_finite()) {
            continue;
        }
        if let Some((pt, pv)) = prev {
            if pv > threshold {
                total += (t - pt).max(0.0);
            }
        }
        prev = Some((t, v));
    }
    total
}

/// Strict variant of [`time_above_threshold`]: `None` when the
/// threshold or any sample is non-finite, or when timestamps are not
/// non-decreasing.
pub fn try_time_above_threshold(series: &[(f64, f64)], threshold: f64) -> Option<f64> {
    if !threshold.is_finite() {
        return None;
    }
    let mut total = 0.0;
    let mut prev: Option<(f64, f64)> = None;
    for &(t, v) in series {
        if !(t.is_finite() && v.is_finite()) {
            return None;
        }
        if let Some((pt, pv)) = prev {
            if t < pt {
                return None;
            }
            if pv > threshold {
                total += t - pt;
            }
        }
        prev = Some((t, v));
    }
    Some(total)
}

/// SLO-violation time for a latency series: the time the observed
/// latency spent strictly above the objective `slo`. This is
/// [`time_above_threshold`] under the name the overload reports use —
/// total over all inputs, with [`try_slo_violation_ns`] as the strict
/// variant.
pub fn slo_violation_ns(series: &[(f64, f64)], slo: f64) -> f64 {
    time_above_threshold(series, slo)
}

/// Strict variant of [`slo_violation_ns`] (see
/// [`try_time_above_threshold`]).
pub fn try_slo_violation_ns(series: &[(f64, f64)], slo: f64) -> Option<f64> {
    try_time_above_threshold(series, slo)
}

/// Nanoseconds per minute: the unit conversion of
/// [`violation_minutes`].
const NS_PER_MINUTE: f64 = 60.0e9;

/// Aggregate SLO-violation time over several runs' series, in minutes.
///
/// Each run contributes its own `(t_ns, value)` latency series; the
/// per-run violation times ([`slo_violation_ns`], first-order hold,
/// strictly above `slo`) are summed and converted from nanoseconds to
/// minutes — the unit multi-run robustness studies report ("how long,
/// across the whole campaign, was the tenant out of SLO?").
///
/// Total over all inputs, inheriting [`time_above_threshold`]'s
/// absorption rules per run: non-finite samples are skipped (the
/// previous hold extends over them), backwards timestamps clamp to
/// zero width (never negative), and a non-finite `slo` yields 0.0. An
/// empty run list is 0.0. Use [`try_violation_minutes`] to detect dirty
/// input instead of absorbing it.
pub fn violation_minutes(runs: &[&[(f64, f64)]], slo: f64) -> f64 {
    runs.iter()
        .map(|series| slo_violation_ns(series, slo))
        .sum::<f64>()
        / NS_PER_MINUTE
}

/// Strict variant of [`violation_minutes`]: `None` when the SLO or any
/// run's sample is non-finite, or any run's timestamps are not
/// non-decreasing (per-run rules of [`try_time_above_threshold`]).
pub fn try_violation_minutes(runs: &[&[(f64, f64)]], slo: f64) -> Option<f64> {
    let mut total = 0.0;
    for series in runs {
        total += try_slo_violation_ns(series, slo)?;
    }
    Some(total / NS_PER_MINUTE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_sample_series_accumulate_nothing() {
        assert_eq!(time_above_threshold(&[], 1.0), 0.0);
        assert_eq!(try_time_above_threshold(&[], 1.0), Some(0.0));
        // One sample holds over zero width.
        assert_eq!(time_above_threshold(&[(5.0, 99.0)], 1.0), 0.0);
        assert_eq!(try_time_above_threshold(&[(5.0, 99.0)], 1.0), Some(0.0));
    }

    #[test]
    fn step_function_hold_counts_each_violating_interval() {
        // Above in [0,10) and [20,25); below elsewhere; last sample's
        // hold has zero width.
        let series = [
            (0.0, 8.0),
            (10.0, 2.0),
            (20.0, 9.0),
            (25.0, 1.0),
            (30.0, 99.0),
        ];
        assert_eq!(time_above_threshold(&series, 5.0), 15.0);
        assert_eq!(try_time_above_threshold(&series, 5.0), Some(15.0));
        // The threshold is strict: a value exactly at the SLO does not
        // violate it.
        assert_eq!(time_above_threshold(&[(0.0, 5.0), (10.0, 0.0)], 5.0), 0.0);
    }

    #[test]
    fn total_variants_absorb_dirty_input() {
        // A NaN sample is skipped: the 8.0 hold extends over it.
        let with_nan = [(0.0, 8.0), (5.0, f64::NAN), (10.0, 2.0)];
        assert_eq!(time_above_threshold(&with_nan, 5.0), 10.0);
        assert_eq!(try_time_above_threshold(&with_nan, 5.0), None);
        // A backwards timestamp clamps to zero width, never negative.
        let backwards = [(10.0, 8.0), (0.0, 2.0), (20.0, 2.0)];
        assert_eq!(time_above_threshold(&backwards, 5.0), 0.0);
        assert_eq!(try_time_above_threshold(&backwards, 5.0), None);
        // A non-finite threshold cannot be violated.
        assert_eq!(
            time_above_threshold(&[(0.0, 1.0), (1.0, 1.0)], f64::NAN),
            0.0
        );
        assert_eq!(
            try_time_above_threshold(&[(0.0, 1.0), (1.0, 1.0)], f64::INFINITY),
            None
        );
    }

    #[test]
    fn violation_minutes_sums_runs_and_converts_units() {
        // Run A violates for 15 ns, run B for 45e9 ns (0.75 min).
        let a = [(0.0, 8.0), (10.0, 2.0), (20.0, 9.0), (25.0, 1.0)];
        let b = [(0.0, 9.0), (45.0e9, 1.0), (50.0e9, 1.0)];
        let runs: [&[(f64, f64)]; 2] = [&a, &b];
        let mins = violation_minutes(&runs, 5.0);
        assert!((mins - (15.0 + 45.0e9) / 60.0e9).abs() < 1e-12);
        assert_eq!(try_violation_minutes(&runs, 5.0), Some(mins));
        // No runs, no violation.
        assert_eq!(violation_minutes(&[], 5.0), 0.0);
        assert_eq!(try_violation_minutes(&[], 5.0), Some(0.0));
    }

    #[test]
    fn violation_minutes_absorbs_dirty_runs_and_try_detects_them() {
        let clean = [(0.0, 9.0), (60.0e9, 1.0)];
        let dirty = [(0.0, f64::NAN), (10.0, 2.0)];
        let runs: [&[(f64, f64)]; 2] = [&clean, &dirty];
        // Total: the NaN sample is skipped, the clean run still counts.
        assert!((violation_minutes(&runs, 5.0) - 1.0).abs() < 1e-12);
        assert_eq!(try_violation_minutes(&runs, 5.0), None);
        // Non-finite SLO cannot be violated (total) / is an error (try).
        assert_eq!(violation_minutes(&runs[..1], f64::NAN), 0.0);
        assert_eq!(try_violation_minutes(&runs[..1], f64::INFINITY), None);
    }

    #[test]
    fn slo_violation_is_time_above_threshold_by_another_name() {
        let series = [(0.0, 300.0), (100.0, 80.0), (150.0, 400.0), (175.0, 10.0)];
        assert_eq!(
            slo_violation_ns(&series, 200.0),
            time_above_threshold(&series, 200.0)
        );
        assert_eq!(slo_violation_ns(&series, 200.0), 125.0);
        assert_eq!(try_slo_violation_ns(&series, 200.0), Some(125.0));
        assert_eq!(try_slo_violation_ns(&[(0.0, f64::NAN)], 200.0), None);
    }
}
