//! Measurement statistics used throughout the reproduction.
//!
//! This crate collects the numeric machinery the paper's evaluation relies
//! on: percentile summaries with linear interpolation (Figs. 1, 12–14),
//! empirical CDFs (Fig. 14a), histograms (headroom distribution, §4.2),
//! distribution skewness (§3.1 footnote), least-squares line/parabola
//! fitting with `R²` for the tail-latency-vs-throughput knee (Fig. 15),
//! and bounded-memory streaming quantile sketches ([`sketch`]) for
//! million-request figure runs where collecting every sample is not an
//! option.
//!
//! Everything is plain, allocation-light `f64` math with no external
//! dependencies, so the simulator crates can use it freely from hot paths.

pub mod cdf;
pub mod fit;
pub mod hist;
pub mod percentile;
pub mod report;
pub mod sketch;
pub mod slo;

pub use cdf::Cdf;
pub use fit::{piecewise_knee_fit, LinearFit, PiecewiseFit, QuadraticFit};
pub use hist::Histogram;
pub use percentile::Summary;
pub use sketch::LogHist;
pub use slo::{
    slo_violation_ns, time_above_threshold, try_slo_violation_ns, try_time_above_threshold,
    try_violation_minutes, violation_minutes,
};
