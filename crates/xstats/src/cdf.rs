//! Empirical cumulative distribution functions (Fig. 14a).

/// An empirical CDF over a sample set.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples, dropping non-finite values.
    ///
    /// Returns `None` when no finite samples remain.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Option<Self> {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Some(Self { sorted })
    }

    /// `P(X <= x)`, in `[0, 1]`.
    pub fn at(&self, x: f64) -> f64 {
        // partition_point gives the count of samples <= x.
        let le = self.sorted.partition_point(|&v| v <= x);
        le as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: smallest sample `x` with `P(X <= x) >= q`, `q` in `(0, 1]`.
    ///
    /// Total over all inputs: `q <= 0` returns the smallest sample,
    /// `q > 1` the largest, and a non-finite `q` returns `f64::NAN`.
    /// Use [`Cdf::try_quantile`] to detect out-of-range requests
    /// instead of absorbing them.
    pub fn quantile(&self, q: f64) -> f64 {
        if !q.is_finite() {
            return f64::NAN;
        }
        if q <= 0.0 {
            return self.sorted[0];
        }
        self.try_quantile(q.min(1.0))
            .expect("clamped q is in range")
    }

    /// Inverse CDF; `None` when `q` is non-finite or outside `(0, 1]`.
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        if !(q.is_finite() && q > 0.0 && q <= 1.0) {
            return None;
        }
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(self.sorted[idx])
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the CDF holds no samples (never constructable).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates the CDF at `points` evenly spaced x-values spanning the
    /// sample range, returning `(x, P(X <= x))` pairs — the series a plot of
    /// Fig. 14a is drawn from.
    ///
    /// Degenerate requests degrade instead of panicking: `points == 0`
    /// yields an empty series and `points == 1` a single point at the
    /// smallest sample.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if points == 0 {
            return Vec::new();
        }
        if points == 1 {
            return vec![(self.sorted[0], self.at(self.sorted[0]))];
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, self.at(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf(v: &[f64]) -> Cdf {
        Cdf::from_samples(v.iter().copied()).expect("non-empty")
    }

    #[test]
    fn empty_is_none() {
        assert!(Cdf::from_samples(std::iter::empty()).is_none());
    }

    #[test]
    fn at_endpoints() {
        let c = cdf(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(4.0), 1.0);
        assert_eq!(c.at(100.0), 1.0);
    }

    #[test]
    fn at_is_right_continuous_step() {
        let c = cdf(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(c.at(2.0), 0.75);
        assert_eq!(c.at(1.999_999), 0.25);
    }

    #[test]
    fn quantile_inverts_at() {
        let c = cdf(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(c.quantile(0.2), 10.0);
        assert_eq!(c.quantile(0.5), 30.0);
        assert_eq!(c.quantile(1.0), 50.0);
    }

    #[test]
    fn quantile_clamps_out_of_range_and_rejects_non_finite() {
        let c = cdf(&[10.0, 20.0, 30.0]);
        // q <= 0 degrades to the smallest sample, q > 1 to the largest.
        assert_eq!(c.quantile(0.0), 10.0);
        assert_eq!(c.quantile(-1.0), 10.0);
        assert_eq!(c.quantile(2.0), 30.0);
        // Non-finite q yields NaN rather than a panic.
        assert!(c.quantile(f64::NAN).is_nan());
        assert!(c.quantile(f64::NEG_INFINITY).is_nan());
    }

    #[test]
    fn try_quantile_is_strict() {
        let c = cdf(&[10.0, 20.0, 30.0]);
        assert_eq!(c.try_quantile(0.5), Some(20.0));
        assert_eq!(c.try_quantile(1.0), Some(30.0));
        assert_eq!(c.try_quantile(0.0), None);
        assert_eq!(c.try_quantile(1.1), None);
        assert_eq!(c.try_quantile(f64::NAN), None);
    }

    #[test]
    fn series_degenerate_point_counts_degrade() {
        let c = cdf(&[1.0, 2.0, 3.0]);
        assert!(c.series(0).is_empty());
        let one = c.series(1);
        assert_eq!(one, vec![(1.0, c.at(1.0))]);
    }

    #[test]
    fn series_spans_range_and_is_monotone() {
        let c = cdf(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        let s = c.series(11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].0, 1.0);
        assert_eq!(s[10].0, 5.0);
        assert_eq!(s[10].1, 1.0);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be non-decreasing");
        }
    }
}
