//! Console table rendering for the experiment binaries.
//!
//! Every `fig*`/`table*` binary in `crates/bench` prints its result as an
//! aligned text table so the regenerated rows can be compared side by side
//! with the paper's plots. Kept deliberately tiny — no terminal styling.

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with padded columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 != widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimal places — table-cell helper.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn float_helper() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(-0.5, 1), "-0.5");
    }
}
