//! Percentile summaries over latency samples.
//!
//! The paper reports the 75th/90th/95th/99th percentiles and the mean of
//! end-to-end latency distributions (Figs. 1, 12, 13, 14). Percentiles use
//! the linear-interpolation definition (type 7 in the R taxonomy), which is
//! what gnuplot/numpy produce and therefore what the paper's plots show.

/// A sorted sample set with cached moments.
///
/// Build one with [`Summary::from_samples`]; all queries are then `O(1)` or
/// `O(log n)`.
#[derive(Debug, Clone)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    variance: f64,
    skewness: f64,
}

impl Summary {
    /// Builds a summary from raw samples.
    ///
    /// Non-finite samples are rejected because they would poison every
    /// moment; an empty (or all-non-finite) input yields `None`.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Option<Self> {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let m2 = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let m3 = sorted.iter().map(|v| (v - mean).powi(3)).sum::<f64>() / n;
        // Fisher-Pearson moment coefficient of skewness (§3.1 footnote: the
        // paper cites the standard formula for workload skewness).
        let skewness = if m2 > 0.0 { m3 / m2.powf(1.5) } else { 0.0 };
        Some(Self {
            sorted,
            mean,
            variance: m2,
            skewness,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the summary holds no samples (never constructable; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Fisher-Pearson moment coefficient of skewness.
    pub fn skewness(&self) -> f64 {
        self.skewness
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Median (the 50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Linear-interpolation percentile, `p` in `[0, 100]`.
    ///
    /// Total over all inputs: `p` outside `[0, 100]` is clamped to the
    /// range (so `percentile(-3.0) == min()` and
    /// `percentile(250.0) == max()`), and a non-finite `p` returns
    /// `f64::NAN`. Use [`Summary::try_percentile`] to detect
    /// out-of-range requests instead of absorbing them.
    pub fn percentile(&self, p: f64) -> f64 {
        if !p.is_finite() {
            return f64::NAN;
        }
        self.try_percentile(p.clamp(0.0, 100.0))
            .expect("clamped p is in range")
    }

    /// Linear-interpolation percentile, `p` in `[0, 100]`; `None` when
    /// `p` is non-finite or outside the range.
    pub fn try_percentile(&self, p: f64) -> Option<f64> {
        if !(p.is_finite() && (0.0..=100.0).contains(&p)) {
            return None;
        }
        let n = self.sorted.len();
        if n == 1 {
            return Some(self.sorted[0]);
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac)
    }

    /// The paper's standard report row: 75th, 90th, 95th, 99th percentiles
    /// and the mean, in that order.
    pub fn paper_row(&self) -> [f64; 5] {
        [
            self.percentile(75.0),
            self.percentile(90.0),
            self.percentile(95.0),
            self.percentile(99.0),
            self.mean(),
        ]
    }

    /// Borrow the sorted samples.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// Relative speedup `(base - new) / base`, in percent — how the paper
/// presents "Speedup for Latency (%)" in Fig. 1.
pub fn speedup_percent(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (base - new) / base * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(v: &[f64]) -> Summary {
        Summary::from_samples(v.iter().copied()).expect("non-empty")
    }

    #[test]
    fn empty_input_is_none() {
        assert!(Summary::from_samples(std::iter::empty()).is_none());
    }

    #[test]
    fn non_finite_filtered() {
        let s = Summary::from_samples(vec![1.0, f64::NAN, 3.0, f64::INFINITY]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn all_non_finite_is_none() {
        assert!(Summary::from_samples(vec![f64::NAN, f64::INFINITY]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = summary(&[42.0]);
        assert_eq!(s.percentile(0.0), 42.0);
        assert_eq!(s.percentile(99.0), 42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn median_of_even_count_interpolates() {
        let s = summary(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median(), 2.5);
    }

    #[test]
    fn percentile_matches_linear_interpolation() {
        // numpy.percentile([10,20,30,40,50], 75) == 40.0.
        let s = summary(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(s.percentile(75.0), 40.0);
        assert_eq!(s.percentile(90.0), 46.0);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 50.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let s = summary(&[5.0, 1.0, 3.0]);
        assert_eq!(s.sorted(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn moments() {
        let s = summary(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_distribution_has_zero_skew() {
        let s = summary(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(s.skewness().abs() < 1e-12);
    }

    #[test]
    fn right_tailed_distribution_has_positive_skew() {
        let s = summary(&[1.0, 1.0, 1.0, 1.0, 10.0]);
        assert!(s.skewness() > 1.0);
    }

    #[test]
    fn paper_row_ordering() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let row = summary(&samples).paper_row();
        assert!(row[0] < row[1] && row[1] < row[2] && row[2] < row[3]);
        assert!((row[4] - 499.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_clamps_out_of_range_and_rejects_non_finite() {
        let s = summary(&[10.0, 20.0, 30.0]);
        // Out-of-range p clamps to the extremes (documented totality).
        assert_eq!(s.percentile(101.0), 30.0);
        assert_eq!(s.percentile(-5.0), 10.0);
        // Non-finite p yields NaN rather than a panic.
        assert!(s.percentile(f64::NAN).is_nan());
        assert!(s.percentile(f64::INFINITY).is_nan());
    }

    #[test]
    fn try_percentile_is_strict() {
        let s = summary(&[10.0, 20.0, 30.0]);
        assert_eq!(s.try_percentile(50.0), Some(20.0));
        assert_eq!(s.try_percentile(0.0), Some(10.0));
        assert_eq!(s.try_percentile(100.0), Some(30.0));
        assert_eq!(s.try_percentile(100.1), None);
        assert_eq!(s.try_percentile(-0.1), None);
        assert_eq!(s.try_percentile(f64::NAN), None);
    }

    #[test]
    fn speedup_percent_basics() {
        assert_eq!(speedup_percent(100.0, 80.0), 20.0);
        assert_eq!(speedup_percent(0.0, 80.0), 0.0);
        assert!(speedup_percent(80.0, 100.0) < 0.0);
    }
}
