//! Fixed-width histograms (headroom-size distribution, §4.2).

/// A histogram over `[lo, hi)` with equally sized bins plus an overflow bin.
///
/// Out-of-range mass is never folded into an edge bin: samples below
/// `lo` count as [`Histogram::underflow`], samples at or above `hi` as
/// [`Histogram::overflow`], and non-finite samples (NaN, ±∞ — which
/// would otherwise slip through both range checks and saturate into
/// bin 0) as [`Histogram::nonfinite`]. Real lowest-bucket mass is
/// therefore always distinguishable from clamped garbage.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    overflow: u64,
    underflow: u64,
    nonfinite: u64,
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "lo must be below hi");
        assert!(bins > 0, "need at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            overflow: 0,
            underflow: 0,
            nonfinite: 0,
            count: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if !x.is_finite() {
            // NaN compares false with both edges and `as usize`
            // saturates NaN to 0 — without this branch a NaN would be
            // silently clamped into bin 0. +∞ is caught by the
            // overflow check but -∞ would underflow ambiguously; all
            // three are accounted here instead.
            self.nonfinite += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total recorded samples, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Non-finite samples (NaN, ±∞), counted but never binned.
    pub fn nonfinite(&self) -> u64 {
        self.nonfinite
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_low_edge, count)` pairs.
    pub fn edges(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * i as f64, c))
            .collect()
    }

    /// Fraction of in-range samples at or below the bin containing `x`.
    ///
    /// Used for statements such as "95 % of the values are less than 512 B".
    /// A NaN threshold has no ordering, so it returns NaN rather than
    /// silently behaving like `x < lo`.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        if self.count == 0 {
            return 0.0;
        }
        let mut acc = self.underflow;
        if x >= self.hi {
            acc += self.bins.iter().sum::<u64>() + self.overflow;
        } else if x >= self.lo {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            acc += self.bins[..=idx].iter().sum::<u64>();
        }
        acc as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.5);
        h.record(9.99);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0);
        h.record(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins().iter().sum::<u64>(), 0);
    }

    /// Both edges stay distinguishable from real edge-bin mass: a
    /// below-range sample lands in `underflow` (not bin 0), an at-`hi`
    /// sample lands in `overflow` (not the last bin), and a sample at
    /// `lo` exactly is real bin-0 mass.
    #[test]
    fn edge_samples_never_clamp_into_edge_bins() {
        let mut h = Histogram::new(10.0, 20.0, 5);
        h.record(10.0); // lowest in-range value: bin 0
        h.record(9.999_999); // below lo: underflow, NOT bin 0
        h.record(20.0); // at hi: overflow, NOT last bin
        h.record(19.999_999); // highest in-range value: last bin
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.bins()[4], 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 4);
    }

    /// NaN and ±∞ are counted separately, never silently binned (NaN
    /// used to saturate into bin 0 through the `as usize` cast).
    #[test]
    fn nonfinite_samples_are_counted_not_binned() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(0.5);
        assert_eq!(h.nonfinite(), 3);
        assert_eq!(h.bins().iter().sum::<u64>(), 1);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.count(), 4);
        assert!(h.fraction_le(f64::NAN).is_nan());
    }

    #[test]
    fn fraction_le() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert!((h.fraction_le(49.0) - 0.5).abs() < 1e-12);
        assert_eq!(h.fraction_le(1000.0), 1.0);
        assert_eq!(h.fraction_le(-1.0), 0.0);
    }

    #[test]
    fn edges_are_monotone() {
        let h = Histogram::new(2.0, 12.0, 5);
        let e = h.edges();
        assert_eq!(e.len(), 5);
        assert_eq!(e[0].0, 2.0);
        assert_eq!(e[4].0, 10.0);
    }

    #[test]
    #[should_panic(expected = "lo must be below hi")]
    fn rejects_inverted_range() {
        Histogram::new(1.0, 0.0, 4);
    }
}
