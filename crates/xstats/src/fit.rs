//! Least-squares curve fitting with `R²` (Fig. 15).
//!
//! Fig. 15 fits tail latency vs. throughput as a piecewise function: linear
//! below the knee (37 Gbps in the paper) and quadratic above it, reporting
//! one `R²` per piece. [`piecewise_knee_fit`] reproduces exactly that.

/// A fitted line `y = a + b·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept `a`.
    pub a: f64,
    /// Slope `b`.
    pub b: f64,
    /// Coefficient of determination against the fitted points.
    pub r2: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.a + self.b * x
    }
}

/// A fitted parabola `y = a + b·x + c·x²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadraticFit {
    /// Constant term `a`.
    pub a: f64,
    /// Linear coefficient `b`.
    pub b: f64,
    /// Quadratic coefficient `c`.
    pub c: f64,
    /// Coefficient of determination against the fitted points.
    pub r2: f64,
}

impl QuadraticFit {
    /// Evaluates the fitted parabola at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.a + self.b * x + self.c * x * x
    }
}

/// The Fig. 15 piecewise model: linear below `knee`, quadratic at or above.
#[derive(Debug, Clone, Copy)]
pub struct PiecewiseFit {
    /// Knee position on the x axis (throughput, Gbps in the paper).
    pub knee: f64,
    /// Fit used for `x < knee`.
    pub low: LinearFit,
    /// Fit used for `x >= knee`.
    pub high: QuadraticFit,
}

impl PiecewiseFit {
    /// Evaluates the piecewise model at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if x < self.knee {
            self.low.eval(x)
        } else {
            self.high.eval(x)
        }
    }
}

fn r_squared(points: &[(f64, f64)], predict: impl Fn(f64) -> f64) -> f64 {
    let n = points.len() as f64;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - predict(p.0)).powi(2)).sum();
    if ss_tot == 0.0 {
        // A constant series perfectly predicted is a perfect fit.
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Ordinary least-squares line fit.
///
/// Returns `None` with fewer than two points or when all x-values coincide.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    let fit = LinearFit { a, b, r2: 0.0 };
    let r2 = r_squared(points, |x| fit.eval(x));
    Some(LinearFit { r2, ..fit })
}

/// Ordinary least-squares parabola fit via the 3×3 normal equations.
///
/// Returns `None` with fewer than three points or a singular system.
pub fn quadratic_fit(points: &[(f64, f64)]) -> Option<QuadraticFit> {
    if points.len() < 3 {
        return None;
    }
    let n = points.len() as f64;
    let (mut sx, mut sx2, mut sx3, mut sx4) = (0.0, 0.0, 0.0, 0.0);
    let (mut sy, mut sxy, mut sx2y) = (0.0, 0.0, 0.0);
    for &(x, y) in points {
        let x2 = x * x;
        sx += x;
        sx2 += x2;
        sx3 += x2 * x;
        sx4 += x2 * x2;
        sy += y;
        sxy += x * y;
        sx2y += x2 * y;
    }
    // Solve [n sx sx2; sx sx2 sx3; sx2 sx3 sx4] [a b c]' = [sy sxy sx2y]'.
    let m = [[n, sx, sx2], [sx, sx2, sx3], [sx2, sx3, sx4]];
    let v = [sy, sxy, sx2y];
    let sol = solve3(m, v)?;
    let fit = QuadraticFit {
        a: sol[0],
        b: sol[1],
        c: sol[2],
        r2: 0.0,
    };
    let r2 = r_squared(points, |x| fit.eval(x));
    Some(QuadraticFit { r2, ..fit })
}

/// Solves a 3×3 linear system with partial pivoting; `None` when singular.
#[allow(clippy::needless_range_loop)] // Matrix index notation reads best.
fn solve3(mut m: [[f64; 3]; 3], mut v: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        // Pivot on the largest remaining magnitude for stability.
        let pivot = (col..3)
            .max_by(|&a, &b| {
                m[a][col]
                    .abs()
                    .partial_cmp(&m[b][col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        v.swap(col, pivot);
        for row in (col + 1)..3 {
            let f = m[row][col] / m[col][col];
            for k in col..3 {
                m[row][k] -= f * m[col][k];
            }
            v[row] -= f * v[col];
        }
    }
    let mut out = [0.0; 3];
    for row in (0..3).rev() {
        let mut acc = v[row];
        for k in (row + 1)..3 {
            acc -= m[row][k] * out[k];
        }
        out[row] = acc / m[row][row];
    }
    Some(out)
}

/// Fits the Fig. 15 piecewise model: line on points with `x < knee`,
/// parabola on points with `x >= knee`.
///
/// Returns `None` when either side has too few points for its model.
pub fn piecewise_knee_fit(points: &[(f64, f64)], knee: f64) -> Option<PiecewiseFit> {
    let low: Vec<(f64, f64)> = points.iter().copied().filter(|p| p.0 < knee).collect();
    let high: Vec<(f64, f64)> = points.iter().copied().filter(|p| p.0 >= knee).collect();
    Some(PiecewiseFit {
        knee,
        low: linear_fit(&low)?,
        high: quadratic_fit(&high)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let f = linear_fit(&pts).unwrap();
        assert!((f.a - 3.0).abs() < 1e-9);
        assert!((f.b - 2.0).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_rejects_degenerate() {
        assert!(linear_fit(&[(1.0, 1.0)]).is_none());
        assert!(linear_fit(&[(2.0, 1.0), (2.0, 5.0)]).is_none());
    }

    #[test]
    fn linear_r2_below_one_with_noise() {
        let pts = [(0.0, 0.0), (1.0, 2.0), (2.0, 1.0), (3.0, 4.0)];
        let f = linear_fit(&pts).unwrap();
        assert!(f.r2 > 0.0 && f.r2 < 1.0);
    }

    #[test]
    fn quadratic_recovers_exact_parabola() {
        let pts: Vec<(f64, f64)> = (-5..=5)
            .map(|i| {
                let x = i as f64;
                (x, 1.0 - 2.0 * x + 0.5 * x * x)
            })
            .collect();
        let f = quadratic_fit(&pts).unwrap();
        assert!((f.a - 1.0).abs() < 1e-9);
        assert!((f.b + 2.0).abs() < 1e-9);
        assert!((f.c - 0.5).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_rejects_degenerate() {
        assert!(quadratic_fit(&[(0.0, 0.0), (1.0, 1.0)]).is_none());
        // All the same x: singular normal equations.
        assert!(quadratic_fit(&[(1.0, 0.0), (1.0, 1.0), (1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn constant_series_r2_is_one() {
        let pts = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)];
        let f = linear_fit(&pts).unwrap();
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn piecewise_fits_paper_shape() {
        // Synthesize the Fig. 15 DPDK curve: 15.61 + 0.2379x below 37, then
        // 1977 - 95.18x + 1.158x^2 at or above.
        let mut pts = Vec::new();
        for i in 1..=36 {
            let x = i as f64 * 1.0;
            pts.push((x, 15.61 + 0.2379 * x));
        }
        for i in 37..=76 {
            let x = i as f64;
            pts.push((x, 1977.0 - 95.18 * x + 1.158 * x * x));
        }
        let f = piecewise_knee_fit(&pts, 37.0).unwrap();
        assert!((f.low.b - 0.2379).abs() < 1e-6);
        assert!((f.high.c - 1.158).abs() < 1e-6);
        assert!(f.low.r2 > 0.999 && f.high.r2 > 0.999);
        // Continuity-ish evaluation.
        assert!(f.eval(10.0) < f.eval(70.0));
    }

    #[test]
    fn piecewise_requires_points_on_both_sides() {
        let pts = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)];
        assert!(piecewise_knee_fit(&pts, 10.0).is_none());
    }

    #[test]
    fn solve3_identity() {
        let sol = solve3(
            [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
            [7.0, 8.0, 9.0],
        )
        .unwrap();
        assert_eq!(sol, [7.0, 8.0, 9.0]);
    }

    #[test]
    fn solve3_singular_is_none() {
        assert!(solve3(
            [[1.0, 1.0, 1.0], [1.0, 1.0, 1.0], [0.0, 0.0, 1.0]],
            [1.0, 2.0, 3.0]
        )
        .is_none());
    }
}
