//! Bounded-memory streaming quantiles: a fixed-bucket log-histogram.
//!
//! `Summary::from_samples` keeps every sample and sorts — O(samples)
//! memory, which is exactly what a million-request figure run must not
//! do. [`LogHist`] streams instead: geometric buckets over `[lo, hi)`
//! with ratio `γ = (1+α)/(1−α)`, so any quantile whose rank falls in
//! range is answered with **guaranteed relative error ≤ α** (the
//! DDSketch bound) from a few KiB of fixed state, no matter how many
//! samples were recorded.
//!
//! # Error bound
//!
//! Bucket `i > 0` covers `(lo·γ^(i−1), lo·γ^i]` and is represented by
//! its harmonic midpoint `lo·γ^i·2/(1+γ)`; for any true value `v` in
//! the bucket, `|rep − v|/v ≤ α` exactly (equality at the bucket
//! edges). [`LogHist::quantile`] returns the representative of the
//! bucket containing the rank-`⌈q·n⌉` sample, so its answer is within
//! `α` of that exact order statistic. Ranks that fall in the underflow
//! (overflow) mass return the exact tracked minimum (maximum) instead —
//! the extremes are exact, but mid-underflow ranks are not bounded, so
//! pick `[lo, hi)` to cover the expected data range and audit
//! [`LogHist::underflow`]/[`LogHist::overflow`] (both are reported, not
//! folded into edge buckets, mirroring [`crate::Histogram`]).
//!
//! Non-finite samples are counted ([`LogHist::nonfinite`]) but never
//! binned and never contribute to quantile ranks — NaN has no order.
//!
//! Everything is deterministic `f64` math: the same sample stream
//! always produces the same sketch and the same quantile answers, so
//! figure output built on sketches stays bit-identical across
//! schedulers and execution modes.

/// A streaming log-bucket quantile sketch with relative error `α`.
#[derive(Debug, Clone)]
pub struct LogHist {
    alpha: f64,
    gamma: f64,
    inv_ln_gamma: f64,
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nonfinite: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LogHist {
    /// An empty sketch over `[lo, hi)` with relative-error bound
    /// `alpha`.
    ///
    /// Bucket count is `⌈ln(hi/lo)/ln γ⌉ + 1` — fixed at construction;
    /// e.g. `α = 1 %` over `[1 ns, 10³ s)` is 1368 buckets (~11 KiB).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1` and `0 < lo < hi` (both finite).
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "relative error must be in (0, 1)"
        );
        assert!(
            lo > 0.0 && hi > lo && hi.is_finite(),
            "need 0 < lo < hi, both finite"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        let ln_gamma = gamma.ln();
        let n = ((hi / lo).ln() / ln_gamma).ceil() as usize + 1;
        Self {
            alpha,
            gamma,
            inv_ln_gamma: 1.0 / ln_gamma,
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            nonfinite: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The conventional latency sketch: `[1 ns, 10³ s)` at the given
    /// error bound — wide enough for any simulated-latency figure.
    pub fn latency_ns(alpha: f64) -> Self {
        Self::new(alpha, 1.0, 1e12)
    }

    /// Records one sample. O(1), allocation-free.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.nonfinite += 1;
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((v / self.lo).ln() * self.inv_ln_gamma).ceil() as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// The quantile `q ∈ [0, 1]`: the representative of the bucket
    /// holding the rank-`⌈q·count⌉` sample (see the module-level error
    /// bound). `q = 0` returns the exact minimum, `q = 1` the exact
    /// maximum.
    ///
    /// # Panics
    ///
    /// Panics on an empty sketch or `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        assert!(self.count > 0, "quantile of an empty sketch");
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.underflow {
            return self.min;
        }
        let mut cum = self.underflow;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if rank <= cum {
                return if i == 0 {
                    self.lo
                } else {
                    // Harmonic midpoint of (lo·γ^(i−1), lo·γ^i].
                    self.lo * self.gamma.powi(i as i32) * 2.0 / (1.0 + self.gamma)
                };
            }
        }
        self.max
    }

    /// Finite samples recorded (quantile ranks run over these).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below `lo` (counted, reported exactly at the extremes).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Non-finite samples: counted, never binned, never ranked.
    pub fn nonfinite(&self) -> u64 {
        self.nonfinite
    }

    /// The configured relative-error bound α.
    pub fn relative_error(&self) -> f64 {
        self.alpha
    }

    /// Fixed bucket count (the whole memory footprint is
    /// `bucket_count × 8 B` plus a few scalars).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Exact mean of the recorded finite samples.
    ///
    /// # Panics
    ///
    /// Panics on an empty sketch.
    pub fn mean(&self) -> f64 {
        assert!(self.count > 0, "mean of an empty sketch");
        self.sum / self.count as f64
    }

    /// Exact minimum finite sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact maximum finite sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Folds `other` into `self` — the per-queue → aggregate path.
    ///
    /// # Panics
    ///
    /// Panics when the two sketches were built with different
    /// `(alpha, lo, hi)` (their buckets would not align).
    pub fn merge(&mut self, other: &LogHist) {
        assert!(
            self.alpha.to_bits() == other.alpha.to_bits()
                && self.lo.to_bits() == other.lo.to_bits()
                && self.hi.to_bits() == other.hi.to_bits(),
            "cannot merge sketches with different (alpha, lo, hi)"
        );
        debug_assert_eq!(self.buckets.len(), other.buckets.len());
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.nonfinite += other.nonfinite;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact order statistic under the sketch's own rank rule:
    /// rank ⌈q·n⌉ (1-indexed) of the sorted samples.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// A deterministic, wildly multi-scale sample stream (no RNG:
    /// xstats stays dependency-free).
    fn stream(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                // Mix of scales from ~1e1 to ~1e8 with heavy low mass.
                10.0 + (x * 1.618_033).sin().abs() * 90.0
                    + if i % 7 == 0 { x * 13.0 } else { 0.0 }
                    + if i % 97 == 0 { 1e6 + x * 101.0 } else { 0.0 }
            })
            .collect()
    }

    /// The headline guarantee: p50/p90/p99/p999 within α of the exact
    /// order statistic, for two different α, over 50k samples.
    #[test]
    fn quantiles_within_documented_relative_error() {
        for &alpha in &[0.01, 0.001] {
            let samples = stream(50_000);
            let mut sk = LogHist::new(alpha, 1.0, 1e12);
            for &s in &samples {
                sk.record(s);
            }
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for &q in &[0.5, 0.9, 0.99, 0.999] {
                let exact = exact_quantile(&sorted, q);
                let got = sk.quantile(q);
                let rel = (got - exact).abs() / exact;
                assert!(
                    rel <= alpha * 1.000_001,
                    "alpha={alpha} q={q}: sketch {got} vs exact {exact} (rel {rel})"
                );
            }
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut sk = LogHist::new(0.02, 1.0, 1e9);
        for v in [3.5, 700.25, 0.001, 2e12] {
            sk.record(v);
        }
        assert_eq!(sk.quantile(0.0), 0.001); // underflow rank → exact min
        assert_eq!(sk.quantile(1.0), 2e12); // overflow rank → exact max
        assert_eq!(sk.min(), 0.001);
        assert_eq!(sk.max(), 2e12);
        assert_eq!(sk.underflow(), 1);
        assert_eq!(sk.overflow(), 1);
    }

    #[test]
    fn nonfinite_counted_never_ranked() {
        let mut sk = LogHist::new(0.01, 1.0, 1e6);
        sk.record(f64::NAN);
        sk.record(f64::INFINITY);
        sk.record(f64::NEG_INFINITY);
        sk.record(42.0);
        assert_eq!(sk.nonfinite(), 3);
        assert_eq!(sk.count(), 1);
        let p99 = sk.quantile(0.99);
        assert!((p99 - 42.0).abs() / 42.0 <= 0.01);
    }

    /// Merging per-queue sketches equals one sketch over the
    /// concatenated stream, bit for bit.
    #[test]
    fn merge_equals_single_sketch() {
        let samples = stream(10_000);
        let mut whole = LogHist::latency_ns(0.01);
        let mut parts: Vec<LogHist> = (0..4).map(|_| LogHist::latency_ns(0.01)).collect();
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            parts[i % 4].record(s);
        }
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.count(), whole.count());
        for &q in &[0.5, 0.99, 0.999] {
            assert_eq!(merged.quantile(q).to_bits(), whole.quantile(q).to_bits());
        }
        // The mean's running sum is accumulated in a different order,
        // so it is equal to rounding, not to the bit.
        let rel = (merged.mean() - whole.mean()).abs() / whole.mean();
        assert!(rel < 1e-12, "merged mean drifted: {rel}");
    }

    #[test]
    fn memory_is_fixed_and_small() {
        let sk = LogHist::latency_ns(0.01);
        // ln(1e12)/ln(γ) at α = 1 % → ~1382 buckets, well under 2k.
        assert!(sk.bucket_count() < 2_000, "got {}", sk.bucket_count());
        let mut sk = sk;
        for i in 0..100_000 {
            sk.record((i % 977) as f64 + 1.0);
        }
        assert!(sk.bucket_count() < 2_000, "recording must not grow state");
    }

    #[test]
    fn mean_is_exact() {
        let mut sk = LogHist::new(0.05, 1.0, 1e6);
        for v in [1.0, 2.0, 3.0, 4.0] {
            sk.record(v);
        }
        assert_eq!(sk.mean(), 2.5);
    }

    #[test]
    #[should_panic(expected = "different (alpha, lo, hi)")]
    fn merge_rejects_mismatched_config() {
        let mut a = LogHist::new(0.01, 1.0, 1e6);
        let b = LogHist::new(0.02, 1.0, 1e6);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "empty sketch")]
    fn quantile_of_empty_panics() {
        LogHist::new(0.01, 1.0, 1e6).quantile(0.5);
    }
}
