//! A DIR-24-8-style longest-prefix-match routing table in simulated
//! memory.
//!
//! The §5.2 router carries "3120 entries"; Metron offloads the lookup to
//! the NIC via FlowDirector, but the software path must exist (and is the
//! baseline for the offload ablation). The classic DIR-24-8 layout keeps
//! one 16-bit next-hop slot per /24 — a single memory access per lookup —
//! which in simulated memory means each lookup genuinely walks the cache
//! hierarchy: a 32 MB table gives the DRAM-heavy behaviour a real router
//! exhibits.

use llc_sim::addr::PhysAddr;
use llc_sim::epoch::CoreMem;
use llc_sim::hierarchy::Cycles;
use llc_sim::machine::Machine;
use llc_sim::mem::{MemError, Region};

/// Sentinel for "no route".
pub const NO_ROUTE: u16 = u16::MAX;

/// A routing-table entry: IPv4 prefix, prefix length, next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Network address (host byte order).
    pub prefix: u32,
    /// Prefix length, `1..=24` (DIR-24-8 first level; the evaluation's
    /// tables use core-network prefixes well below /24).
    pub len: u8,
    /// Next-hop identifier.
    pub next_hop: u16,
}

/// The DIR-24-8 first-level table (2^24 × u16 = 32 MB of simulated DRAM).
#[derive(Debug)]
pub struct Lpm {
    tbl24: Region,
    routes: usize,
}

impl Lpm {
    /// Builds the table from `routes`, longest prefixes winning.
    ///
    /// Construction is control-plane work: untimed, straight into
    /// simulated memory.
    ///
    /// # Panics
    ///
    /// Panics on a prefix length outside `1..=24`.
    pub fn build(m: &mut Machine, routes: &[RouteEntry]) -> Result<Self, MemError> {
        let tbl24 = m.mem_mut().alloc(1 << 25, 64)?;
        // Default: no route.
        {
            let bytes = m.mem_mut().slice_mut(tbl24.base(), 1 << 25);
            for chunk in bytes.chunks_exact_mut(2) {
                chunk.copy_from_slice(&NO_ROUTE.to_le_bytes());
            }
        }
        // Shorter prefixes first so longer ones overwrite them.
        let mut sorted: Vec<&RouteEntry> = routes.iter().collect();
        sorted.sort_by_key(|r| r.len);
        for r in &sorted {
            assert!((1..=24).contains(&r.len), "prefix length out of range");
            let span = 1usize << (24 - r.len);
            let start = (r.prefix >> 8) as usize & !(span - 1);
            for i in 0..span {
                let off = (start + i) * 2;
                m.mem_mut()
                    .write(tbl24.base().add(off as u64), &r.next_hop.to_le_bytes());
            }
        }
        Ok(Self {
            tbl24,
            routes: routes.len(),
        })
    }

    /// Number of routes installed.
    pub fn routes(&self) -> usize {
        self.routes
    }

    /// Physical address of the slot covering `dst`.
    fn slot_pa(&self, dst: u32) -> PhysAddr {
        self.tbl24.base().add(u64::from(dst >> 8) * 2)
    }

    /// Timed data-path lookup: one memory access plus index arithmetic.
    pub fn lookup<M: CoreMem + ?Sized>(
        &self,
        m: &mut M,
        core: usize,
        dst: u32,
    ) -> (Option<u16>, Cycles) {
        let mut b = [0u8; 2];
        let mut cycles = m.read_bytes(core, self.slot_pa(dst), &mut b);
        m.advance(core, LOOKUP_WORK);
        cycles += LOOKUP_WORK;
        let hop = u16::from_le_bytes(b);
        ((hop != NO_ROUTE).then_some(hop), cycles)
    }

    /// Untimed control-plane lookup (used when the routing decision is
    /// offloaded to the NIC as a FlowDirector mark).
    pub fn lookup_untimed(&self, m: &Machine, dst: u32) -> Option<u16> {
        let mut b = [0u8; 2];
        m.mem().read(self.slot_pa(dst), &mut b);
        let hop = u16::from_le_bytes(b);
        (hop != NO_ROUTE).then_some(hop)
    }
}

/// Index arithmetic charged per lookup.
pub const LOOKUP_WORK: Cycles = 10;

/// Generates a deterministic routing table like the evaluation's
/// (3120 entries by default in the benches).
///
/// The first two entries are /1 catch-alls (a real core router has a
/// default route), so every destination resolves; the rest are random
/// /8../24 prefixes that override the default for parts of the space.
pub fn synth_routes(count: usize, seed: u64) -> Vec<RouteEntry> {
    use trafficgen::Rng64;
    let mut rng = Rng64::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    out.push(RouteEntry {
        prefix: 0,
        len: 1,
        next_hop: 0,
    });
    if count > 1 {
        out.push(RouteEntry {
            prefix: 0x8000_0000,
            len: 1,
            next_hop: 1,
        });
    }
    while out.len() < count {
        let len = rng.gen_range(8u32..=24) as u8;
        let prefix: u32 = rng.next_u32() & (u32::MAX << (32 - u32::from(len)));
        out.push(RouteEntry {
            prefix,
            len,
            next_hop: (out.len() % 256) as u16,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::machine::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20))
    }

    #[test]
    fn exact_slash24_match() {
        let mut m = machine();
        let lpm = Lpm::build(
            &mut m,
            &[RouteEntry {
                prefix: 0x0a000100,
                len: 24,
                next_hop: 7,
            }],
        )
        .unwrap();
        assert_eq!(lpm.lookup(&mut m, 0, 0x0a000101).0, Some(7));
        assert_eq!(lpm.lookup(&mut m, 0, 0x0a000201).0, None);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut m = machine();
        let lpm = Lpm::build(
            &mut m,
            &[
                RouteEntry {
                    prefix: 0x0a000000,
                    len: 8,
                    next_hop: 1,
                },
                RouteEntry {
                    prefix: 0x0a010000,
                    len: 16,
                    next_hop: 2,
                },
                RouteEntry {
                    prefix: 0x0a010200,
                    len: 24,
                    next_hop: 3,
                },
            ],
        )
        .unwrap();
        assert_eq!(lpm.lookup(&mut m, 0, 0x0a050505).0, Some(1));
        assert_eq!(lpm.lookup(&mut m, 0, 0x0a01ff01).0, Some(2));
        assert_eq!(lpm.lookup(&mut m, 0, 0x0a010203).0, Some(3));
        assert_eq!(lpm.lookup(&mut m, 0, 0x0b000000).0, None);
    }

    #[test]
    fn lookup_is_one_memory_access() {
        let mut m = machine();
        let lpm = Lpm::build(&mut m, &synth_routes(100, 1)).unwrap();
        let (_, cold) = lpm.lookup(&mut m, 0, 0x0a0b0c0d);
        assert_eq!(cold, 192 + LOOKUP_WORK, "cold slot comes from DRAM");
        let (_, hot) = lpm.lookup(&mut m, 0, 0x0a0b0c0d);
        assert_eq!(hot, 4 + LOOKUP_WORK, "hot slot hits L1");
    }

    #[test]
    fn untimed_agrees_with_timed() {
        let mut m = machine();
        let lpm = Lpm::build(&mut m, &synth_routes(500, 2)).unwrap();
        for dst in [0u32, 0x0a000001, 0xffff_ffff, 0x7f000001] {
            let untimed = lpm.lookup_untimed(&m, dst);
            let (timed, _) = lpm.lookup(&mut m, 0, dst);
            assert_eq!(untimed, timed);
        }
    }

    #[test]
    fn synth_routes_are_deterministic_and_valid() {
        let a = synth_routes(3120, 42);
        let b = synth_routes(3120, 42);
        assert_eq!(a.len(), 3120);
        assert_eq!(a[0], b[0]);
        assert!(a.iter().all(|r| (1..=24).contains(&r.len)));
        assert!(a
            .iter()
            .all(|r| r.prefix & !(u32::MAX << (32 - r.len)) == 0));
    }

    #[test]
    #[should_panic(expected = "prefix length out of range")]
    fn rejects_bad_prefix_len() {
        let mut m = machine();
        let _ = Lpm::build(
            &mut m,
            &[RouteEntry {
                prefix: 0,
                len: 25,
                next_hop: 0,
            }],
        );
    }
}
