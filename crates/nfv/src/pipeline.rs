//! A two-stage *pipelined* chain: packets cross cores, so their headers
//! are shared data (paper §8).
//!
//! Metron-style run-to-completion keeps each packet on one core; the
//! alternative pipelining model splits the chain across cores with a
//! handoff ring in between. Then the packet header is touched by **two**
//! cores, and §8's advice applies: "multi-threaded applications that
//! have shared data among multiple cores should find a compromise
//! placement and then use the LLC slice(s) which are beneficial for all
//! cores." [`PipelineHeadroom::Compromise`] wires
//! [`PlacementPolicy::compromise_slice`] into CacheDirector for exactly
//! that, and [`run_pipeline`] measures it against placing for stage 1
//! only and against stock DPDK.

use crate::element::{Action, Ctx, Pkt, ServiceChain};
use crate::elements::{LoadBalancer, MacSwap, Napt};
use crate::runtime::{mem_err, SetupError};
use cache_director::{CacheDirector, CACHEDIRECTOR_HEADROOM};
use engine::{
    AdmissionPolicy, Ctx as PollCtx, Engine, EngineConfig, Execution, Hw, QueueApp, Scheduler,
    Verdict, WorkerSpec,
};
use llc_sim::machine::{Machine, MachineConfig};
use rte::fault::FaultPlan;
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, HeadroomPolicy, Port, RxCompletion, TxDesc};
use rte::ring::Ring;
use rte::steering::{Rss, Steering};
use slice_aware::placement::PlacementPolicy;
use trafficgen::{ArrivalSchedule, CampusTrace, FlowTuple};

/// Header placement for the pipelined chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineHeadroom {
    /// Stock DPDK fixed headroom.
    Stock,
    /// CacheDirector targeting stage 1's closest slice only (the naive
    /// choice, which leaves stage 2 with far-slice reads).
    Stage1Slice,
    /// CacheDirector targeting the compromise slice of both stage cores.
    Compromise,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Core running RX + parse + first element.
    pub stage1_core: usize,
    /// Core running the stateful elements + TX.
    pub stage2_core: usize,
    /// Header placement.
    pub headroom: PipelineHeadroom,
    /// RX descriptor and handoff ring depth.
    pub queue_depth: usize,
    /// Poll burst size.
    pub burst: usize,
    /// Per-stage fixed framework cycles.
    pub stage_cycles: u64,
    /// RNG seed.
    pub seed: u64,
    /// Serial or parallel worker execution (bit-identical either way).
    pub execution: Execution,
    /// Event-driven virtual-time scheduling (default) or the engine's
    /// reference tick-stepper; reports are bit-identical either way
    /// (only `EngineReport::sched` differs).
    pub scheduler: Scheduler,
}

impl PipelineConfig {
    /// Defaults: cores 0 and 2, moderate queues.
    pub fn new(headroom: PipelineHeadroom) -> Self {
        Self {
            stage1_core: 0,
            stage2_core: 2,
            headroom,
            queue_depth: 256,
            burst: 32,
            stage_cycles: 300,
            seed: 0x99,
            execution: Execution::Serial,
            scheduler: Scheduler::default(),
        }
    }

    /// Sets the execution mode.
    #[must_use]
    pub fn with_execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }
}

/// What a pipeline run reports.
#[derive(Debug, Clone, Copy)]
pub struct PipelineResult {
    /// Packets fully processed.
    pub delivered: u64,
    /// Packets dropped (NIC or full handoff ring).
    pub dropped: u64,
    /// Busy cycles on stage 1's core.
    pub stage1_cycles: u64,
    /// Busy cycles on stage 2's core.
    pub stage2_cycles: u64,
    /// The slice the compromise policy chose (for reporting).
    pub compromise_slice: usize,
}

/// A packet in flight between the stages.
#[derive(Debug, Clone, Copy)]
struct Handoff {
    comp: RxCompletion,
}

/// One stage of the two-stage pipeline as a per-worker [`QueueApp`].
///
/// The queue-polling worker runs [`StageApp::Stage1`]: it touches the
/// header, runs the stage-1 element and parks the packet in a private
/// outbox. The queue-less worker runs [`StageApp::Stage2`]: it drains
/// its inbox ring in the [`QueueApp::pump`] hook, runs the stateful
/// elements, and transmits. The cross-core handoff — outbox to inbox —
/// happens in the engine's epoch hook, at the serialization point after
/// the merge, so both workers can safely run on concurrent shards
/// during the epoch itself.
enum StageApp {
    /// RX + parse + first element; hands off via `outbox`.
    Stage1 {
        chain: ServiceChain,
        stage_cycles: u64,
        outbox: Vec<Handoff>,
    },
    /// Stateful elements + TX; fed through `inbox` by the epoch hook.
    Stage2 {
        chain: ServiceChain,
        stage_cycles: u64,
        inbox: Ring<Handoff>,
        burst: usize,
    },
}

impl QueueApp for StageApp {
    fn on_packet(&mut self, ctx: &mut PollCtx<'_>, comp: &RxCompletion) -> Verdict {
        let Self::Stage1 {
            chain,
            stage_cycles,
            outbox,
        } = self
        else {
            // Stage 2 is queue-less and never receives RX completions.
            return Verdict::Drop;
        };
        let mut pkt = Pkt::from_completion(comp);
        {
            let mut ec = Ctx {
                m: &mut *ctx.m,
                core: ctx.core,
            };
            // The stage-1 header touch + element.
            let _ = pkt.flow(&mut ec);
            let _ = chain.process(&mut ec, &mut pkt);
        }
        ctx.m.advance(ctx.core, *stage_cycles);
        // Unconditionally park in the outbox; the epoch hook applies the
        // ring-capacity backpressure when it moves packets across cores.
        outbox.push(Handoff { comp: *comp });
        Verdict::Consumed
    }

    fn pump(&mut self, ctx: &mut PollCtx<'_>, tx: &mut Vec<TxDesc>) -> usize {
        let Self::Stage2 {
            chain,
            stage_cycles,
            inbox,
            burst,
        } = self
        else {
            // The stage-1 worker has nothing to pump.
            return 0;
        };
        let batch = inbox.dequeue_burst(*burst);
        for h in &batch {
            let mut pkt = Pkt::from_completion(&h.comp);
            let action = {
                let mut ec = Ctx {
                    m: &mut *ctx.m,
                    core: ctx.core,
                };
                // Stage 2 re-touches the shared header line.
                let _ = pkt.flow(&mut ec);
                chain.process(&mut ec, &mut pkt).0
            };
            ctx.m.advance(ctx.core, *stage_cycles);
            match action {
                Action::Forward => tx.push(TxDesc {
                    mbuf: h.comp.mbuf,
                    data_pa: h.comp.data_pa,
                    len: h.comp.len,
                }),
                Action::Drop(_) => ctx.drop_packet(h.comp.mbuf),
            }
        }
        batch.len()
    }

    fn has_backlog(&self) -> bool {
        match self {
            Self::Stage1 { .. } => false,
            Self::Stage2 { inbox, .. } => !inbox.is_empty(),
        }
    }
}

/// Runs `n` packets through the two-stage pipeline at `pps`.
///
/// # Errors
///
/// Returns [`SetupError`] when the mempool or a flow table does not fit
/// the simulated DRAM.
pub fn run_pipeline(
    cfg: &PipelineConfig,
    flows: usize,
    pps: f64,
    n: usize,
) -> Result<PipelineResult, SetupError> {
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_seed(cfg.seed));
    let (c1, c2) = (cfg.stage1_core, cfg.stage2_core);
    let policy = PlacementPolicy::from_topology(&m);
    let compromise = policy.compromise_slice(&m, &[c1, c2]);
    let headroom_cap = match cfg.headroom {
        PipelineHeadroom::Stock => rte::mbuf::DEFAULT_HEADROOM,
        _ => CACHEDIRECTOR_HEADROOM,
    };
    let mut pool = MbufPool::create(
        &mut m,
        (4 * cfg.queue_depth) as u32,
        headroom_cap,
        rte::mbuf::DEFAULT_DATAROOM,
    )
    .map_err(mem_err("pipeline mempool"))?;
    let cores = m.config().cores;
    let mut policy: Box<dyn HeadroomPolicy> = match cfg.headroom {
        PipelineHeadroom::Stock => Box::new(FixedHeadroom(rte::mbuf::DEFAULT_HEADROOM)),
        PipelineHeadroom::Stage1Slice => {
            let targets = vec![vec![m.closest_slice(c1)]; cores];
            Box::new(CacheDirector::install_with_targets(
                &mut m, &pool, targets, 0,
            ))
        }
        PipelineHeadroom::Compromise => {
            let targets = vec![vec![compromise]; cores];
            Box::new(CacheDirector::install_with_targets(
                &mut m, &pool, targets, 0,
            ))
        }
    };
    let mut port = Port::new(0, Steering::Rss(Rss::new(1)), cfg.queue_depth);
    // Stage 1: header-touching element; stage 2: the stateful pair.
    let stage1 = ServiceChain::new().push(Box::new(MacSwap::new()));
    let napt = Napt::new(&mut m, 1 << 13).map_err(mem_err("NAPT table"))?;
    let lb = LoadBalancer::new(&mut m, 1 << 13, vec![0x0a64_0001, 0x0a64_0002])
        .map_err(mem_err("LB table"))?;
    let stage2 = ServiceChain::new().push(Box::new(napt)).push(Box::new(lb));

    let apps = vec![
        StageApp::Stage1 {
            chain: stage1,
            stage_cycles: cfg.stage_cycles,
            outbox: Vec::new(),
        },
        StageApp::Stage2 {
            chain: stage2,
            stage_cycles: cfg.stage_cycles,
            inbox: Ring::new(cfg.queue_depth),
            burst: cfg.burst,
        },
    ];
    let ecfg = EngineConfig {
        // Worker 0 polls the single RX queue on stage 1's core; worker 1
        // is queue-less and pumps the handoff ring on stage 2's core.
        workers: vec![
            WorkerSpec {
                core: c1,
                queue: Some(0),
            },
            WorkerSpec {
                core: c2,
                queue: None,
            },
        ],
        queue_depth: cfg.queue_depth,
        burst: cfg.burst,
        faults: FaultPlan::none(),
        execution: cfg.execution,
        admission: AdmissionPolicy::AcceptAll,
        scheduler: cfg.scheduler,
    };
    let mut hw = Hw {
        m: &mut m,
        port: &mut port,
        pool: &mut pool,
        policy: policy.as_mut(),
    };
    let mut eng = Engine::new(apps, ecfg, &mut hw);
    // The cross-core handoff runs at the epoch boundary: drain stage 1's
    // outbox into stage 2's inbox in arrival order, applying the ring's
    // tail-drop backpressure. Every drained packet counts as progress so
    // `drain` keeps stepping while handoffs are still in flight.
    eng.set_epoch_hook(Box::new(|apps, mc| {
        let (head, tail) = apps.split_at_mut(1);
        let (StageApp::Stage1 { outbox, .. }, StageApp::Stage2 { inbox, .. }) =
            (&mut head[0], &mut tail[0])
        else {
            unreachable!("pipeline workers are stage 1 then stage 2");
        };
        let mut moved = 0;
        for h in outbox.drain(..) {
            moved += 1;
            if let Err(h) = inbox.enqueue(h) {
                // Ring full: backpressure. The ring counted the drop;
                // the engine counts it as an application drop and
                // recycles the mbuf into queue 0's pool accounting.
                mc.drop_packet(0, h.comp.mbuf);
            }
        }
        moved
    }));
    let (s1_start, s2_start) = (hw.m.now(c1), hw.m.now(c2));

    let mut trace = CampusTrace::fixed_size(128, flows, cfg.seed);
    let mut sched = ArrivalSchedule::constant_pps(pps);
    let mut frame = vec![0u8; 2048];
    for _ in 0..n {
        let t = sched.next_arrival_ns();
        let spec = trace.next_packet();
        let len =
            crate::packet::encode_frame(&mut frame, &spec.flow, spec.size as usize, t, spec.seq);
        let _ = eng.offer(&mut hw, &spec.flow, &frame[..len], t);
    }
    eng.drain(&mut hw);
    let (rep, _app) = eng.finish(&mut hw);
    Ok(PipelineResult {
        delivered: rep.delivered,
        dropped: rep.nic.total() + rep.app_drops,
        stage1_cycles: hw.m.now(c1) - s1_start,
        stage2_cycles: hw.m.now(c2) - s2_start,
        compromise_slice: compromise,
    })
}

/// Convenience: `FlowTuple` re-export used by pipeline callers.
pub type Flow = FlowTuple;

#[cfg(test)]
mod tests {
    use super::*;

    fn run(headroom: PipelineHeadroom) -> PipelineResult {
        run_pipeline(&PipelineConfig::new(headroom), 64, 500_000.0, 6_000)
            .expect("test config fits")
    }

    #[test]
    fn pipeline_conserves_packets() {
        let r = run(PipelineHeadroom::Stock);
        assert_eq!(r.delivered + r.dropped, 6_000);
        assert!(r.delivered > 5_900, "low rate: nearly everything forwards");
        assert!(r.stage1_cycles > 0 && r.stage2_cycles > 0);
    }

    #[test]
    fn compromise_slice_is_good_for_both_cores() {
        let m = Machine::new(MachineConfig::haswell_e5_2667_v3());
        let p = PlacementPolicy::from_topology(&m);
        let s = p.compromise_slice(&m, &[0, 2]);
        // For cores 0 and 2 (same physical ring) slice 2 minimises the
        // worst-case latency: 36/34 vs slice 0's 34/40.
        assert_eq!(s, 2);
    }

    #[test]
    fn compromise_placement_beats_stage1_only_and_stock() {
        // §8's multi-threaded guidance, measured: total busy cycles
        // across both stages for the same packet stream.
        let stock = run(PipelineHeadroom::Stock);
        let stage1 = run(PipelineHeadroom::Stage1Slice);
        let comp = run(PipelineHeadroom::Compromise);
        let total = |r: &PipelineResult| r.stage1_cycles + r.stage2_cycles;
        assert!(
            total(&comp) < total(&stock),
            "compromise {} must beat stock {}",
            total(&comp),
            total(&stock)
        );
        assert!(
            total(&comp) <= total(&stage1),
            "compromise {} must not lose to stage1-only {}",
            total(&comp),
            total(&stage1)
        );
    }

    #[test]
    fn tiny_handoff_ring_backpressures() {
        let mut cfg = PipelineConfig::new(PipelineHeadroom::Stock);
        cfg.queue_depth = 8;
        // Offered far above what two stages at ~300 cycles each sustain.
        let r = run_pipeline(&cfg, 32, 50_000_000.0, 5_000).expect("test config fits");
        assert!(r.dropped > 0, "overload must shed load somewhere");
        assert_eq!(r.delivered + r.dropped, 5_000);
    }
}
