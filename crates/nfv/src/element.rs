//! The element abstraction and service-chain composition
//! (FastClick/Metron style, §5).

use llc_sim::addr::PhysAddr;
use llc_sim::epoch::CoreMem;
use llc_sim::hierarchy::Cycles;
use trafficgen::FlowTuple;

/// Per-core processing context.
///
/// The memory view is a [`CoreMem`] trait object so the same chain code
/// runs against a whole [`llc_sim::machine::Machine`] (direct use,
/// unit tests) and against a per-core
/// [`llc_sim::epoch::EpochShard`] inside engine epochs.
pub struct Ctx<'a> {
    /// The simulated machine (or a per-core epoch shard of it).
    pub m: &'a mut (dyn CoreMem + 'a),
    /// The core this chain instance runs on.
    pub core: usize,
}

/// A packet as it moves through a chain.
#[derive(Debug, Clone, Copy)]
pub struct Pkt {
    /// Buffer handle.
    pub mbuf: u32,
    /// Frame start.
    pub data_pa: PhysAddr,
    /// Frame length.
    pub len: u16,
    /// FlowDirector mark, if the NIC attached one (HW offload result).
    pub mark: Option<u32>,
    /// Parsed header cache: elements parse once and share.
    pub flow: Option<FlowTuple>,
}

impl Pkt {
    /// Wraps an RX completion.
    pub fn from_completion(c: &rte::nic::RxCompletion) -> Self {
        Self {
            mbuf: c.mbuf,
            data_pa: c.data_pa,
            len: c.len,
            mark: c.mark,
            flow: None,
        }
    }

    /// The parsed 5-tuple, parsing (timed) on first use.
    ///
    /// `None` means the frame does not carry a well-formed
    /// Ethernet+IPv4+TCP prefix (truncated or malformed); elements must
    /// drop such packets as [`DropCause::Parse`], never panic.
    pub fn flow(&mut self, ctx: &mut Ctx<'_>) -> (Option<FlowTuple>, Cycles) {
        if let Some(f) = self.flow {
            return (Some(f), 0);
        }
        let (hdr, c) =
            crate::packet::parse_header(ctx.m, ctx.core, self.data_pa, usize::from(self.len));
        self.flow = hdr.map(|h| h.flow);
        (self.flow, c)
    }
}

/// Why an element dropped a packet — the software half of the drop
/// accounting (the NIC half is [`rte::nic::DropReason`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// The frame failed header parsing (truncated or malformed).
    Parse,
    /// No route matched the destination.
    NoRoute,
    /// A flow table was full and could not admit the flow.
    TableExhausted,
    /// Deliberate policy drop (filters, DPI verdicts).
    Policy,
}

impl std::fmt::Display for DropCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Parse => "parse failure",
            Self::NoRoute => "no route",
            Self::TableExhausted => "flow table exhausted",
            Self::Policy => "policy",
        };
        f.write_str(s)
    }
}

/// What an element decided about a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Pass to the next element / transmit.
    Forward,
    /// Drop the packet, with the cause for the accounting.
    Drop(DropCause),
}

/// A packet-processing element.
///
/// `Send` because chains are owned by per-worker [`engine::QueueApp`]
/// instances, which may run on worker threads during parallel epochs.
pub trait Element: Send {
    /// Processes one packet, returning the action and the cycles spent.
    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt) -> (Action, Cycles);

    /// Element name for reports.
    fn name(&self) -> &'static str;
}

/// A run-to-completion chain of elements.
pub struct ServiceChain {
    elements: Vec<Box<dyn Element>>,
}

impl std::fmt::Debug for ServiceChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.elements.iter().map(|e| e.name()).collect();
        write!(f, "ServiceChain({})", names.join(" -> "))
    }
}

impl ServiceChain {
    /// An empty chain.
    pub fn new() -> Self {
        Self {
            elements: Vec::new(),
        }
    }

    /// Appends an element.
    pub fn push(mut self, e: Box<dyn Element>) -> Self {
        self.elements.push(e);
        self
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True for a chain with no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Runs the packet through every element, stopping on a drop.
    pub fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt) -> (Action, Cycles) {
        let mut total = 0;
        for e in &mut self.elements {
            let (action, c) = e.process(ctx, pkt);
            total += c;
            if let Action::Drop(cause) = action {
                return (Action::Drop(cause), total);
            }
        }
        (Action::Forward, total)
    }
}

impl Default for ServiceChain {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::machine::{Machine, MachineConfig};

    struct CountingElement {
        calls: u64,
        action: Action,
    }

    impl Element for CountingElement {
        fn process(&mut self, ctx: &mut Ctx<'_>, _pkt: &mut Pkt) -> (Action, Cycles) {
            self.calls += 1;
            ctx.m.advance(ctx.core, 10);
            (self.action, 10)
        }

        fn name(&self) -> &'static str {
            "counting"
        }
    }

    fn machine() -> Machine {
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20))
    }

    fn pkt() -> Pkt {
        Pkt {
            mbuf: 0,
            data_pa: PhysAddr(0),
            len: 64,
            mark: None,
            flow: None,
        }
    }

    #[test]
    fn chain_runs_all_elements() {
        let mut m = machine();
        let mut chain = ServiceChain::new()
            .push(Box::new(CountingElement {
                calls: 0,
                action: Action::Forward,
            }))
            .push(Box::new(CountingElement {
                calls: 0,
                action: Action::Forward,
            }));
        assert_eq!(chain.len(), 2);
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (a, c) = chain.process(&mut ctx, &mut pkt());
        assert_eq!(a, Action::Forward);
        assert_eq!(c, 20);
    }

    #[test]
    fn drop_short_circuits() {
        let mut m = machine();
        let mut chain = ServiceChain::new()
            .push(Box::new(CountingElement {
                calls: 0,
                action: Action::Drop(DropCause::Policy),
            }))
            .push(Box::new(CountingElement {
                calls: 0,
                action: Action::Forward,
            }));
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (a, c) = chain.process(&mut ctx, &mut pkt());
        assert_eq!(a, Action::Drop(DropCause::Policy));
        assert_eq!(c, 10, "second element must not run");
    }

    #[test]
    fn flow_cache_parses_once() {
        let mut m = machine();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let mut buf = vec![0u8; 128];
        let f = trafficgen::FlowTuple::tcp(1, 2, 3, 4);
        crate::packet::encode_frame(&mut buf, &f, 128, 0.0, 0);
        m.mem_mut().write(r.pa(0), &buf);
        let mut p = Pkt {
            mbuf: 0,
            data_pa: r.pa(0),
            len: 128,
            mark: None,
            flow: None,
        };
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (flow1, c1) = p.flow(&mut ctx);
        let (flow2, c2) = p.flow(&mut ctx);
        assert_eq!(flow1, Some(f));
        assert_eq!(flow2, Some(f));
        assert!(c1 > 0);
        assert_eq!(c2, 0, "cached parse is free");
    }

    #[test]
    fn flow_on_garbage_is_none_not_panic() {
        let mut m = machine();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        m.mem_mut().write(r.pa(0), &[0xffu8; 64]);
        let mut p = Pkt {
            mbuf: 0,
            data_pa: r.pa(0),
            len: 20,
            mark: None,
            flow: None,
        };
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (flow, c) = p.flow(&mut ctx);
        assert_eq!(flow, None);
        assert!(c > 0, "failed parse still costs cycles");
    }

    #[test]
    fn debug_format_lists_elements() {
        let chain = ServiceChain::new().push(Box::new(CountingElement {
            calls: 0,
            action: Action::Forward,
        }));
        assert_eq!(format!("{chain:?}"), "ServiceChain(counting)");
        assert!(!chain.is_empty());
    }
}
