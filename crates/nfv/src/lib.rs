//! An element-based NFV framework over the `rte` substrate, plus the
//! event-driven testbed runtime of the paper's §5.
//!
//! The paper evaluates CacheDirector on Metron (an NFV platform built on
//! FastClick): packets flow through chains of small *elements*, pinned
//! run-to-completion on each core. This crate provides:
//!
//! * **Packet codecs** ([`packet`]): Ethernet/IPv4/TCP frames with the
//!   LoadGen timestamp in the payload.
//! * **Dataplane state in simulated memory**: a DIR-24-8 longest-prefix
//!   router table ([`lpm`]) and an open-addressing flow table
//!   ([`table`]) — both reside in simulated DRAM so every lookup walks
//!   the cache hierarchy and costs the cycles it should.
//! * **Elements** ([`element`], [`elements`]): MacSwap (the §5.1 simple
//!   forwarding app) and the §5.2 stateful chain Router → NAPT → LB.
//! * **The testbed** ([`runtime`]): LoadGen → DuT → LoadGen, reproducing
//!   the measurement methodology of Fig. 11 — constant-rate arrivals,
//!   per-core run-to-completion polling with descriptor-limited queues,
//!   end-to-end latency per packet with the loopback component separated
//!   out.

//! # Examples
//!
//! A minimal experiment: 64 B packets at low rate through the simple
//! forwarding app, stock DPDK vs CacheDirector:
//!
//! ```
//! use nfv::runtime::{run_experiment, ChainSpec, HeadroomMode, RunConfig, SteeringKind};
//! use trafficgen::{ArrivalSchedule, CampusTrace};
//!
//! let mut cfg = RunConfig::paper_defaults(
//!     ChainSpec::MacSwap,
//!     SteeringKind::Rss,
//!     HeadroomMode::CacheDirector { preferred_slices: 1 },
//! );
//! cfg.cores = 2;
//! cfg.queue_depth = 64;
//! cfg.mbufs = 512;
//! let mut trace = CampusTrace::fixed_size(64, 16, 1);
//! let mut sched = ArrivalSchedule::constant_pps(1000.0);
//! let res = run_experiment(cfg, &mut trace, &mut sched, 200).expect("config fits");
//! assert_eq!(res.delivered, 200);
//! let p99 = res.summary().unwrap().percentile(99.0);
//! assert!(p99 > 0.0);
//! ```

pub mod element;
pub mod elements;
pub mod lpm;
pub mod packet;
pub mod pipeline;
pub mod runtime;
pub mod table;

pub use element::{Action, Ctx, Element, ServiceChain};
pub use runtime::{HeadroomMode, RunConfig, RunResult};
