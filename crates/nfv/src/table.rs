//! An open-addressing flow table in simulated memory.
//!
//! The stateful elements (NAPT, load balancer) key per-flow state on the
//! 5-tuple. Each bucket occupies exactly one cache line, so a lookup is
//! one hash computation plus (usually) one memory access — and that
//! access walks the simulated hierarchy, which is where the real cost of
//! stateful NFs comes from.

use llc_sim::addr::PhysAddr;
use llc_sim::epoch::CoreMem;
use llc_sim::hierarchy::Cycles;
use llc_sim::machine::Machine;
use llc_sim::mem::{MemError, Region};
use llc_sim::CACHE_LINE;
use trafficgen::FlowTuple;

/// Bucket layout within a 64 B line:
/// `[0] state (0 empty / 1 used)`, `[1..14] packed key`, `[16..24] value`.
const STATE_OFF: u64 = 0;
const KEY_OFF: u64 = 1;
const VAL_OFF: u64 = 16;
const KEY_LEN: usize = 13;

/// Hash-computation work charged per operation.
pub const HASH_WORK: Cycles = 15;

/// Serialises a flow key into 13 bytes.
fn pack_key(f: &FlowTuple) -> [u8; KEY_LEN] {
    let mut k = [0u8; KEY_LEN];
    k[0..4].copy_from_slice(&f.src_ip.to_be_bytes());
    k[4..8].copy_from_slice(&f.dst_ip.to_be_bytes());
    k[8..10].copy_from_slice(&f.src_port.to_be_bytes());
    k[10..12].copy_from_slice(&f.dst_port.to_be_bytes());
    k[12] = f.proto;
    k
}

/// FNV-1a over the packed key (host-side arithmetic; charged as
/// [`HASH_WORK`]).
fn hash_key(k: &[u8; KEY_LEN]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in k {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors from flow-table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// All buckets along the probe path are occupied.
    Full,
}

/// An open-addressing (linear probing) flow table of `2^k` one-line
/// buckets in simulated memory.
#[derive(Debug)]
pub struct FlowTable {
    region: Region,
    buckets: usize,
    used: usize,
    /// Probe cap: linear probing degrades past ~70 % load; the table
    /// refuses inserts that would probe further.
    max_probes: usize,
}

impl FlowTable {
    /// Creates an empty table of `buckets` (a power of two) buckets.
    ///
    /// # Panics
    ///
    /// Panics when `buckets` is not a power of two.
    pub fn create(m: &mut Machine, buckets: usize) -> Result<Self, MemError> {
        assert!(buckets.is_power_of_two(), "bucket count must be 2^k");
        let region = m.mem_mut().alloc(buckets * CACHE_LINE, CACHE_LINE)?;
        // Simulated memory starts zeroed; state 0 = empty.
        Ok(Self {
            region,
            buckets,
            used: 0,
            max_probes: 32,
        })
    }

    /// Bucket count.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Occupied buckets.
    pub fn len(&self) -> usize {
        self.used
    }

    /// True when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Table size in bytes.
    pub fn bytes(&self) -> usize {
        self.buckets * CACHE_LINE
    }

    fn bucket_pa(&self, i: usize) -> PhysAddr {
        self.region.pa((i & (self.buckets - 1)) * CACHE_LINE)
    }

    /// Timed lookup. Returns the value and the cycles spent probing.
    pub fn lookup<M: CoreMem + ?Sized>(
        &self,
        m: &mut M,
        core: usize,
        flow: &FlowTuple,
    ) -> (Option<u64>, Cycles) {
        let key = pack_key(flow);
        let h = hash_key(&key) as usize;
        m.advance(core, HASH_WORK);
        let mut cycles = HASH_WORK;
        for p in 0..self.max_probes {
            let pa = self.bucket_pa(h + p);
            let mut line = [0u8; 24];
            cycles += m.read_bytes(core, pa, &mut line);
            if line[STATE_OFF as usize] == 0 {
                return (None, cycles);
            }
            if line[KEY_OFF as usize..KEY_OFF as usize + KEY_LEN] == key {
                let v = u64::from_le_bytes(
                    line[VAL_OFF as usize..VAL_OFF as usize + 8]
                        .try_into()
                        .expect("8 bytes"),
                );
                return (Some(v), cycles);
            }
        }
        (None, cycles)
    }

    /// Timed insert (or overwrite). Returns the cycles spent.
    pub fn insert<M: CoreMem + ?Sized>(
        &mut self,
        m: &mut M,
        core: usize,
        flow: &FlowTuple,
        value: u64,
    ) -> Result<Cycles, TableError> {
        let key = pack_key(flow);
        let h = hash_key(&key) as usize;
        m.advance(core, HASH_WORK);
        let mut cycles = HASH_WORK;
        for p in 0..self.max_probes {
            let pa = self.bucket_pa(h + p);
            let mut line = [0u8; 24];
            cycles += m.read_bytes(core, pa, &mut line);
            let empty = line[STATE_OFF as usize] == 0;
            let ours = !empty && line[KEY_OFF as usize..KEY_OFF as usize + KEY_LEN] == key;
            if empty || ours {
                let mut out = [0u8; 24];
                out[STATE_OFF as usize] = 1;
                out[KEY_OFF as usize..KEY_OFF as usize + KEY_LEN].copy_from_slice(&key);
                out[VAL_OFF as usize..VAL_OFF as usize + 8].copy_from_slice(&value.to_le_bytes());
                cycles += m.write_bytes(core, pa, &out);
                if empty {
                    self.used += 1;
                }
                return Ok(cycles);
            }
        }
        Err(TableError::Full)
    }

    /// Timed lookup that inserts `make()`'s value on a miss — the
    /// standard per-flow state pattern of NAPT/LB.
    pub fn lookup_or_insert_with<M: CoreMem + ?Sized>(
        &mut self,
        m: &mut M,
        core: usize,
        flow: &FlowTuple,
        make: impl FnOnce() -> u64,
    ) -> Result<(u64, bool, Cycles), TableError> {
        let (found, c1) = self.lookup(m, core, flow);
        match found {
            Some(v) => Ok((v, false, c1)),
            None => {
                let v = make();
                let c2 = self.insert(m, core, flow, v)?;
                Ok((v, true, c1 + c2))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::machine::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(128 << 20))
    }

    fn flow(i: u32) -> FlowTuple {
        FlowTuple::tcp(0x0a000000 + i, 1000 + (i % 50000) as u16, 0xc0a80001, 80)
    }

    #[test]
    fn insert_then_lookup() {
        let mut m = machine();
        let mut t = FlowTable::create(&mut m, 1024).unwrap();
        t.insert(&mut m, 0, &flow(1), 42).unwrap();
        assert_eq!(t.lookup(&mut m, 0, &flow(1)).0, Some(42));
        assert_eq!(t.lookup(&mut m, 0, &flow(2)).0, None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn overwrite_keeps_len() {
        let mut m = machine();
        let mut t = FlowTable::create(&mut m, 64).unwrap();
        t.insert(&mut m, 0, &flow(1), 1).unwrap();
        t.insert(&mut m, 0, &flow(1), 2).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&mut m, 0, &flow(1)).0, Some(2));
    }

    #[test]
    fn many_flows_roundtrip() {
        let mut m = machine();
        let mut t = FlowTable::create(&mut m, 4096).unwrap();
        for i in 0..2000 {
            t.insert(&mut m, 0, &flow(i), u64::from(i) * 3).unwrap();
        }
        assert_eq!(t.len(), 2000);
        for i in 0..2000 {
            assert_eq!(t.lookup(&mut m, 0, &flow(i)).0, Some(u64::from(i) * 3));
        }
    }

    #[test]
    fn lookup_or_insert_with_semantics() {
        let mut m = machine();
        let mut t = FlowTable::create(&mut m, 256).unwrap();
        let (v, fresh, _) = t
            .lookup_or_insert_with(&mut m, 0, &flow(9), || 123)
            .unwrap();
        assert!(fresh);
        assert_eq!(v, 123);
        let (v, fresh, _) = t
            .lookup_or_insert_with(&mut m, 0, &flow(9), || 999)
            .unwrap();
        assert!(!fresh, "second hit must not insert");
        assert_eq!(v, 123);
    }

    #[test]
    fn probing_costs_memory_accesses() {
        let mut m = machine();
        let mut t = FlowTable::create(&mut m, 1024).unwrap();
        t.insert(&mut m, 0, &flow(5), 1).unwrap();
        // A hot lookup: hash work + one L1 hit.
        let (_, _) = t.lookup(&mut m, 0, &flow(5));
        let (_, hot) = t.lookup(&mut m, 0, &flow(5));
        assert_eq!(hot, HASH_WORK + 4);
    }

    #[test]
    fn full_table_reports_error() {
        let mut m = machine();
        // Tiny table with a probe cap larger than the table: fill it up.
        let mut t = FlowTable::create(&mut m, 16).unwrap();
        let mut err = None;
        for i in 0..32 {
            if let Err(e) = t.insert(&mut m, 0, &flow(i), 0) {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(TableError::Full));
        assert!(t.len() <= 16);
    }

    #[test]
    fn empty_and_bytes() {
        let mut m = machine();
        let t = FlowTable::create(&mut m, 128).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.bytes(), 128 * 64);
        assert_eq!(t.buckets(), 128);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn rejects_non_pow2() {
        let mut m = machine();
        let _ = FlowTable::create(&mut m, 100);
    }
}
