//! Ethernet/IPv4/TCP frame encoding and (timed) header access.
//!
//! Frames carry the LoadGen timestamp and sequence number in the payload
//! ("the LoadGen writes a timestamp in each packet's payload", §5). The
//! whole 54 B header prefix sits in the first cache line of the frame,
//! which is precisely the 64 B window CacheDirector places.

use llc_sim::addr::PhysAddr;
use llc_sim::epoch::CoreMem;
use llc_sim::hierarchy::Cycles;
use llc_sim::machine::Machine;
use trafficgen::FlowTuple;

/// Ethernet header length.
pub const ETH_LEN: usize = 14;
/// IPv4 header length (no options).
pub const IPV4_LEN: usize = 20;
/// TCP header length (no options).
pub const TCP_LEN: usize = 20;
/// Total L2-L4 header prefix.
pub const HDR_LEN: usize = ETH_LEN + IPV4_LEN + TCP_LEN;
/// Payload offset of the timestamp (whole nanoseconds, u32 — enough for
/// runs of up to ~4.3 simulated seconds, and small enough that the tag
/// fits the paper's 64 B minimum frames).
pub const TS_OFF: usize = HDR_LEN;
/// Payload offset of the (u32) sequence number.
pub const SEQ_OFF: usize = HDR_LEN + 4;
/// Smallest frame that still carries timestamp + sequence.
pub const MIN_FRAME: usize = SEQ_OFF + 4;

/// Fixed MACs: LoadGen and DuT ends of the wire.
pub const LOADGEN_MAC: [u8; 6] = [0x02, 0x00, 0x00, 0x00, 0x00, 0x01];
/// DuT port MAC.
pub const DUT_MAC: [u8; 6] = [0x02, 0x00, 0x00, 0x00, 0x00, 0x02];

/// Encodes a frame into `buf` (host-side, untimed — this is LoadGen
/// work, not DuT work). Returns the frame length actually written.
///
/// # Panics
///
/// Panics when `size` is below [`MIN_FRAME`] or exceeds `buf`.
pub fn encode_frame(buf: &mut [u8], flow: &FlowTuple, size: usize, ts_ns: f64, seq: u64) -> usize {
    assert!(size >= MIN_FRAME, "frame too small for the test payload");
    assert!(size <= buf.len(), "buffer too small");
    buf[..size].fill(0);
    buf[0..6].copy_from_slice(&DUT_MAC);
    buf[6..12].copy_from_slice(&LOADGEN_MAC);
    buf[12..14].copy_from_slice(&0x0800u16.to_be_bytes());
    // IPv4.
    buf[14] = 0x45;
    let tot_len = (size - ETH_LEN) as u16;
    buf[16..18].copy_from_slice(&tot_len.to_be_bytes());
    buf[22] = 64; // TTL.
    buf[23] = flow.proto;
    buf[26..30].copy_from_slice(&flow.src_ip.to_be_bytes());
    buf[30..34].copy_from_slice(&flow.dst_ip.to_be_bytes());
    // TCP/UDP ports (same offsets for both).
    buf[34..36].copy_from_slice(&flow.src_port.to_be_bytes());
    buf[36..38].copy_from_slice(&flow.dst_port.to_be_bytes());
    // Payload: timestamp + sequence.
    buf[TS_OFF..TS_OFF + 4].copy_from_slice(&(ts_ns as u32).to_le_bytes());
    buf[SEQ_OFF..SEQ_OFF + 4].copy_from_slice(&(seq as u32).to_le_bytes());
    size
}

/// A parsed header, as the elements see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedHeader {
    /// Transport 5-tuple.
    pub flow: FlowTuple,
    /// IPv4 TTL.
    pub ttl: u8,
}

/// Reads and parses the 54 B header prefix at `data_pa` (timed on
/// `core`) — the access CacheDirector accelerates.
///
/// Fully bounds-checked: `frame_len` is the bytes actually on the wire,
/// and no frame — truncated, malformed, or hostile — can make this
/// panic. Returns `None` (still charging the cycles spent looking) when
/// the frame is too short for an Ethernet+IPv4+TCP prefix, is not IPv4,
/// has IP options (unsupported here), or claims an IP total length that
/// does not fit in the frame (a mid-packet truncation).
pub fn parse_header<M: CoreMem + ?Sized>(
    m: &mut M,
    core: usize,
    data_pa: PhysAddr,
    frame_len: usize,
) -> (Option<ParsedHeader>, Cycles) {
    let mut hdr = [0u8; HDR_LEN];
    let readable = frame_len.min(HDR_LEN);
    let mut cycles = m.read_bytes(core, data_pa, &mut hdr[..readable]);
    // Field extraction work.
    m.advance(core, PARSE_WORK);
    cycles += PARSE_WORK;
    if frame_len < HDR_LEN {
        return (None, cycles);
    }
    let ethertype = u16::from_be_bytes([hdr[12], hdr[13]]);
    if ethertype != 0x0800 {
        return (None, cycles);
    }
    // Version 4, IHL 5 (options unsupported).
    if hdr[14] != 0x45 {
        return (None, cycles);
    }
    let tot_len = usize::from(u16::from_be_bytes([hdr[16], hdr[17]]));
    if tot_len < IPV4_LEN + TCP_LEN || tot_len > frame_len - ETH_LEN {
        // Claims more (or fewer) bytes than the wire carried.
        return (None, cycles);
    }
    let flow = FlowTuple {
        src_ip: u32::from_be_bytes([hdr[26], hdr[27], hdr[28], hdr[29]]),
        dst_ip: u32::from_be_bytes([hdr[30], hdr[31], hdr[32], hdr[33]]),
        src_port: u16::from_be_bytes([hdr[34], hdr[35]]),
        dst_port: u16::from_be_bytes([hdr[36], hdr[37]]),
        proto: hdr[23],
    };
    (Some(ParsedHeader { flow, ttl: hdr[22] }), cycles)
}

/// Cycles of pure-ALU work charged for header field extraction.
pub const PARSE_WORK: Cycles = 30;

/// Swaps source and destination MAC addresses in place (timed) — the
/// §5.1 simple-forwarding application.
pub fn mac_swap<M: CoreMem + ?Sized>(m: &mut M, core: usize, data_pa: PhysAddr) -> Cycles {
    let mut macs = [0u8; 12];
    let mut cycles = m.read_bytes(core, data_pa, &mut macs);
    let (dst, src) = macs.split_at_mut(6);
    dst.swap_with_slice(src);
    cycles += m.write_bytes(core, data_pa, &macs);
    cycles
}

/// Rewrites the IPv4 destination address (timed) — the load balancer's
/// action.
pub fn rewrite_dst_ip<M: CoreMem + ?Sized>(
    m: &mut M,
    core: usize,
    data_pa: PhysAddr,
    new_ip: u32,
) -> Cycles {
    let mut c = m.write_bytes(core, data_pa.add(30), &new_ip.to_be_bytes());
    // Incremental checksum update.
    m.advance(core, CSUM_WORK);
    c += CSUM_WORK;
    c
}

/// Rewrites the transport source port (timed) — NAPT's action.
pub fn rewrite_src_port<M: CoreMem + ?Sized>(
    m: &mut M,
    core: usize,
    data_pa: PhysAddr,
    new_port: u16,
) -> Cycles {
    let mut c = m.write_bytes(core, data_pa.add(34), &new_port.to_be_bytes());
    m.advance(core, CSUM_WORK);
    c += CSUM_WORK;
    c
}

/// Decrements TTL in place (timed) — the router's action.
pub fn decrement_ttl<M: CoreMem + ?Sized>(m: &mut M, core: usize, data_pa: PhysAddr) -> Cycles {
    let mut ttl = [0u8; 1];
    let mut c = m.read_bytes(core, data_pa.add(22), &mut ttl);
    ttl[0] = ttl[0].saturating_sub(1);
    c += m.write_bytes(core, data_pa.add(22), &ttl);
    m.advance(core, CSUM_WORK);
    c + CSUM_WORK
}

/// Incremental-checksum work per header rewrite.
pub const CSUM_WORK: Cycles = 15;

/// Reads the payload timestamp and sequence back out (host-side,
/// untimed — this happens at the LoadGen on the packet's return).
pub fn read_payload_tag(m: &Machine, data_pa: PhysAddr) -> (f64, u64) {
    let mut b = [0u8; 8];
    m.mem().read(data_pa.add(TS_OFF as u64), &mut b);
    let ts = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    let seq = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);
    (f64::from(ts), u64::from(seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::machine::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20))
    }

    fn flow() -> FlowTuple {
        FlowTuple::tcp(0x0a010203, 4444, 0xc0a80105, 443)
    }

    #[test]
    fn encode_parse_roundtrip() {
        let mut m = machine();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let mut buf = vec![0u8; 1500];
        let n = encode_frame(&mut buf, &flow(), 128, 123.0, 77);
        assert_eq!(n, 128);
        m.mem_mut().write(r.pa(0), &buf[..n]);
        let (hdr, cycles) = parse_header(&mut m, 0, r.pa(0), n);
        let hdr = hdr.expect("well-formed frame parses");
        assert_eq!(hdr.flow, flow());
        assert_eq!(hdr.ttl, 64);
        assert!(cycles > PARSE_WORK);
        let (ts, seq) = read_payload_tag(&m, r.pa(0));
        assert_eq!(ts, 123.0);
        assert_eq!(seq, 77);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // A paper invariant, kept visible.
    fn header_fits_one_cache_line() {
        assert!(HDR_LEN <= 64, "CacheDirector places exactly this window");
    }

    #[test]
    fn mac_swap_swaps() {
        let mut m = machine();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let mut buf = vec![0u8; 128];
        encode_frame(&mut buf, &flow(), 128, 0.0, 0);
        m.mem_mut().write(r.pa(0), &buf);
        mac_swap(&mut m, 0, r.pa(0));
        let out = m.mem().slice(r.pa(0), 12);
        assert_eq!(&out[0..6], &LOADGEN_MAC);
        assert_eq!(&out[6..12], &DUT_MAC);
    }

    #[test]
    fn rewrites_affect_reparse() {
        let mut m = machine();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let mut buf = vec![0u8; 128];
        encode_frame(&mut buf, &flow(), 128, 0.0, 0);
        m.mem_mut().write(r.pa(0), &buf);
        rewrite_dst_ip(&mut m, 0, r.pa(0), 0x01020304);
        rewrite_src_port(&mut m, 0, r.pa(0), 9999);
        decrement_ttl(&mut m, 0, r.pa(0));
        let (hdr, _) = parse_header(&mut m, 0, r.pa(0), 128);
        let hdr = hdr.expect("well-formed frame parses");
        assert_eq!(hdr.flow.dst_ip, 0x01020304);
        assert_eq!(hdr.flow.src_port, 9999);
        assert_eq!(hdr.ttl, 63);
    }

    #[test]
    fn truncated_frames_parse_to_none() {
        let mut m = machine();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let mut buf = vec![0u8; 128];
        let n = encode_frame(&mut buf, &flow(), 128, 0.0, 0);
        m.mem_mut().write(r.pa(0), &buf[..n]);
        // Every truncation point must be rejected, never panic: shorter
        // than the L2-L4 prefix, or long enough for the prefix but
        // shorter than the IP total length claims.
        for cut in 0..HDR_LEN + 8 {
            let (hdr, cycles) = parse_header(&mut m, 0, r.pa(0), cut);
            assert!(hdr.is_none(), "cut at {cut} must not parse");
            assert!(cycles >= PARSE_WORK, "rejection still costs cycles");
        }
        let (hdr, _) = parse_header(&mut m, 0, r.pa(0), 128);
        assert!(hdr.is_some());
    }

    #[test]
    fn malformed_headers_parse_to_none() {
        let mut m = machine();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let mut buf = vec![0u8; 128];
        encode_frame(&mut buf, &flow(), 128, 0.0, 0);
        // Not IPv4 ethertype.
        let mut bad = buf.clone();
        bad[12] = 0x86;
        bad[13] = 0xdd;
        m.mem_mut().write(r.pa(0), &bad);
        assert!(parse_header(&mut m, 0, r.pa(0), 128).0.is_none());
        // IP options (IHL > 5).
        let mut bad = buf.clone();
        bad[14] = 0x46;
        m.mem_mut().write(r.pa(0), &bad);
        assert!(parse_header(&mut m, 0, r.pa(0), 128).0.is_none());
        // IP total length larger than the wire frame.
        let mut bad = buf.clone();
        bad[16..18].copy_from_slice(&1400u16.to_be_bytes());
        m.mem_mut().write(r.pa(0), &bad);
        assert!(parse_header(&mut m, 0, r.pa(0), 128).0.is_none());
        // IP total length too small for IPv4+TCP.
        let mut bad = buf.clone();
        bad[16..18].copy_from_slice(&20u16.to_be_bytes());
        m.mem_mut().write(r.pa(0), &bad);
        assert!(parse_header(&mut m, 0, r.pa(0), 128).0.is_none());
    }

    #[test]
    fn parse_cost_reflects_header_location() {
        let mut m = machine();
        let r = m.mem_mut().alloc(1 << 20, 1 << 20).unwrap();
        let pa = r.pa(0);
        let mut buf = vec![0u8; 64];
        encode_frame(&mut buf, &flow(), 64, 0.0, 0);
        // DDIO-delivered header: LLC hit at slice distance.
        m.dma_write(pa, &buf);
        let (_, cold) = parse_header(&mut m, 0, pa, 64);
        let slice = m.slice_of(pa);
        assert_eq!(cold, u64::from(m.llc_latency(0, slice)) + PARSE_WORK);
        // Re-parse: L1 hit.
        let (_, hot) = parse_header(&mut m, 0, pa, 64);
        assert_eq!(hot, 4 + PARSE_WORK);
    }

    #[test]
    #[should_panic(expected = "frame too small")]
    fn rejects_undersized_frames() {
        let mut buf = vec![0u8; 64];
        encode_frame(&mut buf, &flow(), 32, 0.0, 0);
    }
}
