//! The testbed runtime: LoadGen → DuT → LoadGen (paper §5, Fig. 11).
//!
//! An event-driven simulation of the paper's measurement setup. The
//! LoadGen emits frames on a constant-rate schedule (Table 2); the DuT
//! runs one run-to-completion polling loop per core over its NIC queue;
//! end-to-end latency is `completion − arrival` per packet, with the
//! constant loopback component kept separate exactly like the paper
//! ("we removed the minimum value of the loopback latency from the
//! end-to-end latency").
//!
//! Time model: each DuT core has a *free-at* timestamp. Cores never run
//! ahead of the LoadGen clock, so queueing emerges naturally — a core
//! that is busy when frames arrive leaves them in the descriptor ring,
//! and once the ring's posted descriptors are exhausted the NIC drops
//! (`rx_nodesc`), which is the throughput ceiling of Table 3. All
//! per-packet work (driver metadata writes, header parses, table
//! lookups, TX doorbells) executes against the simulated machine, so
//! cycles — and therefore latency — respond to where packet headers sit
//! in the LLC, which is the effect CacheDirector exists to exploit.

use crate::element::{Action, DropCause, Pkt, ServiceChain};
use crate::elements::{LoadBalancer, MacSwap, Napt, Router};
use crate::lpm::{synth_routes, Lpm};
use crate::packet::encode_frame;
use cache_director::{CacheDirector, CACHEDIRECTOR_HEADROOM};
use engine::{
    AdmissionPolicy, Engine, EngineConfig, Execution, Hw, NicDrops, QueueApp, Scheduler, Verdict,
    WorkerSpec,
};
use llc_sim::machine::{Machine, MachineConfig};
use llc_sim::mem::MemError;
use rte::fault::FaultPlan;
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, HeadroomPolicy, Port, RxCompletion, TxDesc};
use rte::steering::{FdirAction, FlowDirector, Rss, Steering};
use std::collections::HashSet;
use std::sync::Arc;
use trafficgen::{ArrivalSchedule, CampusTrace, FlowTuple};

/// Why a testbed could not be assembled: some required structure did
/// not fit the simulated DRAM. Construction reports this instead of
/// panicking so experiment binaries can fail with a clear message.
#[derive(Debug)]
pub enum SetupError {
    /// `what` could not be allocated from simulated memory.
    Mem {
        /// The structure being allocated.
        what: &'static str,
        /// The underlying allocation failure.
        source: MemError,
    },
}

impl std::fmt::Display for SetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Mem { what, source } => {
                write!(f, "cannot allocate {what}: {source}")
            }
        }
    }
}

impl std::error::Error for SetupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Mem { source, .. } => Some(source),
        }
    }
}

pub(crate) fn mem_err(what: &'static str) -> impl FnOnce(MemError) -> SetupError {
    move |source| SetupError::Mem { what, source }
}

/// Per-cause drop accounting for a run. The conservation invariant
/// `offered == delivered + total()` holds for every finished run; the
/// engine asserts it (per queue and globally) when [`Testbed::finish`]
/// closes the run.
///
/// The NIC/driver causes are the shared [`engine::NicDrops`] core; the
/// chain-level causes are the NFV-specific software vocabulary stacked
/// on top.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropStats {
    /// NIC/driver drops (descriptor exhaustion, pool starvation, CRC,
    /// link, stalls, TX-path faults), as accounted by the engine.
    pub nic: NicDrops,
    /// Chain: header parse failure (truncated/malformed frame).
    pub parse: u64,
    /// Chain: no route for the destination.
    pub no_route: u64,
    /// Chain: a flow table was full.
    pub table_exhausted: u64,
    /// Chain: deliberate policy drop.
    pub policy: u64,
}

impl DropStats {
    /// Sum over every cause.
    pub fn total(&self) -> u64 {
        self.nic.total() + self.chain_total()
    }

    /// Sum over the chain-level (software) causes only.
    pub fn chain_total(&self) -> u64 {
        self.parse + self.no_route + self.table_exhausted + self.policy
    }
}

impl std::fmt::Display for DropStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} parse={} no_route={} table_exhausted={} policy={}",
            self.nic, self.parse, self.no_route, self.table_exhausted, self.policy
        )
    }
}

/// Which headroom policy the DuT's driver uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadroomMode {
    /// Stock DPDK: fixed 128 B headroom.
    Stock,
    /// DPDK + CacheDirector.
    CacheDirector {
        /// How many closest slices count as acceptable per core (1 on
        /// Haswell; 2-3 pays off on Skylake, Table 4).
        preferred_slices: usize,
    },
}

/// Which application the DuT runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainSpec {
    /// §5.1 simple forwarding (MacSwap).
    MacSwap,
    /// §5.2 stateful chain: Router → NAPT → LB.
    RouterNaptLb {
        /// Routing-table size (the paper uses 3120).
        routes: usize,
        /// Offload routing to the NIC via FlowDirector marks (Metron).
        offload: bool,
    },
}

/// RX steering mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteeringKind {
    /// Receive Side Scaling (Fig. 13).
    Rss,
    /// FlowDirector with round-robin flow placement (Fig. 14).
    FlowDirector,
}

/// Full experiment configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// DuT cores (and RX queues), 1..=8.
    pub cores: usize,
    /// RX steering.
    pub steering: SteeringKind,
    /// Application chain.
    pub chain: ChainSpec,
    /// Headroom policy.
    pub headroom: HeadroomMode,
    /// RX descriptors per queue.
    pub queue_depth: usize,
    /// PMD burst size.
    pub burst: usize,
    /// Mbuf pool size (0 = auto: `2 × cores × queue_depth`).
    pub mbufs: u32,
    /// Fixed per-packet framework cycles (FastClick/Metron bookkeeping;
    /// calibrated so the 8-core DuT saturates near the paper's ~76 Gbps,
    /// see EXPERIMENTS.md).
    pub framework_cycles: u64,
    /// Minimum loopback latency of the testbed in ns (the paper measures
    /// 9 µs at low rate and 495 µs at 100 Gbps; reported separately).
    pub loopback_ns: f64,
    /// NIC RX packet-rate ceiling in Mpps (None = unlimited). The paper's
    /// testbed tops out near 76 Gbps of campus mix ≈ 13.9 Mpps due to
    /// NIC/PCIe/DDIO limits (§5.1.2, Table 3).
    pub nic_rate_mpps: Option<f64>,
    /// RNG seed.
    pub seed: u64,
    /// Injected faults (default: none).
    pub faults: FaultPlan,
    /// Serial (reference) or parallel worker execution; results are
    /// bit-identical either way.
    pub execution: Execution,
    /// Event-driven virtual-time scheduling (default) or the engine's
    /// reference tick-stepper; reports are bit-identical either way
    /// (only `EngineReport::sched` differs).
    pub scheduler: Scheduler,
}

impl RunConfig {
    /// The §5 defaults: 8 cores, 1024-descriptor queues, 32-burst.
    pub fn paper_defaults(
        chain: ChainSpec,
        steering: SteeringKind,
        headroom: HeadroomMode,
    ) -> Self {
        Self {
            cores: 8,
            steering,
            chain,
            headroom,
            queue_depth: 1024,
            burst: 32,
            mbufs: 0,
            framework_cycles: 1210,
            loopback_ns: 0.0,
            nic_rate_mpps: Some(14.2),
            seed: 0x0dfe_11ce,
            faults: FaultPlan::none(),
            execution: Execution::Serial,
            scheduler: Scheduler::default(),
        }
    }

    /// The same configuration with a fault plan attached.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The same configuration with the given execution mode.
    #[must_use]
    pub fn with_execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-delivered-packet DuT latency in ns (completion − arrival),
    /// without the loopback component.
    pub latencies_ns: Vec<f64>,
    /// Frames the LoadGen offered.
    pub offered: u64,
    /// Frames the DuT transmitted back.
    pub delivered: u64,
    /// Frames dropped (NIC descriptor exhaustion + chain drops).
    pub dropped: u64,
    /// Per-cause drop accounting; `drops.total() == dropped` and
    /// `offered == delivered + dropped` always hold.
    pub drops: DropStats,
    /// Offered wire rate in Gbps.
    pub offered_gbps: f64,
    /// Achieved (TX) wire rate in Gbps.
    pub achieved_gbps: f64,
    /// Simulated duration in ns.
    pub duration_ns: f64,
    /// Loopback component to add for end-to-end numbers.
    pub loopback_ns: f64,
}

impl RunResult {
    /// Latency summary (percentiles + mean) without loopback.
    pub fn summary(&self) -> Option<xstats::Summary> {
        xstats::Summary::from_samples(self.latencies_ns.iter().copied())
    }

    /// Latency summary including the loopback component (Fig. 15 plots
    /// tail latency *with* loopback).
    pub fn summary_with_loopback(&self) -> Option<xstats::Summary> {
        xstats::Summary::from_samples(self.latencies_ns.iter().map(|l| l + self.loopback_ns))
    }
}

enum Policy {
    Fixed(FixedHeadroom),
    Director(CacheDirector),
}

impl Policy {
    fn as_dyn(&mut self) -> &mut dyn HeadroomPolicy {
        match self {
            Policy::Fixed(f) => f,
            Policy::Director(cd) => cd,
        }
    }
}

/// The per-packet half of the testbed: one [`ServiceChain`] per worker
/// instance, run under the engine's polling loop. Latency and
/// chain-cause drop accounting live here; the NIC-side ledger lives in
/// the engine. One `ChainApp` exists per worker so instances own their
/// state outright and can run on worker threads during parallel epochs.
struct ChainApp {
    chain: ServiceChain,
    framework_cycles: u64,
    latencies: Vec<f64>,
    parse: u64,
    no_route: u64,
    table_exhausted: u64,
    policy: u64,
}

impl ChainApp {
    fn count_chain(&mut self, cause: DropCause) {
        match cause {
            DropCause::Parse => self.parse += 1,
            DropCause::NoRoute => self.no_route += 1,
            DropCause::TableExhausted => self.table_exhausted += 1,
            DropCause::Policy => self.policy += 1,
        }
    }
}

impl QueueApp for ChainApp {
    fn on_packet(&mut self, ctx: &mut engine::Ctx<'_>, comp: &RxCompletion) -> Verdict {
        let mut pkt = Pkt::from_completion(comp);
        let action = {
            let mut ec = crate::element::Ctx {
                m: &mut *ctx.m,
                core: ctx.core,
            };
            let (action, _c) = self.chain.process(&mut ec, &mut pkt);
            action
        };
        ctx.m.advance(ctx.core, self.framework_cycles);
        match action {
            Action::Forward => {
                // Per-packet completion time, attributed as processing
                // ends.
                self.latencies.push(ctx.wall_ns() - comp.arrival_ns);
                Verdict::Tx(TxDesc {
                    mbuf: comp.mbuf,
                    data_pa: comp.data_pa,
                    len: comp.len,
                })
            }
            Action::Drop(cause) => {
                self.count_chain(cause);
                Verdict::Drop
            }
        }
    }
}

/// The assembled DuT + LoadGen: hardware state plus an
/// [`engine::Engine`] running one [`ChainApp`] worker per core.
pub struct Testbed {
    cfg: RunConfig,
    m: Machine,
    pool: MbufPool,
    port: Port,
    policy: Policy,
    engine: Engine<ChainApp>,
    lpm: Option<Arc<Lpm>>,
    installed_flows: HashSet<FlowTuple>,
    fdir_rr: usize,
    seq: u64,
    scratch: Vec<u8>,
}

impl Testbed {
    /// Builds the DuT on a fresh Haswell machine.
    ///
    /// Returns [`SetupError`] when the configuration does not fit the
    /// simulated DRAM (pool, tables).
    ///
    /// # Panics
    ///
    /// Panics when `cores` is 0 or exceeds the machine, or the queue
    /// geometry is degenerate (constructor invariants).
    pub fn new(cfg: RunConfig) -> Result<Self, SetupError> {
        let mcfg = MachineConfig::haswell_e5_2667_v3().with_seed(cfg.seed);
        Self::on_machine(cfg, Machine::new(mcfg))
    }

    /// Builds the DuT on a provided machine (e.g. Skylake).
    pub fn on_machine(cfg: RunConfig, mut m: Machine) -> Result<Self, SetupError> {
        assert!(
            cfg.cores > 0 && cfg.cores <= m.config().cores,
            "bad core count"
        );
        assert!(cfg.burst > 0 && cfg.queue_depth > 0, "bad queue geometry");
        let mbufs = if cfg.mbufs == 0 {
            (2 * cfg.cores * cfg.queue_depth) as u32
        } else {
            cfg.mbufs
        };
        let headroom_cap = match cfg.headroom {
            HeadroomMode::Stock => rte::mbuf::DEFAULT_HEADROOM,
            HeadroomMode::CacheDirector { .. } => CACHEDIRECTOR_HEADROOM,
        };
        let mut pool = MbufPool::create(&mut m, mbufs, headroom_cap, rte::mbuf::DEFAULT_DATAROOM)
            .map_err(mem_err("mbuf pool"))?;
        let policy = match cfg.headroom {
            HeadroomMode::Stock => Policy::Fixed(FixedHeadroom(rte::mbuf::DEFAULT_HEADROOM)),
            HeadroomMode::CacheDirector { preferred_slices } => {
                Policy::Director(CacheDirector::install(&mut m, &pool, preferred_slices, 0))
            }
        };
        let steering = match cfg.steering {
            SteeringKind::Rss => Steering::Rss(Rss::new(cfg.cores)),
            SteeringKind::FlowDirector => Steering::FlowDirector(FlowDirector::new(cfg.cores)),
        };
        let mut port = Port::new(0, steering, cfg.queue_depth);
        port.set_rx_rate_limit(cfg.nic_rate_mpps);
        // Build the chains.
        let (chains, lpm) = match cfg.chain {
            ChainSpec::MacSwap => {
                let chains = (0..cfg.cores)
                    .map(|_| ServiceChain::new().push(Box::new(MacSwap::new())))
                    .collect();
                (chains, None)
            }
            ChainSpec::RouterNaptLb { routes, .. } => {
                let lpm = Arc::new(
                    Lpm::build(&mut m, &synth_routes(routes, cfg.seed ^ 0x1007))
                        .map_err(mem_err("LPM table"))?,
                );
                let mut chains = Vec::with_capacity(cfg.cores);
                for _ in 0..cfg.cores {
                    // Per-core tables sized for the flow population; 8 K
                    // one-line buckets (512 KB) keep the hot buckets
                    // LLC-resident like a tuned NF would.
                    let napt = Napt::new(&mut m, 1 << 13).map_err(mem_err("NAPT table"))?;
                    let lb = LoadBalancer::new(
                        &mut m,
                        1 << 13,
                        vec![0x0a64_0001, 0x0a64_0002, 0x0a64_0003, 0x0a64_0004],
                    )
                    .map_err(mem_err("LB table"))?;
                    chains.push(
                        ServiceChain::new()
                            .push(Box::new(Router::new(Arc::clone(&lpm))))
                            .push(Box::new(napt))
                            .push(Box::new(lb)),
                    );
                }
                (chains, Some(lpm))
            }
        };
        let apps: Vec<ChainApp> = chains
            .into_iter()
            .map(|chain| ChainApp {
                chain,
                framework_cycles: cfg.framework_cycles,
                latencies: Vec::new(),
                parse: 0,
                no_route: 0,
                table_exhausted: 0,
                policy: 0,
            })
            .collect();
        let ecfg = EngineConfig {
            workers: WorkerSpec::run_to_completion(cfg.cores),
            queue_depth: cfg.queue_depth,
            burst: cfg.burst,
            faults: cfg.faults.clone(),
            execution: cfg.execution,
            admission: AdmissionPolicy::AcceptAll,
            scheduler: cfg.scheduler,
        };
        let mut policy = policy;
        // The engine performs the initial descriptor posting.
        let engine = {
            let mut hw = Hw {
                m: &mut m,
                port: &mut port,
                pool: &mut pool,
                policy: policy.as_dyn(),
            };
            Engine::new(apps, ecfg, &mut hw)
        };
        Ok(Self {
            seq: 0,
            scratch: vec![0u8; 2048],
            installed_flows: HashSet::new(),
            fdir_rr: 0,
            cfg,
            pool,
            policy,
            engine,
            lpm,
            m,
            port,
        })
    }

    /// The simulated machine (inspection).
    pub fn machine(&self) -> &Machine {
        &self.m
    }

    /// Offers one frame at `t_ns`; drops count toward the result.
    pub fn offer(&mut self, flow: &FlowTuple, size: u16, t_ns: f64) {
        // Metron's controller: install the FlowDirector rule with the
        // routing decision as mark (control plane, untimed). This runs
        // before the engine routes the frame so the rule applies to it.
        if let ChainSpec::RouterNaptLb { offload: true, .. } = self.cfg.chain {
            if matches!(self.cfg.steering, SteeringKind::FlowDirector)
                && !self.installed_flows.contains(flow)
            {
                let mark = self
                    .lpm
                    .as_ref()
                    .and_then(|l| l.lookup_untimed(&self.m, flow.dst_ip))
                    .map(u32::from);
                if let Steering::FlowDirector(fd) = self.port.steering_mut() {
                    fd.set_rule(
                        *flow,
                        FdirAction {
                            queue: self.fdir_rr,
                            mark,
                        },
                    );
                }
                self.fdir_rr = (self.fdir_rr + 1) % self.cfg.cores;
                self.installed_flows.insert(*flow);
            }
        }
        let len = encode_frame(&mut self.scratch, flow, size as usize, t_ns, self.seq);
        self.seq += 1;
        // The engine draws the frame's faults, runs the workers to the
        // present, delivers through the NIC, and classifies any failure
        // into its per-queue ledger.
        let mut hw = Hw {
            m: &mut self.m,
            port: &mut self.port,
            pool: &mut self.pool,
            policy: self.policy.as_dyn(),
        };
        let _ = self.engine.offer(&mut hw, flow, &self.scratch[..len], t_ns);
    }

    /// Drains all queues to completion and produces the result.
    pub fn finish(self) -> RunResult {
        let Testbed {
            cfg,
            mut m,
            mut pool,
            mut port,
            mut policy,
            mut engine,
            ..
        } = self;
        let mut hw = Hw {
            m: &mut m,
            port: &mut port,
            pool: &mut pool,
            policy: policy.as_dyn(),
        };
        // Process everything still queued, then close the ledgers (the
        // engine asserts conservation per queue, globally, and against
        // the NIC's own counters).
        engine.drain(&mut hw);
        let (rep, apps) = engine.finish(&mut hw);
        assert_eq!(rep.in_flight, 0, "drain left packets in flight");
        let mut drops = DropStats {
            nic: rep.nic,
            ..DropStats::default()
        };
        let mut latencies = Vec::new();
        for a in apps {
            drops.parse += a.parse;
            drops.no_route += a.no_route;
            drops.table_exhausted += a.table_exhausted;
            drops.policy += a.policy;
            latencies.extend(a.latencies);
        }
        debug_assert_eq!(rep.app_drops, drops.chain_total());
        // Offered rate is measured over the LoadGen's sending window;
        // achieved over the full run (including the drain tail).
        RunResult {
            offered: rep.offered,
            delivered: rep.delivered,
            dropped: drops.total(),
            drops,
            offered_gbps: rep.offered_wire_bits as f64 / rep.last_arrival_ns.max(1.0),
            achieved_gbps: rep.tx_wire_bits as f64 / rep.duration_ns,
            duration_ns: rep.duration_ns,
            loopback_ns: cfg.loopback_ns,
            latencies_ns: latencies,
        }
    }
}

/// Runs a full experiment: `n` packets from `trace` paced by `schedule`.
pub fn run_experiment(
    cfg: RunConfig,
    trace: &mut CampusTrace,
    schedule: &mut ArrivalSchedule,
    n: usize,
) -> Result<RunResult, SetupError> {
    let mut tb = Testbed::new(cfg)?;
    for _ in 0..n {
        let t = schedule.next_arrival_ns();
        let spec = trace.next_packet();
        tb.offer(&spec.flow, spec.size, t);
    }
    Ok(tb.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(chain: ChainSpec, headroom: HeadroomMode, steering: SteeringKind) -> RunConfig {
        RunConfig {
            cores: 2,
            steering,
            chain,
            headroom,
            queue_depth: 128,
            burst: 32,
            mbufs: 1024,
            framework_cycles: 500,
            loopback_ns: 9_000.0,
            nic_rate_mpps: None,
            seed: 7,
            faults: FaultPlan::none(),
            execution: Execution::Serial,
            scheduler: Scheduler::default(),
        }
    }

    #[test]
    fn macswap_low_rate_delivers_everything() {
        let cfg = small_cfg(ChainSpec::MacSwap, HeadroomMode::Stock, SteeringKind::Rss);
        let mut trace = CampusTrace::fixed_size(64, 64, 1);
        let mut sched = ArrivalSchedule::constant_pps(1000.0);
        let res = run_experiment(cfg, &mut trace, &mut sched, 500).expect("config fits");
        assert_eq!(res.offered, 500);
        assert_eq!(res.delivered, 500);
        assert_eq!(res.dropped, 0);
        assert_eq!(res.latencies_ns.len(), 500);
        // At 1000 pps each packet is processed alone: latency is pure
        // service time, well under a microsecond.
        let s = res.summary().unwrap();
        assert!(s.max() < 2_000.0, "low-rate latency {} ns", s.max());
    }

    #[test]
    fn overload_drops_and_queues() {
        let cfg = small_cfg(ChainSpec::MacSwap, HeadroomMode::Stock, SteeringKind::Rss);
        let mut trace = CampusTrace::fixed_size(64, 64, 1);
        // 2 cores at ~300 ns/packet service sustain ~6.6 Mpps; offer 40.
        let mut sched = ArrivalSchedule::constant_pps(40_000_000.0);
        let res = run_experiment(cfg, &mut trace, &mut sched, 4_000).expect("config fits");
        assert!(res.dropped > 0, "overload must drop");
        assert_eq!(res.drops.total(), res.dropped);
        assert_eq!(res.offered, res.delivered + res.dropped);
        let s = res.summary().unwrap();
        assert!(
            s.percentile(99.0) > s.percentile(50.0),
            "queueing must stretch the tail"
        );
        assert!(res.achieved_gbps < res.offered_gbps);
    }

    #[test]
    fn stateful_chain_processes_and_rewrites() {
        let cfg = small_cfg(
            ChainSpec::RouterNaptLb {
                routes: 64,
                offload: false,
            },
            HeadroomMode::Stock,
            SteeringKind::Rss,
        );
        let mut trace = CampusTrace::new(trafficgen::SizeMix::campus(), 128, 3);
        let mut sched = ArrivalSchedule::constant_pps(10_000.0);
        let res = run_experiment(cfg, &mut trace, &mut sched, 300).expect("config fits");
        // Synthetic routes cover only part of the space: some packets
        // forward, some drop on no-route; the run must complete and
        // account for every frame.
        assert_eq!(res.offered, 300);
        assert_eq!(res.delivered + res.dropped, 300);
        assert_eq!(res.drops.no_route, res.dropped, "all drops are no-route");
    }

    #[test]
    fn offloaded_chain_forwards_more_cheaply() {
        let mk = |offload| {
            small_cfg(
                ChainSpec::RouterNaptLb {
                    routes: 64,
                    offload,
                },
                HeadroomMode::Stock,
                SteeringKind::FlowDirector,
            )
        };
        let run = |cfg| {
            let mut trace = CampusTrace::fixed_size(128, 32, 5);
            let mut sched = ArrivalSchedule::constant_pps(10_000.0);
            run_experiment(cfg, &mut trace, &mut sched, 400).expect("config fits")
        };
        let soft = run(mk(false));
        let hard = run(mk(true));
        // Offload must not reduce functionality...
        assert_eq!(soft.offered, hard.offered);
        // ...and makes the mean latency cheaper (skips parse + LPM).
        let (ls, lh) = (soft.summary().unwrap(), hard.summary().unwrap());
        assert!(
            lh.mean() < ls.mean(),
            "offload {} vs software {}",
            lh.mean(),
            ls.mean()
        );
    }

    #[test]
    fn cachedirector_beats_stock_under_load() {
        // The headline effect (Figs. 13/14): with queues deep and the DuT
        // loaded, placing headers in the right slice cuts tail latency.
        let run = |headroom| {
            let mut cfg = small_cfg(ChainSpec::MacSwap, headroom, SteeringKind::Rss);
            cfg.cores = 2;
            let mut trace = CampusTrace::fixed_size(64, 256, 9);
            let mut sched = ArrivalSchedule::constant_pps(9_000_000.0);
            run_experiment(cfg, &mut trace, &mut sched, 6_000).expect("config fits")
        };
        let stock = run(HeadroomMode::Stock);
        let cd = run(HeadroomMode::CacheDirector {
            preferred_slices: 1,
        });
        let (s, c) = (stock.summary().unwrap(), cd.summary().unwrap());
        assert!(
            c.percentile(99.0) <= s.percentile(99.0),
            "CacheDirector p99 {} must not exceed stock {}",
            c.percentile(99.0),
            s.percentile(99.0)
        );
    }

    #[test]
    fn results_are_deterministic() {
        let mk = || {
            let cfg = small_cfg(ChainSpec::MacSwap, HeadroomMode::Stock, SteeringKind::Rss);
            let mut trace = CampusTrace::fixed_size(64, 16, 2);
            let mut sched = ArrivalSchedule::constant_pps(100_000.0);
            run_experiment(cfg, &mut trace, &mut sched, 200).expect("config fits")
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.latencies_ns, b.latencies_ns);
        assert_eq!(a.delivered, b.delivered);
    }

    #[test]
    fn oversized_config_reports_setup_error() {
        let mut cfg = small_cfg(ChainSpec::MacSwap, HeadroomMode::Stock, SteeringKind::Rss);
        cfg.mbufs = u32::MAX / 4; // Far beyond the simulated DRAM.
        let err = match Testbed::new(cfg) {
            Err(e) => e,
            Ok(_) => panic!("cannot possibly fit"),
        };
        let msg = err.to_string();
        assert!(msg.contains("mbuf pool"), "{msg}");
    }

    #[test]
    fn faulty_runs_are_deterministic_and_conserve() {
        let mk = || {
            let mut cfg = small_cfg(ChainSpec::MacSwap, HeadroomMode::Stock, SteeringKind::Rss);
            cfg.faults = FaultPlan::frame_indexed()
                .with_seed(11)
                .with_corrupt_prob(0.1)
                .with_truncate_prob(0.1)
                .with_link_flap(rte::fault::Window::new(50, 80));
            let mut trace = CampusTrace::fixed_size(64, 16, 2);
            let mut sched = ArrivalSchedule::constant_pps(100_000.0);
            run_experiment(cfg, &mut trace, &mut sched, 400).expect("config fits")
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.drops, b.drops, "fault injection is seeded");
        assert!(a.drops.nic.crc > 0, "corruption fired");
        assert_eq!(a.drops.nic.link_down, 30, "flap window is exact");
        assert_eq!(a.offered, a.delivered + a.drops.total());
    }
}
