//! Flow-based round-robin load balancer (§5.2).
//!
//! "Load Balancer (LB) using a flow-based Round-Robin policy": the first
//! packet of a flow picks the next backend in rotation; subsequent
//! packets stick to it (per-flow state in simulated memory), and the
//! destination IP is rewritten to the chosen backend.

use crate::element::{Action, Ctx, DropCause, Element, Pkt};
use crate::packet::rewrite_dst_ip;
use crate::table::{FlowTable, TableError};
use llc_sim::hierarchy::Cycles;
use llc_sim::machine::Machine;

/// LB counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct LbStats {
    /// Flows assigned a backend.
    pub new_flows: u64,
    /// Packets forwarded to an already-assigned backend.
    pub hits: u64,
    /// Packets dropped on table exhaustion.
    pub exhausted: u64,
    /// Packets whose headers failed to parse (dropped).
    pub malformed: u64,
}

/// The load-balancer element.
#[derive(Debug)]
pub struct LoadBalancer {
    table: FlowTable,
    backends: Vec<u32>,
    next_rr: usize,
    stats: LbStats,
}

impl LoadBalancer {
    /// An LB over `backends` (IPv4 addresses) with a `buckets`-bucket
    /// state table.
    ///
    /// # Panics
    ///
    /// Panics when `backends` is empty.
    pub fn new(
        m: &mut Machine,
        buckets: usize,
        backends: Vec<u32>,
    ) -> Result<Self, llc_sim::mem::MemError> {
        assert!(!backends.is_empty(), "need at least one backend");
        Ok(Self {
            table: FlowTable::create(m, buckets)?,
            backends,
            next_rr: 0,
            stats: LbStats::default(),
        })
    }

    /// Counters.
    pub fn stats(&self) -> LbStats {
        self.stats
    }

    /// Number of tracked flows.
    pub fn flows(&self) -> usize {
        self.table.len()
    }
}

impl Element for LoadBalancer {
    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt) -> (Action, Cycles) {
        let (flow, mut cycles) = pkt.flow(ctx);
        let Some(flow) = flow else {
            self.stats.malformed += 1;
            return (Action::Drop(DropCause::Parse), cycles);
        };
        let backends = &self.backends;
        let next_rr = &mut self.next_rr;
        let mut pick = || {
            let b = backends[*next_rr];
            *next_rr = (*next_rr + 1) % backends.len();
            u64::from(b)
        };
        match self
            .table
            .lookup_or_insert_with(ctx.m, ctx.core, &flow, &mut pick)
        {
            Ok((backend, fresh, c)) => {
                cycles += c;
                if fresh {
                    self.stats.new_flows += 1;
                } else {
                    self.stats.hits += 1;
                }
                cycles += rewrite_dst_ip(ctx.m, ctx.core, pkt.data_pa, backend as u32);
                if let Some(f) = pkt.flow.as_mut() {
                    f.dst_ip = backend as u32;
                }
                (Action::Forward, cycles)
            }
            Err(TableError::Full) => {
                self.stats.exhausted += 1;
                (Action::Drop(DropCause::TableExhausted), cycles)
            }
        }
    }

    fn name(&self) -> &'static str {
        "LoadBalancer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::encode_frame;
    use llc_sim::machine::MachineConfig;
    use trafficgen::FlowTuple;

    fn setup() -> (Machine, LoadBalancer, llc_sim::mem::Region) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
        let lb = LoadBalancer::new(&mut m, 1024, vec![0x0a640001, 0x0a640002, 0x0a640003]).unwrap();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        (m, lb, r)
    }

    fn run_pkt(
        m: &mut Machine,
        lb: &mut LoadBalancer,
        r: llc_sim::mem::Region,
        f: &FlowTuple,
    ) -> u32 {
        let mut buf = vec![0u8; 64];
        encode_frame(&mut buf, f, 64, 0.0, 0);
        m.mem_mut().write(r.pa(0), &buf);
        let mut pkt = Pkt {
            mbuf: 0,
            data_pa: r.pa(0),
            len: 64,
            mark: None,
            flow: None,
        };
        let mut ctx = Ctx { m, core: 0 };
        let (a, _) = lb.process(&mut ctx, &mut pkt);
        assert_eq!(a, Action::Forward);
        pkt.flow.unwrap().dst_ip
    }

    #[test]
    fn round_robin_over_new_flows() {
        let (mut m, mut lb, r) = setup();
        let b1 = run_pkt(&mut m, &mut lb, r, &FlowTuple::tcp(1, 1, 99, 80));
        let b2 = run_pkt(&mut m, &mut lb, r, &FlowTuple::tcp(2, 2, 99, 80));
        let b3 = run_pkt(&mut m, &mut lb, r, &FlowTuple::tcp(3, 3, 99, 80));
        let b4 = run_pkt(&mut m, &mut lb, r, &FlowTuple::tcp(4, 4, 99, 80));
        assert_eq!(b1, 0x0a640001);
        assert_eq!(b2, 0x0a640002);
        assert_eq!(b3, 0x0a640003);
        assert_eq!(b4, 0x0a640001, "rotation wraps");
        assert_eq!(lb.stats().new_flows, 4);
    }

    #[test]
    fn flows_stick_to_their_backend() {
        let (mut m, mut lb, r) = setup();
        let f = FlowTuple::tcp(7, 7, 99, 80);
        let b1 = run_pkt(&mut m, &mut lb, r, &f);
        let _ = run_pkt(&mut m, &mut lb, r, &FlowTuple::tcp(8, 8, 99, 80));
        let b2 = run_pkt(&mut m, &mut lb, r, &f);
        assert_eq!(b1, b2, "flow affinity");
        assert_eq!(lb.stats().hits, 1);
        assert_eq!(lb.flows(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn rejects_empty_backends() {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20));
        let _ = LoadBalancer::new(&mut m, 64, vec![]);
    }
}
