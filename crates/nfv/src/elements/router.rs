//! IPv4 router with optional NIC classification offload (§5.2).
//!
//! Metron offloads the routing-table lookup to the NIC: FlowDirector
//! rules attach the routing decision as a 32-bit *mark* to each packet,
//! and the software path only decrements TTL and records the next hop.
//! Without a mark (pure-software mode, or the first packet of a flow
//! before the rule is installed) the element does the DIR-24-8 lookup in
//! memory.

use crate::element::{Action, Ctx, DropCause, Element, Pkt};
use crate::lpm::Lpm;
use crate::packet::decrement_ttl;
use llc_sim::hierarchy::Cycles;
use std::sync::Arc;

/// Per-element counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouterStats {
    /// Packets routed via the NIC-provided mark.
    pub offloaded: u64,
    /// Packets that needed the software LPM lookup.
    pub software: u64,
    /// Packets with no route (dropped).
    pub no_route: u64,
    /// Packets whose headers failed to parse (dropped).
    pub malformed: u64,
}

/// The routing element.
pub struct Router {
    lpm: Arc<Lpm>,
    stats: RouterStats,
    /// Next hop chosen for the last forwarded packet (consumed by tests
    /// and by chaining logic that picks the TX port).
    last_next_hop: Option<u16>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("routes", &self.lpm.routes())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Router {
    /// A router over a (shared, read-only) prebuilt LPM table.
    pub fn new(lpm: Arc<Lpm>) -> Self {
        Self {
            lpm,
            stats: RouterStats::default(),
            last_next_hop: None,
        }
    }

    /// Counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// The LPM table (control-plane access, e.g. for offload decisions).
    pub fn lpm(&self) -> &Lpm {
        &self.lpm
    }

    /// Next hop of the most recent forwarded packet.
    pub fn last_next_hop(&self) -> Option<u16> {
        self.last_next_hop
    }
}

impl Element for Router {
    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt) -> (Action, Cycles) {
        let mut cycles = 0;
        let next_hop = if let Some(mark) = pkt.mark {
            // HW offload: the NIC already classified this packet.
            self.stats.offloaded += 1;
            ctx.m.advance(ctx.core, MARK_CHECK_WORK);
            cycles += MARK_CHECK_WORK;
            Some(mark as u16)
        } else {
            let (flow, c) = pkt.flow(ctx);
            cycles += c;
            let Some(flow) = flow else {
                self.stats.malformed += 1;
                return (Action::Drop(DropCause::Parse), cycles);
            };
            let (hop, c) = self.lpm.lookup(ctx.m, ctx.core, flow.dst_ip);
            cycles += c;
            self.stats.software += 1;
            hop
        };
        match next_hop {
            None => {
                self.stats.no_route += 1;
                (Action::Drop(DropCause::NoRoute), cycles)
            }
            Some(hop) => {
                self.last_next_hop = Some(hop);
                cycles += decrement_ttl(ctx.m, ctx.core, pkt.data_pa);
                (Action::Forward, cycles)
            }
        }
    }

    fn name(&self) -> &'static str {
        "Router"
    }
}

/// Cycles to read and validate the descriptor mark.
pub const MARK_CHECK_WORK: Cycles = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpm::RouteEntry;
    use crate::packet::encode_frame;
    use llc_sim::machine::{Machine, MachineConfig};
    use trafficgen::FlowTuple;

    fn setup() -> (Machine, Router, llc_sim::mem::Region) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
        let lpm = Lpm::build(
            &mut m,
            &[RouteEntry {
                prefix: 0xc0a80000,
                len: 16,
                next_hop: 3,
            }],
        )
        .unwrap();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        (m, Router::new(Arc::new(lpm)), r)
    }

    fn write_frame(m: &mut Machine, r: llc_sim::mem::Region, dst_ip: u32) -> Pkt {
        let mut buf = vec![0u8; 64];
        encode_frame(&mut buf, &FlowTuple::tcp(1, 2, dst_ip, 80), 64, 0.0, 0);
        m.mem_mut().write(r.pa(0), &buf);
        Pkt {
            mbuf: 0,
            data_pa: r.pa(0),
            len: 64,
            mark: None,
            flow: None,
        }
    }

    #[test]
    fn software_path_routes_and_decrements_ttl() {
        let (mut m, mut router, r) = setup();
        let mut pkt = write_frame(&mut m, r, 0xc0a80505);
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (a, _) = router.process(&mut ctx, &mut pkt);
        assert_eq!(a, Action::Forward);
        assert_eq!(router.last_next_hop(), Some(3));
        assert_eq!(router.stats().software, 1);
        let (hdr, _) = crate::packet::parse_header(&mut m, 0, r.pa(0), 64);
        assert_eq!(hdr.expect("well-formed frame parses").ttl, 63);
    }

    #[test]
    fn marked_packet_skips_lookup() {
        let (mut m, mut router, r) = setup();
        let mut pkt = write_frame(&mut m, r, 0xc0a80505);
        pkt.mark = Some(9);
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (a, _) = router.process(&mut ctx, &mut pkt);
        assert_eq!(a, Action::Forward);
        assert_eq!(router.last_next_hop(), Some(9));
        assert_eq!(router.stats().offloaded, 1);
        assert_eq!(router.stats().software, 0);
    }

    #[test]
    fn no_route_drops() {
        let (mut m, mut router, r) = setup();
        let mut pkt = write_frame(&mut m, r, 0x08080808);
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (a, _) = router.process(&mut ctx, &mut pkt);
        assert_eq!(a, Action::Drop(DropCause::NoRoute));
        assert_eq!(router.stats().no_route, 1);
    }

    #[test]
    fn truncated_packet_drops_as_parse_failure() {
        let (mut m, mut router, r) = setup();
        let mut pkt = write_frame(&mut m, r, 0xc0a80505);
        pkt.len = 30; // Shorter than the L2-L4 prefix.
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (a, _) = router.process(&mut ctx, &mut pkt);
        assert_eq!(a, Action::Drop(DropCause::Parse));
        assert_eq!(router.stats().malformed, 1);
        assert_eq!(router.stats().no_route, 0);
    }

    #[test]
    fn offloaded_path_is_cheaper() {
        let (mut m, mut router, r) = setup();
        let mut soft = write_frame(&mut m, r, 0xc0a80101);
        let c_soft = {
            let mut ctx = Ctx { m: &mut m, core: 0 };
            router.process(&mut ctx, &mut soft).1
        };
        // Fresh machine state for a fair cold comparison is overkill here;
        // even warm, the marked path must be far cheaper than parse + LPM.
        let mut hard = write_frame(&mut m, r, 0xc0a80101);
        hard.mark = Some(3);
        let c_mark = {
            let mut ctx = Ctx { m: &mut m, core: 0 };
            router.process(&mut ctx, &mut hard).1
        };
        assert!(c_mark < c_soft, "offload {c_mark} vs software {c_soft}");
    }
}
