//! Network Address Port Translation (§5.2).
//!
//! Classic source NAPT: each new flow gets a translated source port from
//! a pool; packets of known flows are rewritten from the flow table. The
//! per-flow state lives in a [`FlowTable`] in simulated memory, which is
//! what makes the stateful chain "more memory-intensive compared to the
//! simple forwarding application" (§5.2.1).

use crate::element::{Action, Ctx, DropCause, Element, Pkt};
use crate::packet::rewrite_src_port;
use crate::table::{FlowTable, TableError};
use llc_sim::hierarchy::Cycles;
use llc_sim::machine::Machine;

/// NAPT counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaptStats {
    /// Flows translated for the first time.
    pub new_flows: u64,
    /// Packets rewritten from existing state.
    pub hits: u64,
    /// Packets dropped because the table or port pool was exhausted.
    pub exhausted: u64,
    /// Packets whose headers failed to parse (dropped).
    pub malformed: u64,
}

/// The NAPT element.
#[derive(Debug)]
pub struct Napt {
    table: FlowTable,
    next_port: u16,
    stats: NaptStats,
}

impl Napt {
    /// A NAPT with a `buckets`-bucket translation table.
    pub fn new(m: &mut Machine, buckets: usize) -> Result<Self, llc_sim::mem::MemError> {
        Ok(Self {
            table: FlowTable::create(m, buckets)?,
            next_port: 10_000,
            stats: NaptStats::default(),
        })
    }

    /// Counters.
    pub fn stats(&self) -> NaptStats {
        self.stats
    }

    /// Active translations.
    pub fn flows(&self) -> usize {
        self.table.len()
    }
}

impl Element for Napt {
    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt) -> (Action, Cycles) {
        let (flow, mut cycles) = pkt.flow(ctx);
        let Some(flow) = flow else {
            self.stats.malformed += 1;
            return (Action::Drop(DropCause::Parse), cycles);
        };
        let next_port = &mut self.next_port;
        let mut fresh_port = || {
            let p = *next_port;
            *next_port = next_port.wrapping_add(1).max(10_000);
            u64::from(p)
        };
        match self
            .table
            .lookup_or_insert_with(ctx.m, ctx.core, &flow, &mut fresh_port)
        {
            Ok((port, fresh, c)) => {
                cycles += c;
                if fresh {
                    self.stats.new_flows += 1;
                } else {
                    self.stats.hits += 1;
                }
                cycles += rewrite_src_port(ctx.m, ctx.core, pkt.data_pa, port as u16);
                // Keep the cached flow consistent with the rewrite.
                if let Some(f) = pkt.flow.as_mut() {
                    f.src_port = port as u16;
                }
                (Action::Forward, cycles)
            }
            Err(TableError::Full) => {
                self.stats.exhausted += 1;
                (Action::Drop(DropCause::TableExhausted), cycles)
            }
        }
    }

    fn name(&self) -> &'static str {
        "NAPT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::encode_frame;
    use llc_sim::machine::MachineConfig;
    use trafficgen::FlowTuple;

    fn setup() -> (Machine, Napt, llc_sim::mem::Region) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
        let napt = Napt::new(&mut m, 1024).unwrap();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        (m, napt, r)
    }

    fn pkt_for(m: &mut Machine, r: llc_sim::mem::Region, flow: &FlowTuple) -> Pkt {
        let mut buf = vec![0u8; 64];
        encode_frame(&mut buf, flow, 64, 0.0, 0);
        m.mem_mut().write(r.pa(0), &buf);
        Pkt {
            mbuf: 0,
            data_pa: r.pa(0),
            len: 64,
            mark: None,
            flow: None,
        }
    }

    #[test]
    fn same_flow_keeps_translation() {
        let (mut m, mut napt, r) = setup();
        let flow = FlowTuple::tcp(0x0a000001, 5555, 0xc0a80001, 80);
        let mut first = pkt_for(&mut m, r, &flow);
        let port1 = {
            let mut ctx = Ctx { m: &mut m, core: 0 };
            napt.process(&mut ctx, &mut first);
            first.flow.unwrap().src_port
        };
        let mut second = pkt_for(&mut m, r, &flow);
        let port2 = {
            let mut ctx = Ctx { m: &mut m, core: 0 };
            napt.process(&mut ctx, &mut second);
            second.flow.unwrap().src_port
        };
        assert_eq!(port1, port2, "one flow, one translation");
        assert_eq!(napt.stats().new_flows, 1);
        assert_eq!(napt.stats().hits, 1);
    }

    #[test]
    fn different_flows_get_different_ports() {
        let (mut m, mut napt, r) = setup();
        let mut ports = std::collections::HashSet::new();
        for i in 0..50u32 {
            let flow = FlowTuple::tcp(0x0a000000 + i, 1000, 0xc0a80001, 80);
            let mut p = pkt_for(&mut m, r, &flow);
            let mut ctx = Ctx { m: &mut m, core: 0 };
            napt.process(&mut ctx, &mut p);
            ports.insert(p.flow.unwrap().src_port);
        }
        assert_eq!(ports.len(), 50);
        assert_eq!(napt.flows(), 50);
    }

    #[test]
    fn rewrite_lands_in_packet_bytes() {
        let (mut m, mut napt, r) = setup();
        let flow = FlowTuple::tcp(0x0a000001, 7777, 0xc0a80001, 80);
        let mut p = pkt_for(&mut m, r, &flow);
        {
            let mut ctx = Ctx { m: &mut m, core: 0 };
            napt.process(&mut ctx, &mut p);
        }
        let (hdr, _) = crate::packet::parse_header(&mut m, 0, r.pa(0), 64);
        let hdr = hdr.expect("well-formed frame parses");
        assert_eq!(hdr.flow.src_port, 10_000, "first pooled port");
        assert_ne!(hdr.flow.src_port, 7777);
    }

    #[test]
    fn malformed_packet_drops_without_state() {
        let (mut m, mut napt, r) = setup();
        m.mem_mut().write(r.pa(0), &[0x5au8; 64]);
        let mut p = Pkt {
            mbuf: 0,
            data_pa: r.pa(0),
            len: 20,
            mark: None,
            flow: None,
        };
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (a, _) = napt.process(&mut ctx, &mut p);
        assert_eq!(a, Action::Drop(DropCause::Parse));
        assert_eq!(napt.stats().malformed, 1);
        assert_eq!(napt.flows(), 0, "no translation state for garbage");
    }
}
