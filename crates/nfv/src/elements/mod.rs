//! The network functions the paper evaluates (§5): simple forwarding and
//! the stateful Router → NAPT → LB chain.

mod dpi;
mod lb;
mod mac_swap;
mod napt;
mod router;
mod vxlan;

pub use dpi::{Dpi, MatchAction};
pub use lb::LoadBalancer;
pub use mac_swap::MacSwap;
pub use napt::Napt;
pub use router::Router;
pub use vxlan::{encapsulate, VxlanDecap, VXLAN_OVERHEAD};
