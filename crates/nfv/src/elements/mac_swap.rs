//! Simple forwarding: swap source/destination MACs and send back (§5.1).

use crate::element::{Action, Ctx, Element, Pkt};
use crate::packet::mac_swap;
use llc_sim::hierarchy::Cycles;

/// "The simple forwarding application swaps the sending and receiving
/// MAC addresses of the incoming packets and sends them back" — the
/// stateless, minimal-processing baseline of Figs. 12 and 13.
#[derive(Debug, Default)]
pub struct MacSwap {
    processed: u64,
}

impl MacSwap {
    /// A fresh element.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packets processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

impl Element for MacSwap {
    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt) -> (Action, Cycles) {
        self.processed += 1;
        let c = mac_swap(ctx.m, ctx.core, pkt.data_pa);
        (Action::Forward, c)
    }

    fn name(&self) -> &'static str {
        "MacSwap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{encode_frame, DUT_MAC, LOADGEN_MAC};
    use llc_sim::machine::{Machine, MachineConfig};
    use trafficgen::FlowTuple;

    #[test]
    fn swaps_and_counts() {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20));
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let mut buf = vec![0u8; 64];
        encode_frame(&mut buf, &FlowTuple::tcp(1, 2, 3, 4), 64, 0.0, 0);
        m.mem_mut().write(r.pa(0), &buf);
        let mut e = MacSwap::new();
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let mut pkt = Pkt {
            mbuf: 0,
            data_pa: r.pa(0),
            len: 64,
            mark: None,
            flow: None,
        };
        let (a, c) = e.process(&mut ctx, &mut pkt);
        assert_eq!(a, Action::Forward);
        assert!(c > 0);
        assert_eq!(e.processed(), 1);
        let out = m.mem().slice(r.pa(0), 12);
        assert_eq!(&out[0..6], &LOADGEN_MAC);
        assert_eq!(&out[6..12], &DUT_MAC);
    }
}
