//! VXLAN decapsulation (§4.2's example of an NF that hits a *different*
//! 64 B window of the packet).
//!
//! A VXLAN frame nests a full inner Ethernet frame behind outer
//! Ethernet/IPv4/UDP/VXLAN headers, so the *inner* header — the part a
//! decapsulating NF actually parses — starts 50 B into the packet and
//! straddles the second cache line. "CacheDirector can be configured to
//! map any other 64 B portion of the packet to the appropriate LLC
//! slice": pairing this element with `CacheDirector::install(..,
//! window_offset = 64)` places that second line.

use crate::element::{Action, Ctx, DropCause, Element, Pkt};
use llc_sim::hierarchy::Cycles;
use trafficgen::FlowTuple;

/// Outer Ethernet(14) + IPv4(20) + UDP(8) + VXLAN(8).
pub const VXLAN_OVERHEAD: usize = 50;
/// The standard VXLAN UDP port.
pub const VXLAN_PORT: u16 = 4789;
/// Work to validate the VXLAN header and shift the packet view.
pub const DECAP_WORK: Cycles = 25;

/// Wraps a frame in a VXLAN envelope (LoadGen-side helper, untimed).
///
/// Returns the encapsulated frame: outer headers + `inner` verbatim.
pub fn encapsulate(outer_flow: &FlowTuple, vni: u32, inner: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; VXLAN_OVERHEAD + inner.len()];
    // Outer Ethernet.
    out[12..14].copy_from_slice(&0x0800u16.to_be_bytes());
    // Outer IPv4.
    out[14] = 0x45;
    out[22] = 64;
    out[23] = 17; // UDP.
    out[26..30].copy_from_slice(&outer_flow.src_ip.to_be_bytes());
    out[30..34].copy_from_slice(&outer_flow.dst_ip.to_be_bytes());
    // Outer UDP.
    out[34..36].copy_from_slice(&outer_flow.src_port.to_be_bytes());
    out[36..38].copy_from_slice(&VXLAN_PORT.to_be_bytes());
    // VXLAN: flags (I bit) + reserved + VNI + reserved.
    out[42] = 0x08;
    out[46..49].copy_from_slice(&vni.to_be_bytes()[1..4]);
    out[VXLAN_OVERHEAD..].copy_from_slice(inner);
    out
}

/// Per-element counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct VxlanStats {
    /// Valid VXLAN frames decapsulated.
    pub decapped: u64,
    /// Frames that were not VXLAN (dropped by this element).
    pub not_vxlan: u64,
    /// VXLAN frames too short to carry an inner frame (dropped).
    pub truncated: u64,
}

/// The decapsulation element: validates the envelope, reads the VNI, and
/// advances the packet view to the inner frame.
#[derive(Debug, Default)]
pub struct VxlanDecap {
    stats: VxlanStats,
    last_vni: Option<u32>,
}

impl VxlanDecap {
    /// A fresh element.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters.
    pub fn stats(&self) -> VxlanStats {
        self.stats
    }

    /// VNI of the most recent decapsulated frame.
    pub fn last_vni(&self) -> Option<u32> {
        self.last_vni
    }
}

impl Element for VxlanDecap {
    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt) -> (Action, Cycles) {
        // Read the outer UDP destination port + the VXLAN header: bytes
        // 36..50, all within the first cache line. Never read past the
        // frame: a truncated envelope yields zeroed (non-matching) bytes.
        let mut head = [0u8; VXLAN_OVERHEAD];
        let readable = usize::from(pkt.len).min(VXLAN_OVERHEAD);
        let mut cycles = ctx
            .m
            .read_bytes(ctx.core, pkt.data_pa, &mut head[..readable]);
        ctx.m.advance(ctx.core, DECAP_WORK);
        cycles += DECAP_WORK;
        if usize::from(pkt.len) < VXLAN_OVERHEAD {
            self.stats.truncated += 1;
            return (Action::Drop(DropCause::Parse), cycles);
        }
        let dst_port = u16::from_be_bytes([head[36], head[37]]);
        let is_vxlan = head[23] == 17 && dst_port == VXLAN_PORT && head[42] & 0x08 != 0;
        if !is_vxlan {
            self.stats.not_vxlan += 1;
            return (Action::Drop(DropCause::Policy), cycles);
        }
        if usize::from(pkt.len) < VXLAN_OVERHEAD + crate::packet::HDR_LEN {
            // The envelope is valid but the inner frame is cut short.
            self.stats.truncated += 1;
            return (Action::Drop(DropCause::Parse), cycles);
        }
        self.last_vni = Some(u32::from_be_bytes([0, head[46], head[47], head[48]]));
        // Decap: shift the packet view to the inner frame. The inner
        // header read (by whatever follows) now lands in the second
        // physical line — the window CacheDirector can be told to place.
        pkt.data_pa = pkt.data_pa.add(VXLAN_OVERHEAD as u64);
        pkt.len -= VXLAN_OVERHEAD as u16;
        pkt.flow = None; // The cached (outer) flow no longer applies.
        self.stats.decapped += 1;
        (Action::Forward, cycles)
    }

    fn name(&self) -> &'static str {
        "VxlanDecap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::encode_frame;
    use llc_sim::machine::{Machine, MachineConfig};

    fn setup() -> (Machine, llc_sim::mem::Region) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20));
        let r = m.mem_mut().alloc(8192, 4096).unwrap();
        (m, r)
    }

    fn inner_frame(flow: &FlowTuple) -> Vec<u8> {
        let mut buf = vec![0u8; 128];
        encode_frame(&mut buf, flow, 128, 0.0, 1);
        buf
    }

    #[test]
    fn decap_reveals_inner_flow() {
        let (mut m, r) = setup();
        let outer = FlowTuple::udp(0x0a000001, 11111, 0x0a000002, VXLAN_PORT);
        let inner_flow = FlowTuple::tcp(0xc0a80001, 80, 0xc0a80002, 443);
        let frame = encapsulate(&outer, 42, &inner_frame(&inner_flow));
        m.mem_mut().write(r.pa(0), &frame);
        let mut e = VxlanDecap::new();
        let mut pkt = Pkt {
            mbuf: 0,
            data_pa: r.pa(0),
            len: frame.len() as u16,
            mark: None,
            flow: None,
        };
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (a, _) = e.process(&mut ctx, &mut pkt);
        assert_eq!(a, Action::Forward);
        assert_eq!(e.last_vni(), Some(42));
        assert_eq!(e.stats().decapped, 1);
        // The packet view now parses as the inner frame.
        let (flow, _) = pkt.flow(&mut Ctx { m: &mut m, core: 0 });
        assert_eq!(flow, Some(inner_flow));
        assert_eq!(pkt.len as usize, 128);
    }

    #[test]
    fn non_vxlan_is_dropped() {
        let (mut m, r) = setup();
        let flow = FlowTuple::tcp(1, 2, 3, 4);
        let mut buf = vec![0u8; 128];
        encode_frame(&mut buf, &flow, 128, 0.0, 0);
        m.mem_mut().write(r.pa(0), &buf);
        let mut e = VxlanDecap::new();
        let mut pkt = Pkt {
            mbuf: 0,
            data_pa: r.pa(0),
            len: 128,
            mark: None,
            flow: None,
        };
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (a, _) = e.process(&mut ctx, &mut pkt);
        assert_eq!(a, Action::Drop(DropCause::Policy));
        assert_eq!(e.stats().not_vxlan, 1);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // A layout invariant, kept visible.
    fn inner_header_sits_in_second_line() {
        // The point of the configurable window: after a 50 B envelope,
        // the inner header (bytes 50..104) straddles into the second
        // cache line of the buffer.
        assert!(VXLAN_OVERHEAD + crate::packet::HDR_LEN > 64);
    }

    #[test]
    fn truncated_vxlan_dropped() {
        let (mut m, r) = setup();
        let outer = FlowTuple::udp(1, 1, 2, VXLAN_PORT);
        let frame = encapsulate(&outer, 7, &[0u8; 8]); // Inner too short.
        m.mem_mut().write(r.pa(0), &frame);
        let mut e = VxlanDecap::new();
        let mut pkt = Pkt {
            mbuf: 0,
            data_pa: r.pa(0),
            len: frame.len() as u16,
            mark: None,
            flow: None,
        };
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (a, _) = e.process(&mut ctx, &mut pkt);
        assert_eq!(a, Action::Drop(DropCause::Parse));
        assert_eq!(e.stats().truncated, 1);
    }

    #[test]
    fn envelope_shorter_than_vxlan_header_never_reads_past_frame() {
        // A frame cut inside the outer headers: the element must reject
        // it without touching bytes beyond `len`.
        let (mut m, r) = setup();
        let outer = FlowTuple::udp(1, 1, 2, VXLAN_PORT);
        let frame = encapsulate(&outer, 7, &[0u8; 128]);
        m.mem_mut().write(r.pa(0), &frame);
        for cut in [0usize, 10, 36, 42, 49] {
            let mut e = VxlanDecap::new();
            let mut pkt = Pkt {
                mbuf: 0,
                data_pa: r.pa(0),
                len: cut as u16,
                mark: None,
                flow: None,
            };
            let mut ctx = Ctx { m: &mut m, core: 0 };
            let (a, _) = e.process(&mut ctx, &mut pkt);
            assert_eq!(a, Action::Drop(DropCause::Parse), "cut at {cut}");
            assert_eq!(e.stats().truncated, 1);
        }
    }
}
