//! Deep packet inspection (§4.2's other different-window application).
//!
//! A signature scanner that walks the payload line by line. Unlike the
//! header-only NFs, its cost grows with packet size and it touches every
//! line once — the workload where DDIO's whole-packet placement matters
//! and a single placed window matters least, which is why the paper
//! calls DPI out as wanting a *configurable* window rather than the
//! header default.

use crate::element::{Action, Ctx, DropCause, Element, Pkt};
use llc_sim::hierarchy::Cycles;
use llc_sim::CACHE_LINE;

/// Per-byte scan work (a DFA step).
pub const SCAN_WORK_PER_LINE: Cycles = 18;

/// What to do with packets whose payload matches a signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchAction {
    /// Drop matching packets (IPS mode).
    Drop,
    /// Count and forward (IDS mode).
    Alert,
}

/// Per-element counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpiStats {
    /// Packets scanned.
    pub scanned: u64,
    /// Signature hits.
    pub matches: u64,
}

/// A byte-signature scanner.
#[derive(Debug)]
pub struct Dpi {
    signature: Vec<u8>,
    action: MatchAction,
    stats: DpiStats,
}

impl Dpi {
    /// A scanner for `signature` applying `action` on match.
    ///
    /// # Panics
    ///
    /// Panics on an empty signature.
    pub fn new(signature: Vec<u8>, action: MatchAction) -> Self {
        assert!(!signature.is_empty(), "empty signature");
        Self {
            signature,
            action,
            stats: DpiStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> DpiStats {
        self.stats
    }
}

impl Element for Dpi {
    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt) -> (Action, Cycles) {
        self.stats.scanned += 1;
        // Read the whole packet line by line (the payload scan), paying
        // per-line memory latency plus DFA work.
        let mut cycles = 0;
        let mut payload = vec![0u8; pkt.len as usize];
        let mut off = 0;
        while off < pkt.len as usize {
            let take = CACHE_LINE.min(pkt.len as usize - off);
            cycles += ctx.m.read_bytes(
                ctx.core,
                pkt.data_pa.add(off as u64),
                &mut payload[off..off + take],
            );
            ctx.m.advance(ctx.core, SCAN_WORK_PER_LINE);
            cycles += SCAN_WORK_PER_LINE;
            off += take;
        }
        let hit = payload
            .windows(self.signature.len())
            .any(|w| w == self.signature);
        if hit {
            self.stats.matches += 1;
            if self.action == MatchAction::Drop {
                return (Action::Drop(DropCause::Policy), cycles);
            }
        }
        (Action::Forward, cycles)
    }

    fn name(&self) -> &'static str {
        "DPI"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::encode_frame;
    use llc_sim::machine::{Machine, MachineConfig};
    use trafficgen::FlowTuple;

    fn setup() -> (Machine, llc_sim::mem::Region) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(16 << 20));
        let r = m.mem_mut().alloc(8192, 4096).unwrap();
        (m, r)
    }

    fn pkt_with_payload(m: &mut Machine, r: llc_sim::mem::Region, payload: &[u8]) -> Pkt {
        let size = 64 + payload.len();
        let mut buf = vec![0u8; size];
        encode_frame(&mut buf, &FlowTuple::tcp(1, 2, 3, 4), size, 0.0, 0);
        buf[64..].copy_from_slice(payload);
        m.mem_mut().write(r.pa(0), &buf);
        Pkt {
            mbuf: 0,
            data_pa: r.pa(0),
            len: size as u16,
            mark: None,
            flow: None,
        }
    }

    #[test]
    fn ips_drops_matching_packets() {
        let (mut m, r) = setup();
        let mut dpi = Dpi::new(b"EVIL".to_vec(), MatchAction::Drop);
        let mut payload = vec![0u8; 300];
        payload[200..204].copy_from_slice(b"EVIL");
        let mut pkt = pkt_with_payload(&mut m, r, &payload);
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (a, _) = dpi.process(&mut ctx, &mut pkt);
        assert_eq!(a, Action::Drop(DropCause::Policy));
        assert_eq!(dpi.stats().matches, 1);
    }

    #[test]
    fn ids_alerts_but_forwards() {
        let (mut m, r) = setup();
        let mut dpi = Dpi::new(b"EVIL".to_vec(), MatchAction::Alert);
        let mut payload = vec![0u8; 100];
        payload[10..14].copy_from_slice(b"EVIL");
        let mut pkt = pkt_with_payload(&mut m, r, &payload);
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (a, _) = dpi.process(&mut ctx, &mut pkt);
        assert_eq!(a, Action::Forward);
        assert_eq!(dpi.stats().matches, 1);
    }

    #[test]
    fn clean_packets_forward() {
        let (mut m, r) = setup();
        let mut dpi = Dpi::new(b"EVIL".to_vec(), MatchAction::Drop);
        let mut pkt = pkt_with_payload(&mut m, r, &[0x55; 256]);
        let mut ctx = Ctx { m: &mut m, core: 0 };
        let (a, _) = dpi.process(&mut ctx, &mut pkt);
        assert_eq!(a, Action::Forward);
        assert_eq!(dpi.stats().matches, 0);
        assert_eq!(dpi.stats().scanned, 1);
    }

    #[test]
    fn signature_straddling_lines_is_found() {
        let (mut m, r) = setup();
        let mut dpi = Dpi::new(b"SPLIT".to_vec(), MatchAction::Alert);
        let mut payload = vec![0u8; 200];
        // Place the signature across the 64 B boundary at payload[62].
        payload[60..65].copy_from_slice(b"SPLIT");
        let mut pkt = pkt_with_payload(&mut m, r, &payload);
        let mut ctx = Ctx { m: &mut m, core: 0 };
        dpi.process(&mut ctx, &mut pkt);
        assert_eq!(dpi.stats().matches, 1);
    }

    #[test]
    fn scan_cost_grows_with_packet_size() {
        let (mut m, r) = setup();
        let mut dpi = Dpi::new(b"X".to_vec(), MatchAction::Alert);
        let mut small = pkt_with_payload(&mut m, r, &[0; 64]);
        let c_small = {
            let mut ctx = Ctx { m: &mut m, core: 0 };
            dpi.process(&mut ctx, &mut small).1
        };
        let mut large = pkt_with_payload(&mut m, r, &[0; 1024]);
        let c_large = {
            let mut ctx = Ctx { m: &mut m, core: 0 };
            dpi.process(&mut ctx, &mut large).1
        };
        assert!(c_large > c_small * 3, "{c_large} vs {c_small}");
    }
}
