//! Property-style tests for the NFV dataplane structures: the DIR-24-8
//! LPM against a naive reference, and the flow table against a HashMap.
//! Seeded loops over [`trafficgen::Rng64`] (fully offline).

use llc_sim::machine::{Machine, MachineConfig};
use nfv::lpm::{Lpm, RouteEntry};
use nfv::packet::{encode_frame, parse_header};
use nfv::table::FlowTable;
use trafficgen::{FlowTuple, Rng64};

fn machine() -> Machine {
    Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20))
}

/// Naive longest-prefix reference.
fn naive_lookup(routes: &[RouteEntry], dst: u32) -> Option<u16> {
    routes
        .iter()
        .filter(|r| {
            let mask = u32::MAX << (32 - r.len);
            dst & mask == r.prefix
        })
        .max_by_key(|r| r.len)
        .map(|r| r.next_hop)
}

fn random_route(rng: &mut Rng64) -> RouteEntry {
    let len = rng.gen_range(1u32..=24) as u8;
    let bits = rng.next_u32();
    let hop = rng.gen_range(0u16..u16::MAX);
    RouteEntry {
        prefix: bits & (u32::MAX << (32 - u32::from(len))),
        len,
        next_hop: hop,
    }
}

/// DIR-24-8 lookups agree with the naive longest-prefix reference —
/// except where two same-length routes overlap (build order decides,
/// as in real tables), which the generator avoids by deduplication.
#[test]
fn lpm_matches_reference() {
    let mut rng = Rng64::seed_from_u64(0x2f01);
    for case in 0..24 {
        let n_routes = rng.gen_range(1usize..30);
        let mut routes: Vec<RouteEntry> = (0..n_routes).map(|_| random_route(&mut rng)).collect();
        // Deduplicate (prefix, len) pairs: overlapping same-length routes
        // have unspecified priority in both implementations.
        routes.sort_by_key(|r| (r.len, r.prefix));
        routes.dedup_by_key(|r| (r.len, r.prefix));
        let mut m = machine();
        let lpm = Lpm::build(&mut m, &routes).unwrap();
        for _ in 0..rng.gen_range(1usize..50) {
            let dst = rng.next_u32();
            let got = lpm.lookup_untimed(&m, dst);
            let want = naive_lookup(&routes, dst);
            assert_eq!(got, want, "case {case}, dst {dst:08x}");
        }
    }
}

/// The flow table behaves like a HashMap under mixed workloads (while
/// under its probe-capacity limit).
#[test]
fn flow_table_matches_hashmap() {
    let mut rng = Rng64::seed_from_u64(0x2f02);
    for _ in 0..24 {
        let mut m = machine();
        let mut t = FlowTable::create(&mut m, 1024).unwrap();
        let mut model = std::collections::HashMap::new();
        let n_ops = rng.gen_range(1usize..120);
        for _ in 0..n_ops {
            let is_insert = rng.gen_bool(0.5);
            let key = rng.gen_range(0u32..40);
            let value = rng.next_u64();
            let flow = FlowTuple::tcp(key, 1, 2, 3);
            if is_insert {
                t.insert(&mut m, 0, &flow, value).unwrap();
                model.insert(flow, value);
            } else {
                let (got, _) = t.lookup(&mut m, 0, &flow);
                assert_eq!(got, model.get(&flow).copied());
            }
            assert_eq!(t.len(), model.len());
        }
    }
}

/// Frame encode → simulated memory → parse is the identity on the
/// 5-tuple and payload tag for any flow and size.
#[test]
fn frame_roundtrip() {
    let mut rng = Rng64::seed_from_u64(0x2f03);
    let mut m = machine();
    let r = m.mem_mut().alloc(4096, 4096).unwrap();
    for _ in 0..64 {
        let src = rng.next_u32();
        let dst = rng.next_u32();
        let sp = rng.gen_range(0u16..=u16::MAX);
        let dp = rng.gen_range(0u16..=u16::MAX);
        let udp = rng.gen_bool(0.5);
        let size = rng.gen_range(64u16..=1500);
        let seq = rng.next_u32();
        let flow = if udp {
            FlowTuple::udp(src, sp, dst, dp)
        } else {
            FlowTuple::tcp(src, sp, dst, dp)
        };
        let mut buf = vec![0u8; 1500];
        let n = encode_frame(&mut buf, &flow, size as usize, 12345.0, u64::from(seq));
        assert_eq!(n, size as usize);
        m.mem_mut().write(r.pa(0), &buf[..n]);
        let (hdr, _) = parse_header(&mut m, 0, r.pa(0), n);
        let hdr = hdr.expect("well-formed frame parses");
        assert_eq!(hdr.flow, flow);
        let (ts, got_seq) = nfv::packet::read_payload_tag(&m, r.pa(0));
        assert_eq!(ts, 12345.0);
        assert_eq!(got_seq, u64::from(seq));
    }
}
