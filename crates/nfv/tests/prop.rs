//! Property-based tests for the NFV dataplane structures: the DIR-24-8
//! LPM against a naive reference, and the flow table against a HashMap.

use llc_sim::machine::{Machine, MachineConfig};
use nfv::lpm::{Lpm, RouteEntry};
use nfv::packet::{encode_frame, parse_header};
use nfv::table::FlowTable;
use proptest::prelude::*;
use trafficgen::FlowTuple;

fn machine() -> Machine {
    Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20))
}

/// Naive longest-prefix reference.
fn naive_lookup(routes: &[RouteEntry], dst: u32) -> Option<u16> {
    routes
        .iter()
        .filter(|r| {
            let mask = u32::MAX << (32 - r.len);
            dst & mask == r.prefix
        })
        .max_by_key(|r| r.len)
        .map(|r| r.next_hop)
}

fn route_strategy() -> impl Strategy<Value = RouteEntry> {
    (1u8..=24, any::<u32>(), any::<u16>()).prop_map(|(len, bits, hop)| RouteEntry {
        prefix: bits & (u32::MAX << (32 - len)),
        len,
        next_hop: if hop == u16::MAX { 0 } else { hop },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DIR-24-8 lookups agree with the naive longest-prefix reference —
    /// except where two same-length routes overlap (build order decides,
    /// as in real tables), which the generator avoids by deduplication.
    #[test]
    fn lpm_matches_reference(
        mut routes in proptest::collection::vec(route_strategy(), 1..30),
        probes in proptest::collection::vec(any::<u32>(), 1..50),
    ) {
        // Deduplicate (prefix, len) pairs: overlapping same-length routes
        // have unspecified priority in both implementations.
        routes.sort_by_key(|r| (r.len, r.prefix));
        routes.dedup_by_key(|r| (r.len, r.prefix));
        let mut m = machine();
        let lpm = Lpm::build(&mut m, &routes).unwrap();
        for dst in probes {
            let got = lpm.lookup_untimed(&m, dst);
            let want = naive_lookup(&routes, dst);
            prop_assert_eq!(got, want, "dst {:08x}", dst);
        }
    }

    /// The flow table behaves like a HashMap under mixed workloads (while
    /// under its probe-capacity limit).
    #[test]
    fn flow_table_matches_hashmap(
        ops in proptest::collection::vec((any::<bool>(), 0u32..40, any::<u64>()), 1..120),
    ) {
        let mut m = machine();
        let mut t = FlowTable::create(&mut m, 1024).unwrap();
        let mut model = std::collections::HashMap::new();
        for (is_insert, key, value) in ops {
            let flow = FlowTuple::tcp(key, 1, 2, 3);
            if is_insert {
                t.insert(&mut m, 0, &flow, value).unwrap();
                model.insert(flow, value);
            } else {
                let (got, _) = t.lookup(&mut m, 0, &flow);
                prop_assert_eq!(got, model.get(&flow).copied());
            }
            prop_assert_eq!(t.len(), model.len());
        }
    }

    /// Frame encode → simulated memory → parse is the identity on the
    /// 5-tuple and payload tag for any flow and size.
    #[test]
    fn frame_roundtrip(
        src in any::<u32>(), dst in any::<u32>(),
        sp in any::<u16>(), dp in any::<u16>(),
        udp in any::<bool>(),
        size in 64u16..=1500,
        seq in 0u32..u32::MAX,
    ) {
        let flow = if udp {
            FlowTuple::udp(src, sp, dst, dp)
        } else {
            FlowTuple::tcp(src, sp, dst, dp)
        };
        let mut m = machine();
        let r = m.mem_mut().alloc(4096, 4096).unwrap();
        let mut buf = vec![0u8; 1500];
        let n = encode_frame(&mut buf, &flow, size as usize, 12345.0, u64::from(seq));
        prop_assert_eq!(n, size as usize);
        m.mem_mut().write(r.pa(0), &buf[..n]);
        let (hdr, _) = parse_header(&mut m, 0, r.pa(0));
        prop_assert_eq!(hdr.flow, flow);
        let (ts, got_seq) = nfv::packet::read_payload_tag(&m, r.pa(0));
        prop_assert_eq!(ts, 12345.0);
        prop_assert_eq!(got_seq, u64::from(seq));
    }
}
