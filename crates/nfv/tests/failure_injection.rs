//! Integration tests for the fault-injection subsystem: each fault kind
//! is driven end to end through the testbed (LoadGen → NIC → chain →
//! LoadGen) and must (a) never panic, (b) surface in the right per-cause
//! counter, and (c) keep the conservation invariant
//! `offered == delivered + Σ dropped[cause]` (asserted inside
//! `Testbed::finish`, restated here from the report).

use nfv::runtime::{run_experiment, ChainSpec, HeadroomMode, RunConfig, RunResult, SteeringKind};
use rte::fault::{FaultPlan, Window};
use trafficgen::{ArrivalSchedule, CampusTrace};

const PACKETS: usize = 3000;

fn cfg(chain: ChainSpec, faults: FaultPlan) -> RunConfig {
    let mut cfg = RunConfig::paper_defaults(
        chain,
        SteeringKind::Rss,
        HeadroomMode::CacheDirector {
            preferred_slices: 1,
        },
    );
    cfg.cores = 2;
    cfg.queue_depth = 128;
    cfg.mbufs = 512;
    cfg.faults = faults;
    cfg
}

fn run(chain: ChainSpec, faults: FaultPlan) -> RunResult {
    let mut trace = CampusTrace::fixed_size(128, 256, 11);
    let mut sched = ArrivalSchedule::constant_pps(2_000_000.0);
    run_experiment(cfg(chain, faults), &mut trace, &mut sched, PACKETS)
        .expect("test config fits simulated DRAM")
}

fn conserve(res: &RunResult) {
    assert_eq!(
        res.offered,
        res.delivered + res.dropped,
        "conservation (drops: {})",
        res.drops
    );
    assert_eq!(
        res.drops.total(),
        res.dropped,
        "per-cause totals partition drops"
    );
}

#[test]
fn clean_plan_is_lossless_at_low_rate() {
    let res = run(ChainSpec::MacSwap, FaultPlan::none());
    conserve(&res);
    assert_eq!(res.offered, PACKETS as u64);
    assert_eq!(res.dropped, 0, "no faults, no overload: {}", res.drops);
}

#[test]
fn frame_corruption_dies_at_the_nic() {
    let plan = FaultPlan::none().with_seed(5).with_corrupt_prob(0.2);
    let res = run(ChainSpec::MacSwap, plan);
    conserve(&res);
    let expected = PACKETS as f64 * 0.2;
    assert!(
        (res.drops.nic.crc as f64) > expected * 0.7 && (res.drops.nic.crc as f64) < expected * 1.3,
        "crc drops {} should track the 20% corruption rate",
        res.drops.nic.crc
    );
    assert!(res.delivered > 0, "most frames still flow");
}

#[test]
fn truncation_splits_between_nic_and_parser() {
    // Truncation lengths are uniform over 0..=60 B: cuts below 14 B are
    // runts the MAC rejects (CRC counter); longer cuts reach the stateful
    // chain, whose router fails to parse the mutilated header.
    let plan = FaultPlan::none().with_seed(6).with_truncate_prob(0.3);
    let res = run(
        ChainSpec::RouterNaptLb {
            routes: 64,
            offload: false,
        },
        plan,
    );
    conserve(&res);
    assert!(
        res.drops.nic.crc > 0,
        "runt cuts must hit the MAC: {}",
        res.drops
    );
    assert!(
        res.drops.parse > 0,
        "mid-length cuts must reach and fail the parser: {}",
        res.drops
    );
    assert!(res.delivered > 0);
}

#[test]
fn macswap_forwards_parseable_truncations() {
    // MacSwap never parses past the first 12 B, so every truncation the
    // MAC accepts (≥ 14 B on the wire) flows straight through — the
    // parse counter stays at zero and only runts are lost.
    let plan = FaultPlan::none().with_seed(9).with_truncate_prob(0.25);
    let res = run(ChainSpec::MacSwap, plan);
    conserve(&res);
    assert!(res.drops.nic.crc > 0, "{}", res.drops);
    assert_eq!(res.drops.parse, 0, "{}", res.drops);
    assert_eq!(res.delivered, res.offered - res.drops.nic.crc);
}

#[test]
fn pool_exhaustion_window_starves_descriptors() {
    // A long outage: refills fail, the posted ring drains, and arrivals
    // inside the window die as pool-starved descriptor misses.
    let plan = FaultPlan::frame_indexed().with_pool_exhaustion(Window::new(500, 1500));
    let res = run(ChainSpec::MacSwap, plan);
    conserve(&res);
    assert!(
        res.drops.nic.pool_starved > 0,
        "outage must surface as pool_starved: {}",
        res.drops
    );
    assert_eq!(
        res.drops.nic.crc + res.drops.nic.link_down + res.drops.nic.rx_stall,
        0
    );
    assert!(
        res.delivered > res.offered / 2,
        "service recovers after the outage ({} of {})",
        res.delivered,
        res.offered
    );
}

#[test]
fn rx_stall_window_loses_exactly_its_span() {
    let plan = FaultPlan::frame_indexed().with_rx_stall(Window::new(1000, 1200));
    let res = run(ChainSpec::MacSwap, plan);
    conserve(&res);
    assert_eq!(
        res.drops.nic.rx_stall, 200,
        "every frame inside the stall window is lost: {}",
        res.drops
    );
    assert_eq!(res.delivered, res.offered - 200);
}

#[test]
fn link_flap_window_loses_exactly_its_span() {
    let plan = FaultPlan::frame_indexed().with_link_flap(Window::new(100, 350));
    let res = run(ChainSpec::MacSwap, plan);
    conserve(&res);
    assert_eq!(res.drops.nic.link_down, 250, "{}", res.drops);
    assert_eq!(res.delivered, res.offered - 250);
}

#[test]
fn combined_faults_conserve_and_are_deterministic() {
    let plan = || {
        FaultPlan::frame_indexed()
            .with_seed(42)
            .with_corrupt_prob(0.05)
            .with_truncate_prob(0.05)
            .with_pool_exhaustion(Window::new(400, 700))
            .with_rx_stall(Window::new(900, 1000))
            .with_link_flap(Window::new(1500, 1600))
    };
    let a = run(
        ChainSpec::RouterNaptLb {
            routes: 64,
            offload: false,
        },
        plan(),
    );
    let b = run(
        ChainSpec::RouterNaptLb {
            routes: 64,
            offload: false,
        },
        plan(),
    );
    conserve(&a);
    assert_eq!(a.drops, b.drops, "same plan, same seed, same drops");
    assert_eq!(a.delivered, b.delivered);
    assert!(a.drops.nic.crc > 0);
    assert!(a.drops.nic.rx_stall > 0);
    assert!(a.drops.nic.link_down > 0);
}
