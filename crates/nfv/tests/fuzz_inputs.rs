//! Seeded fuzz-style robustness test: thousands of random, truncated,
//! and bit-flipped buffers pushed through every parsing element. The
//! contract under test is the hardening guarantee of this repo: **no
//! byte sequence, of any length, may panic a parser or an element** —
//! garbage is dropped with a cause, and every packet is accounted for.

use std::sync::Arc;

use llc_sim::machine::{Machine, MachineConfig};
use nfv::element::{Action, Ctx, DropCause, Element, Pkt};
use nfv::elements::{Napt, Router, VxlanDecap};
use nfv::lpm::{Lpm, RouteEntry};
use nfv::packet::{encode_frame, parse_header, HDR_LEN};
use trafficgen::{FlowTuple, Rng64};

const ITERS: usize = 10_000;
const BUF: usize = 512;

fn setup() -> (Machine, llc_sim::mem::Region) {
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
    let r = m.mem_mut().alloc(4096, 4096).expect("test region fits");
    (m, r)
}

/// Draws the next adversarial buffer: pure noise, a valid frame cut
/// short, or a valid frame with random bytes flipped.
fn next_buffer(rng: &mut Rng64, buf: &mut [u8; BUF]) -> usize {
    let kind = rng.gen_range(0u32..3);
    match kind {
        0 => {
            // Pure random bytes, random length (including 0).
            let len = rng.gen_range(0usize..BUF + 1);
            for b in buf.iter_mut().take(len) {
                *b = rng.next_u64() as u8;
            }
            len
        }
        1 => {
            // A well-formed frame truncated at a random point.
            let flow = random_flow(rng);
            let size = rng.gen_range(64usize..257);
            encode_frame(&mut buf[..size], &flow, size, 0.0, 1);
            rng.gen_range(0usize..size + 1)
        }
        _ => {
            // A well-formed frame with 1..=8 corrupted bytes.
            let flow = random_flow(rng);
            let size = rng.gen_range(64usize..257);
            encode_frame(&mut buf[..size], &flow, size, 0.0, 1);
            for _ in 0..rng.gen_range(1usize..9) {
                let at = rng.gen_range(0usize..size);
                buf[at] = rng.next_u64() as u8;
            }
            size
        }
    }
}

fn random_flow(rng: &mut Rng64) -> FlowTuple {
    FlowTuple::tcp(
        rng.next_u64() as u32,
        rng.next_u64() as u16,
        rng.next_u64() as u32,
        rng.next_u64() as u16,
    )
}

#[test]
fn no_input_panics_the_parsers_and_all_packets_are_accounted() {
    let (mut m, r) = setup();
    let lpm = Arc::new(
        Lpm::build(
            &mut m,
            &[RouteEntry {
                prefix: 0x0a00_0000,
                len: 8,
                next_hop: 1,
            }],
        )
        .expect("LPM fits"),
    );
    let mut router = Router::new(Arc::clone(&lpm));
    let mut napt = Napt::new(&mut m, 256).expect("NAPT table fits");
    let mut vxlan = VxlanDecap::new();
    let mut rng = Rng64::seed_from_u64(0xfa22_0001);
    let mut buf = [0u8; BUF];
    let mut processed = 0u64;
    let mut forwarded = 0u64;
    let mut dropped = 0u64;
    for i in 0..ITERS {
        let len = next_buffer(&mut rng, &mut buf);
        m.mem_mut().write(r.pa(0), &buf[..BUF.max(1)]);
        // The decoder itself: must return None (never panic) on garbage.
        let (hdr, _) = parse_header(&mut m, 0, r.pa(0), len);
        if let Some(h) = hdr {
            // When it does parse, the reported flow must round-trip.
            assert!(len >= HDR_LEN, "parse implies enough bytes at iter {i}");
            let _ = h.flow;
        }
        // Each element sees its own fresh view of the same bytes.
        let elements: [&mut dyn Element; 3] = [&mut router, &mut napt, &mut vxlan];
        for e in elements {
            let mut pkt = Pkt {
                mbuf: 0,
                data_pa: r.pa(0),
                len: len as u16,
                mark: None,
                flow: None,
            };
            let mut ctx = Ctx { m: &mut m, core: 0 };
            let (action, cycles) = e.process(&mut ctx, &mut pkt);
            processed += 1;
            match action {
                Action::Forward => forwarded += 1,
                Action::Drop(
                    DropCause::Parse
                    | DropCause::NoRoute
                    | DropCause::TableExhausted
                    | DropCause::Policy,
                ) => dropped += 1,
            }
            assert!(cycles > 0, "every element charges for its work");
        }
    }
    // Conservation: every processed packet either forwarded or dropped.
    assert_eq!(processed, forwarded + dropped);
    assert_eq!(processed, (ITERS * 3) as u64);
    // Sanity: the corpus exercised both outcomes on the stateful path.
    assert!(forwarded > 0, "some valid frames must survive");
    assert!(dropped > 0, "some garbage must be dropped");
    // Element-level stats partition their own processed counts.
    let rs = router.stats();
    // `no_route` is a sub-count of `software` (the lookup happened, the
    // table missed) — the partition is offloaded/software/malformed.
    assert_eq!(
        rs.offloaded + rs.software + rs.malformed,
        ITERS as u64,
        "router stats partition its packets"
    );
    assert!(rs.no_route <= rs.software, "misses are software lookups");
    let ns = napt.stats();
    assert_eq!(
        ns.new_flows + ns.hits + ns.exhausted + ns.malformed,
        ITERS as u64,
        "NAPT stats partition its packets"
    );
    let vs = vxlan.stats();
    assert_eq!(
        vs.decapped + vs.not_vxlan + vs.truncated,
        ITERS as u64,
        "VXLAN stats partition its packets"
    );
}

#[test]
fn fuzz_corpus_is_deterministic() {
    // The corpus is a pure function of the seed: two generators agree.
    let mut a = Rng64::seed_from_u64(77);
    let mut b = Rng64::seed_from_u64(77);
    let mut ba = [0u8; BUF];
    let mut bb = [0u8; BUF];
    for _ in 0..1000 {
        let la = next_buffer(&mut a, &mut ba);
        let lb = next_buffer(&mut b, &mut bb);
        assert_eq!(la, lb);
        assert_eq!(ba[..la], bb[..lb]);
    }
}
