//! The §4.2 alternative to dynamic headroom: per-core sorted mempools.
//!
//! "An application can allocate one large mempool containing mbufs.
//! Then, it can sort mbufs across multiple mempools, each of which is
//! dedicated to one CPU core, based on their LLC slice mappings." With
//! sorting, every buffer in core *c*'s pool already has its (fixed-
//! headroom) data start in a preferred slice of *c*, so the run-time
//! headroom adjustment — and the 832 B headroom reserve — disappear
//! ("it is worth noting that this step is eliminated when mbufs are
//! sorted at the application level"). The trade-offs the paper notes:
//! it is application-level (not transparent like CacheDirector), and
//! buffers whose natural placement fits no core are left over.

use llc_sim::machine::Machine;
use rte::mempool::MbufPool;
use slice_aware::placement::PlacementPolicy;

/// The result of sorting one pool across cores.
#[derive(Debug)]
pub struct SortedPools {
    /// `per_core[c]` holds the mbuf indices whose fixed-headroom data
    /// start maps to a preferred slice of core `c`.
    per_core: Vec<Vec<u32>>,
    /// Buffers that matched no core's preferred set.
    unplaced: Vec<u32>,
    data_off: u16,
}

impl SortedPools {
    /// Sorts every mbuf of `pool` into per-core free lists by the slice
    /// of its data start at fixed headroom `data_off`.
    ///
    /// `preferred_slices` works like CacheDirector's: 1 targets each
    /// core's primary slice only; more admits the secondaries.
    ///
    /// # Panics
    ///
    /// Panics when `preferred_slices == 0` or `data_off` exceeds the
    /// pool's headroom capacity.
    pub fn sort(m: &mut Machine, pool: &MbufPool, data_off: u16, preferred_slices: usize) -> Self {
        assert!(preferred_slices > 0, "need at least one target slice");
        assert!(data_off <= pool.headroom_cap(), "headroom beyond capacity");
        let policy = PlacementPolicy::from_topology(m);
        let cores = m.config().cores;
        let preferred: Vec<Vec<usize>> = (0..cores)
            .map(|c| policy.preferred_set(c, preferred_slices).to_vec())
            .collect();
        let mut per_core: Vec<Vec<u32>> = vec![Vec::new(); cores];
        let mut unplaced = Vec::new();
        // Round-robin the claim order so no single core hoards buffers
        // that several cores could use.
        'outer: for mbuf in 0..pool.capacity() {
            let s = m.slice_of(pool.meta(mbuf).data_pa_for(data_off));
            // Primary owners first, then secondary claims.
            for rank in 0..preferred_slices {
                for (c, pref) in preferred.iter().enumerate() {
                    if pref.get(rank) == Some(&s) {
                        per_core[c].push(mbuf);
                        continue 'outer;
                    }
                }
            }
            unplaced.push(mbuf);
        }
        Self {
            per_core,
            unplaced,
            data_off,
        }
    }

    /// Number of cores the pool was sorted for.
    pub fn cores(&self) -> usize {
        self.per_core.len()
    }

    /// The buffers assigned to `core`.
    pub fn pool_of(&self, core: usize) -> &[u32] {
        &self.per_core[core]
    }

    /// Buffers no core could use at this `data_off`.
    pub fn unplaced(&self) -> &[u32] {
        &self.unplaced
    }

    /// The fixed headroom all sorted buffers use.
    pub fn data_off(&self) -> u16 {
        self.data_off
    }

    /// Takes a buffer from `core`'s pool.
    pub fn get(&mut self, core: usize) -> Option<u32> {
        self.per_core[core].pop()
    }

    /// Returns a buffer to `core`'s pool.
    pub fn put(&mut self, core: usize, mbuf: u32) {
        self.per_core[core].push(mbuf);
    }

    /// Fraction of the original pool that found a home.
    pub fn placement_rate(&self, pool: &MbufPool) -> f64 {
        1.0 - self.unplaced.len() as f64 / pool.capacity() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::machine::MachineConfig;

    fn haswell() -> Machine {
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(128 << 20))
    }

    #[test]
    fn every_sorted_buffer_matches_its_core() {
        let mut m = haswell();
        let pool = MbufPool::create(&mut m, 512, 128, 2048).unwrap();
        let sorted = SortedPools::sort(&mut m, &pool, 128, 1);
        for c in 0..8 {
            let target = m.closest_slice(c);
            for &mbuf in sorted.pool_of(c) {
                let pa = pool.meta(mbuf).data_pa_for(128);
                assert_eq!(m.slice_of(pa), target, "core {c} mbuf {mbuf}");
            }
        }
    }

    #[test]
    fn haswell_places_every_buffer() {
        // 8 cores covering all 8 slices: nothing is left over.
        let mut m = haswell();
        let pool = MbufPool::create(&mut m, 1024, 128, 2048).unwrap();
        let sorted = SortedPools::sort(&mut m, &pool, 128, 1);
        assert!(sorted.unplaced().is_empty());
        assert_eq!(sorted.placement_rate(&pool), 1.0);
        let total: usize = (0..8).map(|c| sorted.pool_of(c).len()).sum();
        assert_eq!(total, 1024);
    }

    #[test]
    fn skylake_leaves_unclaimed_slices_over() {
        // 8 cores, 18 slices: buffers in slices outside every preferred
        // set are unplaced (the memory-waste trade-off the paper notes).
        let mut m = Machine::new(MachineConfig::skylake_gold_6134().with_dram_capacity(128 << 20));
        let pool = MbufPool::create(&mut m, 1024, 128, 2048).unwrap();
        let sorted = SortedPools::sort(&mut m, &pool, 128, 1);
        assert!(!sorted.unplaced().is_empty());
        // With the secondary slices admitted, coverage improves.
        let sorted3 = SortedPools::sort(&mut m, &pool, 128, 3);
        assert!(sorted3.unplaced().len() < sorted.unplaced().len());
    }

    #[test]
    fn get_put_cycle_stays_within_core_pool() {
        let mut m = haswell();
        let pool = MbufPool::create(&mut m, 256, 128, 2048).unwrap();
        let mut sorted = SortedPools::sort(&mut m, &pool, 128, 1);
        let before = sorted.pool_of(3).len();
        let mbuf = sorted.get(3).expect("core 3 has buffers");
        assert_eq!(sorted.pool_of(3).len(), before - 1);
        sorted.put(3, mbuf);
        assert_eq!(sorted.pool_of(3).len(), before);
    }

    #[test]
    fn no_buffer_is_assigned_twice() {
        let mut m = haswell();
        let pool = MbufPool::create(&mut m, 512, 128, 2048).unwrap();
        let sorted = SortedPools::sort(&mut m, &pool, 128, 2);
        let mut seen = std::collections::HashSet::new();
        for c in 0..sorted.cores() {
            for &mb in sorted.pool_of(c) {
                assert!(seen.insert(mb), "mbuf {mb} assigned twice");
            }
        }
        for &mb in sorted.unplaced() {
            assert!(seen.insert(mb), "mbuf {mb} both placed and unplaced");
        }
        assert_eq!(seen.len(), 512);
    }

    #[test]
    fn sorted_equals_cachedirector_placement_quality() {
        // The two designs place the same window; sorting just moves the
        // decision from run time to pool-partitioning time.
        let mut m = haswell();
        let pool = MbufPool::create(&mut m, 256, crate::CACHEDIRECTOR_HEADROOM, 2048).unwrap();
        let mut cd = crate::CacheDirector::install(&mut m, &pool, 1, 0);
        let sorted = SortedPools::sort(&mut m, &pool, 128, 1);
        // A buffer from core 2's sorted pool is as well-placed as any
        // buffer CacheDirector would adjust for core 2.
        let target = m.closest_slice(2);
        if let Some(&mb) = sorted.pool_of(2).first() {
            assert_eq!(m.slice_of(pool.meta(mb).data_pa_for(128)), target);
        }
        use rte::nic::HeadroomPolicy;
        let off = cd.data_off(&mut m, &pool, 7, 2);
        assert_eq!(m.slice_of(pool.meta(7).data_pa_for(off)), target);
    }
}
