//! CacheDirector: slice-aware packet placement for DPDK-style buffers
//! (paper §4).
//!
//! DDIO already puts arriving packets in the LLC, but into *whichever*
//! slice Complex Addressing assigns to the buffer address. CacheDirector
//! closes the loop: it sizes each mbuf's headroom dynamically so that the
//! first 64 B of the frame — the packet header, the part every network
//! function touches — lands in the slice closest to the core that will
//! process the packet.
//!
//! Implementation, following §4.2:
//!
//! * **Init phase** ([`CacheDirector::install`]): for every mbuf in the
//!   pool and every core, find the smallest headroom (in cache lines)
//!   that places the header window in one of the core's preferred
//!   slices, and pack the answers into the mbuf's `udata64` — 4 bits per
//!   core, "scalable for up to 16 cores".
//! * **Run time** ([`HeadroomPolicy`] impl): when the driver re-posts a
//!   buffer to a queue served by core *c*, read `udata64`, take nibble
//!   *c*, multiply by 64 — one cached load instead of a search.
//! * **Configurable window**: applications that hit a different part of
//!   the packet (VXLAN, DPI) can place any other 64 B window instead
//!   (`window_offset`).
//!
//! The headroom budget follows the paper's measured maximum of 832 B
//! (13 lines); [`headroom_distribution`] regenerates that §4.2
//! distribution for any trace.

pub mod sorted_pools;

use llc_sim::machine::Machine;
use llc_sim::CACHE_LINE;
use rte::mbuf::{pack_headroom_table, unpack_headroom_lines};
use rte::mempool::MbufPool;
use rte::nic::HeadroomPolicy;
use slice_aware::placement::PlacementPolicy;

pub use sorted_pools::SortedPools;

/// The enlarged headroom capacity CacheDirector pools use: the maximum
/// the paper observed across ~12.3 M trace packets (§4.2).
pub const CACHEDIRECTOR_HEADROOM: u16 = 832;

/// Placement statistics from the init phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstallStats {
    /// (mbuf, core) pairs whose window fits a preferred slice.
    pub placed: u64,
    /// Pairs where no headroom position reached a preferred slice and the
    /// first position was kept as a fallback.
    pub fallback: u64,
}

/// The CacheDirector headroom policy.
#[derive(Debug)]
pub struct CacheDirector {
    /// Per-core acceptable slice sets (primary first).
    preferred: Vec<Vec<usize>>,
    /// Byte offset of the 64 B window to place (0 = the packet header).
    window_offset: u16,
    stats: InstallStats,
}

impl CacheDirector {
    /// Precomputes and writes every mbuf's `udata64` headroom table,
    /// targeting each core's `preferred_slices` closest slices.
    ///
    /// `preferred_slices = 1` places headers in the primary slice only
    /// (the Haswell configuration, where core *i* owns slice *i*);
    /// Skylake benefits from 2-3 (primary + secondaries, Table 4).
    ///
    /// # Panics
    ///
    /// Panics when the pool's headroom capacity exceeds 15 lines (a
    /// nibble), when `window_offset` is not 64 B-aligned or beyond the
    /// data room, or when `preferred_slices == 0`.
    pub fn install(
        m: &mut Machine,
        pool: &MbufPool,
        preferred_slices: usize,
        window_offset: u16,
    ) -> Self {
        assert!(preferred_slices > 0, "need at least one target slice");
        assert_eq!(
            window_offset as usize % CACHE_LINE,
            0,
            "window must be cache-line aligned"
        );
        assert!(
            window_offset < pool.dataroom(),
            "window beyond the data room"
        );
        let max_lines = pool.headroom_cap() as usize / CACHE_LINE;
        assert!(max_lines <= 15, "headroom table nibble overflow");
        let policy = PlacementPolicy::from_topology(m);
        let cores = m.config().cores.min(16);
        let preferred: Vec<Vec<usize>> = (0..cores)
            .map(|c| policy.preferred_set(c, preferred_slices).to_vec())
            .collect();
        Self::install_with_targets(m, pool, preferred, window_offset)
    }

    /// Like [`CacheDirector::install`] but with explicit per-core target
    /// slice sets — e.g. a *compromise* slice shared by the cores of a
    /// pipelined chain (§8: "multi-threaded applications that have shared
    /// data among multiple cores should find a compromise placement").
    ///
    /// # Panics
    ///
    /// Same conditions as [`CacheDirector::install`], plus an empty
    /// target list.
    pub fn install_with_targets(
        m: &mut Machine,
        pool: &MbufPool,
        preferred: Vec<Vec<usize>>,
        window_offset: u16,
    ) -> Self {
        assert!(!preferred.is_empty(), "need at least one core's targets");
        assert!(preferred.len() <= 16, "udata64 holds 16 nibbles");
        assert!(
            preferred.iter().all(|p| !p.is_empty()),
            "every core needs at least one target slice"
        );
        assert_eq!(
            window_offset as usize % CACHE_LINE,
            0,
            "window must be cache-line aligned"
        );
        assert!(
            window_offset < pool.dataroom(),
            "window beyond the data room"
        );
        let max_lines = pool.headroom_cap() as usize / CACHE_LINE;
        assert!(max_lines <= 15, "headroom table nibble overflow");
        let cores = preferred.len();
        let mut cd = Self {
            preferred,
            window_offset,
            stats: InstallStats::default(),
        };
        for mbuf in 0..pool.capacity() {
            let mut nibbles = vec![0u8; cores];
            for (core, nib) in nibbles.iter_mut().enumerate() {
                match cd.search(m, pool, mbuf, core, max_lines) {
                    Some(lines) => {
                        *nib = lines;
                        cd.stats.placed += 1;
                    }
                    None => {
                        *nib = 0;
                        cd.stats.fallback += 1;
                    }
                }
            }
            let packed = pack_headroom_table(&nibbles);
            // Init phase: written directly, not on any core's clock.
            let meta = pool.meta(mbuf);
            m.mem_mut().write_u64(meta.base().add(8), packed);
        }
        cd
    }

    /// Smallest headroom (in lines) placing the window in a preferred
    /// slice of `core`.
    fn search(
        &self,
        m: &Machine,
        pool: &MbufPool,
        mbuf: u32,
        core: usize,
        max_lines: usize,
    ) -> Option<u8> {
        let meta = pool.meta(mbuf);
        for lines in 0..=max_lines {
            let data_off = (lines * CACHE_LINE) as u16;
            let window_pa = meta
                .data_pa_for(data_off)
                .add(u64::from(self.window_offset));
            if self.preferred[core].contains(&m.slice_of(window_pa)) {
                return Some(lines as u8);
            }
        }
        None
    }

    /// Init-phase placement statistics.
    pub fn stats(&self) -> InstallStats {
        self.stats
    }

    /// The per-core preferred slice sets in use.
    pub fn preferred(&self) -> &[Vec<usize>] {
        &self.preferred
    }

    /// The placed window's byte offset within the packet.
    pub fn window_offset(&self) -> u16 {
        self.window_offset
    }
}

impl HeadroomPolicy for CacheDirector {
    fn data_off(&mut self, m: &mut Machine, pool: &MbufPool, mbuf: u32, core: usize) -> u16 {
        // One (usually cached) metadata load: the precomputed nibble.
        let (udata, _cycles) = pool.meta(mbuf).udata64(m, core);
        let core_idx = core.min(15);
        u16::from(unpack_headroom_lines(udata, core_idx)) * CACHE_LINE as u16
    }
}

/// Regenerates the §4.2 headroom-size distribution: the headroom each of
/// the pool's mbufs needs per core, in bytes.
///
/// The paper ran ~12.3 M trace packets through this and found a median of
/// 256 B, 95 % below 512 B, and a maximum of 832 B.
pub fn headroom_distribution(m: &Machine, pool: &MbufPool, cd: &CacheDirector) -> Vec<u16> {
    let max_lines = pool.headroom_cap() as usize / CACHE_LINE;
    let mut out = Vec::with_capacity(pool.capacity() as usize * cd.preferred.len());
    for mbuf in 0..pool.capacity() {
        for core in 0..cd.preferred.len() {
            if let Some(lines) = cd.search(m, pool, mbuf, core, max_lines) {
                out.push(u16::from(lines) * CACHE_LINE as u16);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::machine::MachineConfig;
    use rte::nic::{FixedHeadroom, Port};
    use rte::steering::{Rss, Steering};
    use trafficgen::FlowTuple;

    fn haswell() -> Machine {
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(128 << 20))
    }

    #[test]
    fn install_places_every_haswell_pair() {
        // Over 8 consecutive headroom lines the XOR hash cycles through
        // all 8 slices, so placement never falls back on Haswell.
        let mut m = haswell();
        let pool = MbufPool::create(&mut m, 128, CACHEDIRECTOR_HEADROOM, 2048).unwrap();
        let cd = CacheDirector::install(&mut m, &pool, 1, 0);
        assert_eq!(cd.stats().fallback, 0);
        assert_eq!(cd.stats().placed, 128 * 8);
    }

    #[test]
    fn data_off_lands_header_in_cores_slice() {
        let mut m = haswell();
        let pool = MbufPool::create(&mut m, 64, CACHEDIRECTOR_HEADROOM, 2048).unwrap();
        let mut cd = CacheDirector::install(&mut m, &pool, 1, 0);
        for core in 0..8 {
            let target = m.closest_slice(core);
            for mbuf in 0..64 {
                let off = cd.data_off(&mut m, &pool, mbuf, core);
                let pa = pool.meta(mbuf).data_pa_for(off);
                assert_eq!(m.slice_of(pa), target, "mbuf {mbuf} core {core}");
                assert!(off <= CACHEDIRECTOR_HEADROOM);
            }
        }
    }

    #[test]
    fn haswell_headroom_distribution_matches_paper_shape() {
        // §4.2: median 256 B, 95 % < 512 B, max 832 B. Consecutive lines
        // *mostly* cycle through all 8 slices (bits 6-8 drive the hash),
        // but windows crossing a 1 KB boundary flip bit 10 mid-run, which
        // is what pushes the tail of the distribution out.
        let mut m = haswell();
        let pool = MbufPool::create(&mut m, 256, CACHEDIRECTOR_HEADROOM, 2048).unwrap();
        let cd = CacheDirector::install(&mut m, &pool, 1, 0);
        let mut dist = headroom_distribution(&m, &pool, &cd);
        dist.sort_unstable();
        let max = *dist.last().unwrap();
        let median = dist[dist.len() / 2];
        let p95 = dist[dist.len() * 95 / 100];
        assert!(max <= 832, "max {max}");
        assert!(median <= 256, "median {median}");
        assert!(p95 <= 512, "p95 {p95}");
    }

    #[test]
    fn window_offset_places_that_window() {
        let mut m = haswell();
        let pool = MbufPool::create(&mut m, 32, CACHEDIRECTOR_HEADROOM, 2048).unwrap();
        // Place the second cache line of the packet (e.g. inner VXLAN hdr).
        let mut cd = CacheDirector::install(&mut m, &pool, 1, 64);
        for mbuf in 0..32 {
            let off = cd.data_off(&mut m, &pool, mbuf, 2);
            let pa = pool.meta(mbuf).data_pa_for(off).add(64);
            assert_eq!(m.slice_of(pa), m.closest_slice(2));
        }
    }

    #[test]
    fn skylake_uses_preferred_sets() {
        let mut m = Machine::new(MachineConfig::skylake_gold_6134().with_dram_capacity(128 << 20));
        let pool = MbufPool::create(&mut m, 64, CACHEDIRECTOR_HEADROOM, 2048).unwrap();
        let mut cd = CacheDirector::install(&mut m, &pool, 3, 0);
        let mut hits = 0;
        let mut total = 0;
        for core in 0..8 {
            let pref = cd.preferred()[core].clone();
            for mbuf in 0..64 {
                let off = cd.data_off(&mut m, &pool, mbuf, core);
                let pa = pool.meta(mbuf).data_pa_for(off);
                total += 1;
                if pref.contains(&m.slice_of(pa)) {
                    hits += 1;
                }
            }
        }
        // 14 candidate positions vs an 18-slice pseudo-random hash: most
        // pairs place, a few fall back.
        assert!(
            hits as f64 / total as f64 > 0.85,
            "placement rate {hits}/{total}"
        );
    }

    #[test]
    fn runtime_lookup_is_one_cached_load() {
        let mut m = haswell();
        let pool = MbufPool::create(&mut m, 16, CACHEDIRECTOR_HEADROOM, 2048).unwrap();
        let mut cd = CacheDirector::install(&mut m, &pool, 1, 0);
        // Warm the metadata line.
        let _ = cd.data_off(&mut m, &pool, 3, 0);
        let t0 = m.now(0);
        let _ = cd.data_off(&mut m, &pool, 3, 0);
        let cost = m.now(0) - t0;
        assert!(
            cost <= 4,
            "runtime overhead must be a single L1 load: {cost}"
        );
    }

    #[test]
    fn end_to_end_frame_lands_in_processing_cores_slice() {
        // The full §4 pipeline: refill with CacheDirector, deliver a frame
        // via DDIO, check the header's slice for the consuming core.
        let mut m = haswell();
        let mut pool = MbufPool::create(&mut m, 128, CACHEDIRECTOR_HEADROOM, 2048).unwrap();
        let mut cd = CacheDirector::install(&mut m, &pool, 1, 0);
        let mut port = Port::new(0, Steering::Rss(Rss::new(8)), 64);
        // Queue q is served by core q.
        for q in 0..8 {
            port.refill(&mut m, &mut pool, q, q, &mut cd, 16);
        }
        let mut checked = 0;
        for i in 0..64u32 {
            let flow = FlowTuple::tcp(0x0a000000 + i * 7, 1000 + i as u16, 0xc0a80001, 80);
            let frame = vec![0u8; 128];
            let q = port.deliver(&mut m, &frame, &flow, 0.0).unwrap();
            let (batch, _) = port.rx_burst(&mut m, &pool, q, q, 4);
            for c in batch {
                let slice = m.slice_of(c.data_pa);
                assert_eq!(slice, m.closest_slice(q), "queue {q}");
                assert!(m.llc_probe(slice, c.data_pa), "header in LLC via DDIO");
                checked += 1;
            }
        }
        assert!(checked >= 60);
    }

    #[test]
    fn stock_dpdk_headers_scatter_across_slices() {
        // Baseline sanity: with FixedHeadroom the header slice is
        // uniform-ish over all 8 slices, which is what CacheDirector fixes.
        let mut m = haswell();
        let mut pool = MbufPool::create(&mut m, 256, 128, 2048).unwrap();
        let mut fixed = FixedHeadroom(128);
        let mut port = Port::new(0, Steering::Rss(Rss::new(1)), 256);
        port.refill(&mut m, &mut pool, 0, 0, &mut fixed, 256);
        let mut slices_seen = std::collections::HashSet::new();
        for i in 0..256u32 {
            let flow = FlowTuple::tcp(i, 1, 2, 3);
            if port.deliver(&mut m, &[0u8; 64], &flow, 0.0).is_ok() {
                let (batch, _) = port.rx_burst(&mut m, &pool, 0, 0, 1);
                for c in batch {
                    slices_seen.insert(m.slice_of(c.data_pa));
                }
            }
        }
        assert!(slices_seen.len() >= 6, "only saw {slices_seen:?}");
    }

    #[test]
    #[should_panic(expected = "cache-line aligned")]
    fn rejects_misaligned_window() {
        let mut m = haswell();
        let pool = MbufPool::create(&mut m, 4, CACHEDIRECTOR_HEADROOM, 2048).unwrap();
        CacheDirector::install(&mut m, &pool, 1, 100);
    }

    #[test]
    #[should_panic(expected = "nibble overflow")]
    fn rejects_oversized_headroom_pool() {
        let mut m = haswell();
        let pool = MbufPool::create(&mut m, 4, 1024, 2048).unwrap();
        CacheDirector::install(&mut m, &pool, 1, 0);
    }
}
