//! An emulated in-memory key-value store with slice-aware value
//! placement (paper §3.1, Fig. 8).
//!
//! The paper's KVS experiment: a DPDK application on **one core** serves
//! GET/SET requests for 64 B keys and 64 B values arriving in 128 B TCP
//! packets; values are `2^24` slots (1 GB); keys are drawn either
//! uniformly or Zipf(0.99) "using MICA's library". Slice-aware mode
//! allocates every value slot from memory mapping to the serving core's
//! closest LLC slice, so the *hot* values — the ones that stay cached —
//! are always reached at minimum latency.
//!
//! Like the paper's, this is an *emulated* store: the index is a direct
//! key→slot array (no hashing/versioning/eviction machinery), which the
//! paper lists among its §8 caveats. The index array itself lives in
//! simulated memory and is allocated normally in both modes — only value
//! placement differs, isolating the effect under study.

//! # Examples
//!
//! ```
//! use kvs::store::{KvStore, Placement};
//! use llc_sim::hash::{SliceHash, XorSliceHash};
//! use llc_sim::machine::{Machine, MachineConfig};
//! use slice_aware::alloc::SliceAllocator;
//!
//! let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3());
//! let region = m.mem_mut().alloc(64 << 20, 1 << 20).unwrap();
//! let h = XorSliceHash::haswell_8slice();
//! let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
//! let closest = m.closest_slice(0);
//! let mut kv = KvStore::build(
//!     &mut m,
//!     &mut alloc,
//!     1024,
//!     Placement::SliceAware { slice: closest },
//! )
//! .unwrap();
//! kv.set(&mut m, 0, 42, &[7u8; 64]);
//! let mut out = [0u8; 64];
//! kv.get(&mut m, 0, 42, &mut out);
//! assert_eq!(out, [7u8; 64]);
//! // Every value line really is in core 0's closest slice.
//! let pa = kv.value_pa(&mut m, 42);
//! assert_eq!(m.slice_of(pa), closest);
//! ```

pub mod large;
pub mod migrate;
pub mod openloop;
pub mod proto;
pub mod server;
pub mod store;

pub use large::{LargeKvStore, LargePlacement};
pub use migrate::{CostModel, HotMigrator, MigrateError, MigrationPolicy, MigrationReport};
pub use openloop::{
    run_openloop, run_openloop_streaming, CompletionSink, OpenLoopConfig, OpenLoopReport,
};
pub use proto::{KvOp, KvRequest};
pub use server::{run_server, MigrationMode, ServerConfig, ServerReport};
pub use store::{KvStore, Placement, SwapError};
