//! Hot-set monitoring and migration (paper §8).
//!
//! "Applications which only use slice-aware memory management for the
//! 'hot' data due to their very large working set should employ
//! monitoring/migration techniques to deal with variability of hot
//! data." This module implements that loop for the KVS: count key
//! accesses per epoch, and at each epoch boundary swap newly-hot keys
//! into the store's slice-local hot slots (evicting keys that cooled
//! off). A swap exchanges both the index entries and the 64 B values,
//! all through timed machine operations, so migration cost is visible to
//! the experiment that decides whether it pays off.

use crate::store::KvStore;
use llc_sim::hierarchy::Cycles;
use llc_sim::machine::Machine;
use std::collections::HashMap;

/// What one epoch's migration did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// Keys moved into the hot area (same number moved out).
    pub migrated: usize,
    /// Cycles spent copying values and rewriting index entries.
    pub cycles: Cycles,
}

/// Epoch-based hot-set tracker driving [`KvStore::swap_keys`].
#[derive(Debug)]
pub struct HotMigrator {
    /// Access counts within the current epoch.
    counts: HashMap<u32, u32>,
    /// Accesses per epoch.
    epoch_len: usize,
    /// Accesses seen in the current epoch.
    seen: usize,
    /// Number of hot (slice-local) slots in the store.
    hot_count: usize,
    /// The key currently stored in each hot slot.
    resident: Vec<u32>,
}

impl HotMigrator {
    /// A tracker for a store built with `hot_count` hot slots (initially
    /// occupied by keys `0..hot_count`, the identity layout of
    /// [`crate::store::Placement::HotSliceAware`]).
    ///
    /// # Panics
    ///
    /// Panics when `epoch_len == 0` or `hot_count == 0`.
    pub fn new(hot_count: usize, epoch_len: usize) -> Self {
        assert!(epoch_len > 0, "epoch must be positive");
        assert!(hot_count > 0, "need a hot area");
        Self {
            counts: HashMap::new(),
            epoch_len,
            seen: 0,
            hot_count,
            resident: (0..hot_count as u32).collect(),
        }
    }

    /// Keys currently occupying the hot area.
    pub fn resident(&self) -> &[u32] {
        &self.resident
    }

    /// True when `key`'s value currently lives in a hot slot.
    pub fn is_hot(&self, key: u32) -> bool {
        self.resident.contains(&key)
    }

    /// Records one access; at epoch boundaries performs migration and
    /// returns the report.
    pub fn record(
        &mut self,
        m: &mut Machine,
        core: usize,
        store: &mut KvStore,
        key: u32,
    ) -> Option<MigrationReport> {
        *self.counts.entry(key).or_insert(0) += 1;
        self.seen += 1;
        if self.seen < self.epoch_len {
            return None;
        }
        let report = self.migrate(m, core, store);
        self.counts.clear();
        self.seen = 0;
        Some(report)
    }

    /// Swaps this epoch's hottest keys into the hot area.
    fn migrate(&mut self, m: &mut Machine, core: usize, store: &mut KvStore) -> MigrationReport {
        // This epoch's top keys, hottest first.
        let mut by_count: Vec<(u32, u32)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        by_count.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let want: Vec<u32> = by_count
            .iter()
            .take(self.hot_count)
            .map(|&(k, _)| k)
            .collect();
        let want_set: std::collections::HashSet<u32> = want.iter().copied().collect();
        // Hot-slot occupants that cooled off, coldest first (missing from
        // the counts map = coldest of all).
        let mut evictable: Vec<(usize, u32)> = self
            .resident
            .iter()
            .enumerate()
            .filter(|(_, k)| !want_set.contains(k))
            .map(|(i, &k)| (i, k))
            .collect();
        evictable.sort_unstable_by_key(|&(_, k)| self.counts.get(&k).copied().unwrap_or(0));
        let mut migrated = 0;
        let mut cycles = 0;
        let mut evict_iter = evictable.into_iter();
        for key in want {
            if self.is_hot(key) {
                continue;
            }
            let Some((slot_idx, out_key)) = evict_iter.next() else {
                break;
            };
            cycles += store.swap_keys(m, core, key, out_key);
            self.resident[slot_idx] = key;
            migrated += 1;
        }
        MigrationReport { migrated, cycles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Placement;
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::machine::MachineConfig;
    use slice_aware::alloc::SliceAllocator;

    fn setup(n: usize, hot: usize) -> (Machine, KvStore) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
        let region = m.mem_mut().alloc(64 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
        let store = KvStore::build(
            &mut m,
            &mut alloc,
            n,
            Placement::HotSliceAware {
                slice: 0,
                hot_count: hot,
            },
        )
        .unwrap();
        (m, store)
    }

    #[test]
    fn migration_moves_hot_keys_into_the_slice() {
        let (mut m, mut store) = setup(4096, 16);
        let mut mig = HotMigrator::new(16, 1000);
        // Hammer keys 2000..2016 (initially in the cold, contiguous area).
        for i in 0..1000u32 {
            let key = 2000 + (i % 16);
            mig.record(&mut m, 0, &mut store, key);
        }
        for key in 2000..2016 {
            assert!(mig.is_hot(key), "key {key} should have migrated");
            let pa = store.value_pa(&mut m, key);
            assert_eq!(m.slice_of(pa), 0, "migrated value must live in slice 0");
        }
    }

    #[test]
    fn migration_preserves_values() {
        let (mut m, mut store) = setup(1024, 8);
        // Give distinctive contents to a future-hot key and a current
        // occupant.
        store.set(&mut m, 0, 500, &[0xaa; 64]);
        store.set(&mut m, 0, 3, &[0xbb; 64]);
        let mut mig = HotMigrator::new(8, 100);
        for _ in 0..100 {
            mig.record(&mut m, 0, &mut store, 500);
        }
        let mut out = [0u8; 64];
        store.get(&mut m, 0, 500, &mut out);
        assert_eq!(out, [0xaa; 64], "migrated value intact");
        store.get(&mut m, 0, 3, &mut out);
        assert_eq!(out, [0xbb; 64], "evicted value intact");
    }

    #[test]
    fn stable_hot_set_stops_migrating() {
        let (mut m, mut store) = setup(1024, 4);
        let mut mig = HotMigrator::new(4, 200);
        let mut reports = Vec::new();
        for round in 0..3 {
            for i in 0..200u32 {
                let key = 700 + (i % 4);
                if let Some(r) = mig.record(&mut m, 0, &mut store, key) {
                    reports.push((round, r));
                }
            }
        }
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].1.migrated, 4, "first epoch migrates the set");
        assert_eq!(reports[1].1.migrated, 0, "steady state is free");
        assert_eq!(reports[2].1.migrated, 0);
        assert_eq!(reports[1].1.cycles, 0);
    }

    #[test]
    fn migration_adapts_when_the_hot_set_shifts() {
        // §8's motivating case: "variability of hot data".
        let (mut m, mut store) = setup(4096, 8);
        let mut mig = HotMigrator::new(8, 400);
        for i in 0..400u32 {
            mig.record(&mut m, 0, &mut store, 1000 + (i % 8));
        }
        assert!(mig.is_hot(1000));
        for i in 0..400u32 {
            mig.record(&mut m, 0, &mut store, 3000 + (i % 8));
        }
        assert!(mig.is_hot(3000), "new hot set migrated in");
        assert!(!mig.is_hot(1000), "old hot set migrated out");
        let pa = store.value_pa(&mut m, 3000);
        assert_eq!(m.slice_of(pa), 0);
    }

    #[test]
    fn migration_cost_is_accounted() {
        let (mut m, mut store) = setup(1024, 4);
        let mut mig = HotMigrator::new(4, 50);
        let mut report = None;
        for i in 0..50u32 {
            report = mig.record(&mut m, 0, &mut store, 900 + (i % 4)).or(report);
        }
        let r = report.expect("epoch boundary reached");
        assert_eq!(r.migrated, 4);
        // Each swap copies two 64 B values and rewrites two index entries.
        assert!(r.cycles > 0);
    }
}
